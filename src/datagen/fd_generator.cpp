#include "datagen/fd_generator.hpp"

#include <numeric>

#include "common/rng.hpp"

namespace normalize {

FdSet GenerateRandomFdSet(int num_attrs, size_t num_fds, int max_lhs,
                          uint64_t seed) {
  Rng rng(seed);
  FdSet fds;
  for (size_t i = 0; i < num_fds; ++i) {
    int lhs_size = static_cast<int>(rng.Uniform(1, max_lhs));
    AttributeSet lhs(num_attrs);
    while (lhs.Count() < lhs_size) {
      lhs.Set(static_cast<AttributeId>(rng.Uniform(0, num_attrs - 1)));
    }
    AttributeSet rhs(num_attrs);
    int rhs_size = static_cast<int>(rng.Uniform(1, 3));
    int guard = 0;
    while (rhs.Count() < rhs_size && guard++ < 100) {
      AttributeId a = static_cast<AttributeId>(rng.Uniform(0, num_attrs - 1));
      if (!lhs.Test(a)) rhs.Set(a);
    }
    if (rhs.Empty()) continue;
    fds.Add(Fd(std::move(lhs), std::move(rhs)));
  }
  fds.Aggregate();
  return fds;
}

FdSet SampleFds(const FdSet& source, size_t n, uint64_t seed) {
  if (n >= source.size()) return source;
  Rng rng(seed);
  std::vector<size_t> indices(source.size());
  std::iota(indices.begin(), indices.end(), 0);
  rng.Shuffle(&indices);
  FdSet out;
  for (size_t i = 0; i < n; ++i) out.Add(source[indices[i]]);
  return out;
}

}  // namespace normalize
