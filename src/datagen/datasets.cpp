#include "datagen/datasets.hpp"

#include <algorithm>
#include <cassert>

#include "relation/operations.hpp"

namespace normalize {

RelationData AddressExample() {
  std::vector<AttributeId> ids = {0, 1, 2, 3, 4};
  std::vector<std::string> names = {"First", "Last", "Postcode", "City",
                                    "Mayor"};
  RelationData data("address", ids, names);
  data.AppendRow({"Thomas", "Miller", "14482", "Potsdam", "Jakobs"});
  data.AppendRow({"Sarah", "Miller", "14482", "Potsdam", "Jakobs"});
  data.AppendRow({"Peter", "Smith", "60329", "Frankfurt", "Feldmann"});
  data.AppendRow({"Jasmine", "Cone", "01069", "Dresden", "Orosz"});
  data.AppendRow({"Mike", "Cone", "14482", "Potsdam", "Jakobs"});
  data.AppendRow({"Thomas", "Moore", "60329", "Frankfurt", "Feldmann"});
  return data;
}

RelationData DenormalizeAll(const std::vector<RelationData>& tables,
                            const std::string& name) {
  assert(!tables.empty());
  RelationData result = tables[0];
  for (size_t i = 1; i < tables.size(); ++i) {
    result = NaturalJoin(result, tables[i]);
  }
  result.set_name(name);
  return result;
}

RelationData GenerateRandomDataset(const RandomDatasetSpec& spec) {
  Rng rng(spec.seed);
  int n = spec.num_attributes;
  int rows = spec.num_rows;

  std::vector<AttributeId> ids(static_cast<size_t>(n));
  std::vector<std::string> names(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    ids[static_cast<size_t>(c)] = c;
    names[static_cast<size_t>(c)] = "col" + std::to_string(c);
  }

  // Plant FDs: pick target columns (distinct) and random source sets among
  // the non-target columns.
  struct Planted {
    std::vector<int> sources;
    int target;
  };
  std::vector<int> columns(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) columns[static_cast<size_t>(c)] = c;
  std::vector<int> shuffled = columns;
  rng.Shuffle(&shuffled);
  int num_planted = std::min(spec.num_planted_fds, n / 2);
  std::vector<Planted> planted;
  std::vector<bool> is_target(static_cast<size_t>(n), false);
  for (int i = 0; i < num_planted; ++i) {
    int target = shuffled[static_cast<size_t>(i)];
    is_target[static_cast<size_t>(target)] = true;
    planted.push_back({{}, target});
  }
  for (Planted& p : planted) {
    int k = static_cast<int>(rng.Uniform(1, spec.max_source_size));
    std::vector<int> pool;
    for (int c = 0; c < n; ++c) {
      if (!is_target[static_cast<size_t>(c)]) pool.push_back(c);
    }
    rng.Shuffle(&pool);
    for (int j = 0; j < k && j < static_cast<int>(pool.size()); ++j) {
      p.sources.push_back(pool[static_cast<size_t>(j)]);
    }
  }

  // Independent columns: skewed draws from a bounded domain. NULL cells are
  // decided first and encoded as the sentinel -1 in the raw matrix so that
  // planted targets are functions of the *observed* values (NULL included) —
  // otherwise two NULL-source rows could disagree on the target and the
  // planted FD would not hold.
  int domain = std::max(2, static_cast<int>(rows * spec.domain_fraction));
  std::vector<std::vector<int64_t>> raw(
      static_cast<size_t>(n), std::vector<int64_t>(static_cast<size_t>(rows)));
  for (int c = 0; c < n; ++c) {
    if (is_target[static_cast<size_t>(c)]) continue;
    for (int r = 0; r < rows; ++r) {
      bool null_cell =
          spec.null_fraction > 0.0 && rng.Chance(spec.null_fraction);
      raw[static_cast<size_t>(c)][static_cast<size_t>(r)] =
          null_cell ? -1 : rng.Skewed(domain);
    }
  }
  // Planted targets: a deterministic function (hash) of the source values.
  for (const Planted& p : planted) {
    for (int r = 0; r < rows; ++r) {
      uint64_t h = 1469598103934665603ull;
      for (int s : p.sources) {
        h ^= static_cast<uint64_t>(
                 raw[static_cast<size_t>(s)][static_cast<size_t>(r)]) +
             0x9e3779b97f4a7c15ull;
        h *= 1099511628211ull;
      }
      // Compress into a smallish codomain to keep duplication realistic.
      raw[static_cast<size_t>(p.target)][static_cast<size_t>(r)] =
          static_cast<int64_t>(h % static_cast<uint64_t>(domain * 2));
    }
  }

  RelationData data(spec.name, ids, names);
  std::vector<std::string> row(static_cast<size_t>(n));
  std::vector<bool> nulls(static_cast<size_t>(n));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < n; ++c) {
      int64_t v = raw[static_cast<size_t>(c)][static_cast<size_t>(r)];
      bool null_cell = v < 0;
      nulls[static_cast<size_t>(c)] = null_cell;
      row[static_cast<size_t>(c)] = null_cell ? "" : "v" + std::to_string(v);
    }
    data.AppendRow(row, nulls);
  }
  return data;
}

namespace {

RelationData Profile(const std::string& name, int attrs, int base_rows,
                     double scale, uint64_t seed, double domain_fraction,
                     int planted, int max_source, double null_fraction) {
  RandomDatasetSpec spec;
  spec.name = name;
  spec.num_attributes = attrs;
  spec.num_rows = std::max(2, static_cast<int>(base_rows * scale));
  spec.domain_fraction = domain_fraction;
  spec.num_planted_fds = planted;
  spec.max_source_size = max_source;
  spec.null_fraction = null_fraction;
  spec.seed = seed;
  return GenerateRandomDataset(spec);
}

}  // namespace

RelationData HorseLike(double scale, uint64_t seed) {
  // Horse: 27 attributes x 368 records, many NULLs, heavy duplication.
  return Profile("horse", 27, 368, scale, seed, 0.08, 6, 2, 0.2);
}

RelationData PlistaLike(double scale, uint64_t seed) {
  // Plista: 63 attributes x 1000 records, sparse columns.
  return Profile("plista", 63, 1000, scale, seed, 0.05, 12, 2, 0.3);
}

RelationData Amalgam1Like(double scale, uint64_t seed) {
  // Amalgam1: 87 attributes x 50 records — wide and short.
  return Profile("amalgam1", 87, 50, scale, seed, 0.3, 15, 2, 0.1);
}

RelationData FlightLike(double scale, uint64_t seed) {
  // Flight: 109 attributes x 1000 records.
  return Profile("flight", 109, 1000, scale, seed, 0.06, 20, 2, 0.25);
}

}  // namespace normalize
