// Built-in datasets and dataset generators used by the examples, tests, and
// the evaluation harness. See DESIGN.md §1 for the substitution rationale:
// the generators reproduce the *schema and FD structure* of the paper's
// datasets at configurable scale.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "relation/relation_data.hpp"

namespace normalize {

/// The paper's Table 1 address example (6 rows; Postcode -> City, Mayor).
RelationData AddressExample();

/// Left-folds NaturalJoin over `tables` (order matters: each table must
/// share at least one attribute with the join of its predecessors, or the
/// result degenerates to a cross product).
RelationData DenormalizeAll(const std::vector<RelationData>& tables,
                            const std::string& name);

/// Specification of a synthetic dataset with planted FDs, used for the
/// Table 3 profile datasets (Horse, Plista, Amalgam1, Flight stand-ins) and
/// for randomized property tests.
struct RandomDatasetSpec {
  std::string name = "random";
  int num_attributes = 10;
  int num_rows = 100;
  /// Distinct-value budget per independent column, as a fraction of rows
  /// (smaller => more duplication => more FDs).
  double domain_fraction = 0.3;
  /// Number of planted FDs source-set -> target-column.
  int num_planted_fds = 5;
  /// Max size of a planted FD's source set.
  int max_source_size = 3;
  /// Fraction of NULL cells in non-source columns.
  double null_fraction = 0.0;
  uint64_t seed = 42;
};

/// Generates a dataset per the spec: independent columns draw from skewed
/// value domains; each planted FD makes its target column a deterministic
/// function of its source columns (so the FD holds by construction — along
/// with whatever accidental FDs the duplication induces, as in real data).
RelationData GenerateRandomDataset(const RandomDatasetSpec& spec);

/// Shape-matched stand-ins for the paper's four efficiency datasets
/// (Table 3). Scale multiplies the row count.
RelationData HorseLike(double scale = 1.0, uint64_t seed = 1);      // 27 x 368
RelationData PlistaLike(double scale = 1.0, uint64_t seed = 2);     // 63 x 1000
RelationData Amalgam1Like(double scale = 1.0, uint64_t seed = 3);   // 87 x 50
RelationData FlightLike(double scale = 1.0, uint64_t seed = 4);  // 109 x 1000

}  // namespace normalize
