// A TPC-H-like dataset generator (substitute for dbgen, see DESIGN.md):
// produces the eight TPC-H relations with the original key/foreign-key
// snowflake structure at configurable scale, plus the denormalized universal
// relation the paper's Figure 3 experiment normalizes. Attribute ids are
// global: a foreign-key column shares the id of the referenced primary key,
// so NaturalJoin reconstructs the intended denormalization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relation/relation_data.hpp"
#include "relation/schema.hpp"

namespace normalize {

struct TpchScale {
  int regions = 5;
  int nations = 25;
  int customers = 300;
  int suppliers = 100;
  int parts = 375;
  int suppliers_per_part = 2;  // partsupp = parts * suppliers_per_part
  int orders = 875;
  int lineitems = 3500;
  uint64_t seed = 7;

  /// Multiplies all entity counts except regions/nations.
  TpchScale Scaled(double f) const;
};

/// The generated base tables plus gold-standard schema metadata used by the
/// effectiveness evaluation (§8.3): which attributes belong to which
/// original relation, and the original keys.
struct TpchDataset {
  std::vector<RelationData> tables;  // region, nation, customer, supplier,
                                     // part, partsupp, orders, lineitem
  RelationData universal;            // full denormalized join
  Schema gold_schema;                // the original relations with PKs/FKs
};

/// Generates the dataset. The universal relation's row count equals the
/// lineitem count.
TpchDataset GenerateTpchLike(const TpchScale& scale = {});

}  // namespace normalize
