// Skewed update-stream generator for the incremental engine (src/live/):
// produces insert/update/delete batches against a mutating LiveRelation,
// with TPC-C-style NURand target selection — the first slice of the
// ROADMAP's TPC-C-like transactional workload. Hot rows are hit far more
// often than cold ones (the classic non-uniform access pattern incremental
// maintenance must survive), and the whole stream is a deterministic
// function of (initial instance, spec): same seed, same batches, byte for
// byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "live/live_relation.hpp"
#include "relation/relation_data.hpp"

namespace normalize {

struct UpdateStreamSpec {
  /// Operations per generated batch (split by the fractions below; inserts
  /// absorb rounding).
  size_t batch_size = 64;
  /// Operation mix. Fractions are normalized over their sum; when the
  /// relation runs low on live rows, updates/deletes degrade to inserts so
  /// a batch never empties the store.
  double insert_fraction = 0.5;
  double update_fraction = 0.3;
  double delete_fraction = 0.2;
  /// TPC-C NURand window parameter A: targets concentrate on roughly A+1
  /// hot positions of the live-row order. Use a (power of two) - 1.
  int64_t nurand_a = 255;
  /// Probability that a generated cell is a fresh, never-seen value instead
  /// of a skewed draw from the column's observed pool. Fresh values create
  /// FD violations; pool values create agreeing pairs.
  double fresh_value_fraction = 0.15;
  uint64_t seed = 42;

  /// Delete-dominant mix: 60% deletes, 10% updates, 30% inserts. The store
  /// shrinks toward the generator's never-drain floor, after which delete
  /// shortfall degrades to inserts — a sustained stress on the witnessed-
  /// evidence delete path (witness re-seating, recovery of delete-heavy
  /// WALs) that the default mix only grazes.
  static UpdateStreamSpec DeleteHeavy(uint64_t seed = 42) {
    UpdateStreamSpec spec;
    spec.insert_fraction = 0.3;
    spec.update_fraction = 0.1;
    spec.delete_fraction = 0.6;
    spec.seed = seed;
    return spec;
  }
};

/// Generates batches against the *current* live state of a relation; the
/// caller applies each batch (LiveRelation::Apply or through a
/// DeltaFdMaintainer) before requesting the next.
class UpdateStreamGenerator {
 public:
  /// Builds per-column value pools from the initial instance's cells.
  UpdateStreamGenerator(const RelationData& initial, UpdateStreamSpec spec);

  /// The next batch. Delete/update targets are NURand-skewed positions of
  /// `relation`'s live-row order, deduplicated within the batch; insert and
  /// update rows mix pool values with fresh ones per the spec.
  LiveBatch NextBatch(const LiveRelation& relation);

  /// The TPC-C non-uniform random index in [0, n):
  /// ((random(0, A) | random(0, n-1)) + C) mod n. Exposed for the skew
  /// tests.
  size_t NurandIndex(size_t n);

 private:
  std::vector<std::string> MakeRow();

  UpdateStreamSpec spec_;
  Rng rng_;
  /// The per-run NURand constant C (TPC-C draws it once per run).
  int64_t nurand_c_;
  /// Observed values per column, deduplicated, in first-seen row order.
  std::vector<std::vector<std::string>> pools_;
  /// Monotonic counter making fresh values unique across the stream.
  uint64_t fresh_counter_ = 0;
};

}  // namespace normalize
