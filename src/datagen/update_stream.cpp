#include "datagen/update_stream.hpp"

#include <algorithm>
#include <unordered_set>

namespace normalize {

UpdateStreamGenerator::UpdateStreamGenerator(const RelationData& initial,
                                             UpdateStreamSpec spec)
    : spec_(spec), rng_(spec.seed) {
  nurand_c_ = rng_.Uniform(0, spec_.nurand_a);
  int n = initial.num_columns();
  pools_.resize(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    std::unordered_set<std::string> seen;
    for (size_t r = 0; r < initial.num_rows(); ++r) {
      std::string value(initial.column(c).ValueAt(r));
      if (seen.insert(value).second) {
        pools_[static_cast<size_t>(c)].push_back(std::move(value));
      }
    }
    // A pool is never empty: rows are generated even for an empty seed.
    if (pools_[static_cast<size_t>(c)].empty()) {
      pools_[static_cast<size_t>(c)].push_back("v0");
    }
  }
}

size_t UpdateStreamGenerator::NurandIndex(size_t n) {
  if (n <= 1) return 0;
  int64_t limit = static_cast<int64_t>(n);
  int64_t windowed = rng_.Uniform(0, spec_.nurand_a);
  int64_t uniform = rng_.Uniform(0, limit - 1);
  return static_cast<size_t>(((windowed | uniform) + nurand_c_) % limit);
}

std::vector<std::string> UpdateStreamGenerator::MakeRow() {
  std::vector<std::string> cells;
  cells.reserve(pools_.size());
  for (auto& pool : pools_) {
    if (rng_.Chance(spec_.fresh_value_fraction)) {
      cells.push_back("fresh_" + std::to_string(fresh_counter_++));
    } else {
      // Skewed pool draw: early (first-seen) values stay hot, mirroring the
      // NURand row targeting on the value side.
      cells.push_back(
          pool[static_cast<size_t>(rng_.Skewed(
              static_cast<int64_t>(pool.size())))]);
    }
  }
  return cells;
}

LiveBatch UpdateStreamGenerator::NextBatch(const LiveRelation& relation) {
  double mix = spec_.insert_fraction + spec_.update_fraction +
               spec_.delete_fraction;
  if (mix <= 0.0) mix = 1.0;
  size_t updates = static_cast<size_t>(
      static_cast<double>(spec_.batch_size) * spec_.update_fraction / mix);
  size_t deletes = static_cast<size_t>(
      static_cast<double>(spec_.batch_size) * spec_.delete_fraction / mix);

  // Never drain the store: each batch keeps at least two live rows so FDs
  // stay falsifiable. Shortfall becomes inserts.
  size_t live = relation.live_rows();
  size_t removable = live > 2 ? live - 2 : 0;
  deletes = std::min(deletes, removable);
  size_t targetable = std::min(updates + deletes, live);

  LiveBatch batch;
  std::unordered_set<RowId> targeted;
  // One NURand draw per requested target; collisions within the batch are
  // simply dropped (a row may be targeted at most once per batch), which
  // preserves the draw sequence — and so determinism — independent of the
  // collision pattern.
  for (size_t i = 0; i < targetable; ++i) {
    RowId target = relation.NthLiveRow(NurandIndex(live));
    if (!targeted.insert(target).second) continue;
    if (batch.deletes.size() < deletes) {
      batch.deletes.push_back(target);
    } else if (batch.updates.size() < updates) {
      batch.updates.emplace_back(target, MakeRow());
    }
  }
  while (batch.size() < spec_.batch_size) {
    batch.inserts.push_back(MakeRow());
  }
  return batch;
}

}  // namespace normalize
