#include "datagen/tpch_like.hpp"

#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "datagen/datasets.hpp"

namespace normalize {

namespace {

// Global attribute ids of the TPC-H-like universe (53 attributes).
enum Attr : AttributeId {
  kRegionKey = 0,
  kRName,
  kRComment,
  kNationKey,
  kNName,
  kNComment,
  kCustKey,
  kCName,
  kCAddress,
  kCPhone,
  kCAcctBal,
  kCMktSegment,
  kCComment,
  kSuppKey,
  kSName,
  kSAddress,
  kSNationKey,
  kSPhone,
  kSAcctBal,
  kSComment,
  kPartKey,
  kPName,
  kPMfgr,
  kPBrand,
  kPType,
  kPSize,
  kPContainer,
  kPRetailPrice,
  kPComment,
  kPsAvailQty,
  kPsSupplyCost,
  kPsComment,
  kOrderKey,
  kOOrderStatus,
  kOTotalPrice,
  kOOrderDate,
  kOOrderPriority,
  kOClerk,
  kOShipPriority,
  kOComment,
  kLLineNumber,
  kLQuantity,
  kLExtendedPrice,
  kLDiscount,
  kLTax,
  kLReturnFlag,
  kLLineStatus,
  kLShipDate,
  kLCommitDate,
  kLReceiptDate,
  kLShipInstruct,
  kLShipMode,
  kLComment,
  kNumAttrs,
};

const char* AttrName(AttributeId a) {
  static const char* kNames[] = {
      "regionkey",    "r_name",         "r_comment",    "nationkey",
      "n_name",       "n_comment",      "custkey",      "c_name",
      "c_address",    "c_phone",        "c_acctbal",    "c_mktsegment",
      "c_comment",    "suppkey",        "s_name",       "s_address",
      "s_nationkey",  "s_phone",        "s_acctbal",    "s_comment",
      "partkey",      "p_name",         "p_mfgr",       "p_brand",
      "p_type",       "p_size",         "p_container",  "p_retailprice",
      "p_comment",    "ps_availqty",    "ps_supplycost", "ps_comment",
      "orderkey",     "o_orderstatus",  "o_totalprice", "o_orderdate",
      "o_orderpriority", "o_clerk",     "o_shippriority", "o_comment",
      "l_linenumber", "l_quantity",     "l_extendedprice", "l_discount",
      "l_tax",        "l_returnflag",   "l_linestatus", "l_shipdate",
      "l_commitdate", "l_receiptdate",  "l_shipinstruct", "l_shipmode",
      "l_comment"};
  return kNames[a];
}

RelationData MakeTable(const std::string& name,
                       std::vector<AttributeId> attrs) {
  std::vector<std::string> names;
  names.reserve(attrs.size());
  for (AttributeId a : attrs) names.emplace_back(AttrName(a));
  RelationData t(name, std::move(attrs), std::move(names));
  t.set_universe_size(kNumAttrs);
  return t;
}

std::string Money(int64_t cents) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%02lld",
                static_cast<long long>(cents / 100),
                static_cast<long long>(cents % 100));
  return buf;
}

std::string DateString(int day_index) {
  // Days since 1992-01-01, folded into y-m-d without real calendar logic.
  // Commit/receipt offsets can push the index slightly negative; clamp.
  day_index = std::max(day_index, 0);
  int year = 1992 + day_index / 360;
  int month = 1 + (day_index % 360) / 30;
  int day = 1 + day_index % 30;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

std::string Phone(Rng* rng) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(rng->Uniform(10, 34)),
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(1000, 9999)));
  return buf;
}

}  // namespace

TpchScale TpchScale::Scaled(double f) const {
  TpchScale s = *this;
  s.customers = std::max(1, static_cast<int>(customers * f));
  s.suppliers = std::max(1, static_cast<int>(suppliers * f));
  s.parts = std::max(1, static_cast<int>(parts * f));
  s.orders = std::max(1, static_cast<int>(orders * f));
  s.lineitems = std::max(1, static_cast<int>(lineitems * f));
  return s;
}

TpchDataset GenerateTpchLike(const TpchScale& scale) {
  Rng rng(scale.seed);
  TpchDataset ds;

  static const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                       "MIDDLE EAST", "OCEANIA", "ANTARCTICA"};
  static const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                    "HOUSEHOLD", "MACHINERY"};
  static const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                      "4-NOT SPECIFIED", "5-LOW"};
  static const char* kContainers[] = {"SM CASE", "LG BOX", "MED BAG",
                                      "JUMBO JAR", "WRAP PKG"};
  static const char* kTypes[] = {
      "STANDARD BRUSHED TIN", "SMALL PLATED COPPER", "ECONOMY POLISHED STEEL",
      "LARGE BURNISHED BRASS", "PROMO ANODIZED NICKEL"};
  static const char* kInstructs[] = {"DELIVER IN PERSON", "COLLECT COD",
                                     "NONE", "TAKE BACK RETURN"};
  static const char* kModes[] = {"AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                                 "FOB", "REG AIR"};

  // --- region ---
  RelationData region = MakeTable("region", {kRegionKey, kRName, kRComment});
  int regions = std::min<int>(scale.regions, 7);
  for (int i = 0; i < regions; ++i) {
    region.AppendRow({std::to_string(i), kRegionNames[i],
                      "region note " + rng.Identifier(8)});
  }

  // --- nation ---
  RelationData nation =
      MakeTable("nation", {kNationKey, kNName, kRegionKey, kNComment});
  std::vector<int> nation_region(static_cast<size_t>(scale.nations));
  for (int i = 0; i < scale.nations; ++i) {
    nation_region[static_cast<size_t>(i)] = i % regions;
    nation.AppendRow({std::to_string(i), "NATION_" + std::to_string(i),
                      std::to_string(nation_region[static_cast<size_t>(i)]),
                      "nation note " + rng.Identifier(8)});
  }

  // --- customer ---
  RelationData customer =
      MakeTable("customer", {kCustKey, kCName, kCAddress, kNationKey, kCPhone,
                             kCAcctBal, kCMktSegment, kCComment});
  std::vector<int> cust_nation(static_cast<size_t>(scale.customers));
  for (int i = 0; i < scale.customers; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "Customer#%06d", i);
    cust_nation[static_cast<size_t>(i)] =
        static_cast<int>(rng.Uniform(0, scale.nations - 1));
    customer.AppendRow(
        {std::to_string(i), name, rng.Identifier(12),
         std::to_string(cust_nation[static_cast<size_t>(i)]), Phone(&rng),
         Money(rng.Uniform(-99999, 999999)),
         kSegments[rng.Uniform(0, 4)], "cust " + rng.Identifier(10)});
  }

  // --- supplier (s_nationkey is a plain attribute; supplier is joined into
  // the universal relation via suppkey only, keeping the join tree acyclic) ---
  RelationData supplier =
      MakeTable("supplier", {kSuppKey, kSName, kSAddress, kSNationKey, kSPhone,
                             kSAcctBal, kSComment});
  for (int i = 0; i < scale.suppliers; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "Supplier#%06d", i);
    supplier.AppendRow({std::to_string(i), name, rng.Identifier(12),
                        std::to_string(rng.Uniform(0, scale.nations - 1)),
                        Phone(&rng), Money(rng.Uniform(-99999, 999999)),
                        "supp " + rng.Identifier(10)});
  }

  // --- part (p_brand functionally determines p_mfgr, as in dbgen) ---
  RelationData part =
      MakeTable("part", {kPartKey, kPName, kPMfgr, kPBrand, kPType, kPSize,
                         kPContainer, kPRetailPrice, kPComment});
  std::vector<int64_t> part_price(static_cast<size_t>(scale.parts));
  for (int i = 0; i < scale.parts; ++i) {
    int mfgr = static_cast<int>(rng.Uniform(1, 5));
    int brand = mfgr * 10 + static_cast<int>(rng.Uniform(1, 5));
    // dbgen's retail price is a deterministic function of the part key.
    part_price[static_cast<size_t>(i)] =
        90000 + (i * 100) % 20001 + 100 * (i % 1000);
    char mfgr_s[24], brand_s[24];
    std::snprintf(mfgr_s, sizeof(mfgr_s), "Manufacturer#%d", mfgr);
    std::snprintf(brand_s, sizeof(brand_s), "Brand#%d", brand);
    part.AppendRow({std::to_string(i), "part " + rng.Identifier(8), mfgr_s,
                    brand_s, kTypes[rng.Uniform(0, 4)],
                    std::to_string(rng.Uniform(1, 50)),
                    kContainers[rng.Uniform(0, 4)],
                    Money(part_price[static_cast<size_t>(i)]),
                    "part " + rng.Identifier(9)});
  }

  // --- partsupp: each part is stocked by `suppliers_per_part` suppliers ---
  RelationData partsupp = MakeTable(
      "partsupp", {kPartKey, kSuppKey, kPsAvailQty, kPsSupplyCost, kPsComment});
  std::vector<std::vector<int>> part_suppliers(
      static_cast<size_t>(scale.parts));
  for (int p = 0; p < scale.parts; ++p) {
    for (int k = 0; k < scale.suppliers_per_part; ++k) {
      int s = (p + k * (scale.suppliers / scale.suppliers_per_part + 1)) %
              scale.suppliers;
      if (std::find(part_suppliers[static_cast<size_t>(p)].begin(),
                    part_suppliers[static_cast<size_t>(p)].end(),
                    s) != part_suppliers[static_cast<size_t>(p)].end()) {
        continue;
      }
      part_suppliers[static_cast<size_t>(p)].push_back(s);
      // Quantities and costs draw from coarse domains so that they stay
      // attributes rather than accidental keys of partsupp.
      partsupp.AppendRow({std::to_string(p), std::to_string(s),
                          std::to_string(rng.Uniform(1, 99) * 100),
                          Money(rng.Uniform(1, 999) * 100),
                          "ps " + rng.Identifier(8)});
    }
  }

  // --- orders (o_shippriority is constant, exactly as in dbgen — this is
  // what lets the paper's "shippriority ends up in REGION" flaw reproduce) ---
  RelationData orders =
      MakeTable("orders", {kOrderKey, kCustKey, kOOrderStatus, kOTotalPrice,
                           kOOrderDate, kOOrderPriority, kOClerk,
                           kOShipPriority, kOComment});
  int num_clerks = std::max(1, scale.orders / 10);
  for (int i = 0; i < scale.orders; ++i) {
    char clerk[24];
    std::snprintf(clerk, sizeof(clerk), "Clerk#%05d",
                  static_cast<int>(rng.Uniform(0, num_clerks - 1)));
    static const char* kStatus[] = {"O", "F", "P"};
    orders.AppendRow({std::to_string(i),
                      std::to_string(rng.Uniform(0, scale.customers - 1)),
                      kStatus[rng.Uniform(0, 2)],
                      Money(rng.Uniform(10000, 9999999)),
                      DateString(static_cast<int>(rng.Uniform(0, 2400))),
                      kPriorities[rng.Uniform(0, 4)], clerk, "0",
                      "order " + rng.Identifier(10)});
  }

  // --- lineitem ---
  RelationData lineitem = MakeTable(
      "lineitem",
      {kOrderKey, kPartKey, kSuppKey, kLLineNumber, kLQuantity,
       kLExtendedPrice, kLDiscount, kLTax, kLReturnFlag, kLLineStatus,
       kLShipDate, kLCommitDate, kLReceiptDate, kLShipInstruct, kLShipMode,
       kLComment});
  std::vector<int> order_linecount(static_cast<size_t>(scale.orders), 0);
  for (int i = 0; i < scale.lineitems; ++i) {
    int o = static_cast<int>(rng.Uniform(0, scale.orders - 1));
    int line = ++order_linecount[static_cast<size_t>(o)];
    int p = static_cast<int>(rng.Uniform(0, scale.parts - 1));
    const std::vector<int>& sups = part_suppliers[static_cast<size_t>(p)];
    int s = sups[static_cast<size_t>(rng.Uniform(
        0, static_cast<int64_t>(sups.size()) - 1))];
    int qty = static_cast<int>(rng.Uniform(1, 50));
    // extendedprice = retailprice * quantity: an FD {partkey, quantity} ->
    // extendedprice holds by construction, as in real TPC-H.
    int64_t eprice = part_price[static_cast<size_t>(p)] * qty;
    int ship = static_cast<int>(rng.Uniform(0, 2400));
    lineitem.AppendRow(
        {std::to_string(o), std::to_string(p), std::to_string(s),
         std::to_string(line), std::to_string(qty), Money(eprice),
         "0.0" + std::to_string(rng.Uniform(0, 9)),
         "0.0" + std::to_string(rng.Uniform(0, 8)),
         rng.Chance(0.3) ? "R" : (rng.Chance(0.5) ? "A" : "N"),
         rng.Chance(0.5) ? "O" : "F", DateString(ship),
         DateString(ship + static_cast<int>(rng.Uniform(-20, 40))),
         DateString(ship + static_cast<int>(rng.Uniform(1, 30))),
         kInstructs[rng.Uniform(0, 3)], kModes[rng.Uniform(0, 6)],
         "line " + rng.Identifier(11)});
  }

  ds.tables = {region, nation, customer, supplier,
               part,   partsupp, orders,  lineitem};

  // Universal relation: every join is N:1 from the accumulating side, so the
  // row count stays equal to |lineitem|.
  ds.universal = DenormalizeAll(
      {lineitem, orders, customer, nation, region, partsupp, part, supplier},
      "tpch_universal");

  // Gold-standard schema for §8.3-style comparisons.
  std::vector<std::string> names(kNumAttrs);
  for (AttributeId a = 0; a < kNumAttrs; ++a) {
    names[static_cast<size_t>(a)] = AttrName(a);
  }
  ds.gold_schema = Schema(names);
  auto add = [&](const RelationData& t, std::vector<AttributeId> pk) {
    RelationSchema rel(t.name(), t.AttributesAsSet(kNumAttrs));
    AttributeSet key(kNumAttrs);
    for (AttributeId a : pk) key.Set(a);
    rel.set_primary_key(key);
    ds.gold_schema.AddRelation(std::move(rel));
  };
  add(region, {kRegionKey});
  add(nation, {kNationKey});
  add(customer, {kCustKey});
  add(supplier, {kSuppKey});
  add(part, {kPartKey});
  add(partsupp, {kPartKey, kSuppKey});
  add(orders, {kOrderKey});
  add(lineitem, {kOrderKey, kLLineNumber});
  return ds;
}

}  // namespace normalize
