// A MusicBrainz-like dataset generator (substitute for the MusicBrainz dump,
// see DESIGN.md): reproduces the link structure of the eleven core tables
// the paper joined — including the m:n associative tables
// (artist_credit_name, release_label, and the area-place fan-out) whose
// joins blow up the universal relation, which is why the paper capped the
// row count. The paper's Figure 4 experiment normalizes the universal
// relation and recovers this link structure around a new fact-table-like
// top relation.
#pragma once

#include <cstdint>
#include <vector>

#include "relation/relation_data.hpp"
#include "relation/schema.hpp"

namespace normalize {

struct MusicBrainzScale {
  int areas = 12;
  int artists = 120;
  int artist_credits = 160;
  int max_artists_per_credit = 2;
  int labels = 50;
  int places = 36;     // distributed over areas (multiple per area: m:n)
  int releases = 180;
  int max_labels_per_release = 2;
  int media = 280;
  int recordings = 800;
  int tracks = 1100;
  uint64_t seed = 11;

  MusicBrainzScale Scaled(double f) const;
};

struct MusicBrainzDataset {
  std::vector<RelationData> tables;  // area, artist, artist_credit,
                                     // artist_credit_name, label, place,
                                     // release, release_label, medium,
                                     // recording, track
  RelationData universal;
  Schema gold_schema;
};

MusicBrainzDataset GenerateMusicBrainzLike(const MusicBrainzScale& scale = {});

}  // namespace normalize
