#include "datagen/musicbrainz_like.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "datagen/datasets.hpp"

namespace normalize {

namespace {

enum Attr : AttributeId {
  kAreaKey = 0,
  kAreaName,
  kAreaType,
  kArtistKey,
  kArtistName,
  kArtistSortName,
  kArtistType,
  kAcKey,
  kAcName,
  kAcArtistCount,
  kAcnPosition,
  kAcnName,
  kLabelKey,
  kLabelName,
  kLabelType,
  kLabelCode,
  kLabelAreaKey,
  kPlaceKey,
  kPlaceName,
  kPlaceType,
  kReleaseKey,
  kReleaseName,
  kReleaseStatus,
  kReleaseYear,
  kCatalogNumber,
  kMediumKey,
  kMediumPosition,
  kMediumFormat,
  kRecordingKey,
  kRecordingName,
  kRecordingLength,
  kTrackKey,
  kTrackPosition,
  kTrackName,
  kTrackLength,
  kNumAttrs,
};

const char* AttrName(AttributeId a) {
  static const char* kNames[] = {
      "areakey",        "area_name",      "area_type",     "artistkey",
      "artist_name",    "artist_sortname", "artist_type",  "ackey",
      "ac_name",        "ac_artistcount", "acn_position",  "acn_name",
      "labelkey",       "label_name",     "label_type",    "label_code",
      "label_areakey",  "placekey",       "place_name",    "place_type",
      "releasekey",     "release_name",   "release_status", "release_year",
      "catalog_number", "mediumkey",      "medium_position", "medium_format",
      "recordingkey",   "recording_name", "recording_length", "trackkey",
      "track_position", "track_name",     "track_length"};
  return kNames[a];
}

RelationData MakeTable(const std::string& name,
                       std::vector<AttributeId> attrs) {
  std::vector<std::string> names;
  names.reserve(attrs.size());
  for (AttributeId a : attrs) names.emplace_back(AttrName(a));
  RelationData t(name, std::move(attrs), std::move(names));
  t.set_universe_size(kNumAttrs);
  return t;
}

}  // namespace

MusicBrainzScale MusicBrainzScale::Scaled(double f) const {
  MusicBrainzScale s = *this;
  s.artists = std::max(1, static_cast<int>(artists * f));
  s.artist_credits = std::max(1, static_cast<int>(artist_credits * f));
  s.labels = std::max(1, static_cast<int>(labels * f));
  s.places = std::max(1, static_cast<int>(places * f));
  s.releases = std::max(1, static_cast<int>(releases * f));
  s.media = std::max(1, static_cast<int>(media * f));
  s.recordings = std::max(1, static_cast<int>(recordings * f));
  s.tracks = std::max(1, static_cast<int>(tracks * f));
  return s;
}

MusicBrainzDataset GenerateMusicBrainzLike(const MusicBrainzScale& scale) {
  Rng rng(scale.seed);
  MusicBrainzDataset ds;

  static const char* kAreaTypes[] = {"Country", "City", "Subdivision"};
  static const char* kArtistTypes[] = {"Person", "Group", "Orchestra",
                                       "Choir"};
  static const char* kLabelTypes[] = {"Imprint", "Production",
                                      "Original Production", "Publisher"};
  static const char* kPlaceTypes[] = {"Venue", "Studio", "Stadium"};
  static const char* kStatuses[] = {"Official", "Promotion", "Bootleg"};
  static const char* kFormats[] = {"CD", "Vinyl", "Digital Media",
                                   "Cassette"};

  // --- area ---
  RelationData area = MakeTable("area", {kAreaKey, kAreaName, kAreaType});
  for (int i = 0; i < scale.areas; ++i) {
    area.AppendRow({std::to_string(i), "Area " + rng.Identifier(6),
                    kAreaTypes[rng.Uniform(0, 2)]});
  }

  // --- artist ---
  RelationData artist =
      MakeTable("artist", {kArtistKey, kArtistName, kArtistSortName,
                           kArtistType, kAreaKey});
  std::vector<std::string> artist_names(static_cast<size_t>(scale.artists));
  for (int i = 0; i < scale.artists; ++i) {
    std::string n = rng.Identifier(7);
    n[0] = static_cast<char>(n[0] - 'a' + 'A');
    artist_names[static_cast<size_t>(i)] = n;
    artist.AppendRow({std::to_string(i), n, n + ", The",
                      kArtistTypes[rng.Uniform(0, 3)],
                      std::to_string(rng.Uniform(0, scale.areas - 1))});
  }

  // --- artist_credit + artist_credit_name (m:n link) ---
  RelationData artist_credit =
      MakeTable("artist_credit", {kAcKey, kAcName, kAcArtistCount});
  RelationData acn = MakeTable(
      "artist_credit_name", {kAcKey, kAcnPosition, kArtistKey, kAcnName});
  for (int i = 0; i < scale.artist_credits; ++i) {
    int count = static_cast<int>(
        rng.Uniform(1, std::max(1, scale.max_artists_per_credit)));
    std::string credit_name;
    std::vector<int> used;
    for (int p = 0; p < count; ++p) {
      int a = static_cast<int>(rng.Uniform(0, scale.artists - 1));
      if (std::find(used.begin(), used.end(), a) != used.end()) continue;
      used.push_back(a);
      if (!credit_name.empty()) credit_name += " feat. ";
      credit_name += artist_names[static_cast<size_t>(a)];
    }
    artist_credit.AppendRow({std::to_string(i), credit_name,
                             std::to_string(used.size())});
    for (size_t p = 0; p < used.size(); ++p) {
      acn.AppendRow({std::to_string(i), std::to_string(p),
                     std::to_string(used[p]),
                     artist_names[static_cast<size_t>(used[p])]});
    }
  }

  // --- label ---
  RelationData label = MakeTable(
      "label", {kLabelKey, kLabelName, kLabelType, kLabelCode, kLabelAreaKey});
  for (int i = 0; i < scale.labels; ++i) {
    label.AppendRow({std::to_string(i), "Label " + rng.Identifier(6),
                     kLabelTypes[rng.Uniform(0, 3)],
                     std::to_string(10000 + i),
                     std::to_string(rng.Uniform(0, scale.areas - 1))});
  }

  // --- place (several per area: joining on areakey fans rows out m:n) ---
  RelationData place =
      MakeTable("place", {kPlaceKey, kPlaceName, kPlaceType, kAreaKey});
  for (int i = 0; i < scale.places; ++i) {
    place.AppendRow({std::to_string(i), "Place " + rng.Identifier(6),
                     kPlaceTypes[rng.Uniform(0, 2)],
                     std::to_string(i % scale.areas)});
  }

  // --- release + release_label (m:n link) ---
  RelationData release = MakeTable(
      "release", {kReleaseKey, kReleaseName, kAcKey, kReleaseStatus,
                  kReleaseYear});
  RelationData release_label =
      MakeTable("release_label", {kReleaseKey, kLabelKey, kCatalogNumber});
  for (int i = 0; i < scale.releases; ++i) {
    release.AppendRow({std::to_string(i), "Release " + rng.Identifier(8),
                       std::to_string(rng.Uniform(0, scale.artist_credits - 1)),
                       kStatuses[rng.Uniform(0, 2)],
                       std::to_string(rng.Uniform(1960, 2016))});
    int labels_for_release = static_cast<int>(
        rng.Uniform(1, std::max(1, scale.max_labels_per_release)));
    std::vector<int> used;
    for (int k = 0; k < labels_for_release; ++k) {
      int l = static_cast<int>(rng.Uniform(0, scale.labels - 1));
      if (std::find(used.begin(), used.end(), l) != used.end()) continue;
      used.push_back(l);
      release_label.AppendRow({std::to_string(i), std::to_string(l),
                               "CAT-" + std::to_string(i) + "-" +
                                   std::to_string(l)});
    }
  }

  // --- medium ---
  RelationData medium = MakeTable(
      "medium", {kMediumKey, kReleaseKey, kMediumPosition, kMediumFormat});
  std::vector<int> medium_release(static_cast<size_t>(scale.media));
  std::vector<int> release_medium_count(static_cast<size_t>(scale.releases), 0);
  for (int i = 0; i < scale.media; ++i) {
    int r = i < scale.releases
                ? i  // every release gets at least one medium
                : static_cast<int>(rng.Uniform(0, scale.releases - 1));
    medium_release[static_cast<size_t>(i)] = r;
    medium.AppendRow({std::to_string(i), std::to_string(r),
                      std::to_string(
                          ++release_medium_count[static_cast<size_t>(r)]),
                      kFormats[rng.Uniform(0, 3)]});
  }

  // --- recording ---
  RelationData recording = MakeTable(
      "recording", {kRecordingKey, kRecordingName, kRecordingLength});
  for (int i = 0; i < scale.recordings; ++i) {
    recording.AppendRow({std::to_string(i), "Song " + rng.Identifier(7),
                         std::to_string(rng.Uniform(90000, 480000))});
  }

  // --- track ---
  RelationData track = MakeTable(
      "track", {kTrackKey, kMediumKey, kRecordingKey, kTrackPosition,
                kTrackName, kTrackLength});
  std::vector<int> medium_track_count(static_cast<size_t>(scale.media), 0);
  for (int i = 0; i < scale.tracks; ++i) {
    int m = static_cast<int>(rng.Uniform(0, scale.media - 1));
    int rec = static_cast<int>(rng.Uniform(0, scale.recordings - 1));
    track.AppendRow({std::to_string(i), std::to_string(m),
                     std::to_string(rec),
                     std::to_string(
                         ++medium_track_count[static_cast<size_t>(m)]),
                     "Track " + rng.Identifier(6),
                     std::to_string(rng.Uniform(90000, 480000))});
  }

  ds.tables = {area,   artist,        artist_credit, acn,
               label,  place,         release,       release_label,
               medium, recording,     track};

  // Universal relation. Join order: 1:N fan-outs (acn, place, release_label)
  // multiply rows — the m:n blowup the paper mentions for MusicBrainz.
  ds.universal = DenormalizeAll(
      {track, medium, release, artist_credit, acn, artist, area, place,
       recording, release_label, label},
      "musicbrainz_universal");

  std::vector<std::string> names(kNumAttrs);
  for (AttributeId a = 0; a < kNumAttrs; ++a) {
    names[static_cast<size_t>(a)] = AttrName(a);
  }
  ds.gold_schema = Schema(names);
  auto add = [&](const RelationData& t, std::vector<AttributeId> pk) {
    RelationSchema rel(t.name(), t.AttributesAsSet(kNumAttrs));
    AttributeSet key(kNumAttrs);
    for (AttributeId a : pk) key.Set(a);
    rel.set_primary_key(key);
    ds.gold_schema.AddRelation(std::move(rel));
  };
  add(area, {kAreaKey});
  add(artist, {kArtistKey});
  add(artist_credit, {kAcKey});
  add(acn, {kAcKey, kAcnPosition});
  add(label, {kLabelKey});
  add(place, {kPlaceKey});
  add(release, {kReleaseKey});
  add(release_label, {kReleaseKey, kLabelKey});
  add(medium, {kMediumKey});
  add(recording, {kRecordingKey});
  add(track, {kTrackKey});
  return ds;
}

}  // namespace normalize
