// Random FD-set construction: arbitrary FD sets for exercising the naive and
// improved closure algorithms, and random sampling of discovered FD sets —
// the paper's Figure 2 experiment draws its inputs by sampling the 12M
// MusicBrainz FDs at a fixed attribute count.
#pragma once

#include <cstdint>

#include "fd/fd.hpp"

namespace normalize {

/// Generates `num_fds` random FDs over `num_attrs` attributes with LHS sizes
/// in [1, max_lhs]. The set is arbitrary: it is neither complete nor minimal
/// (suitable for the naive/improved algorithms, NOT for the optimized one).
FdSet GenerateRandomFdSet(int num_attrs, size_t num_fds, int max_lhs,
                          uint64_t seed);

/// Draws a uniform random sample of `n` FDs (without replacement) from
/// `source`. If n >= source.size(), returns a copy.
FdSet SampleFds(const FdSet& source, size_t n, uint64_t seed);

}  // namespace normalize
