// Position list indexes (PLIs, a.k.a. stripped partitions): for an attribute
// set X, the clusters of rows sharing the same X values, with singleton
// clusters stripped. PLIs power Tane's lattice checks, HyFD's validation and
// sampling, and UCC discovery.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/attribute_set.hpp"
#include "relation/relation_data.hpp"

namespace normalize {

class ThreadPool;

/// Row index within a relation instance.
using RowId = uint32_t;

/// A stripped partition: clusters of size >= 2.
class Pli {
 public:
  Pli() = default;
  explicit Pli(std::vector<std::vector<RowId>> clusters, size_t num_rows)
      : clusters_(std::move(clusters)), num_rows_(num_rows) {}

  /// Builds the PLI of one column from its dictionary codes.
  static Pli FromColumn(const Column& column);

  const std::vector<std::vector<RowId>>& clusters() const { return clusters_; }
  size_t num_clusters() const { return clusters_.size(); }
  size_t num_rows() const { return num_rows_; }

  /// Number of rows that appear in some cluster.
  size_t ClusteredRowCount() const;

  /// Tane's error measure e(X) = |clustered rows| - |clusters|, i.e. the
  /// minimum number of rows to remove to make X unique.
  size_t Error() const { return ClusteredRowCount() - num_clusters(); }

  /// True iff the partition has no clusters, i.e. X is a unique column
  /// combination (key candidate).
  bool IsUnique() const { return clusters_.empty(); }

  /// A probe vector mapping each row to its cluster index, or -1 for rows in
  /// no (stripped) cluster. Used as intersection input.
  std::vector<int32_t> AsProbeVector() const;

  /// Intersects this PLI with another partition given as a probe vector
  /// (cluster id per row, -1 = singleton). The result is the PLI of the
  /// combined attribute set.
  Pli Intersect(const std::vector<int32_t>& probe) const;
  /// Convenience: intersect with a column's codes (codes are never -1).
  Pli Intersect(const Column& column) const;

  /// True iff every cluster is constant in `codes`, i.e. the FD
  /// (this attributes) -> (codes' attribute) holds.
  bool Refines(const std::vector<ValueId>& codes) const;

  /// If Refines fails, returns one violating row pair (rows agreeing on this
  /// PLI's attributes but disagreeing on `codes`).
  std::optional<std::pair<RowId, RowId>> FindViolation(
      const std::vector<ValueId>& codes) const;

 private:
  std::vector<std::vector<RowId>> clusters_;
  size_t num_rows_ = 0;
};

/// Builds and caches single-column PLIs of a relation; computes set PLIs on
/// demand by intersection (smallest-first ordering).
///
/// Concurrency contract (phase discipline, not locks — see
/// common/thread_annotations.hpp): column_plis_ is written only during
/// construction, by disjoint-index tasks joined before the constructor
/// returns; afterwards the cache is immutable and any number of discovery /
/// merge-validation workers may read it concurrently. The const-only public
/// surface encodes the read phase; the capability analysis cannot express
/// the construction barrier, so it is documented here instead.
class PliCache {
 public:
  /// Builds all single-column PLIs, one task per column across `pool`
  /// (serially when null). Each column's PLI is computed independently, so
  /// the cache contents are identical for every thread count.
  explicit PliCache(const RelationData& data, ThreadPool* pool = nullptr);

  /// Adopts precomputed single-column PLIs (e.g. loaded from a checkpoint)
  /// instead of rebuilding them from the rows. `column_plis` must hold one
  /// PLI per column of `data`, in column order — the same layout the
  /// building constructor produces.
  PliCache(const RelationData& data, std::vector<Pli> column_plis)
      : data_(&data), column_plis_(std::move(column_plis)) {}

  const RelationData& data() const { return *data_; }
  int num_columns() const { return static_cast<int>(column_plis_.size()); }

  /// PLI of a single column (by relation-local column index).
  const Pli& ColumnPli(int column) const {
    return column_plis_[static_cast<size_t>(column)];
  }

  /// Computes (uncached) the PLI of a set of relation-local column indices
  /// by intersecting single-column PLIs, starting from the one with the
  /// fewest clustered rows.
  Pli BuildPli(const std::vector<int>& columns) const;

  /// Batch variant: builds the PLI of every column set, one task per set
  /// across `pool` (serially when null). results[i] corresponds to
  /// column_sets[i], so the output is deterministic for any thread count.
  std::vector<Pli> BuildPlis(const std::vector<std::vector<int>>& column_sets,
                             ThreadPool* pool = nullptr) const;

 private:
  const RelationData* data_;
  std::vector<Pli> column_plis_;
};

/// Intersects pairs[i].first with pairs[i].second for every pair, one task
/// per pair across `pool` (serially when null). Each intersection is a pure
/// function of its two inputs and results keep the input order, so the
/// output is bit-identical for any thread count. Used for Tane's
/// next-level batches.
std::vector<Pli> IntersectAll(
    const std::vector<std::pair<const Pli*, const Pli*>>& pairs,
    ThreadPool* pool = nullptr);

/// A delta-maintained single-column position index: code -> live rows, with
/// O(1) Insert/Erase through a per-row position table (erase swap-removes
/// inside the cluster, so cluster order is perturbed by deletions but fully
/// determined by the mutation history). The live engine (src/live/) keeps
/// one per column and applies per-batch cluster deltas instead of rebuilding
/// the partition; ToStripped() materializes the classic stripped Pli over
/// the live rows on demand.
///
/// Row ids are the owner's stable row ids (append-only, never reused); codes
/// are the column's dictionary codes. Unlike Pli, singleton clusters are
/// kept — the guided violation checks probe clusters of size 1 too.
class MutableColumnPli {
 public:
  /// Adds a live row with its code. The row must not be present.
  void Insert(RowId row, ValueId code);
  /// Removes a present row (O(1), swap-remove within its cluster).
  void Erase(RowId row);

  bool Contains(RowId row) const {
    return static_cast<size_t>(row) < row_code_.size() &&
           row_code_[row] >= 0;
  }
  /// The code of a present row.
  ValueId CodeOf(RowId row) const { return row_code_[row]; }

  /// Live rows sharing `code` (empty for unseen codes). Order is
  /// deterministic for a given mutation history but otherwise unspecified.
  const std::vector<RowId>& Cluster(ValueId code) const;
  /// Size of the cluster containing `row`; 0 when the row is absent.
  size_t ClusterSizeOf(RowId row) const {
    return Contains(row) ? clusters_[static_cast<size_t>(row_code_[row])].size()
                         : 0;
  }

  /// Number of distinct codes with at least one live row.
  size_t DistinctLiveValues() const { return distinct_values_; }
  size_t LiveRowCount() const { return live_rows_; }

  /// Canonical stripped partition over the live rows: clusters of size >= 2
  /// with ascending row ids, ordered by their smallest row id — identical to
  /// what a from-scratch rebuild over the same live rows would produce,
  /// whatever the mutation history. `num_rows` sizes the Pli's row universe
  /// (pass the owner's total row count including dead rows).
  Pli ToStripped(size_t num_rows) const;

 private:
  std::vector<std::vector<RowId>> clusters_;  // indexed by code
  /// Per row: its code, or -1 when absent/erased.
  std::vector<ValueId> row_code_;
  /// Per row: its index within clusters_[row_code_[row]].
  std::vector<uint32_t> row_pos_;
  size_t distinct_values_ = 0;
  size_t live_rows_ = 0;
};

}  // namespace normalize
