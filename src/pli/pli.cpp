#include "pli/pli.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/thread_pool.hpp"

namespace normalize {

Pli Pli::FromColumn(const Column& column) {
  std::vector<std::vector<RowId>> buckets(column.DistinctCount());
  for (size_t r = 0; r < column.size(); ++r) {
    buckets[static_cast<size_t>(column.code(r))].push_back(
        static_cast<RowId>(r));
  }
  std::vector<std::vector<RowId>> clusters;
  for (auto& b : buckets) {
    if (b.size() >= 2) clusters.push_back(std::move(b));
  }
  return Pli(std::move(clusters), column.size());
}

size_t Pli::ClusteredRowCount() const {
  size_t n = 0;
  for (const auto& c : clusters_) n += c.size();
  return n;
}

std::vector<int32_t> Pli::AsProbeVector() const {
  std::vector<int32_t> probe(num_rows_, -1);
  for (size_t ci = 0; ci < clusters_.size(); ++ci) {
    for (RowId r : clusters_[ci]) probe[r] = static_cast<int32_t>(ci);
  }
  return probe;
}

Pli Pli::Intersect(const std::vector<int32_t>& probe) const {
  std::vector<std::vector<RowId>> result;
  std::unordered_map<int32_t, std::vector<RowId>> groups;
  for (const auto& cluster : clusters_) {
    groups.clear();
    for (RowId r : cluster) {
      int32_t p = probe[r];
      if (p < 0) continue;  // singleton in the other partition
      groups[p].push_back(r);
    }
    for (auto& [p, rows] : groups) {
      if (rows.size() >= 2) result.push_back(std::move(rows));
    }
  }
  return Pli(std::move(result), num_rows_);
}

Pli Pli::Intersect(const Column& column) const {
  std::vector<std::vector<RowId>> result;
  std::unordered_map<int32_t, std::vector<RowId>> groups;
  for (const auto& cluster : clusters_) {
    groups.clear();
    for (RowId r : cluster) groups[column.code(r)].push_back(r);
    for (auto& [p, rows] : groups) {
      if (rows.size() >= 2) result.push_back(std::move(rows));
    }
  }
  return Pli(std::move(result), num_rows_);
}

bool Pli::Refines(const std::vector<ValueId>& codes) const {
  for (const auto& cluster : clusters_) {
    ValueId first = codes[cluster[0]];
    for (size_t i = 1; i < cluster.size(); ++i) {
      if (codes[cluster[i]] != first) return false;
    }
  }
  return true;
}

std::optional<std::pair<RowId, RowId>> Pli::FindViolation(
    const std::vector<ValueId>& codes) const {
  for (const auto& cluster : clusters_) {
    ValueId first = codes[cluster[0]];
    for (size_t i = 1; i < cluster.size(); ++i) {
      if (codes[cluster[i]] != first) {
        return std::make_pair(cluster[0], cluster[i]);
      }
    }
  }
  return std::nullopt;
}

PliCache::PliCache(const RelationData& data, ThreadPool* pool)
    : data_(&data) {
  column_plis_.resize(static_cast<size_t>(data.num_columns()));
  ParallelFor(pool, column_plis_.size(), [this, &data](size_t c) {
    column_plis_[c] = Pli::FromColumn(data.column(static_cast<int>(c)));
  });
}

Pli PliCache::BuildPli(const std::vector<int>& columns) const {
  if (columns.empty()) {
    // The empty attribute set groups all rows into one cluster.
    std::vector<std::vector<RowId>> clusters;
    if (data_->num_rows() >= 2) {
      std::vector<RowId> all(data_->num_rows());
      for (size_t r = 0; r < all.size(); ++r) all[r] = static_cast<RowId>(r);
      clusters.push_back(std::move(all));
    }
    return Pli(std::move(clusters), data_->num_rows());
  }
  // Start from the most selective column (fewest clustered rows).
  std::vector<int> order = columns;
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    return ColumnPli(a).ClusteredRowCount() < ColumnPli(b).ClusteredRowCount();
  });
  Pli pli = ColumnPli(order[0]);
  for (size_t i = 1; i < order.size() && !pli.IsUnique(); ++i) {
    pli = pli.Intersect(data_->column(order[i]));
  }
  return pli;
}

std::vector<Pli> PliCache::BuildPlis(
    const std::vector<std::vector<int>>& column_sets, ThreadPool* pool) const {
  std::vector<Pli> results(column_sets.size());
  ParallelFor(pool, column_sets.size(),
              [this, &column_sets, &results](size_t i) {
                results[i] = BuildPli(column_sets[i]);
              });
  return results;
}

std::vector<Pli> IntersectAll(
    const std::vector<std::pair<const Pli*, const Pli*>>& pairs,
    ThreadPool* pool) {
  std::vector<Pli> results(pairs.size());
  ParallelFor(pool, pairs.size(), [&pairs, &results](size_t i) {
    results[i] = pairs[i].first->Intersect(pairs[i].second->AsProbeVector());
  });
  return results;
}

}  // namespace normalize
