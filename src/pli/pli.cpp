#include "pli/pli.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/thread_pool.hpp"

namespace normalize {

Pli Pli::FromColumn(const Column& column) {
  std::vector<std::vector<RowId>> buckets(column.DistinctCount());
  for (size_t r = 0; r < column.size(); ++r) {
    buckets[static_cast<size_t>(column.code(r))].push_back(
        static_cast<RowId>(r));
  }
  std::vector<std::vector<RowId>> clusters;
  for (auto& b : buckets) {
    if (b.size() >= 2) clusters.push_back(std::move(b));
  }
  return Pli(std::move(clusters), column.size());
}

size_t Pli::ClusteredRowCount() const {
  size_t n = 0;
  for (const auto& c : clusters_) n += c.size();
  return n;
}

std::vector<int32_t> Pli::AsProbeVector() const {
  std::vector<int32_t> probe(num_rows_, -1);
  for (size_t ci = 0; ci < clusters_.size(); ++ci) {
    for (RowId r : clusters_[ci]) probe[r] = static_cast<int32_t>(ci);
  }
  return probe;
}

namespace {

// Shared grouping core of the two Intersect overloads. Group keys are dense
// non-negative ids (probe cluster indices or dictionary codes), so a flat
// slot table replaces the per-cluster hash map (HyFD's original trick);
// `touched` undoes the slot writes between clusters and `scratch` recycles
// row buffers, cutting allocation churn on large relations. Emission order
// is first-touch order within each cluster — deterministic, unlike the
// former unordered_map iteration.
template <typename KeyOf>
Pli IntersectClusters(const std::vector<std::vector<RowId>>& clusters,
                      size_t num_rows, size_t num_groups, const KeyOf& key_of) {
  std::vector<std::vector<RowId>> result;
  std::vector<int32_t> slot_of_group(num_groups, -1);
  std::vector<std::vector<RowId>> scratch;
  std::vector<int32_t> touched;
  for (const auto& cluster : clusters) {
    touched.clear();
    int32_t used = 0;
    for (RowId r : cluster) {
      int32_t key = key_of(r);
      if (key < 0) continue;  // singleton in the other partition
      int32_t slot = slot_of_group[static_cast<size_t>(key)];
      if (slot < 0) {
        slot = used++;
        slot_of_group[static_cast<size_t>(key)] = slot;
        touched.push_back(key);
        if (static_cast<size_t>(slot) == scratch.size()) scratch.emplace_back();
      }
      scratch[static_cast<size_t>(slot)].push_back(r);
    }
    for (int32_t slot = 0; slot < used; ++slot) {
      auto& rows = scratch[static_cast<size_t>(slot)];
      if (rows.size() >= 2) result.push_back(std::move(rows));
      rows.clear();
    }
    for (int32_t key : touched) slot_of_group[static_cast<size_t>(key)] = -1;
  }
  return Pli(std::move(result), num_rows);
}

}  // namespace

Pli Pli::Intersect(const std::vector<int32_t>& probe) const {
  int32_t num_groups = 0;
  for (int32_t p : probe) num_groups = std::max(num_groups, p + 1);
  return IntersectClusters(clusters_, num_rows_,
                           static_cast<size_t>(num_groups),
                           [&probe](RowId r) { return probe[r]; });
}

Pli Pli::Intersect(const Column& column) const {
  // Dictionary codes are dense in [0, DistinctCount) and never negative.
  return IntersectClusters(
      clusters_, num_rows_, column.DistinctCount(),
      [&column](RowId r) { return static_cast<int32_t>(column.code(r)); });
}

bool Pli::Refines(const std::vector<ValueId>& codes) const {
  for (const auto& cluster : clusters_) {
    ValueId first = codes[cluster[0]];
    for (size_t i = 1; i < cluster.size(); ++i) {
      if (codes[cluster[i]] != first) return false;
    }
  }
  return true;
}

std::optional<std::pair<RowId, RowId>> Pli::FindViolation(
    const std::vector<ValueId>& codes) const {
  for (const auto& cluster : clusters_) {
    ValueId first = codes[cluster[0]];
    for (size_t i = 1; i < cluster.size(); ++i) {
      if (codes[cluster[i]] != first) {
        return std::make_pair(cluster[0], cluster[i]);
      }
    }
  }
  return std::nullopt;
}

PliCache::PliCache(const RelationData& data, ThreadPool* pool)
    : data_(&data) {
  column_plis_.resize(static_cast<size_t>(data.num_columns()));
  // A cancelled dispatch leaves default-constructed slots, which read as
  // unique columns. That is only reachable when the pool's cancellation
  // token already fired, and every discovery/merge loop polls its RunContext
  // before trusting PLI answers, so the stale slots are never consumed.
  (void)ParallelFor(pool, column_plis_.size(), [this, &data](size_t c) {
    column_plis_[c] = Pli::FromColumn(data.column(static_cast<int>(c)));
  });
}

Pli PliCache::BuildPli(const std::vector<int>& columns) const {
  if (columns.empty()) {
    // The empty attribute set groups all rows into one cluster.
    std::vector<std::vector<RowId>> clusters;
    if (data_->num_rows() >= 2) {
      std::vector<RowId> all(data_->num_rows());
      for (size_t r = 0; r < all.size(); ++r) all[r] = static_cast<RowId>(r);
      clusters.push_back(std::move(all));
    }
    return Pli(std::move(clusters), data_->num_rows());
  }
  // Start from the most selective column (fewest clustered rows).
  std::vector<int> order = columns;
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    return ColumnPli(a).ClusteredRowCount() < ColumnPli(b).ClusteredRowCount();
  });
  Pli pli = ColumnPli(order[0]);
  for (size_t i = 1; i < order.size() && !pli.IsUnique(); ++i) {
    pli = pli.Intersect(data_->column(order[i]));
  }
  return pli;
}

std::vector<Pli> PliCache::BuildPlis(
    const std::vector<std::vector<int>>& column_sets, ThreadPool* pool) const {
  std::vector<Pli> results(column_sets.size());
  // See the constructor: a cancelled dispatch leaves default slots, and
  // callers re-check their RunContext before consuming the batch.
  (void)ParallelFor(pool, column_sets.size(),
                    [this, &column_sets, &results](size_t i) {
                      results[i] = BuildPli(column_sets[i]);
                    });
  return results;
}

std::vector<Pli> IntersectAll(
    const std::vector<std::pair<const Pli*, const Pli*>>& pairs,
    ThreadPool* pool) {
  std::vector<Pli> results(pairs.size());
  // See PliCache::PliCache: a cancelled dispatch leaves default slots, and
  // Tane's level loop re-checks its RunContext before consuming the batch.
  (void)ParallelFor(pool, pairs.size(), [&pairs, &results](size_t i) {
    results[i] = pairs[i].first->Intersect(pairs[i].second->AsProbeVector());
  });
  return results;
}

void MutableColumnPli::Insert(RowId row, ValueId code) {
  size_t r = static_cast<size_t>(row);
  size_t c = static_cast<size_t>(code);
  if (r >= row_code_.size()) {
    row_code_.resize(r + 1, -1);
    row_pos_.resize(r + 1, 0);
  }
  if (c >= clusters_.size()) clusters_.resize(c + 1);
  std::vector<RowId>& cluster = clusters_[c];
  if (cluster.empty()) ++distinct_values_;
  row_code_[r] = code;
  row_pos_[r] = static_cast<uint32_t>(cluster.size());
  cluster.push_back(row);
  ++live_rows_;
}

void MutableColumnPli::Erase(RowId row) {
  size_t r = static_cast<size_t>(row);
  std::vector<RowId>& cluster = clusters_[static_cast<size_t>(row_code_[r])];
  uint32_t pos = row_pos_[r];
  RowId moved = cluster.back();
  cluster[pos] = moved;
  row_pos_[moved] = pos;
  cluster.pop_back();
  if (cluster.empty()) --distinct_values_;
  row_code_[r] = -1;
  --live_rows_;
}

const std::vector<RowId>& MutableColumnPli::Cluster(ValueId code) const {
  static const std::vector<RowId> kEmpty;
  size_t c = static_cast<size_t>(code);
  return c < clusters_.size() ? clusters_[c] : kEmpty;
}

Pli MutableColumnPli::ToStripped(size_t num_rows) const {
  std::vector<std::vector<RowId>> stripped;
  for (const std::vector<RowId>& cluster : clusters_) {
    if (cluster.size() < 2) continue;
    std::vector<RowId> sorted = cluster;
    std::sort(sorted.begin(), sorted.end());
    stripped.push_back(std::move(sorted));
  }
  // Canonical order: by smallest member, independent of mutation history.
  std::sort(stripped.begin(), stripped.end(),
            [](const std::vector<RowId>& a, const std::vector<RowId>& b) {
              return a.front() < b.front();
            });
  return Pli(std::move(stripped), num_rows);
}

}  // namespace normalize
