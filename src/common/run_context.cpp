#include "common/run_context.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace normalize {

namespace {

/// splitmix64 — a tiny, well-mixed generator; enough for fault scheduling
/// and cheaper than dragging a full Rng behind the injector's mutex.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void FaultInjector::FailNthRead(uint64_t nth, Status error) {
  MutexLock lock(mutex_);
  read_faults_.push_back(ReadFault{nth, std::move(error), 0});
}

void FaultInjector::ShortNthRead(uint64_t nth, size_t max_bytes) {
  MutexLock lock(mutex_);
  read_faults_.push_back(ReadFault{nth, Status::OK(), max_bytes});
}

void FaultInjector::TruncateAtOffset(uint64_t offset) {
  MutexLock lock(mutex_);
  truncate_offset_ = offset;
}

void FaultInjector::FailReadsRandomly(uint64_t seed, double probability,
                                      Status error) {
  MutexLock lock(mutex_);
  rng_state_ = seed;
  read_error_probability_ = probability;
  random_read_error_ = std::move(error);
}

void FaultInjector::InterruptAtNthCheck(uint64_t nth, StatusCode code) {
  interrupt_at_check_.store(nth, std::memory_order_relaxed);
  interrupt_code_.store(code, std::memory_order_relaxed);
  interrupt_latched_.store(false, std::memory_order_relaxed);
}

Status FaultInjector::OnRead(uint64_t offset, size_t* len) {
  uint64_t n = reads_.fetch_add(1, std::memory_order_relaxed) + 1;
  MutexLock lock(mutex_);
  if (truncate_offset_.has_value()) {
    if (offset >= *truncate_offset_) {
      *len = 0;  // injected EOF
      injected_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    *len = std::min<uint64_t>(*len, *truncate_offset_ - offset);
  }
  for (const ReadFault& fault : read_faults_) {
    if (fault.nth != n) continue;
    injected_.fetch_add(1, std::memory_order_relaxed);
    if (!fault.error.ok()) return fault.error;
    *len = std::min(*len, fault.max_bytes);
  }
  if (read_error_probability_ > 0.0) {
    double u = static_cast<double>(NextRandom(&rng_state_) >> 11) *
               (1.0 / 9007199254740992.0);  // uniform in [0, 1)
    if (u < read_error_probability_) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      return random_read_error_;
    }
  }
  return Status::OK();
}

Status FaultInjector::OnCheck() {
  uint64_t n = checks_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t at = interrupt_at_check_.load(std::memory_order_relaxed);
  bool fire = interrupt_latched_.load(std::memory_order_relaxed);
  if (!fire && at != 0 && n >= at) {
    interrupt_latched_.store(true, std::memory_order_relaxed);
    injected_.fetch_add(1, std::memory_order_relaxed);
    fire = true;
  }
  if (!fire) return Status::OK();
  return Status(interrupt_code_.load(std::memory_order_relaxed),
                "injected interruption at context check #" +
                    std::to_string(at));
}

double RetryPolicy::BackoffMillis(int retry_index) const {
  double delay = initial_backoff_ms *
                 std::pow(backoff_multiplier, static_cast<double>(retry_index));
  return std::min(delay, max_backoff_ms);
}

double RetryPolicy::JitteredBackoffMillis(int retry_index, Rng* rng) const {
  double delay = BackoffMillis(retry_index);
  if (rng == nullptr) return delay;
  double fraction = std::clamp(jitter, 0.0, 1.0);
  if (fraction <= 0.0) return delay;
  return delay * (1.0 - fraction * rng->UniformReal());
}

Status RunContext::Check() const {
  if (faults != nullptr) {
    Status injected = faults->OnCheck();
    if (!injected.ok()) {
      // An injected cancel behaves like the real thing: trip the shared
      // token so the ThreadPool rejects post-cancellation submissions too.
      if (injected.code() == StatusCode::kCancelled) cancel.Cancel();
      return injected;
    }
  }
  if (cancel.IsCancelled()) return Status::Cancelled("run cancelled");
  if (deadline.Expired()) return Status::DeadlineExceeded("deadline expired");
  return Status::OK();
}

}  // namespace normalize
