// An annotated mutex + RAII lock, the capability types the thread-safety
// analysis (common/thread_annotations.hpp) reasons about. Thin wrappers over
// std::mutex / std::unique_lock: libstdc++'s std::mutex carries no capability
// attributes, so locking it directly is invisible to Clang's -Wthread-safety;
// routing every lock through these types makes the discipline checkable.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace normalize {

/// A standard mutex, annotated as a capability.
class NORMALIZE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NORMALIZE_ACQUIRE() { mu_.lock(); }
  void Unlock() NORMALIZE_RELEASE() { mu_.unlock(); }
  bool TryLock() NORMALIZE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over a Mutex, annotated as a scoped capability. Also the
/// condition-variable wait handle: Wait() atomically releases and reacquires
/// the mutex around the blocking wait, so from the analysis's point of view
/// the capability is held throughout — which matches the caller's view, as
/// the lock is held whenever the caller's code runs.
class NORMALIZE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NORMALIZE_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() NORMALIZE_RELEASE() {}  // unique_lock unlocks

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// One blocking wait on `cv` (releases the mutex while blocked, holds it
  /// again on return). Callers re-test their predicate in a loop, which
  /// keeps the predicate's guarded-field reads inside the annotated caller
  /// instead of inside an opaque lambda:
  ///   while (!ready_) lock.Wait(cv_);
  void Wait(std::condition_variable& cv) { cv.wait(lock_); }

  /// Like Wait() but bounded: returns false if `timeout` elapsed before a
  /// notification, true otherwise. Deadline-bounded admission queues use
  /// this so a caller's wait-for-space never outlives its request deadline:
  ///   while (full_ && !deadline.Expired())
  ///     lock.WaitFor(cv_, std::chrono::milliseconds(5));
  template <class Rep, class Period>
  bool WaitFor(std::condition_variable& cv,
               const std::chrono::duration<Rep, Period>& timeout) {
    return cv.wait_for(lock_, timeout) == std::cv_status::no_timeout;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace normalize
