#include "common/byte_source.hpp"

#include <algorithm>
#include <cstring>

namespace normalize {

Result<size_t> FileByteSource::Read(char* buf, size_t len) {
  if (!in_.is_open()) return Status::IoError("cannot open file: " + path_);
  if (len == 0 || in_.eof()) return size_t{0};
  in_.read(buf, static_cast<std::streamsize>(len));
  std::streamsize got = in_.gcount();
  if (got <= 0) {
    if (in_.eof()) return size_t{0};
    return Status::IoError("read failed: " + path_);
  }
  return static_cast<size_t>(got);
}

Result<size_t> StringByteSource::Read(char* buf, size_t len) {
  size_t take = std::min(len, content_.size() - pos_);
  if (take > 0) {
    std::memcpy(buf, content_.data() + pos_, take);
    pos_ += take;
  }
  return take;
}

Result<size_t> FaultInjectingByteSource::Read(char* buf, size_t len) {
  size_t want = len;
  NORMALIZE_RETURN_IF_ERROR(faults_->OnRead(offset_, &want));
  if (want == 0) return size_t{0};  // injected truncation
  auto got = inner_->Read(buf, want);
  if (got.ok()) offset_ += *got;
  return got;
}

}  // namespace normalize
