// A small fixed-size thread pool shared by every parallel phase of the
// pipeline: the closure algorithms' FD loops (paper §4: "All three closure
// algorithms can easily be parallelized by splitting the FD-loops to
// different worker threads"), PLI building and batch intersection, HyFD's
// per-level candidate validation, and Tane's level expansion.
//
// The pool can carry a CancellationToken (run_context.hpp): once the token
// is cancelled, Submit() rejects new tasks fast with kCancelled — they
// neither run nor vanish silently — and ParallelFor() stops dispatching
// further chunks and reports kCancelled. Tasks already enqueued still run
// (they are expected to poll the RunContext cooperatively).
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <optional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/result.hpp"
#include "common/run_context.hpp"
#include "common/thread_annotations.hpp"

namespace normalize {

/// Fixed-size pool executing std::function tasks FIFO.
class ThreadPool {
 public:
  /// `num_threads <= 0` selects the hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Installs the token consulted by Submit/ParallelFor. Replacing or
  /// clearing it is safe between parallel regions.
  void SetCancellation(CancellationToken token) NORMALIZE_EXCLUDES(mutex_);
  void ClearCancellation() NORMALIZE_EXCLUDES(mutex_);

  /// True once an installed token has been cancelled.
  bool cancelled() const NORMALIZE_EXCLUDES(mutex_);

  /// Enqueues a task; the returned future resolves when it has run. Fails
  /// fast with kCancelled once the pool's cancellation token is cancelled.
  Result<std::future<void>> Submit(std::function<void()> task)
      NORMALIZE_EXCLUDES(mutex_);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// dispatched iterations finished. Iterations are chunked to limit queue
  /// overhead. Returns kCancelled if cancellation prevented some (or all)
  /// chunks from being dispatched — callers must then treat the iteration
  /// space as incompletely covered.
  Status ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      NORMALIZE_EXCLUDES(mutex_);

 private:
  void WorkerLoop() NORMALIZE_EXCLUDES(mutex_);

  // Locking contract: mutex_ guards the task queue and every field the
  // workers share with the submitting thread; cv_ signals queue/stop
  // transitions made under mutex_. The workers_ vector itself is written
  // only in the constructor and joined in the destructor (no concurrent
  // access), so it carries no capability.
  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> tasks_ NORMALIZE_GUARDED_BY(mutex_);
  bool stopping_ NORMALIZE_GUARDED_BY(mutex_) = false;
  std::optional<CancellationToken> cancellation_ NORMALIZE_GUARDED_BY(mutex_);
};

/// Resolves a thread-count knob to an actual worker count: values <= 0
/// select the hardware concurrency (at least 1), everything else passes
/// through. `1` therefore always means "serial".
int ResolveThreadCount(int threads);

/// Runs fn(i) for i in [0, n): across `pool` when non-null, else serially on
/// the calling thread. Lets call sites share one loop body between the
/// serial and parallel paths. Propagates ParallelFor's kCancelled (the
/// serial path always completes and returns OK).
Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<void(size_t)>& fn);

}  // namespace normalize
