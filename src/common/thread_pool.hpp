// A small fixed-size thread pool shared by every parallel phase of the
// pipeline: the closure algorithms' FD loops (paper §4: "All three closure
// algorithms can easily be parallelized by splitting the FD-loops to
// different worker threads"), PLI building and batch intersection, HyFD's
// per-level candidate validation, and Tane's level expansion.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace normalize {

/// Fixed-size pool executing std::function tasks FIFO.
class ThreadPool {
 public:
  /// `num_threads <= 0` selects the hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; the returned future resolves when it has run.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and blocks until all
  /// iterations finished. Iterations are chunked to limit queue overhead.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Resolves a thread-count knob to an actual worker count: values <= 0
/// select the hardware concurrency (at least 1), everything else passes
/// through. `1` therefore always means "serial".
int ResolveThreadCount(int threads);

/// Runs fn(i) for i in [0, n): across `pool` when non-null, else serially on
/// the calling thread. Lets call sites share one loop body between the
/// serial and parallel paths.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace normalize
