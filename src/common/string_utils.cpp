#include "common/string_utils.hpp"

#include <cctype>
#include <cstdio>

namespace normalize {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string PadRight(std::string_view s, size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string PadLeft(std::string_view s, size_t width) {
  if (s.size() >= width) return std::string(s.substr(0, width));
  std::string out(width - s.size(), ' ');
  out += s;
  return out;
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  }
  return buf;
}

std::string FormatCount(int64_t n) {
  std::string digits = std::to_string(n);
  bool negative = !digits.empty() && digits[0] == '-';
  std::string body = negative ? digits.substr(1) : digits;
  std::string out;
  int count = 0;
  for (auto it = body.rbegin(); it != body.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace normalize
