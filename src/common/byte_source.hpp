// ByteSource: the byte-stream seam under the CSV readers. Production code
// reads files through FileByteSource; tests substitute StringByteSource or
// wrap any source in FaultInjectingByteSource to produce short reads,
// transient errors, and truncation at chosen byte offsets — which is how the
// ingest retry and degradation paths are exercised deterministically.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "common/result.hpp"
#include "common/run_context.hpp"

namespace normalize {

/// A pull-based byte stream. Read() returns the number of bytes produced;
/// 0 means end of input. Short reads (fewer bytes than requested) are legal
/// at any point, exactly like POSIX read(2) — consumers must loop.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Reads up to `len` bytes into `buf`; returns the count, 0 at EOF.
  virtual Result<size_t> Read(char* buf, size_t len) = 0;

  /// Origin for error messages (a path, "<string>", ...).
  virtual std::string name() const = 0;
};

/// Streams a file. Construction opens it; a failed open surfaces as
/// kIoError from the first Read() call.
class FileByteSource final : public ByteSource {
 public:
  explicit FileByteSource(std::string path)
      : path_(std::move(path)), in_(path_, std::ios::binary) {}

  Result<size_t> Read(char* buf, size_t len) override;
  std::string name() const override { return path_; }

 private:
  std::string path_;
  std::ifstream in_;
};

/// Streams an in-memory string (tests and the ReadString code paths).
class StringByteSource final : public ByteSource {
 public:
  explicit StringByteSource(std::string content)
      : content_(std::move(content)) {}

  Result<size_t> Read(char* buf, size_t len) override;
  std::string name() const override { return "<string>"; }

 private:
  std::string content_;
  size_t pos_ = 0;
};

/// Decorator consulting a FaultInjector before every read: the injector may
/// fail the read, shorten it, or truncate the stream at a byte offset.
/// Neither pointer is owned; both must outlive the source.
class FaultInjectingByteSource final : public ByteSource {
 public:
  FaultInjectingByteSource(ByteSource* inner, FaultInjector* faults)
      : inner_(inner), faults_(faults) {}

  Result<size_t> Read(char* buf, size_t len) override;
  std::string name() const override { return inner_->name(); }

 private:
  ByteSource* inner_;
  FaultInjector* faults_;
  uint64_t offset_ = 0;
};

}  // namespace normalize
