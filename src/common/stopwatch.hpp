// Wall-clock timing helper used by the benchmark harnesses and the
// normalizer's per-component statistics (paper Table 3).
#pragma once

#include <chrono>

namespace normalize {

/// Measures elapsed wall-clock time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace normalize
