// Wall-clock timing helper used by the benchmark harnesses and the
// normalizer's per-component statistics (paper Table 3), plus a lightweight
// per-phase metrics accumulator (wall times + counters) that the discovery
// algorithms fill and normalize/report renders as a phase breakdown.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace normalize {

/// Measures elapsed wall-clock time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Ordered accumulator of named phases, each with a total wall time and an
/// item counter (candidates validated, PLIs built, comparisons sampled, …).
/// Phases keep first-recording order, so reports read in pipeline order.
/// Not thread-safe: record from the orchestrating thread only (wrap whole
/// parallel regions, not per-task work).
class PhaseMetrics {
 public:
  struct Phase {
    std::string name;
    double seconds = 0.0;
    uint64_t count = 0;
  };

  /// Accumulates `seconds` and `count` into the phase named `name`.
  void Record(std::string_view name, double seconds, uint64_t count = 0) {
    Phase& phase = FindOrAdd(name);
    phase.seconds += seconds;
    phase.count += count;
  }

  const std::vector<Phase>& phases() const { return phases_; }
  bool empty() const { return phases_.empty(); }
  void Clear() { phases_.clear(); }

  const Phase* Find(std::string_view name) const {
    for (const Phase& phase : phases_) {
      if (phase.name == name) return &phase;
    }
    return nullptr;
  }

  /// Appends every phase of `other`, name-prefixed (e.g. "discovery/"),
  /// accumulating into same-named phases if present.
  void MergeFrom(const PhaseMetrics& other, const std::string& prefix = "") {
    for (const Phase& phase : other.phases_) {
      Record(prefix + phase.name, phase.seconds, phase.count);
    }
  }

 private:
  Phase& FindOrAdd(std::string_view name) {
    for (Phase& phase : phases_) {
      if (phase.name == name) return phase;
    }
    phases_.emplace_back();
    phases_.back().name = std::string(name);
    return phases_.back();
  }

  std::vector<Phase> phases_;
};

/// RAII phase timer: adds the scope's elapsed wall time (and an optional
/// item count set via Stop()) to a PhaseMetrics entry on destruction.
class PhaseTimer {
 public:
  PhaseTimer(PhaseMetrics* metrics, std::string_view name)
      : metrics_(metrics), name_(name) {}
  ~PhaseTimer() { Stop(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Records now instead of at scope exit; later calls are no-ops.
  void Stop(uint64_t count = 0) {
    if (metrics_ == nullptr) return;
    metrics_->Record(name_, watch_.ElapsedSeconds(), count);
    metrics_ = nullptr;
  }

 private:
  PhaseMetrics* metrics_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace normalize
