// Deterministic pseudo-random number generation for the data generators and
// property tests. All randomness in the library flows through Rng so that
// every experiment is reproducible from a seed.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace normalize {

/// A seeded 64-bit Mersenne-twister wrapper with the sampling helpers the
/// generators need.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t Uniform(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }
  /// Uniform double in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }
  /// Bernoulli draw.
  bool Chance(double p) { return UniformReal() < p; }

  /// Zipf-like skewed index in [0, n): smaller indices are more likely.
  int64_t Skewed(int64_t n, double skew = 1.2) {
    if (n <= 1) return 0;
    double u = UniformReal();
    double x = std::pow(u, skew) * static_cast<double>(n);
    int64_t idx = static_cast<int64_t>(x);
    return std::min(idx, n - 1);
  }

  /// Picks a random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[static_cast<size_t>(
        Uniform(0, static_cast<int64_t>(v.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Random lowercase identifier of the given length.
  std::string Identifier(int length) {
    std::string s;
    s.reserve(static_cast<size_t>(length));
    for (int i = 0; i < length; ++i) {
      s.push_back(static_cast<char>('a' + Uniform(0, 25)));
    }
    return s;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace normalize
