// Status: lightweight error propagation without exceptions, in the style of
// the RocksDB / Arrow status objects. Public library entry points return
// Status (or Result<T>, see result.hpp) instead of throwing.
#pragma once

#include <string>
#include <utility>

namespace normalize {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kUnimplemented,
  /// An explicit memory/size budget would be exceeded (e.g. a single CSV
  /// record larger than the ingest buffer).
  kResourceExhausted,
  /// Cooperative cancellation via CancellationToken (run_context.hpp).
  kCancelled,
  /// A RunContext deadline expired; partial results may accompany this code.
  kDeadlineExceeded,
  /// Transient failure (e.g. an injected or flaky I/O error) — safe to retry.
  kUnavailable,
  /// Stored state is corrupt or unreadable: bad magic, unsupported format
  /// version, CRC mismatch, or truncation. Unlike kIoError the bytes were
  /// read fine — they just cannot be trusted. Not retryable.
  kDataLoss,
};

/// Returns a short human-readable name for a status code
/// (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case.
///
/// [[nodiscard]] on the class makes every API returning a Status by value
/// warn when the caller drops it on the floor — and the build promotes that
/// warning to an error (-Werror=unused-result), so a swallowed error status
/// cannot land silently. Intentional discards must spell out
/// `(void)expr;  // why` at the call site.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// True for the two cooperative-interruption codes a RunContext can raise.
/// Stages treat these differently from real errors: they stop early and
/// return sound partial results instead of failing the pipeline.
inline bool IsInterruption(StatusCode code) {
  return code == StatusCode::kCancelled ||
         code == StatusCode::kDeadlineExceeded;
}

/// Early-return helper: propagate a non-OK status to the caller.
#define NORMALIZE_RETURN_IF_ERROR(expr)              \
  do {                                               \
    ::normalize::Status _st = (expr);                \
    if (!_st.ok()) return _st;                       \
  } while (false)

}  // namespace normalize
