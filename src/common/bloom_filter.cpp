#include "common/bloom_filter.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace normalize {

uint64_t HashString64(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

// Derives the i-th probe position via double hashing (Kirsch-Mitzenmacher).
inline size_t ProbePosition(uint64_t hash, int i, size_t num_bits) {
  uint64_t h1 = hash;
  uint64_t h2 = (hash >> 33) | (hash << 31);
  if (h2 == 0) h2 = 0x9e3779b97f4a7c15ull;
  return (h1 + static_cast<uint64_t>(i) * h2) % num_bits;
}

}  // namespace

BloomFilter::BloomFilter(size_t expected_items, double fpp) {
  expected_items = std::max<size_t>(expected_items, 1);
  fpp = std::clamp(fpp, 1e-9, 0.5);
  // m = -n ln(p) / (ln 2)^2 ; k = (m/n) ln 2
  double ln2 = std::log(2.0);
  double m = -static_cast<double>(expected_items) * std::log(fpp) / (ln2 * ln2);
  num_bits_ = std::max<size_t>(64, static_cast<size_t>(std::ceil(m)));
  num_hashes_ = std::max(
      1, static_cast<int>(
             std::round(m / static_cast<double>(expected_items) * ln2)));
  bits_.assign((num_bits_ + 63) / 64, 0);
}

void BloomFilter::Insert(std::string_view key) {
  InsertHash(HashString64(key));
}

void BloomFilter::InsertHash(uint64_t hash) {
  for (int i = 0; i < num_hashes_; ++i) {
    SetBit(ProbePosition(hash, i, num_bits_));
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  return MayContainHash(HashString64(key));
}

bool BloomFilter::MayContainHash(uint64_t hash) const {
  for (int i = 0; i < num_hashes_; ++i) {
    if (!TestBit(ProbePosition(hash, i, num_bits_))) return false;
  }
  return true;
}

size_t BloomFilter::CountSetBits() const {
  size_t c = 0;
  for (uint64_t w : bits_) c += static_cast<size_t>(std::popcount(w));
  return c;
}

double BloomFilter::EstimateCardinality() const {
  double m = static_cast<double>(num_bits_);
  double x = static_cast<double>(CountSetBits());
  if (x >= m) {
    // Saturated filter: the estimator diverges; report the design capacity.
    return m / num_hashes_ * std::log(m);
  }
  return -(m / num_hashes_) * std::log(1.0 - x / m);
}

}  // namespace normalize
