// Result<T>: a value-or-Status holder, mirroring arrow::Result /
// absl::StatusOr.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.hpp"

namespace normalize {

/// Holds either a value of type T or a non-OK Status describing why the
/// value could not be produced. [[nodiscard]] for the same reason as Status:
/// dropping a Result discards the error path, and the build turns that into
/// an error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or a fallback if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Early-return helper: assign the value of a Result expression to `lhs`, or
/// propagate its error status. The temporary's name embeds the line number
/// (via the two-step concat below) so several uses can share one scope.
#define NORMALIZE_INTERNAL_CONCAT2(a, b) a##b
#define NORMALIZE_INTERNAL_CONCAT(a, b) NORMALIZE_INTERNAL_CONCAT2(a, b)

#define NORMALIZE_ASSIGN_OR_RETURN(lhs, expr) \
  NORMALIZE_ASSIGN_OR_RETURN_IMPL(            \
      NORMALIZE_INTERNAL_CONCAT(_res_, __LINE__), lhs, expr)

#define NORMALIZE_ASSIGN_OR_RETURN_IMPL(res, lhs, expr) \
  auto res = (expr);                                    \
  if (!res.ok()) return res.status();                   \
  lhs = std::move(res).value();

}  // namespace normalize
