// Bloom filter used by the duplication score (paper §7.2, feature 4): the
// number of distinct values in an attribute (combination) is estimated from
// the filter's fill ratio instead of being computed exactly.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace normalize {

/// A classic k-hash-function Bloom filter over string keys with an
/// occupancy-based cardinality estimator.
class BloomFilter {
 public:
  /// `expected_items` sizes the filter for roughly `fpp` false-positive
  /// probability at that load.
  explicit BloomFilter(size_t expected_items, double fpp = 0.01);

  /// Inserts a key.
  void Insert(std::string_view key);
  /// Inserts an already-hashed key (e.g. a dictionary code).
  void InsertHash(uint64_t hash);

  /// True if the key may have been inserted (false positives possible).
  bool MayContain(std::string_view key) const;
  bool MayContainHash(uint64_t hash) const;

  /// Estimates the number of distinct inserted keys from the fraction of set
  /// bits: n ≈ -(m/k) * ln(1 - X/m), the standard Bloom occupancy inversion.
  double EstimateCardinality() const;

  size_t num_bits() const { return num_bits_; }
  int num_hashes() const { return num_hashes_; }
  /// Number of set bits (for tests and diagnostics).
  size_t CountSetBits() const;

 private:
  void SetBit(size_t i) { bits_[i >> 6] |= 1ull << (i & 63); }
  bool TestBit(size_t i) const { return (bits_[i >> 6] >> (i & 63)) & 1u; }

  size_t num_bits_;
  int num_hashes_;
  std::vector<uint64_t> bits_;
};

/// 64-bit string hash (FNV-1a) shared by BloomFilter and callers that
/// pre-hash values.
uint64_t HashString64(std::string_view s);

}  // namespace normalize
