// Small string helpers shared by the CSV reader and the report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace normalize {

/// Splits `s` at every occurrence of `delim` (no quoting; see CsvReader for
/// RFC-4180-style parsing).
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Joins strings with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view s);

/// Pads or truncates to exactly `width` characters (left-aligned).
std::string PadRight(std::string_view s, size_t width);
/// Pads on the left (right-aligned), for numeric table columns.
std::string PadLeft(std::string_view s, size_t width);

/// Formats a duration in a human-friendly unit ("483 us", "1.24 ms",
/// "3.5 s", "2.1 min").
std::string FormatDuration(double seconds);

/// Formats an integer with thousands separators ("12,358,548").
std::string FormatCount(int64_t n);

}  // namespace normalize
