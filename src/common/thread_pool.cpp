#include "common/thread_pool.hpp"

#include <algorithm>

namespace normalize {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::SetCancellation(CancellationToken token) {
  MutexLock lock(mutex_);
  cancellation_ = std::move(token);
}

void ThreadPool::ClearCancellation() {
  MutexLock lock(mutex_);
  cancellation_.reset();
}

bool ThreadPool::cancelled() const {
  MutexLock lock(mutex_);
  return cancellation_.has_value() && cancellation_->IsCancelled();
}

Result<std::future<void>> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    MutexLock lock(mutex_);
    if (cancellation_.has_value() && cancellation_->IsCancelled()) {
      return Status::Cancelled("thread pool cancelled; task rejected");
    }
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

Status ThreadPool::ParallelFor(size_t n,
                               const std::function<void(size_t)>& fn) {
  if (n == 0) return Status::OK();
  size_t num_chunks = std::min(n, static_cast<size_t>(num_threads()) * 4);
  size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  Status status;
  for (size_t begin = 0; begin < n; begin += chunk) {
    size_t end = std::min(begin + chunk, n);
    auto submitted = Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
    if (!submitted.ok()) {
      // Cancelled mid-dispatch: stop handing out chunks, but wait for the
      // ones already queued — their iterations still touch caller state.
      status = submitted.status();
      break;
    }
    futures.push_back(std::move(submitted).value());
  }
  for (auto& f : futures) f.get();
  return status;
}

int ResolveThreadCount(int threads) {
  if (threads > 0) return threads;
  int hardware = static_cast<int>(std::thread::hardware_concurrency());
  return hardware > 0 ? hardware : 4;
}

Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<void(size_t)>& fn) {
  if (pool == nullptr || n < 2) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return Status::OK();
  }
  return pool->ParallelFor(n, fn);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      // The wait predicate is re-tested here (not in a lambda handed to
      // cv_.wait) so the guarded-field reads stay visible to the
      // thread-safety analysis.
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) lock.Wait(cv_);
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace normalize
