#include "common/attribute_set.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

namespace normalize {

int AttributeSet::Count() const {
  int c = 0;
  for (uint64_t w : words_) c += std::popcount(w);
  return c;
}

bool AttributeSet::Empty() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool AttributeSet::IsSubsetOf(const AttributeSet& other) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

bool AttributeSet::Intersects(const AttributeSet& other) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

AttributeSet& AttributeSet::UnionWith(const AttributeSet& other) {
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

AttributeSet& AttributeSet::IntersectWith(const AttributeSet& other) {
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

AttributeSet& AttributeSet::DifferenceWith(const AttributeSet& other) {
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

AttributeSet AttributeSet::Complement() const {
  AttributeSet r(capacity_);
  for (size_t i = 0; i < words_.size(); ++i) r.words_[i] = ~words_[i];
  // Mask off bits beyond capacity in the last word.
  int tail = capacity_ & 63;
  if (tail != 0 && !r.words_.empty()) {
    r.words_.back() &= (1ull << tail) - 1;
  }
  return r;
}

AttributeId AttributeSet::First() const {
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] != 0) {
      return static_cast<AttributeId>(i * 64 + std::countr_zero(words_[i]));
    }
  }
  return -1;
}

AttributeId AttributeSet::Next(AttributeId a) const {
  ++a;
  if (a >= capacity_) return -1;
  size_t word = static_cast<size_t>(a) >> 6;
  uint64_t w = words_[word] >> (a & 63);
  if (w != 0) return a + std::countr_zero(w);
  for (size_t i = word + 1; i < words_.size(); ++i) {
    if (words_[i] != 0) {
      return static_cast<AttributeId>(i * 64 + std::countr_zero(words_[i]));
    }
  }
  return -1;
}

std::vector<AttributeId> AttributeSet::ToVector() const {
  std::vector<AttributeId> out;
  out.reserve(Count());
  for (AttributeId a : *this) out.push_back(a);
  return out;
}

size_t AttributeSet::Hash() const {
  // FNV-1a over the words; good enough for hash-map keys.
  size_t h = 1469598103934665603ull;
  for (uint64_t w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return h;
}

std::string AttributeSet::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (AttributeId a : *this) {
    if (!first) os << ", ";
    os << a;
    first = false;
  }
  os << "}";
  return os.str();
}

std::string AttributeSet::ToString(
    const std::vector<std::string>& names) const {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (AttributeId a : *this) {
    if (!first) os << ", ";
    if (a >= 0 && static_cast<size_t>(a) < names.size()) {
      os << names[a];
    } else {
      os << "attr" << a;
    }
    first = false;
  }
  os << "]";
  return os.str();
}

}  // namespace normalize
