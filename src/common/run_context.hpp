// RunContext: the robustness layer of the pipeline. Every long-running stage
// (FD discovery, closure, sharded ingest/discovery, the decomposition loop)
// cooperatively polls a RunContext at its loop boundaries and, when the
// context reports an interruption, stops early with kCancelled /
// kDeadlineExceeded and a *sound* partial result (every emitted FD has been
// verified). Three pieces:
//
//   * Deadline           — an absolute steady-clock cutoff;
//   * CancellationToken  — shared cancel flag, any copy cancels all holders;
//   * FaultInjector      — a deterministic schedule of I/O faults (short
//                          reads, transient errors, truncation at byte
//                          offsets) and interruption triggers (fire at the
//                          Nth context check), so retry and degradation
//                          paths are tested exactly, not probabilistically.
//
// A null RunContext pointer everywhere means "no limits" — the legacy
// behavior, with near-zero overhead at the check sites.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "common/mutex.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"

namespace normalize {

/// An absolute wall-clock cutoff (steady clock). Default: no deadline.
class Deadline {
 public:
  Deadline() = default;

  static Deadline Never() { return Deadline(); }
  static Deadline AfterMillis(double ms) { return AfterSeconds(ms / 1e3); }
  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(seconds));
    d.budget_seconds_ = seconds;
    return d;
  }

  bool has_deadline() const { return at_.has_value(); }
  bool Expired() const { return at_.has_value() && Clock::now() >= *at_; }

  /// The total budget this deadline was created with (AfterSeconds /
  /// AfterMillis); +infinity for Never(). Adaptive degradation sizes its
  /// bounded rerun against this, not against the (already exhausted)
  /// remaining time.
  double budget_seconds() const { return budget_seconds_; }

  /// Seconds until expiry; +infinity without a deadline, <= 0 once expired.
  double RemainingSeconds() const {
    if (!at_.has_value()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(*at_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  std::optional<Clock::time_point> at_;
  double budget_seconds_ = std::numeric_limits<double>::infinity();
};

/// A copyable cancel flag: all copies share one state, Cancel() on any copy
/// is visible to every holder (and to the ThreadPool it is installed on).
class CancellationToken {
 public:
  CancellationToken()
      : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { cancelled_->store(true, std::memory_order_relaxed); }
  bool IsCancelled() const {
    return cancelled_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// A deterministic fault schedule. Configure before the run (concurrent
/// calls to the setters are serialized but a schedule changed mid-run races
/// with the hooks' decisions); the On*() hooks are thread-safe and may be
/// called from pool workers. Faults are keyed by global call indices (the
/// Nth read, the Nth interruption check) or byte offsets, so a given
/// schedule reproduces the exact same failure on every run.
class FaultInjector {
 public:
  // --- schedule construction ---------------------------------------------

  /// The `nth` ByteSource read (1-based, counted across all sources that
  /// share this injector) fails with `error` instead of reading.
  void FailNthRead(uint64_t nth, Status error) NORMALIZE_EXCLUDES(mutex_);

  /// The `nth` read returns at most `max_bytes` bytes (a short read).
  void ShortNthRead(uint64_t nth, size_t max_bytes) NORMALIZE_EXCLUDES(mutex_);

  /// Reads at or past `offset` see end-of-file (silent truncation).
  void TruncateAtOffset(uint64_t offset) NORMALIZE_EXCLUDES(mutex_);

  /// Every read fails with `error` independently with probability `p`,
  /// driven by a private RNG seeded with `seed` (deterministic given the
  /// read sequence).
  void FailReadsRandomly(uint64_t seed, double probability, Status error)
      NORMALIZE_EXCLUDES(mutex_);

  /// The `nth` RunContext::Check() call (1-based, counted across threads)
  /// reports `code` (kCancelled or kDeadlineExceeded) and latches: every
  /// later check reports it too, exactly like a real expired deadline.
  void InterruptAtNthCheck(uint64_t nth, StatusCode code);

  // --- hooks (called by FaultInjectingByteSource / RunContext) -----------

  /// Consulted before a read of `*len` bytes at byte `offset`. May fail the
  /// read, shrink `*len` (short read), or zero it (truncated EOF).
  Status OnRead(uint64_t offset, size_t* len) NORMALIZE_EXCLUDES(mutex_);

  /// Consulted by RunContext::Check(); returns the injected interruption
  /// status once triggered, OK before.
  Status OnCheck();

  /// True once InterruptAtNthCheck has fired. Read-only: does not advance
  /// the check counter, so hot loops may poll it without perturbing the
  /// deterministic schedule.
  bool InterruptLatched() const {
    return interrupt_latched_.load(std::memory_order_relaxed);
  }

  // --- counters ----------------------------------------------------------

  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }
  uint64_t injected_faults() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  struct ReadFault {
    uint64_t nth = 0;
    Status error;          // OK means "short read" instead of failure
    size_t max_bytes = 0;  // short-read cap when error is OK
  };

  // Locking contract: mutex_ guards the read-fault schedule and the RNG the
  // probabilistic faults draw from (OnRead mutates rng_state_, so concurrent
  // readers must serialize). The interruption schedule and every counter are
  // lock-free atomics — OnCheck() sits on the discovery loops' check path
  // and must not contend with concurrent OnRead() calls.
  mutable Mutex mutex_;
  std::vector<ReadFault> read_faults_ NORMALIZE_GUARDED_BY(mutex_);
  std::optional<uint64_t> truncate_offset_ NORMALIZE_GUARDED_BY(mutex_);
  double read_error_probability_ NORMALIZE_GUARDED_BY(mutex_) = 0.0;
  Status random_read_error_ NORMALIZE_GUARDED_BY(mutex_);
  uint64_t rng_state_ NORMALIZE_GUARDED_BY(mutex_) = 0;

  std::atomic<uint64_t> interrupt_at_check_{0};  // 0 = disabled
  std::atomic<StatusCode> interrupt_code_{StatusCode::kCancelled};
  std::atomic<bool> interrupt_latched_{false};

  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> injected_{0};
};

class Rng;

/// Capped-exponential-backoff retry schedule for transient (kUnavailable)
/// failures, used by the sharded ingest and the service clients.
struct RetryPolicy {
  /// Total attempts including the first; <= 1 disables retrying.
  int max_attempts = 4;
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 100.0;
  /// Fraction of each backoff randomized away so concurrent clients retrying
  /// against one backpressured service don't synchronize into retry storms:
  /// JitteredBackoffMillis draws uniformly from [d * (1 - jitter), d] where
  /// d = BackoffMillis(retry_index). 0 (the default) keeps the deterministic
  /// schedule; values are clamped to [0, 1].
  double jitter = 0.0;

  /// Backoff before retry `retry_index` (0-based), capped at max_backoff_ms.
  double BackoffMillis(int retry_index) const;

  /// BackoffMillis with the jitter fraction applied, driven by the caller's
  /// seeded `rng` so schedules stay reproducible. A null rng (or jitter 0)
  /// falls back to the deterministic delay.
  double JitteredBackoffMillis(int retry_index, Rng* rng) const;

  /// Only kUnavailable is transient; every other code fails permanently.
  bool IsRetryable(const Status& status) const {
    return status.code() == StatusCode::kUnavailable;
  }
};

/// Observer for the moment a stage first notices an interruption. The
/// persistence layer installs one so in-flight state (partial covers, the
/// validation frontier, run stats) is flushed to the checkpoint directory
/// *before* the pipeline unwinds. Implementations must be idempotent and
/// thread-safe: several stages may observe the same interruption.
class CheckpointHook {
 public:
  virtual ~CheckpointHook() = default;

  /// `why` carries the interruption code (kCancelled / kDeadlineExceeded).
  virtual void OnInterruption(const Status& why) = 0;
};

class Tracer;  // obs/span.hpp — forward-declared so common/ stays base-layer

/// The bundle threaded through the pipeline. Stages receive it as a
/// `const RunContext*` (nullptr = no limits) and poll Check() at loop
/// boundaries; an I/O layer additionally routes reads through `faults`.
struct RunContext {
  Deadline deadline;
  CancellationToken cancel;
  /// Not owned; may be null. Wired under the ByteSource seam and into
  /// Check() for deterministic interruption tests.
  FaultInjector* faults = nullptr;
  /// Not owned; may be null. Notified (via NotifyInterruption) when a stage
  /// observes an interruption, so durable state can be flushed.
  CheckpointHook* checkpoint_hook = nullptr;
  /// Not owned; may be null (tracing disabled). Travels next to deadline and
  /// cancellation so a stage that already threads a RunContext can open
  /// child spans — `span` is the id the stage should parent under, the
  /// trace-tree analogue of the cancel token. Explicitly re-seat `span`
  /// (capture it before a ThreadPool hop) rather than relying on the
  /// thread-local ambient span, which does not cross pool workers.
  Tracer* tracer = nullptr;
  uint64_t span = 0;

  /// OK, or the first of: injected interruption, kCancelled, then
  /// kDeadlineExceeded. An injected kCancelled also fires the real token so
  /// the ThreadPool starts rejecting new tasks, exactly like a user cancel.
  Status Check() const;

  bool Interrupted() const { return !Check().ok(); }

  /// Cheap latched probe for pool workers: true once the run is cancelled,
  /// past its deadline, or the injector has latched an interruption. Unlike
  /// Check() it never advances the injector's check counter, so polling it
  /// from many threads keeps Nth-check schedules deterministic.
  bool SoftInterrupted() const {
    if (faults != nullptr && faults->InterruptLatched()) return true;
    return cancel.IsCancelled() || deadline.Expired();
  }

  /// Forwards an observed interruption to the checkpoint hook (if any).
  /// No-op for OK and non-interruption statuses, so stages can call it
  /// unconditionally on their early-exit paths.
  void NotifyInterruption(const Status& why) const {
    if (checkpoint_hook != nullptr && !why.ok() && IsInterruption(why.code())) {
      checkpoint_hook->OnInterruption(why);
    }
  }
};

/// Null-safe probe: OK when `context` is null.
inline Status CheckRunContext(const RunContext* context) {
  return context == nullptr ? Status::OK() : context->Check();
}

}  // namespace normalize
