// Clang thread-safety ("capability") annotation macros, after the pattern of
// Abseil's thread_annotations.h and the Clang -Wthread-safety documentation.
// Under Clang the macros expand to the capability attributes, so every Clang
// build (including CI's clang-thread-safety job, which adds -Werror) proves
// the annotated lock discipline statically: a GUARDED_BY field read without
// its mutex held, a REQUIRES contract violated by a caller, or a forgotten
// unlock is a compile error, for *every* interleaving — not just the ones a
// TSan run happens to execute. Under GCC (and any compiler without the
// attributes) the macros expand to nothing.
//
// Conventions used across this codebase:
//   * Fields protected by a mutex carry NORMALIZE_GUARDED_BY(mutex_).
//   * Private member functions that must run under a lock already held by
//     the caller carry NORMALIZE_REQUIRES(mutex_).
//   * Public entry points that take a lock internally carry
//     NORMALIZE_EXCLUDES(mutex_) so in-class callers cannot self-deadlock.
//   * Lock-free shared state uses std::atomic and needs no annotation; state
//     shared by *phase discipline* instead of locks (written single-threaded
//     or by disjoint-index parallel writes, then read concurrently — e.g.
//     PliCache contents, ValueDictionary interning, the parallel sweeps'
//     per-unit result slots) is documented at the declaration, since the
//     capability analysis has no vocabulary for it.
//
// Use the annotated Mutex/MutexLock wrappers from common/mutex.hpp rather
// than std::mutex directly: libstdc++'s std::mutex is not itself annotated
// as a capability, so locking it is invisible to the analysis.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define NORMALIZE_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define NORMALIZE_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (lockable) type. The given name
/// ("mutex") appears in diagnostics.
#define NORMALIZE_CAPABILITY(x) \
  NORMALIZE_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class whose constructor acquires and destructor releases
/// a capability.
#define NORMALIZE_SCOPED_CAPABILITY \
  NORMALIZE_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// The annotated field may only be accessed while holding the given
/// capability.
#define NORMALIZE_GUARDED_BY(x) \
  NORMALIZE_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// The pointee of the annotated pointer field may only be accessed while
/// holding the given capability (the pointer itself is unguarded).
#define NORMALIZE_PT_GUARDED_BY(x) \
  NORMALIZE_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// The annotated function acquires the capability and does not release it
/// before returning.
#define NORMALIZE_ACQUIRE(...) \
  NORMALIZE_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// The annotated function releases the capability.
#define NORMALIZE_RELEASE(...) \
  NORMALIZE_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// The annotated function tries to acquire the capability and returns the
/// given boolean on success.
#define NORMALIZE_TRY_ACQUIRE(...) \
  NORMALIZE_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Callers of the annotated function must hold the capability on entry (and
/// still hold it on exit).
#define NORMALIZE_REQUIRES(...) \
  NORMALIZE_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Callers of the annotated function must NOT hold the capability — the
/// function acquires it itself (deadlock guard for in-class callers).
#define NORMALIZE_EXCLUDES(...) \
  NORMALIZE_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The annotated function returns a reference to the given capability.
#define NORMALIZE_RETURN_CAPABILITY(x) \
  NORMALIZE_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the annotated function is exempt from the analysis. Use
/// only with a comment explaining why the discipline cannot be expressed.
#define NORMALIZE_NO_THREAD_SAFETY_ANALYSIS \
  NORMALIZE_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Durability-ordering annotations, checked by tools/lint/fd_lint (FDL003).
//
// The service layer's crash-safety contract is append-before-apply: a batch
// must be durable in the WAL before any in-memory store state it implies is
// published, otherwise a crash between the two loses acknowledged writes.
// Clang has no attribute vocabulary for this, so these macros expand to
// nothing everywhere and exist purely as machine-readable markers:
//
//   * NORMALIZE_MUTATES_STORE — the function applies a batch to live store
//     state (LiveRelation::Apply, DeltaFdMaintainer::ApplyBatch).
//   * NORMALIZE_APPENDS_WAL — the function makes a record durable
//     (WalWriter::Append) or is itself the durable entry point.
//   * NORMALIZE_REPLAYS_WAL — the function applies records that are already
//     durable (recovery), so append-before-apply is satisfied by
//     construction and the check does not apply.
//
// fd_lint verifies that, within the service layer, every call to a
// MUTATES_STORE function is preceded by a call to an APPENDS_WAL function
// unless the caller is itself annotated.
// ---------------------------------------------------------------------------

/// The annotated function mutates live store state from a batch.
#define NORMALIZE_MUTATES_STORE

/// The annotated function makes records durable in the write-ahead log.
#define NORMALIZE_APPENDS_WAL

/// The annotated function applies already-durable records (WAL recovery).
#define NORMALIZE_REPLAYS_WAL
