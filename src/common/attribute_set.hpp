// AttributeSet: a dynamic bitset over attribute indices. This is the core
// value type of the library — FD left/right-hand sides, keys, and relation
// attribute sets are all AttributeSets. Attribute ids are global over the
// input (universal) relation, which makes FD projection after decomposition
// pure set algebra (paper Lemma 3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

namespace normalize {

/// Index of an attribute (column) in the universal schema.
using AttributeId = int;

/// A set of attribute ids backed by 64-bit words. The capacity (number of
/// representable attributes) is fixed at construction; all binary operations
/// require operands of equal capacity.
class AttributeSet {
 public:
  /// Creates an empty set able to hold attribute ids in [0, capacity).
  AttributeSet() : capacity_(0) {}
  explicit AttributeSet(int capacity)
      : capacity_(capacity), words_((capacity + 63) / 64, 0) {}
  AttributeSet(int capacity, std::initializer_list<AttributeId> attrs)
      : AttributeSet(capacity) {
    for (AttributeId a : attrs) Set(a);
  }

  /// Creates a set containing all ids in [0, capacity).
  static AttributeSet Full(int capacity) {
    AttributeSet s(capacity);
    for (int i = 0; i < capacity; ++i) s.Set(i);
    return s;
  }

  int capacity() const { return capacity_; }

  bool Test(AttributeId a) const {
    return (words_[static_cast<size_t>(a) >> 6] >> (a & 63)) & 1u;
  }
  void Set(AttributeId a) {
    words_[static_cast<size_t>(a) >> 6] |= 1ull << (a & 63);
  }
  void Reset(AttributeId a) {
    words_[static_cast<size_t>(a) >> 6] &= ~(1ull << (a & 63));
  }
  void Clear() { std::fill(words_.begin(), words_.end(), 0); }

  /// Number of attributes in the set.
  int Count() const;
  bool Empty() const;

  /// True iff every attribute of this set is contained in `other`.
  bool IsSubsetOf(const AttributeSet& other) const;
  /// True iff this is a subset of `other` and not equal to it.
  bool IsProperSubsetOf(const AttributeSet& other) const {
    return IsSubsetOf(other) && *this != other;
  }
  /// True iff the two sets share at least one attribute.
  bool Intersects(const AttributeSet& other) const;

  AttributeSet& UnionWith(const AttributeSet& other);
  AttributeSet& IntersectWith(const AttributeSet& other);
  AttributeSet& DifferenceWith(const AttributeSet& other);

  AttributeSet Union(const AttributeSet& other) const {
    AttributeSet r = *this;
    return r.UnionWith(other);
  }
  AttributeSet Intersect(const AttributeSet& other) const {
    AttributeSet r = *this;
    return r.IntersectWith(other);
  }
  AttributeSet Difference(const AttributeSet& other) const {
    AttributeSet r = *this;
    return r.DifferenceWith(other);
  }
  /// All representable attributes not in this set.
  AttributeSet Complement() const;

  /// Returns the smallest attribute id in the set, or -1 if empty.
  AttributeId First() const;
  /// Returns the smallest id strictly greater than `a`, or -1 if none.
  AttributeId Next(AttributeId a) const;

  /// Materializes the contained ids in ascending order.
  std::vector<AttributeId> ToVector() const;

  bool operator==(const AttributeSet& other) const {
    return capacity_ == other.capacity_ && words_ == other.words_;
  }
  bool operator!=(const AttributeSet& other) const { return !(*this == other); }
  /// Lexicographic order on the underlying words; a total order usable as a
  /// map key. Requires equal capacities.
  bool operator<(const AttributeSet& other) const {
    return words_ < other.words_;
  }

  size_t Hash() const;

  /// Renders e.g. "{0, 3, 7}".
  std::string ToString() const;
  /// Renders attribute names, e.g. "[Postcode, City]".
  std::string ToString(const std::vector<std::string>& names) const;

  /// Iterator over set bits (ascending attribute ids).
  class Iterator {
   public:
    Iterator(const AttributeSet* set, AttributeId pos) : set_(set), pos_(pos) {}
    AttributeId operator*() const { return pos_; }
    Iterator& operator++() {
      pos_ = set_->Next(pos_);
      return *this;
    }
    bool operator!=(const Iterator& other) const { return pos_ != other.pos_; }

   private:
    const AttributeSet* set_;
    AttributeId pos_;
  };
  Iterator begin() const { return Iterator(this, First()); }
  Iterator end() const { return Iterator(this, -1); }

 private:
  int capacity_;
  std::vector<uint64_t> words_;
};

/// std::hash adapter so AttributeSet can key unordered containers.
struct AttributeSetHash {
  size_t operator()(const AttributeSet& s) const { return s.Hash(); }
};

}  // namespace normalize

namespace std {
template <>
struct hash<normalize::AttributeSet> {
  size_t operator()(const normalize::AttributeSet& s) const { return s.Hash(); }
};
}  // namespace std
