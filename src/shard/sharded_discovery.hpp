// Partitioned FD discovery with merge-and-validate. Any single-node backend
// (hyfd, tane, ...) runs independently on each row-range shard; the per-shard
// minimal covers are then merged with the classic distributed-FD rule: an FD
// holds globally only if it survives validation against every shard AND
// against row pairs that straddle shards. The merge seeds a candidate tree
// from shard 0's cover (every globally valid FD holds on shard 0, so the
// tree starts as a positive cover) and runs HyFD's level-wise
// specialization-on-violation loop:
//
//   * within-shard tier: a shard whose minimal cover does not imply the
//     candidate must contain a violating pair — found with the backend's
//     PLI validation primitive on that shard alone;
//   * cross-shard tier: candidates valid in every shard are checked by
//     hashing LHS code tuples across all shards (codes agree because the
//     shards share value dictionaries), restricted to rows whose LHS codes
//     appear in at least two shards (only those can form straddling pairs).
//
// Before any validation, the shards exchange evidence (see
// ShardOptions::exchange_evidence): each shard's exported negative cover —
// which fully determines its minimal cover, so it refutes every candidate
// some shard disagrees with — plus focused samples of row pairs straddling
// shard boundaries (the first row of every shared dictionary code in
// consecutive shards) specialize the seed tree up front. Validation then
// confirms mostly-true candidates instead of discovering violations one
// specialize-and-resweep at a time.
//
// Violations specialize the cover (SpecializeCover/InduceFromAgreeSet)
// exactly as in HyFD, so the result is the complete set of minimal FDs of
// the concatenated relation — bit-identical to a single-shot run, for every
// shard count, shard order, and thread count (the minimal cover is unique).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/stopwatch.hpp"
#include "discovery/fd_discovery.hpp"
#include "fd/fd.hpp"
#include "pli/pli.hpp"
#include "relation/relation_data.hpp"
#include "shard/shard_options.hpp"

namespace normalize {

/// Receives checkpoint-worthy state during a sharded merge run. All calls
/// happen on the coordinating thread, strictly between merge sweeps (never
/// while workers run). A non-OK return aborts the run with that status —
/// a checkpoint that cannot be written must not silently evaporate.
class DiscoveryCheckpointSink {
 public:
  virtual ~DiscoveryCheckpointSink() = default;

  /// After the per-shard fan-out completes: every shard's minimal cover and
  /// the PLI caches the merge will validate against. Covers are in global
  /// attribute space (as Discover() returns them); PLI entries may be null
  /// for backends that do not expose their cache.
  virtual Status OnShardState(
      const std::vector<FdSet>& shard_covers,
      const std::vector<std::shared_ptr<const PliCache>>& shard_plis) = 0;

  /// After merge level `level` is fully validated: the candidate tree's FDs
  /// (local column space, pre-minimization — this is resume state, not a
  /// result) and all agree-set evidence seen so far, sorted canonically.
  virtual Status OnMergeLevel(int level, const std::vector<Fd>& frontier_fds,
                              const std::vector<AttributeSet>& agree_sets) = 0;
};

/// Previously checkpointed state to resume a sharded merge run from.
/// Default-constructed = nothing to resume (fresh run).
struct DiscoveryResumeState {
  /// Per-shard minimal covers (global attribute space). Non-empty skips the
  /// per-shard fan-out; the size must match the shard count.
  std::vector<FdSet> shard_covers;
  /// Per-shard single-column PLIs; an empty inner vector means "rebuild
  /// this shard's PLIs". Ignored unless sized like the shard count.
  std::vector<std::vector<Pli>> shard_plis;
  /// Merge frontier: the candidate tree's FDs (local column space) after
  /// the last fully validated level, plus the evidence that shaped it.
  bool has_frontier = false;
  std::vector<Fd> frontier_fds;
  int last_complete_level = -1;
  std::vector<AttributeSet> agree_sets;
};

class ShardedDiscovery {
 public:
  struct Stats {
    size_t shard_count = 0;
    /// Unary FDs in the seed cover (shard 0's minimal cover).
    size_t seed_fds = 0;
    /// Merge-phase candidate validations and how many failed.
    size_t validated_candidates = 0;
    size_t invalid_candidates = 0;
    /// Failed candidates by violation locality: inside one shard vs. a row
    /// pair straddling two shards (the case a naive per-shard union misses).
    size_t within_shard_violations = 0;
    size_t cross_shard_violations = 0;
    /// Evidence-exchange pre-pruning (ShardOptions::exchange_evidence):
    /// distinct agree sets applied to the seed cover before validation —
    /// per-shard negative covers plus cross-shard boundary samples.
    size_t exchanged_evidence_sets = 0;
    /// Of those, the distinct agree sets harvested by comparing row pairs
    /// that straddle shards (per shared dictionary code), and the number of
    /// such comparisons performed.
    size_t cross_shard_sampled_sets = 0;
    size_t cross_shard_comparisons = 0;
    /// Shards (beyond the seed) whose backend exported no agree-set
    /// evidence while exchange_evidence was on. Backends without evidence
    /// tracking (e.g. Tane, Naive) silently return {} from ExportEvidence,
    /// so their negative covers cannot pre-prune the seed tree and the
    /// merge pays for their disagreements one validation violation at a
    /// time — this counter makes that silent skip visible.
    size_t evidence_less_shards = 0;
    /// Shards whose single-column PLIs were reused (backend handoff or
    /// checkpoint resume) instead of rebuilt for the merge.
    size_t plis_reused = 0;
    /// The per-shard fan-out was skipped: covers came from a checkpoint.
    bool resumed_covers = false;
    /// The merge loop started past level 0: the frontier came from a
    /// checkpoint.
    bool resumed_frontier = false;
  };

  /// `backend` is any MakeFdDiscovery() name; `options` configures the
  /// per-shard runs and the merge (max_lhs_size, external pool).
  /// `shard_options.threads` drives the shard fan-out and merge sweeps;
  /// `shard_options.shard_rows` only matters for the slicing overload.
  explicit ShardedDiscovery(std::string backend = "hyfd",
                            FdDiscoveryOptions options = {},
                            ShardOptions shard_options = {});

  /// Discovers the minimal FDs of the concatenation of `shards`. The shards
  /// must share one schema and per-column value dictionaries (as produced by
  /// ShardedCsvReader or SliceIntoShards). A single shard degenerates to a
  /// plain backend call.
  Result<FdSet> Discover(const std::vector<RelationData>& shards);

  /// Convenience: slices `data` into shard_options.shard_rows-row shards
  /// (sharing its dictionaries) and merges. shard_rows == 0 or >= num_rows
  /// runs the backend directly.
  Result<FdSet> Discover(const RelationData& data);

  const Stats& stats() const { return stats_; }
  const PhaseMetrics& phase_metrics() const { return phase_metrics_; }

  /// Installs a checkpoint sink (not owned; may be null to detach). The
  /// multi-shard Discover() path reports state through it; the degenerate
  /// single-shard paths do not (callers checkpoint the backend's evidence
  /// directly via FdDiscovery::ExportEvidence).
  void SetCheckpointSink(DiscoveryCheckpointSink* sink) { sink_ = sink; }

  /// Installs resume state consumed by the next multi-shard Discover()
  /// call. Covers sized unlike the shard count fail that call with
  /// kFailedPrecondition rather than silently rediscovering.
  void SetResumeState(DiscoveryResumeState state) {
    resume_ = std::move(state);
  }

  /// OK if the last Discover() ran to completion; kCancelled /
  /// kDeadlineExceeded when the run was interrupted (via
  /// options.context) and the returned FdSet is a sound partial cover —
  /// every emitted FD is a verified-minimal FD of the concatenated
  /// relation. Mirrors FdDiscovery::completion_status().
  const Status& completion_status() const { return completion_; }

 private:
  /// Mirrors stats_ and phase_metrics_ into options_.metrics (no-op when
  /// null). Runs via a scope guard when the multi-shard Discover() unwinds,
  /// so interrupted runs report their partial counters too.
  void PublishObservability() const;

  // Concurrency contract (phase discipline, not locks — see
  // common/thread_annotations.hpp): all merge state below is written only by
  // the coordinating thread. The parallel sweeps inside Discover() hand the
  // workers immutable inputs (shards, per-shard covers, PLI caches) plus
  // disjoint per-unit result slots, and every sweep joins at a ParallelFor
  // barrier before the coordinator folds the slots into stats_ / the cover
  // tree. Nothing here is touched while workers run, so no field carries a
  // capability.
  std::string backend_;
  FdDiscoveryOptions options_;
  ShardOptions shard_options_;
  Stats stats_;
  PhaseMetrics phase_metrics_;
  Status completion_;
  DiscoveryCheckpointSink* sink_ = nullptr;
  DiscoveryResumeState resume_;
};

}  // namespace normalize
