#include "shard/shard_relation.hpp"

#include <algorithm>

namespace normalize {

RelationData ShardedRelation::Concatenate(const std::string& name) const {
  return ConcatenateShards(shards, name);
}

std::vector<RelationData> SliceIntoShards(const RelationData& data,
                                          size_t shard_rows) {
  size_t rows = data.num_rows();
  if (shard_rows == 0 || shard_rows >= rows) {
    shard_rows = std::max<size_t>(rows, 1);
  }
  std::vector<RelationData> shards;
  int n = data.num_columns();
  std::vector<ValueId> codes(static_cast<size_t>(n));
  for (size_t begin = 0; begin == 0 || begin < rows; begin += shard_rows) {
    RelationData shard = RelationData::EmptyLike(
        data, data.name() + ".shard" + std::to_string(shards.size()));
    size_t end = std::min(rows, begin + shard_rows);
    for (size_t r = begin; r < end; ++r) {
      for (int c = 0; c < n; ++c) {
        codes[static_cast<size_t>(c)] = data.column(c).code(r);
      }
      shard.AppendRowCodes(codes);
    }
    shards.push_back(std::move(shard));
  }
  return shards;
}

RelationData ConcatenateShards(const std::vector<RelationData>& shards,
                               const std::string& name) {
  if (shards.empty()) return RelationData(name, {}, {});
  RelationData out = RelationData::EmptyLike(shards.front(), name);
  int n = shards.front().num_columns();
  std::vector<ValueId> codes(static_cast<size_t>(n));
  for (const RelationData& shard : shards) {
    for (size_t r = 0; r < shard.num_rows(); ++r) {
      for (int c = 0; c < n; ++c) {
        codes[static_cast<size_t>(c)] = shard.column(c).code(r);
      }
      out.AppendRowCodes(codes);
    }
  }
  return out;
}

}  // namespace normalize
