// Knob surface of the sharded / out-of-core pipeline (src/shard/): bounded
// memory ingest plus partitioned FD discovery with merge-and-validate.
#pragma once

#include <cstddef>

namespace normalize {

struct ShardOptions {
  /// Rows per shard. 0 disables sharding: ingest produces a single shard and
  /// ShardedDiscovery degenerates to a plain backend call.
  size_t shard_rows = 0;

  /// Worker threads of the per-shard discovery fan-out and the merge
  /// validation sweeps: <= 0 selects the hardware concurrency, 1 runs the
  /// exact serial path. The discovered FD set is identical for every value.
  int threads = 0;

  /// Exchange negative-cover evidence between shards before the merge
  /// validates candidates: every shard's agree-set evidence (for backends
  /// that track it, e.g. hyfd) plus focused samples of row pairs straddling
  /// shard boundaries specialize the seed cover up front, so cross-shard
  /// violations are mostly pre-pruned instead of being discovered one
  /// expensive specialize-on-violation sweep at a time. The merged FD set is
  /// bit-identical either way (validation stays complete); the knob exists
  /// so benchmarks and tests can measure the naive merge.
  bool exchange_evidence = true;

  /// Upper bound in bytes for the ingest text buffer (carry-over of an
  /// incomplete record plus one read chunk). 0 selects a small default
  /// (4 MiB). Ingest fails with InvalidArgument rather than exceed the
  /// budget (a single CSV record larger than the budget cannot be parsed).
  /// The budget covers the streaming text buffer, not the dictionary-encoded
  /// shards it emits.
  size_t memory_budget_bytes = 0;
};

}  // namespace normalize
