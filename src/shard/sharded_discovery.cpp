#include "shard/sharded_discovery.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/thread_pool.hpp"
#include "discovery/discovery_util.hpp"
#include "discovery/induction.hpp"
#include "fd/fd_tree.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "pli/pli.hpp"
#include "shard/shard_relation.hpp"

namespace normalize {

void ShardedDiscovery::PublishObservability() const {
  MetricsRegistry* registry = options_.metrics;
  if (registry == nullptr) return;
  RecordPhaseMetrics(registry, "shard", phase_metrics_);
  constexpr std::string_view kLabels = "component=shard";
  auto count = [&](const char* name, size_t value) {
    if (value > 0) registry->GetCounter(name, kLabels)->Increment(value);
  };
  registry->GetGauge("shard_count", kLabels)
      ->Set(static_cast<int64_t>(stats_.shard_count));
  count("shard_seed_fds_total", stats_.seed_fds);
  count("shard_validated_candidates_total", stats_.validated_candidates);
  count("shard_invalid_candidates_total", stats_.invalid_candidates);
  count("shard_within_shard_violations_total", stats_.within_shard_violations);
  count("shard_cross_shard_violations_total", stats_.cross_shard_violations);
  count("shard_exchanged_evidence_sets_total", stats_.exchanged_evidence_sets);
  count("shard_cross_shard_sampled_sets_total",
        stats_.cross_shard_sampled_sets);
  count("shard_cross_shard_comparisons_total", stats_.cross_shard_comparisons);
  count("shard_evidence_less_shards_total", stats_.evidence_less_shards);
  count("shard_plis_reused_total", stats_.plis_reused);
  count("shard_resumed_covers_total", stats_.resumed_covers ? 1 : 0);
  count("shard_resumed_frontier_total", stats_.resumed_frontier ? 1 : 0);
}

namespace {

/// A row addressed by (shard index, row within shard).
struct ShardRow {
  size_t shard;
  RowId row;
};

struct CodeVecHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    size_t h = 1469598103934665603ull;
    for (ValueId x : v) {
      h ^= static_cast<size_t>(static_cast<uint32_t>(x));
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Per column: masks[c][code] != 0 iff the dictionary code occurs in at
/// least two shards. Rows whose LHS contains a code private to one shard
/// can never be part of a straddling pair, so the cross-shard tier skips
/// them — and skips the whole scan when an LHS column has no shared codes
/// at all (any_shared[c] == 0), the common case for key-like columns.
struct SharedCodeMasks {
  std::vector<std::vector<char>> masks;
  std::vector<char> any_shared;
};

/// Checks lhs_attrs -> rhs_attr across the union of all shards' rows by
/// grouping on LHS code tuples (codes agree across shards thanks to the
/// shared dictionaries). Returns one violating row pair or nullopt. Only
/// called for candidates already valid within every single shard, so any
/// violation found here necessarily straddles two shards — which is why a
/// non-null `shared` mask soundly restricts the scan to rows whose LHS codes
/// all occur in >= 2 shards: both rows of a straddling pair share each LHS
/// code across their two shards, so every member of a violating pair
/// survives the filter, and rows it drops can only have formed same-shard
/// pairs, which the within-shard tier already proved consistent.
/// One violating row pair per RHS attribute (or nullopt), found in a single
/// scan: out[j] answers lhs_attrs -> rhs_attrs[j]. Batching the RHS attrs
/// matters because the scan groups rows by LHS code tuple — identical work
/// for every RHS of the same candidate — and the post-exchange candidate
/// tree is dominated by few-LHS/many-RHS nodes.
void ValidateAcrossShards(
    const std::vector<RelationData>& shards,
    const std::vector<AttributeId>& lhs_attrs,
    const std::vector<AttributeId>& rhs_attrs, const SharedCodeMasks* shared,
    std::vector<std::optional<std::pair<ShardRow, ShardRow>>>* out) {
  size_t m = rhs_attrs.size();
  out->assign(m, std::nullopt);
  if (m == 0) return;
  if (shared != nullptr && !lhs_attrs.empty()) {
    for (AttributeId a : lhs_attrs) {
      if (!shared->any_shared[static_cast<size_t>(a)]) return;
    }
  }
  std::vector<const std::vector<ValueId>*> rhs_codes(m);
  size_t open = m;  // RHS attrs still without a violation
  auto compare = [&](size_t j, ValueId rep_code, const ShardRow& rep,
                     ValueId code, const ShardRow& here) {
    if ((*out)[j] || rep_code == code) return;
    (*out)[j] = std::make_pair(rep, here);
    --open;
  };
  if (lhs_attrs.empty()) {
    // {} -> rhs: each RHS column must be constant across all shards.
    std::optional<ShardRow> first;
    std::vector<ValueId> first_codes(m);
    for (size_t s = 0; s < shards.size() && open > 0; ++s) {
      for (size_t j = 0; j < m; ++j) {
        rhs_codes[j] = &shards[s].column(rhs_attrs[j]).codes();
      }
      size_t rows = shards[s].num_rows();
      for (size_t r = 0; r < rows && open > 0; ++r) {
        ShardRow here{s, static_cast<RowId>(r)};
        if (!first) {
          first = here;
          for (size_t j = 0; j < m; ++j) first_codes[j] = (*rhs_codes[j])[r];
          continue;
        }
        for (size_t j = 0; j < m; ++j) {
          compare(j, first_codes[j], *first, (*rhs_codes[j])[r], here);
        }
      }
    }
    return;
  }
  if (lhs_attrs.size() == 1) {
    // Codes of the shared dictionary are dense in [0, DistinctCount):
    // a flat representative table replaces the hash map.
    const std::vector<char>* mask =
        shared != nullptr ? &shared->masks[static_cast<size_t>(lhs_attrs[0])]
                          : nullptr;
    size_t groups = shards.front().column(lhs_attrs[0]).DistinctCount();
    std::vector<char> seen(groups, 0);
    std::vector<ShardRow> rep_row(groups);
    std::vector<ValueId> rep_codes(groups * m);
    for (size_t s = 0; s < shards.size() && open > 0; ++s) {
      const std::vector<ValueId>& lhs_codes =
          shards[s].column(lhs_attrs[0]).codes();
      for (size_t j = 0; j < m; ++j) {
        rhs_codes[j] = &shards[s].column(rhs_attrs[j]).codes();
      }
      for (size_t r = 0; r < lhs_codes.size() && open > 0; ++r) {
        size_t g = static_cast<size_t>(lhs_codes[r]);
        if (mask != nullptr && !(*mask)[g]) continue;
        ShardRow here{s, static_cast<RowId>(r)};
        if (!seen[g]) {
          seen[g] = 1;
          rep_row[g] = here;
          for (size_t j = 0; j < m; ++j) {
            rep_codes[g * m + j] = (*rhs_codes[j])[r];
          }
          continue;
        }
        for (size_t j = 0; j < m; ++j) {
          compare(j, rep_codes[g * m + j], rep_row[g], (*rhs_codes[j])[r],
                  here);
        }
      }
    }
    return;
  }
  struct Rep {
    ShardRow row;
    std::vector<ValueId> codes;
  };
  std::unordered_map<std::vector<ValueId>, Rep, CodeVecHash> reps;
  std::vector<ValueId> key(lhs_attrs.size());
  for (size_t s = 0; s < shards.size() && open > 0; ++s) {
    const RelationData& shard = shards[s];
    for (size_t j = 0; j < m; ++j) {
      rhs_codes[j] = &shard.column(rhs_attrs[j]).codes();
    }
    size_t rows = shard.num_rows();
    for (size_t r = 0; r < rows && open > 0; ++r) {
      bool skip = false;
      for (size_t j = 0; j < lhs_attrs.size(); ++j) {
        ValueId code = shard.column(lhs_attrs[j]).code(r);
        if (shared != nullptr &&
            !shared->masks[static_cast<size_t>(lhs_attrs[j])]
                          [static_cast<size_t>(code)]) {
          skip = true;
          break;
        }
        key[j] = code;
      }
      if (skip) continue;
      ShardRow here{s, static_cast<RowId>(r)};
      auto [it, inserted] = reps.try_emplace(key);
      if (inserted) {
        it->second.row = here;
        it->second.codes.resize(m);
        for (size_t j = 0; j < m; ++j) {
          it->second.codes[j] = (*rhs_codes[j])[r];
        }
        continue;
      }
      for (size_t j = 0; j < m; ++j) {
        compare(j, it->second.codes[j], it->second.row, (*rhs_codes[j])[r],
                here);
      }
    }
  }
}

}  // namespace

ShardedDiscovery::ShardedDiscovery(std::string backend,
                                   FdDiscoveryOptions options,
                                   ShardOptions shard_options)
    : backend_(std::move(backend)),
      options_(options),
      shard_options_(shard_options) {}

Result<FdSet> ShardedDiscovery::Discover(const RelationData& data) {
  if (shard_options_.shard_rows == 0 ||
      shard_options_.shard_rows >= data.num_rows()) {
    stats_ = Stats{};
    phase_metrics_.Clear();
    completion_ = Status::OK();
    stats_.shard_count = 1;
    auto algo = MakeFdDiscovery(backend_, options_);
    if (!algo) {
      return Status::InvalidArgument("unknown discovery algorithm: " +
                                     backend_);
    }
    auto result = algo->Discover(data);
    if (result.ok()) {
      phase_metrics_.MergeFrom(algo->phase_metrics());
      completion_ = algo->completion_status();
    }
    return result;
  }
  return Discover(SliceIntoShards(data, shard_options_.shard_rows));
}

Result<FdSet> ShardedDiscovery::Discover(
    const std::vector<RelationData>& shards) {
  stats_ = Stats{};
  phase_metrics_.Clear();
  completion_ = Status::OK();
  if (shards.empty()) {
    return Status::InvalidArgument(
        "sharded discovery needs at least one shard");
  }
  stats_.shard_count = shards.size();
  const RelationData& first = shards.front();
  int n = first.num_columns();
  for (size_t s = 1; s < shards.size(); ++s) {
    if (shards[s].num_columns() != n ||
        shards[s].attribute_ids() != first.attribute_ids()) {
      return Status::InvalidArgument("shards disagree on schema");
    }
    for (int c = 0; c < n; ++c) {
      if (shards[s].column(c).dictionary() != first.column(c).dictionary()) {
        return Status::InvalidArgument(
            "shard columns must share value dictionaries (produce shards "
            "with ShardedCsvReader or SliceIntoShards)");
      }
    }
  }
  if (shards.size() == 1) {
    auto algo = MakeFdDiscovery(backend_, options_);
    if (!algo) {
      return Status::InvalidArgument("unknown discovery algorithm: " +
                                     backend_);
    }
    auto result = algo->Discover(first);
    if (result.ok()) {
      phase_metrics_.MergeFrom(algo->phase_metrics());
      completion_ = algo->completion_status();
    }
    return result;
  }
  if (n == 0) return FdSet{};

  // From here on this is a real multi-shard run: publish counters and phase
  // timings into the registry however the run ends (success, interruption,
  // or a per-shard failure), and root the run's span tree.
  struct ObservabilityGuard {
    const ShardedDiscovery* self;
    ~ObservabilityGuard() { self->PublishObservability(); }
  } publish_guard{this};
  const RunContext* outer_ctx = options_.context;
  ScopedSpan run_span(outer_ctx != nullptr ? outer_ctx->tracer : nullptr,
                      "shard_discover",
                      outer_ctx != nullptr ? outer_ctx->span : 0);

  size_t k = shards.size();
  int threads = ResolveThreadCount(shard_options_.threads);
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool = options_.pool;  // prefer the externally owned pool
    if (pool == nullptr) {
      pool_storage.emplace(threads);
      pool = &*pool_storage;
      if (options_.context != nullptr) {
        pool_storage->SetCancellation(options_.context->cancel);
      }
    }
  }
  const RunContext* ctx = options_.context;

  // Consume any installed resume state (one-shot: a second Discover() call
  // starts fresh unless the caller installs new state).
  DiscoveryResumeState resume = std::move(resume_);
  resume_ = DiscoveryResumeState{};
  if (!resume.shard_covers.empty() && resume.shard_covers.size() != k) {
    return Status::FailedPrecondition(
        "resume state has " + std::to_string(resume.shard_covers.size()) +
        " shard covers but the input has " + std::to_string(k) + " shards");
  }

  // --- Per-shard discovery fan-out ---
  // Each shard runs the serial backend; the fan-out itself is the
  // parallelism (per-shard threads would contend with it, and running the
  // backend's ParallelFor on the outer pool could self-deadlock). The
  // RunContext is forwarded so each per-shard run polls it too.
  // A checkpoint resume replaces the whole fan-out with the stored covers.
  Stopwatch watch;
  std::vector<FdSet> shard_fds(k);
  std::vector<std::shared_ptr<const PliCache>> handoff(k);
  // Per-shard negative covers for the evidence exchange below. Backends that
  // do not track evidence (e.g. tane) export an empty list, which gracefully
  // degrades to cross-shard sampling only. Stays empty on a checkpoint
  // resume: no per-shard algorithms ran.
  std::vector<std::vector<AttributeSet>> shard_evidence(k);
  if (!resume.shard_covers.empty()) {
    shard_fds = std::move(resume.shard_covers);
    stats_.resumed_covers = true;
  } else {
    std::vector<Status> statuses(k);
    Status dispatch = ParallelFor(pool, k, [&, ctx](size_t s) {
      if (ctx != nullptr && ctx->SoftInterrupted()) {
        statuses[s] = Status::Cancelled("shard fan-out interrupted");
        return;
      }
      FdDiscoveryOptions per_shard = options_;
      per_shard.threads = 1;
      per_shard.pool = nullptr;
      // Re-seat the span parent across the pool hop: the worker thread has
      // no ambient span, so the per-shard context carries the coordinator's
      // run span explicitly and each shard's discover span nests under it.
      RunContext shard_ctx;
      if (ctx != nullptr) {
        shard_ctx = *ctx;
        shard_ctx.span = run_span.id();
        per_shard.context = &shard_ctx;
      }
      auto algo = MakeFdDiscovery(backend_, per_shard);
      if (!algo) {
        statuses[s] =
            Status::InvalidArgument("unknown discovery algorithm: " + backend_);
        return;
      }
      auto result = algo->Discover(shards[s]);
      if (!result.ok()) {
        statuses[s] = result.status();
        return;
      }
      // An interrupted per-shard run yields a *partial* cover, which would
      // poison the merge's completeness assumption — record it as a failure
      // of this shard instead of merging it.
      statuses[s] = algo->completion_status();
      shard_fds[s] = std::move(result).value();
      // Keep the backend's PLI cache alive: the merge validates against the
      // very same single-column PLIs, so rebuilding them would be pure
      // duplicate work.
      handoff[s] = algo->shared_pli_cache();
      if (shard_options_.exchange_evidence) {
        shard_evidence[s] = algo->ExportEvidence();
      }
    });
    {
      Status interrupted = CheckRunContext(ctx);
      if (interrupted.ok() && !dispatch.ok()) interrupted = dispatch;
      for (const Status& st : statuses) {
        if (st.ok()) continue;
        if (IsInterruption(st.code())) {
          if (interrupted.ok()) interrupted = st;
        } else {
          return st;  // real per-shard failure, not an interruption
        }
      }
      if (!interrupted.ok()) {
        // No merged level has been validated yet: the only sound partial
        // result is the empty cover.
        completion_ = std::move(interrupted);
        return RemapToGlobal({}, shards[0]);
      }
    }
    phase_metrics_.Record("shard_discovery", watch.ElapsedSeconds(), k);
  }

  // --- Merge machinery: per-shard cover trees and PLI caches ---
  watch.Restart();
  std::vector<FdTree> covers;
  covers.reserve(k);
  for (size_t s = 0; s < k; ++s) {
    covers.push_back(BuildLocalFdTree(shard_fds[s], shards[s]));
  }
  phase_metrics_.Record("shard_covers", watch.ElapsedSeconds(), k);
  watch.Restart();
  // Per-shard PLI preference order: checkpointed PLIs (resume), then the
  // backend's handoff cache (fresh fan-out), then a rebuild from the rows.
  std::vector<std::shared_ptr<const PliCache>> caches(k);
  bool resume_plis = resume.shard_plis.size() == k;
  for (size_t s = 0; s < k; ++s) {
    if (resume_plis &&
        resume.shard_plis[s].size() == static_cast<size_t>(n)) {
      caches[s] = std::make_shared<PliCache>(shards[s],
                                             std::move(resume.shard_plis[s]));
      ++stats_.plis_reused;
    } else if (handoff[s] != nullptr) {
      caches[s] = std::move(handoff[s]);
      ++stats_.plis_reused;
    } else {
      caches[s] = std::make_shared<PliCache>(shards[s], pool);
    }
  }
  phase_metrics_.Record("pli_build", watch.ElapsedSeconds(),
                        k * static_cast<size_t>(n));

  // First checkpoint: per-shard covers plus the PLIs the merge will use. A
  // resumed run's covers are already on disk, so only fresh runs report.
  if (sink_ != nullptr && !stats_.resumed_covers) {
    watch.Restart();
    NORMALIZE_RETURN_IF_ERROR(sink_->OnShardState(shard_fds, caches));
    phase_metrics_.Record("checkpoint_shard_state", watch.ElapsedSeconds(), k);
  }

  // --- Merge-and-validate ---
  // Seed with shard 0's minimal cover: every globally valid FD holds on
  // shard 0 and is therefore a specialization of some seed FD, so the tree
  // is a positive cover from the start and stays one under
  // SpecializeCover (violations come from real row pairs, which can never
  // discharge a globally valid FD).
  FdTree tree = BuildLocalFdTree(shard_fds[0], shards[0]);
  stats_.seed_fds = tree.CountFds();

  std::unordered_set<AttributeSet> seen_agree_sets;
  int start_level = 0;
  int resumed_last_complete = -1;
  if (resume.has_frontier) {
    // Rebuild the candidate tree exactly as the checkpoint recorded it and
    // restart after the last fully validated level. The stored agree sets
    // re-seed the dedup set so old evidence is not re-collected.
    tree = FdTree(n);
    for (const Fd& fd : resume.frontier_fds) {
      for (AttributeId a : fd.rhs) tree.AddFd(fd.lhs, a);
    }
    seen_agree_sets.insert(resume.agree_sets.begin(),
                           resume.agree_sets.end());
    resumed_last_complete = resume.last_complete_level;
    start_level = resume.last_complete_level + 1;
    stats_.resumed_frontier = true;
  }
  int max_level = n - 1;
  if (options_.max_lhs_size > 0) {
    max_level = std::min(max_level, options_.max_lhs_size);
  }

  // Same partial-result rule as HyFD: tree FDs at fully-validated levels
  // are exactly the minimal FDs of those LHS sizes on the concatenated
  // relation (the seed is shard 0's *minimal* cover — every proper subset
  // of a seed LHS is already violated on shard 0, hence globally — and
  // specializations only enter once their generalizations are refuted by
  // real row pairs).
  int last_complete_level = resumed_last_complete;
  auto partial_result = [&](Status why) -> Result<FdSet> {
    completion_ = std::move(why);
    std::vector<Fd> kept;
    if (last_complete_level >= 0) {
      MinimizeCover(&tree);
      for (Fd& fd : tree.CollectAllFds()) {
        if (static_cast<int>(fd.lhs.Count()) <= last_complete_level) {
          kept.push_back(std::move(fd));
        }
      }
    }
    return RemapToGlobal(kept, shards[0]);
  };

  // --- Evidence exchange: pre-prune the seed cover before any validation ---
  // Two evidence sources, both agree sets of real row pairs (so applying
  // them preserves the positive-cover invariant and cannot change the final
  // minimal cover — it only moves refutations ahead of the validation
  // sweeps):
  //   1. every shard's exported negative cover, which fully determines that
  //      shard's minimal cover and hence refutes every candidate the shard
  //      disagrees with (the within-shard violations);
  //   2. focused cross-shard samples — per column, the first row of each
  //      shared dictionary code in consecutive shards that contain it. These
  //      are exactly the cheap straddling pairs HyFD-style sampling would
  //      pick first, and they refute most cross-shard violations up front.
  // The same pass derives the shared-code masks that restrict the
  // cross-shard validation tier (see ValidateAcrossShards).
  // Skipped on a frontier resume: the checkpointed tree already absorbed
  // all evidence, and re-inducing below start_level would be wasted work.
  SharedCodeMasks shared_masks;
  if (shard_options_.exchange_evidence) {
    watch.Restart();
    constexpr size_t kNoShard = static_cast<size_t>(-1);
    const bool do_sampling = !resume.has_frontier;
    shared_masks.masks.assign(static_cast<size_t>(n), {});
    shared_masks.any_shared.assign(static_cast<size_t>(n), 0);
    std::vector<std::vector<AttributeSet>> sampled(static_cast<size_t>(n));
    std::vector<size_t> comparisons(static_cast<size_t>(n), 0);
    Status dispatch =
        ParallelFor(pool, static_cast<size_t>(n), [&](size_t c) {
          size_t groups =
              first.column(static_cast<int>(c)).DistinctCount();
          std::vector<char>& mask = shared_masks.masks[c];
          mask.assign(groups, 0);
          // prev_rep[g]: first row of code g in the most recent shard that
          // contains it; a first occurrence in a later shard forms one
          // straddling sample pair and marks the code shared.
          std::vector<ShardRow> prev_rep(groups, ShardRow{kNoShard, 0});
          std::unordered_set<AttributeSet> column_seen;
          for (size_t s = 0; s < k; ++s) {
            const std::vector<ValueId>& codes =
                shards[s].column(static_cast<int>(c)).codes();
            std::vector<char> seen_in_shard(groups, 0);
            for (size_t r = 0; r < codes.size(); ++r) {
              size_t g = static_cast<size_t>(codes[r]);
              if (seen_in_shard[g]) continue;
              seen_in_shard[g] = 1;
              if (prev_rep[g].shard != kNoShard) {
                mask[g] = 1;
                shared_masks.any_shared[c] = 1;
                if (do_sampling) {
                  ++comparisons[c];
                  AttributeSet ag = AgreeSetOf(
                      shards[prev_rep[g].shard], prev_rep[g].row, shards[s],
                      static_cast<RowId>(r));
                  if (column_seen.insert(ag).second) {
                    sampled[c].push_back(std::move(ag));
                  }
                }
              }
              prev_rep[g] = ShardRow{s, static_cast<RowId>(r)};
            }
          }
        });
    if (dispatch.ok()) dispatch = CheckRunContext(ctx);
    if (!dispatch.ok()) return partial_result(std::move(dispatch));
    if (do_sampling) {
      // Deterministic application order — shard order for the exported
      // covers, then column order for the samples — so the induction
      // sequence is identical at every thread count. Shard 0's own evidence
      // is skipped: the seed IS shard 0's minimal cover, so by completeness
      // none of its evidence can specialize the initial tree — every
      // application would be a paid-for no-op. Per shard, only the largest
      // (most subsuming) sets are applied, mirroring HyFd's induction cap:
      // pre-pruning is an accelerator, validation guarantees exactness, so
      // skipping low-value evidence trades a few extra validation
      // violations for a much cheaper exchange.
      constexpr size_t kMaxEvidencePerShard = 2000;
      for (size_t s = 1; s < k; ++s) {
        if (shard_evidence[s].empty()) {
          // ExportEvidence defaults to {} for backends without evidence
          // tracking — record the skipped exchange instead of letting it
          // pass silently (Stats::evidence_less_shards).
          ++stats_.evidence_less_shards;
          continue;
        }
        std::vector<AttributeSet> ranked = shard_evidence[s];
        if (ranked.size() > kMaxEvidencePerShard) {
          std::stable_sort(ranked.begin(), ranked.end(),
                           [](const AttributeSet& a, const AttributeSet& b) {
                             return a.Count() > b.Count();
                           });
          ranked.resize(kMaxEvidencePerShard);
        }
        for (const AttributeSet& ag : ranked) {
          if (!seen_agree_sets.insert(ag).second) continue;
          InduceFromAgreeSet(&tree, ag, options_.max_lhs_size);
          ++stats_.exchanged_evidence_sets;
        }
      }
      for (size_t c = 0; c < sampled.size(); ++c) {
        stats_.cross_shard_comparisons += comparisons[c];
        for (const AttributeSet& ag : sampled[c]) {
          if (!seen_agree_sets.insert(ag).second) continue;
          InduceFromAgreeSet(&tree, ag, options_.max_lhs_size);
          ++stats_.exchanged_evidence_sets;
          ++stats_.cross_shard_sampled_sets;
        }
      }
    }
    phase_metrics_.Record("evidence_exchange", watch.ElapsedSeconds(),
                          stats_.exchanged_evidence_sets);
    if (stats_.evidence_less_shards > 0) {
      phase_metrics_.Record("evidence_less_shards", 0.0,
                            stats_.evidence_less_shards);
    }
  }
  const SharedCodeMasks* validation_masks =
      shard_options_.exchange_evidence ? &shared_masks : nullptr;

  struct Violation {
    AttributeSet agree;
    bool cross_shard = false;
  };

  for (int level = start_level; level <= max_level; ++level) {
    while (true) {
      Status interrupted = CheckRunContext(ctx);
      if (!interrupted.ok()) return partial_result(std::move(interrupted));
      // Snapshot this level's candidates; validate them concurrently
      // against the immutable shards (the tree is not touched), then apply
      // the violations serially in snapshot order — the same deterministic
      // sweep structure as HyFD's parallel validation.
      std::vector<Fd> candidates = tree.GetLevel(level);
      if (candidates.empty()) break;
      size_t total_units = 0;
      std::vector<std::vector<AttributeId>> lhs_vecs(candidates.size());
      std::vector<std::vector<AttributeId>> rhs_vecs(candidates.size());
      for (size_t c = 0; c < candidates.size(); ++c) {
        lhs_vecs[c] = candidates[c].lhs.ToVector();
        for (AttributeId a : candidates[c].rhs) rhs_vecs[c].push_back(a);
        total_units += rhs_vecs[c].size();
      }
      Stopwatch validation_watch;
      // Per-candidate violation slots, one per RHS attribute (in rhs_vecs
      // order); the cross-shard scan is shared by every RHS of a candidate.
      std::vector<std::vector<std::optional<Violation>>> violations(
          candidates.size());
      Status dispatch =
          ParallelFor(pool, candidates.size(), [&, ctx](size_t c) {
            if (ctx != nullptr && ctx->SoftInterrupted()) return;
            const AttributeSet& lhs = candidates[c].lhs;
            const std::vector<AttributeId>& lhs_attrs = lhs_vecs[c];
            const std::vector<AttributeId>& rhs_attrs = rhs_vecs[c];
            size_t m = rhs_attrs.size();
            violations[c].assign(m, std::nullopt);
            // Within-shard tier: the covers are complete up to
            // max_lhs_size, so a shard whose cover does not imply the
            // candidate must violate it; targeted PLI validation on that
            // shard finds a witness pair.
            std::vector<AttributeId> cross_rhs;
            std::vector<size_t> cross_slot;
            for (size_t j = 0; j < m; ++j) {
              bool violated = false;
              for (size_t s = 0; s < k && !violated; ++s) {
                if (covers[s].ContainsFdOrGeneralization(lhs, rhs_attrs[j])) {
                  continue;
                }
                auto pair = ValidateFdCandidate(shards[s], *caches[s],
                                                lhs_attrs, rhs_attrs[j]);
                if (pair) {
                  violations[c][j] = Violation{
                      AgreeSetOf(shards[s], pair->first, shards[s],
                                 pair->second),
                      /*cross_shard=*/false};
                  violated = true;
                }
              }
              if (!violated) {
                cross_rhs.push_back(rhs_attrs[j]);
                cross_slot.push_back(j);
              }
            }
            // Cross-shard tier: valid inside every shard — only a row pair
            // straddling two shards can still break it. One scan covers
            // every surviving RHS of this candidate.
            std::vector<std::optional<std::pair<ShardRow, ShardRow>>> pairs;
            ValidateAcrossShards(shards, lhs_attrs, cross_rhs,
                                 validation_masks, &pairs);
            for (size_t j = 0; j < cross_rhs.size(); ++j) {
              if (!pairs[j]) continue;
              violations[c][cross_slot[j]] = Violation{
                  AgreeSetOf(shards[pairs[j]->first.shard],
                             pairs[j]->first.row,
                             shards[pairs[j]->second.shard],
                             pairs[j]->second.row),
                  /*cross_shard=*/true};
            }
          });
      // Unset violation slots of a skipped sweep look like confirmations —
      // bail before the merge trusts them.
      interrupted = CheckRunContext(ctx);
      if (interrupted.ok() && !dispatch.ok()) interrupted = dispatch;
      if (!interrupted.ok()) return partial_result(std::move(interrupted));
      size_t invalid = 0;
      std::vector<AttributeSet> evidence;
      for (size_t c = 0; c < candidates.size(); ++c) {
        for (size_t j = 0; j < violations[c].size(); ++j) {
          if (!violations[c][j]) continue;
          ++invalid;
          if (violations[c][j]->cross_shard) {
            ++stats_.cross_shard_violations;
          } else {
            ++stats_.within_shard_violations;
          }
          const AttributeSet& ag = violations[c][j]->agree;
          if (seen_agree_sets.insert(ag).second) evidence.push_back(ag);
          // Even previously-seen evidence must be (re)applied to this
          // candidate — it may have been added after the original induction.
          SpecializeCover(&tree, ag, rhs_vecs[c][j], options_.max_lhs_size);
        }
      }
      stats_.validated_candidates += total_units;
      stats_.invalid_candidates += invalid;
      double validation_s = validation_watch.ElapsedSeconds();
      phase_metrics_.Record("merge_validation", validation_s, total_units);
      // Per-level record: the adaptive degradation picker reads these to
      // find the deepest level that fits the time budget.
      phase_metrics_.Record("merge_validation_L" + std::to_string(level),
                            validation_s, total_units);
      Stopwatch induction_watch;
      for (const AttributeSet& ag : evidence) {
        InduceFromAgreeSet(&tree, ag, options_.max_lhs_size);
      }
      phase_metrics_.Record("merge_induction", induction_watch.ElapsedSeconds(),
                            evidence.size());
      if (invalid == 0) break;
    }
    last_complete_level = level;
    // Checkpoint the fully validated level: the tree's FDs (pre-minimize —
    // this is resume state) and the evidence that shaped them, canonically
    // sorted so identical state yields identical snapshot bytes.
    if (sink_ != nullptr) {
      Stopwatch ckpt_watch;
      std::vector<AttributeSet> evidence_sorted(seen_agree_sets.begin(),
                                                seen_agree_sets.end());
      std::sort(evidence_sorted.begin(), evidence_sorted.end());
      NORMALIZE_RETURN_IF_ERROR(
          sink_->OnMergeLevel(level, tree.CollectAllFds(), evidence_sorted));
      phase_metrics_.Record("checkpoint_merge_level",
                            ckpt_watch.ElapsedSeconds());
    }
  }

  MinimizeCover(&tree);
  return RemapToGlobal(tree.CollectAllFds(), shards[0]);
}

}  // namespace normalize
