#include "shard/sharded_discovery.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/thread_pool.hpp"
#include "discovery/discovery_util.hpp"
#include "discovery/induction.hpp"
#include "fd/fd_tree.hpp"
#include "pli/pli.hpp"
#include "shard/shard_relation.hpp"

namespace normalize {

namespace {

/// A row addressed by (shard index, row within shard).
struct ShardRow {
  size_t shard;
  RowId row;
};

struct CodeVecHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    size_t h = 1469598103934665603ull;
    for (ValueId x : v) {
      h ^= static_cast<size_t>(static_cast<uint32_t>(x));
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Checks lhs_attrs -> rhs_attr across the union of all shards' rows by
/// grouping on LHS code tuples (codes agree across shards thanks to the
/// shared dictionaries). Returns one violating row pair or nullopt. Only
/// called for candidates already valid within every single shard, so any
/// violation found here necessarily straddles two shards.
std::optional<std::pair<ShardRow, ShardRow>> ValidateAcrossShards(
    const std::vector<RelationData>& shards,
    const std::vector<AttributeId>& lhs_attrs, AttributeId rhs_attr) {
  if (lhs_attrs.empty()) {
    // {} -> rhs: the column must be constant across all shards.
    std::optional<ShardRow> first;
    ValueId first_code = 0;
    for (size_t s = 0; s < shards.size(); ++s) {
      const std::vector<ValueId>& rhs_codes =
          shards[s].column(rhs_attr).codes();
      for (size_t r = 0; r < rhs_codes.size(); ++r) {
        if (!first) {
          first = ShardRow{s, static_cast<RowId>(r)};
          first_code = rhs_codes[r];
        } else if (rhs_codes[r] != first_code) {
          return std::make_pair(*first, ShardRow{s, static_cast<RowId>(r)});
        }
      }
    }
    return std::nullopt;
  }
  if (lhs_attrs.size() == 1) {
    // Codes of the shared dictionary are dense in [0, DistinctCount):
    // a flat representative table replaces the hash map.
    size_t groups = shards.front().column(lhs_attrs[0]).DistinctCount();
    std::vector<ValueId> rep_rhs(groups, -1);
    std::vector<ShardRow> rep_row(groups);
    for (size_t s = 0; s < shards.size(); ++s) {
      const std::vector<ValueId>& lhs_codes =
          shards[s].column(lhs_attrs[0]).codes();
      const std::vector<ValueId>& rhs_codes =
          shards[s].column(rhs_attr).codes();
      for (size_t r = 0; r < lhs_codes.size(); ++r) {
        size_t g = static_cast<size_t>(lhs_codes[r]);
        if (rep_rhs[g] < 0) {
          rep_rhs[g] = rhs_codes[r];
          rep_row[g] = ShardRow{s, static_cast<RowId>(r)};
        } else if (rep_rhs[g] != rhs_codes[r]) {
          return std::make_pair(rep_row[g], ShardRow{s, static_cast<RowId>(r)});
        }
      }
    }
    return std::nullopt;
  }
  std::unordered_map<std::vector<ValueId>, std::pair<ShardRow, ValueId>,
                     CodeVecHash>
      reps;
  std::vector<ValueId> key(lhs_attrs.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    const RelationData& shard = shards[s];
    for (size_t r = 0; r < shard.num_rows(); ++r) {
      for (size_t j = 0; j < lhs_attrs.size(); ++j) {
        key[j] = shard.column(lhs_attrs[j]).code(r);
      }
      ValueId rhs_code = shard.column(rhs_attr).code(r);
      ShardRow here{s, static_cast<RowId>(r)};
      auto [it, inserted] = reps.try_emplace(key, here, rhs_code);
      if (!inserted && it->second.second != rhs_code) {
        return std::make_pair(it->second.first, here);
      }
    }
  }
  return std::nullopt;
}

}  // namespace

ShardedDiscovery::ShardedDiscovery(std::string backend,
                                   FdDiscoveryOptions options,
                                   ShardOptions shard_options)
    : backend_(std::move(backend)),
      options_(options),
      shard_options_(shard_options) {}

Result<FdSet> ShardedDiscovery::Discover(const RelationData& data) {
  if (shard_options_.shard_rows == 0 ||
      shard_options_.shard_rows >= data.num_rows()) {
    stats_ = Stats{};
    phase_metrics_.Clear();
    completion_ = Status::OK();
    stats_.shard_count = 1;
    auto algo = MakeFdDiscovery(backend_, options_);
    if (!algo) {
      return Status::InvalidArgument("unknown discovery algorithm: " +
                                     backend_);
    }
    auto result = algo->Discover(data);
    if (result.ok()) {
      phase_metrics_.MergeFrom(algo->phase_metrics());
      completion_ = algo->completion_status();
    }
    return result;
  }
  return Discover(SliceIntoShards(data, shard_options_.shard_rows));
}

Result<FdSet> ShardedDiscovery::Discover(
    const std::vector<RelationData>& shards) {
  stats_ = Stats{};
  phase_metrics_.Clear();
  completion_ = Status::OK();
  if (shards.empty()) {
    return Status::InvalidArgument(
        "sharded discovery needs at least one shard");
  }
  stats_.shard_count = shards.size();
  const RelationData& first = shards.front();
  int n = first.num_columns();
  for (size_t s = 1; s < shards.size(); ++s) {
    if (shards[s].num_columns() != n ||
        shards[s].attribute_ids() != first.attribute_ids()) {
      return Status::InvalidArgument("shards disagree on schema");
    }
    for (int c = 0; c < n; ++c) {
      if (shards[s].column(c).dictionary() != first.column(c).dictionary()) {
        return Status::InvalidArgument(
            "shard columns must share value dictionaries (produce shards "
            "with ShardedCsvReader or SliceIntoShards)");
      }
    }
  }
  if (shards.size() == 1) {
    auto algo = MakeFdDiscovery(backend_, options_);
    if (!algo) {
      return Status::InvalidArgument("unknown discovery algorithm: " +
                                     backend_);
    }
    auto result = algo->Discover(first);
    if (result.ok()) {
      phase_metrics_.MergeFrom(algo->phase_metrics());
      completion_ = algo->completion_status();
    }
    return result;
  }
  if (n == 0) return FdSet{};

  size_t k = shards.size();
  int threads = ResolveThreadCount(shard_options_.threads);
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool = options_.pool;  // prefer the externally owned pool
    if (pool == nullptr) {
      pool_storage.emplace(threads);
      pool = &*pool_storage;
      if (options_.context != nullptr) {
        pool_storage->SetCancellation(options_.context->cancel);
      }
    }
  }
  const RunContext* ctx = options_.context;

  // Consume any installed resume state (one-shot: a second Discover() call
  // starts fresh unless the caller installs new state).
  DiscoveryResumeState resume = std::move(resume_);
  resume_ = DiscoveryResumeState{};
  if (!resume.shard_covers.empty() && resume.shard_covers.size() != k) {
    return Status::FailedPrecondition(
        "resume state has " + std::to_string(resume.shard_covers.size()) +
        " shard covers but the input has " + std::to_string(k) + " shards");
  }

  // --- Per-shard discovery fan-out ---
  // Each shard runs the serial backend; the fan-out itself is the
  // parallelism (per-shard threads would contend with it, and running the
  // backend's ParallelFor on the outer pool could self-deadlock). The
  // RunContext is forwarded so each per-shard run polls it too.
  // A checkpoint resume replaces the whole fan-out with the stored covers.
  Stopwatch watch;
  std::vector<FdSet> shard_fds(k);
  std::vector<std::shared_ptr<const PliCache>> handoff(k);
  if (!resume.shard_covers.empty()) {
    shard_fds = std::move(resume.shard_covers);
    stats_.resumed_covers = true;
  } else {
    std::vector<Status> statuses(k);
    Status dispatch = ParallelFor(pool, k, [&, ctx](size_t s) {
      if (ctx != nullptr && ctx->SoftInterrupted()) {
        statuses[s] = Status::Cancelled("shard fan-out interrupted");
        return;
      }
      FdDiscoveryOptions per_shard = options_;
      per_shard.threads = 1;
      per_shard.pool = nullptr;
      auto algo = MakeFdDiscovery(backend_, per_shard);
      if (!algo) {
        statuses[s] =
            Status::InvalidArgument("unknown discovery algorithm: " + backend_);
        return;
      }
      auto result = algo->Discover(shards[s]);
      if (!result.ok()) {
        statuses[s] = result.status();
        return;
      }
      // An interrupted per-shard run yields a *partial* cover, which would
      // poison the merge's completeness assumption — record it as a failure
      // of this shard instead of merging it.
      statuses[s] = algo->completion_status();
      shard_fds[s] = std::move(result).value();
      // Keep the backend's PLI cache alive: the merge validates against the
      // very same single-column PLIs, so rebuilding them would be pure
      // duplicate work.
      handoff[s] = algo->shared_pli_cache();
    });
    {
      Status interrupted = CheckRunContext(ctx);
      if (interrupted.ok() && !dispatch.ok()) interrupted = dispatch;
      for (const Status& st : statuses) {
        if (st.ok()) continue;
        if (IsInterruption(st.code())) {
          if (interrupted.ok()) interrupted = st;
        } else {
          return st;  // real per-shard failure, not an interruption
        }
      }
      if (!interrupted.ok()) {
        // No merged level has been validated yet: the only sound partial
        // result is the empty cover.
        completion_ = std::move(interrupted);
        return RemapToGlobal({}, shards[0]);
      }
    }
    phase_metrics_.Record("shard_discovery", watch.ElapsedSeconds(), k);
  }

  // --- Merge machinery: per-shard cover trees and PLI caches ---
  watch.Restart();
  std::vector<FdTree> covers;
  covers.reserve(k);
  for (size_t s = 0; s < k; ++s) {
    covers.push_back(BuildLocalFdTree(shard_fds[s], shards[s]));
  }
  phase_metrics_.Record("shard_covers", watch.ElapsedSeconds(), k);
  watch.Restart();
  // Per-shard PLI preference order: checkpointed PLIs (resume), then the
  // backend's handoff cache (fresh fan-out), then a rebuild from the rows.
  std::vector<std::shared_ptr<const PliCache>> caches(k);
  bool resume_plis = resume.shard_plis.size() == k;
  for (size_t s = 0; s < k; ++s) {
    if (resume_plis &&
        resume.shard_plis[s].size() == static_cast<size_t>(n)) {
      caches[s] = std::make_shared<PliCache>(shards[s],
                                             std::move(resume.shard_plis[s]));
      ++stats_.plis_reused;
    } else if (handoff[s] != nullptr) {
      caches[s] = std::move(handoff[s]);
      ++stats_.plis_reused;
    } else {
      caches[s] = std::make_shared<PliCache>(shards[s], pool);
    }
  }
  phase_metrics_.Record("pli_build", watch.ElapsedSeconds(),
                        k * static_cast<size_t>(n));

  // First checkpoint: per-shard covers plus the PLIs the merge will use. A
  // resumed run's covers are already on disk, so only fresh runs report.
  if (sink_ != nullptr && !stats_.resumed_covers) {
    watch.Restart();
    NORMALIZE_RETURN_IF_ERROR(sink_->OnShardState(shard_fds, caches));
    phase_metrics_.Record("checkpoint_shard_state", watch.ElapsedSeconds(), k);
  }

  // --- Merge-and-validate ---
  // Seed with shard 0's minimal cover: every globally valid FD holds on
  // shard 0 and is therefore a specialization of some seed FD, so the tree
  // is a positive cover from the start and stays one under
  // SpecializeCover (violations come from real row pairs, which can never
  // discharge a globally valid FD).
  FdTree tree = BuildLocalFdTree(shard_fds[0], shards[0]);
  stats_.seed_fds = tree.CountFds();

  std::unordered_set<AttributeSet> seen_agree_sets;
  int start_level = 0;
  int resumed_last_complete = -1;
  if (resume.has_frontier) {
    // Rebuild the candidate tree exactly as the checkpoint recorded it and
    // restart after the last fully validated level. The stored agree sets
    // re-seed the dedup set so old evidence is not re-collected.
    tree = FdTree(n);
    for (const Fd& fd : resume.frontier_fds) {
      for (AttributeId a : fd.rhs) tree.AddFd(fd.lhs, a);
    }
    seen_agree_sets.insert(resume.agree_sets.begin(),
                           resume.agree_sets.end());
    resumed_last_complete = resume.last_complete_level;
    start_level = resume.last_complete_level + 1;
    stats_.resumed_frontier = true;
  }
  int max_level = n - 1;
  if (options_.max_lhs_size > 0) {
    max_level = std::min(max_level, options_.max_lhs_size);
  }

  // Same partial-result rule as HyFD: tree FDs at fully-validated levels
  // are exactly the minimal FDs of those LHS sizes on the concatenated
  // relation (the seed is shard 0's *minimal* cover — every proper subset
  // of a seed LHS is already violated on shard 0, hence globally — and
  // specializations only enter once their generalizations are refuted by
  // real row pairs).
  int last_complete_level = resumed_last_complete;
  auto partial_result = [&](Status why) -> Result<FdSet> {
    completion_ = std::move(why);
    std::vector<Fd> kept;
    if (last_complete_level >= 0) {
      MinimizeCover(&tree);
      for (Fd& fd : tree.CollectAllFds()) {
        if (static_cast<int>(fd.lhs.Count()) <= last_complete_level) {
          kept.push_back(std::move(fd));
        }
      }
    }
    return RemapToGlobal(kept, shards[0]);
  };

  struct Violation {
    AttributeSet agree;
    bool cross_shard = false;
  };

  for (int level = start_level; level <= max_level; ++level) {
    while (true) {
      Status interrupted = CheckRunContext(ctx);
      if (!interrupted.ok()) return partial_result(std::move(interrupted));
      // Snapshot this level's candidates; validate them concurrently
      // against the immutable shards (the tree is not touched), then apply
      // the violations serially in snapshot order — the same deterministic
      // sweep structure as HyFD's parallel validation.
      std::vector<Fd> candidates = tree.GetLevel(level);
      std::vector<std::vector<AttributeId>> lhs_vecs(candidates.size());
      struct Unit {
        size_t candidate;
        AttributeId rhs;
      };
      std::vector<Unit> units;
      for (size_t c = 0; c < candidates.size(); ++c) {
        lhs_vecs[c] = candidates[c].lhs.ToVector();
        for (AttributeId a : candidates[c].rhs) {
          units.push_back(Unit{c, a});
        }
      }
      if (units.empty()) break;
      Stopwatch validation_watch;
      std::vector<std::optional<Violation>> violations(units.size());
      Status dispatch = ParallelFor(pool, units.size(), [&, ctx](size_t u) {
        if (ctx != nullptr && ctx->SoftInterrupted()) return;
        const Unit& unit = units[u];
        const AttributeSet& lhs = candidates[unit.candidate].lhs;
        const std::vector<AttributeId>& lhs_attrs = lhs_vecs[unit.candidate];
        // Within-shard tier: the covers are complete up to max_lhs_size, so
        // a shard whose cover does not imply the candidate must violate it;
        // targeted PLI validation on that shard finds a witness pair.
        for (size_t s = 0; s < k; ++s) {
          if (covers[s].ContainsFdOrGeneralization(lhs, unit.rhs)) continue;
          auto pair = ValidateFdCandidate(shards[s], *caches[s], lhs_attrs,
                                          unit.rhs);
          if (pair) {
            violations[u] = Violation{
                AgreeSetOf(shards[s], pair->first, shards[s], pair->second),
                /*cross_shard=*/false};
            return;
          }
        }
        // Cross-shard tier: valid inside every shard — only a row pair
        // straddling two shards can still break it.
        auto pair = ValidateAcrossShards(shards, lhs_attrs, unit.rhs);
        if (pair) {
          violations[u] = Violation{
              AgreeSetOf(shards[pair->first.shard], pair->first.row,
                         shards[pair->second.shard], pair->second.row),
              /*cross_shard=*/true};
        }
      });
      // Unset violation slots of a skipped sweep look like confirmations —
      // bail before the merge trusts them.
      interrupted = CheckRunContext(ctx);
      if (interrupted.ok() && !dispatch.ok()) interrupted = dispatch;
      if (!interrupted.ok()) return partial_result(std::move(interrupted));
      size_t invalid = 0;
      std::vector<AttributeSet> evidence;
      for (size_t u = 0; u < units.size(); ++u) {
        if (!violations[u]) continue;
        ++invalid;
        if (violations[u]->cross_shard) {
          ++stats_.cross_shard_violations;
        } else {
          ++stats_.within_shard_violations;
        }
        const AttributeSet& ag = violations[u]->agree;
        if (seen_agree_sets.insert(ag).second) evidence.push_back(ag);
        // Even previously-seen evidence must be (re)applied to this
        // candidate — it may have been added after the original induction.
        SpecializeCover(&tree, ag, units[u].rhs, options_.max_lhs_size);
      }
      stats_.validated_candidates += units.size();
      stats_.invalid_candidates += invalid;
      double validation_s = validation_watch.ElapsedSeconds();
      phase_metrics_.Record("merge_validation", validation_s, units.size());
      // Per-level record: the adaptive degradation picker reads these to
      // find the deepest level that fits the time budget.
      phase_metrics_.Record("merge_validation_L" + std::to_string(level),
                            validation_s, units.size());
      Stopwatch induction_watch;
      for (const AttributeSet& ag : evidence) {
        InduceFromAgreeSet(&tree, ag, options_.max_lhs_size);
      }
      phase_metrics_.Record("merge_induction", induction_watch.ElapsedSeconds(),
                            evidence.size());
      if (invalid == 0) break;
    }
    last_complete_level = level;
    // Checkpoint the fully validated level: the tree's FDs (pre-minimize —
    // this is resume state) and the evidence that shaped them, canonically
    // sorted so identical state yields identical snapshot bytes.
    if (sink_ != nullptr) {
      Stopwatch ckpt_watch;
      std::vector<AttributeSet> evidence_sorted(seen_agree_sets.begin(),
                                                seen_agree_sets.end());
      std::sort(evidence_sorted.begin(), evidence_sorted.end());
      NORMALIZE_RETURN_IF_ERROR(
          sink_->OnMergeLevel(level, tree.CollectAllFds(), evidence_sorted));
      phase_metrics_.Record("checkpoint_merge_level",
                            ckpt_watch.ElapsedSeconds());
    }
  }

  MinimizeCover(&tree);
  return RemapToGlobal(tree.CollectAllFds(), shards[0]);
}

}  // namespace normalize
