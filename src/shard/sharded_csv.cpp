#include "shard/sharded_csv.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string_view>
#include <thread>
#include <utility>

namespace normalize {

namespace {

constexpr size_t kDefaultMemoryBudget = 4u << 20;  // 4 MiB

/// Quote state carried across chunk boundaries.
struct ScanState {
  bool in_quotes = false;
  /// The current cell started with an opening quote.
  bool cell_quoted = false;
  /// The current cell has accumulated unquoted text (mirrors
  /// ParseCsvRecord's `!cell.text.empty()` gate for opening a quote).
  bool cell_has_text = false;
};

/// Advances the scan over buffer[*scan_pos, end), locating record
/// terminators under ParseCsvRecord's quoting rules. *last_boundary is set
/// to one past the last terminator seen. Two look-ahead cases are ambiguous
/// at the end of a non-final buffer and left unscanned for the next call:
/// a quote inside a quoted cell (start of a `""` escape or a closing quote?)
/// and a trailing '\r' (lone terminator or first half of "\r\n"?).
void ScanRecordBoundaries(std::string_view buffer, const CsvOptions& opt,
                          bool final_data, size_t* scan_pos, ScanState* st,
                          size_t* last_boundary) {
  size_t i = *scan_pos;
  const size_t n = buffer.size();
  while (i < n) {
    char c = buffer[i];
    if (st->in_quotes) {
      if (c == opt.quote) {
        if (i + 1 >= n && !final_data) break;
        if (i + 1 < n && buffer[i + 1] == opt.quote) {
          i += 2;  // escaped quote, still inside the cell
        } else {
          st->in_quotes = false;
          ++i;
        }
      } else {
        ++i;  // newlines and delimiters are content here
      }
      continue;
    }
    if (c == opt.quote && !st->cell_has_text && !st->cell_quoted) {
      st->in_quotes = true;
      st->cell_quoted = true;
      ++i;
      continue;
    }
    if (c == opt.delimiter) {
      st->cell_quoted = false;
      st->cell_has_text = false;
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      if (c == '\r') {
        if (i + 1 >= n && !final_data) break;
        if (i + 1 < n && buffer[i + 1] == '\n') ++i;
      }
      ++i;
      *last_boundary = i;
      st->cell_quoted = false;
      st->cell_has_text = false;
      continue;
    }
    st->cell_has_text = true;
    ++i;
  }
  *scan_pos = i;
}

/// Streaming ingest state machine: accumulates bytes into a bounded buffer,
/// parses every complete record out of it, and assembles shards that share
/// one set of value dictionaries (via a row-less prototype relation).
class Ingest {
 public:
  Ingest(const CsvOptions& csv_options, const ShardOptions& shard_options,
         std::string name)
      : opt_(csv_options),
        shard_(shard_options),
        name_(std::move(name)),
        budget_(shard_options.memory_budget_bytes > 0
                    ? shard_options.memory_budget_bytes
                    : kDefaultMemoryBudget),
        chunk_size_(std::max<size_t>(1, budget_ / 2)) {}

  size_t chunk_size() const { return chunk_size_; }

  Status Feed(std::string_view bytes) {
    while (!bytes.empty()) {
      size_t take = std::min(bytes.size(), chunk_size_);
      if (buffer_.size() + take > budget_) {
        // buffer_ holds exactly one incomplete record (everything before the
        // last boundary has been parsed and erased), so the record needs
        // more than budget - chunk_size >= budget/2 bytes.
        return Status::ResourceExhausted(
            "CSV record at data row " + std::to_string(total_rows_ + 1) +
            " larger than half the ingest memory budget (" +
            std::to_string(budget_) + " bytes); raise memory_budget_bytes");
      }
      buffer_.append(bytes.data(), take);
      bytes.remove_prefix(take);
      peak_buffer_bytes_ = std::max(peak_buffer_bytes_, buffer_.size());
      NORMALIZE_RETURN_IF_ERROR(ProcessBuffer(/*final_data=*/false));
    }
    return Status::OK();
  }

  Result<ShardedRelation> Finish() {
    NORMALIZE_RETURN_IF_ERROR(ProcessBuffer(/*final_data=*/true));
    // What remains is the final record without a trailing newline (or an
    // unterminated quoted cell, which ParseCsvRecord rejects).
    size_t pos = 0;
    while (pos < buffer_.size()) {
      auto record = ParseCsvRecord(buffer_, &pos, opt_);
      if (!record.ok()) return record.status();
      NORMALIZE_RETURN_IF_ERROR(EmitRecord(*record));
    }
    buffer_.clear();
    if (opt_.has_header && !header_seen_) {
      return Status::InvalidArgument("empty CSV input but header expected");
    }
    if (current_ && (current_->num_rows() > 0 || shards_.empty())) {
      shards_.push_back(std::move(*current_));
    }
    current_.reset();
    if (shards_.empty()) {
      // Header-only (or entirely empty) input: one empty shard, mirroring
      // CsvReader's empty relation.
      std::vector<AttributeId> ids(names_.size());
      for (size_t i = 0; i < names_.size(); ++i) {
        ids[i] = static_cast<AttributeId>(i);
      }
      shards_.emplace_back(name_ + ".shard0", std::move(ids), names_);
    }
    ShardedRelation out;
    out.name = name_;
    out.shards = std::move(shards_);
    out.total_rows = total_rows_;
    out.peak_ingest_buffer_bytes = peak_buffer_bytes_;
    return out;
  }

 private:
  Status ProcessBuffer(bool final_data) {
    ScanRecordBoundaries(buffer_, opt_, final_data, &scan_pos_, &scan_state_,
                         &last_boundary_);
    size_t pos = 0;
    std::string_view complete =
        std::string_view(buffer_).substr(0, last_boundary_);
    while (pos < complete.size()) {
      auto record = ParseCsvRecord(complete, &pos, opt_);
      if (!record.ok()) return record.status();
      NORMALIZE_RETURN_IF_ERROR(EmitRecord(*record));
    }
    if (pos > 0) {
      buffer_.erase(0, pos);
      scan_pos_ -= pos;
      last_boundary_ -= pos;
    }
    return Status::OK();
  }

  Status EmitRecord(const std::vector<CsvCell>& record) {
    if (opt_.has_header && !header_seen_) {
      header_seen_ = true;
      for (const CsvCell& c : record) names_.push_back(c.text);
      return Status::OK();
    }
    // Blank-line handling as in CsvReader::ReadString.
    if (IsBlankCsvRecord(record) && names_.size() != 1) return Status::OK();
    if (names_.empty()) {
      for (size_t i = 0; i < record.size(); ++i) {
        names_.push_back("column" + std::to_string(i));
      }
    }
    if (record.size() != names_.size()) {
      return Status::InvalidArgument(
          "row " + std::to_string(total_rows_ + 1) + " has " +
          std::to_string(record.size()) + " cells, expected " +
          std::to_string(names_.size()));
    }
    if (!prototype_) {
      std::vector<AttributeId> ids(names_.size());
      for (size_t i = 0; i < names_.size(); ++i) {
        ids[i] = static_cast<AttributeId>(i);
      }
      prototype_.emplace(name_, std::move(ids), names_);
      StartShard();
    }
    CsvRecordToRow(record, opt_, &row_, &nulls_);
    current_->AppendRow(row_, nulls_);
    ++total_rows_;
    if (shard_.shard_rows > 0 && current_->num_rows() >= shard_.shard_rows) {
      shards_.push_back(std::move(*current_));
      StartShard();
    }
    return Status::OK();
  }

  void StartShard() {
    current_.emplace(RelationData::EmptyLike(
        *prototype_, name_ + ".shard" + std::to_string(shards_.size())));
  }

  const CsvOptions opt_;
  const ShardOptions shard_;
  const std::string name_;
  const size_t budget_;
  const size_t chunk_size_;

  std::string buffer_;       // carry-over + current chunk, <= budget_
  size_t scan_pos_ = 0;      // first unscanned byte of buffer_
  size_t last_boundary_ = 0; // one past the last record terminator
  ScanState scan_state_;
  size_t peak_buffer_bytes_ = 0;

  bool header_seen_ = false;
  std::vector<std::string> names_;
  /// Row-less relation owning the shared dictionaries; every shard is
  /// EmptyLike(prototype_).
  std::optional<RelationData> prototype_;
  std::optional<RelationData> current_;
  std::vector<RelationData> shards_;
  size_t total_rows_ = 0;
  std::vector<std::string> row_;
  std::vector<bool> nulls_;
};

}  // namespace

Result<ShardedRelation> ShardedCsvReader::ReadSource(
    ByteSource* source, const std::string& relation_name) const {
  ByteSource* stream = source;
  std::optional<FaultInjectingByteSource> faulty;
  if (context_ != nullptr && context_->faults != nullptr) {
    faulty.emplace(source, context_->faults);
    stream = &*faulty;
  }
  Ingest ingest(csv_options_, shard_options_, relation_name);
  std::string chunk(ingest.chunk_size(), '\0');
  while (true) {
    NORMALIZE_RETURN_IF_ERROR(CheckRunContext(context_));
    Result<size_t> got = stream->Read(chunk.data(), chunk.size());
    if (!got.ok()) return got.status();
    if (*got == 0) break;
    NORMALIZE_RETURN_IF_ERROR(
        ingest.Feed(std::string_view(chunk.data(), *got)));
  }
  return ingest.Finish();
}

Result<ShardedRelation> ShardedCsvReader::ReadFile(
    const std::string& path, const std::string& relation_name) const {
  FileByteSource file(path);
  std::string name =
      relation_name.empty() ? RelationNameFromPath(path) : relation_name;
  return ReadSource(&file, name);
}

Result<ShardedRelation> ShardedCsvReader::ReadString(
    const std::string& content, const std::string& relation_name) const {
  StringByteSource source(content);
  return ReadSource(&source, relation_name);
}

Result<ShardedRelation> ShardedCsvReader::ReadFileWithRetry(
    const std::string& path, const RetryPolicy& policy, size_t* retries_out,
    const std::string& relation_name) const {
  size_t retries = 0;
  int max_attempts = std::max(1, policy.max_attempts);
  for (int attempt = 0;; ++attempt) {
    Result<ShardedRelation> result = ReadFile(path, relation_name);
    if (result.ok() || !policy.IsRetryable(result.status()) ||
        attempt + 1 >= max_attempts) {
      if (retries_out != nullptr) *retries_out = retries;
      return result;
    }
    ++retries;
    double backoff_ms = policy.BackoffMillis(attempt);
    if (context_ != nullptr && context_->deadline.has_deadline()) {
      // Never sleep past the run's deadline; the next attempt's context
      // check surfaces kDeadlineExceeded if it has already passed.
      double remaining_ms = context_->deadline.RemainingSeconds() * 1e3;
      backoff_ms = std::min(backoff_ms, std::max(0.0, remaining_ms));
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
  }
}

}  // namespace normalize
