// Row-range shards of a relation. All shards of one relation share their
// columns' value dictionaries (relation_data.hpp), so a dictionary code
// denotes the same string in every shard — the property the partitioned
// discovery driver (sharded_discovery.hpp) relies on to compare cells across
// shards without touching strings.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "relation/relation_data.hpp"

namespace normalize {

/// A relation materialized as row-range shards with shared dictionaries.
struct ShardedRelation {
  /// Base relation name (shards are named "<name>.shard<i>").
  std::string name;
  std::vector<RelationData> shards;
  /// Total data rows across all shards.
  size_t total_rows = 0;
  /// Peak size of the streaming ingest text buffer (carry + chunk). Stays
  /// within ShardOptions::memory_budget_bytes; 0 for in-memory slicing.
  size_t peak_ingest_buffer_bytes = 0;

  /// Stitches the shards back into one relation (sharing the dictionaries).
  RelationData Concatenate(const std::string& name) const;
};

/// Slices an in-memory relation into shards of at most `shard_rows` rows
/// that share the source's dictionaries. `shard_rows == 0` (or >= num_rows)
/// yields one shard covering all rows. Row order is preserved; no shard is
/// empty unless the source has no rows.
std::vector<RelationData> SliceIntoShards(const RelationData& data,
                                          size_t shard_rows);

/// Concatenates row-range shards (sharing dictionaries, identical schemas)
/// back into one relation named `name`.
RelationData ConcatenateShards(const std::vector<RelationData>& shards,
                               const std::string& name);

}  // namespace normalize
