// Out-of-core CSV ingest: streams a file in bounded-memory chunks and
// materializes it as row-range shards with shared value dictionaries
// (shard_relation.hpp). Record boundaries are found by an incremental
// scanner that mirrors ParseCsvRecord's quoting rules, so quoted cells with
// embedded newlines/delimiters survive arbitrary chunk splits; the actual
// cell parsing reuses ParseCsvRecord on complete-record prefixes — the two
// readers cannot diverge grammatically.
//
// All bytes flow through the ByteSource seam (byte_source.hpp): production
// reads use FileByteSource, and when the reader's RunContext carries a
// FaultInjector the stream is transparently wrapped so short reads,
// transient errors, and truncations can be injected at exact byte offsets.
#pragma once

#include <string>

#include "common/byte_source.hpp"
#include "common/result.hpp"
#include "common/run_context.hpp"
#include "relation/csv.hpp"
#include "shard/shard_options.hpp"
#include "shard/shard_relation.hpp"

namespace normalize {

class ShardedCsvReader {
 public:
  explicit ShardedCsvReader(CsvOptions csv_options = {},
                            ShardOptions shard_options = {},
                            const RunContext* context = nullptr)
      : csv_options_(csv_options),
        shard_options_(shard_options),
        context_(context) {}

  /// Streams a CSV file into shards of at most shard_options.shard_rows rows
  /// (one shard when 0). The text buffer never exceeds
  /// shard_options.memory_budget_bytes; a single record larger than the
  /// budget fails with kResourceExhausted naming the offending row. Parses
  /// identically to CsvReader::ReadFile.
  Result<ShardedRelation> ReadFile(const std::string& path,
                                   const std::string& relation_name = "") const;

  /// Same pipeline over an in-memory string, fed through the chunked code
  /// path (chunk size derived from the memory budget) — primarily for tests.
  Result<ShardedRelation> ReadString(const std::string& content,
                                     const std::string& relation_name) const;

  /// One ingest attempt over an arbitrary byte stream — the seam ReadFile
  /// and ReadString feed. Polls the RunContext between chunks (kCancelled /
  /// kDeadlineExceeded stop the ingest) and, when the context carries a
  /// FaultInjector, routes every read through it.
  Result<ShardedRelation> ReadSource(ByteSource* source,
                                     const std::string& relation_name) const;

  /// ReadFile with capped-exponential-backoff retries of transient
  /// (kUnavailable) failures, per `policy`. Non-transient errors and
  /// interruptions surface immediately; backoff sleeps never overshoot the
  /// context deadline. `retries_out` (optional) receives the number of
  /// retries performed.
  Result<ShardedRelation> ReadFileWithRetry(
      const std::string& path, const RetryPolicy& policy,
      size_t* retries_out = nullptr,
      const std::string& relation_name = "") const;

 private:
  CsvOptions csv_options_;
  ShardOptions shard_options_;
  const RunContext* context_ = nullptr;
};

}  // namespace normalize
