// Out-of-core CSV ingest: streams a file in bounded-memory chunks and
// materializes it as row-range shards with shared value dictionaries
// (shard_relation.hpp). Record boundaries are found by an incremental
// scanner that mirrors ParseCsvRecord's quoting rules, so quoted cells with
// embedded newlines/delimiters survive arbitrary chunk splits; the actual
// cell parsing reuses ParseCsvRecord on complete-record prefixes — the two
// readers cannot diverge grammatically.
#pragma once

#include <string>

#include "common/result.hpp"
#include "relation/csv.hpp"
#include "shard/shard_options.hpp"
#include "shard/shard_relation.hpp"

namespace normalize {

class ShardedCsvReader {
 public:
  explicit ShardedCsvReader(CsvOptions csv_options = {},
                            ShardOptions shard_options = {})
      : csv_options_(csv_options), shard_options_(shard_options) {}

  /// Streams a CSV file into shards of at most shard_options.shard_rows rows
  /// (one shard when 0). The text buffer never exceeds
  /// shard_options.memory_budget_bytes; a single record larger than the
  /// budget fails with InvalidArgument. Parses identically to
  /// CsvReader::ReadFile.
  Result<ShardedRelation> ReadFile(const std::string& path,
                                   const std::string& relation_name = "") const;

  /// Same pipeline over an in-memory string, fed through the chunked code
  /// path (chunk size derived from the memory budget) — primarily for tests.
  Result<ShardedRelation> ReadString(const std::string& content,
                                     const std::string& relation_name) const;

 private:
  CsvOptions csv_options_;
  ShardOptions shard_options_;
};

}  // namespace normalize
