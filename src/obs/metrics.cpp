#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace normalize {

namespace {

// Clamp a requested layout into something sane rather than rejecting it: a
// histogram is a diagnostic instrument, not a place to fail a pipeline.
HistogramOptions SanitizeOptions(HistogramOptions options) {
  if (!(options.start > 0.0) || !std::isfinite(options.start)) {
    options.start = HistogramOptions{}.start;
  }
  if (!(options.factor > 1.0) || !std::isfinite(options.factor)) {
    options.factor = HistogramOptions{}.factor;
  }
  options.buckets = std::clamp(options.buckets, 1, 64);
  return options;
}

}  // namespace

Histogram::Histogram(HistogramOptions options) {
  options = SanitizeOptions(options);
  bounds_.reserve(static_cast<size_t>(options.buckets));
  double bound = options.start;
  for (int i = 0; i < options.buckets; ++i) {
    bounds_.push_back(bound);
    bound *= options.factor;
  }
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::Observe(double seconds) {
  if (!(seconds > 0.0)) seconds = 0.0;  // NaN and negatives clamp to zero
  size_t bucket = 0;
  while (bucket < bounds_.size() && seconds > bounds_[bucket]) ++bucket;
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Fixed-point accumulation: the nanosecond value of one observation is a
  // pure function of the observation, and uint64 addition commutes, so the
  // final sum is independent of thread interleaving.
  sum_nanos_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view labels) {
  MutexLock lock(mu_);
  auto& slot = counters_[Key(std::string(name), std::string(labels))];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view labels) {
  MutexLock lock(mu_);
  auto& slot = gauges_[Key(std::string(name), std::string(labels))];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         HistogramOptions options,
                                         std::string_view labels) {
  MutexLock lock(mu_);
  auto& slot = histograms_[Key(std::string(name), std::string(labels))];
  if (slot == nullptr) slot = std::make_unique<Histogram>(options);
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    snapshot.counters.push_back({key.first, key.second, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [key, gauge] : gauges_) {
    snapshot.gauges.push_back({key.first, key.second, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [key, histogram] : histograms_) {
    MetricsSnapshot::HistogramSample sample;
    sample.name = key.first;
    sample.labels = key.second;
    sample.bounds = histogram->bounds();
    sample.counts = histogram->bucket_counts();
    sample.count = histogram->count();
    sample.sum_nanos = histogram->sum_nanos();
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* const kDefault = new MetricsRegistry();  // leaked
  return kDefault;
}

namespace {

template <typename Sample>
const Sample* FindSample(const std::vector<Sample>& samples,
                         std::string_view name, std::string_view labels) {
  for (const auto& sample : samples) {
    if (sample.name == name && sample.labels == labels) return &sample;
  }
  return nullptr;
}

}  // namespace

const MetricsSnapshot::CounterSample* MetricsSnapshot::FindCounter(
    std::string_view name, std::string_view labels) const {
  return FindSample(counters, name, labels);
}

const MetricsSnapshot::GaugeSample* MetricsSnapshot::FindGauge(
    std::string_view name, std::string_view labels) const {
  return FindSample(gauges, name, labels);
}

const MetricsSnapshot::HistogramSample* MetricsSnapshot::FindHistogram(
    std::string_view name, std::string_view labels) const {
  return FindSample(histograms, name, labels);
}

void RecordPhaseMetrics(MetricsRegistry* registry, std::string_view component,
                        const PhaseMetrics& phases) {
  if (registry == nullptr) return;
  for (const auto& phase : phases.phases()) {
    std::string labels = "component=";
    labels.append(component);
    labels += ",phase=";
    labels += phase.name;
    registry->GetHistogram("normalize_phase_seconds", HistogramOptions{}, labels)
        ->Observe(phase.seconds);
    if (phase.count > 0) {
      registry->GetCounter("normalize_phase_items_total", labels)
          ->Increment(phase.count);
    }
  }
}

}  // namespace normalize
