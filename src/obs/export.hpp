// Exposition formats over MetricsSnapshot / SpanRecord — pure functions from
// plain data to strings. Nothing here touches a lock or a file descriptor:
// callers take a snapshot (registry/tracer locks released), then render and
// write wherever they like. That split is the subsystem's FDL001 story.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace normalize {

/// Prometheus text exposition format (version 0.0.4): `# TYPE` headers,
/// cumulative `_bucket{le=...}` lines plus `_sum`/`_count` per histogram.
/// Deterministic for a given snapshot (samples are already (name, labels)
/// ordered).
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// JSON snapshot: {"metrics_schema": 1, "counters": [...], "gauges": [...],
/// "histograms": [...], "spans": [...]}. Validated by
/// tools/check_metrics_json.py; deterministic for a given snapshot + spans.
std::string ToMetricsJson(const MetricsSnapshot& snapshot,
                          const std::vector<SpanRecord>& spans = {});

}  // namespace normalize
