// Trace spans: named, timed intervals carrying parent/child causality, so
// one service batch or one discovery run yields a coherent tree — batch →
// probe → publish — even when the work hops across ThreadPool workers.
//
// Propagation has two modes:
//   * ambient — each thread tracks its current span in a thread_local;
//     ScopedSpan(tracer, name) parents under it. Covers same-thread nesting
//     with zero plumbing.
//   * explicit — a coordinator captures `span.id()` into the lambda it hands
//     to ThreadPool/ParallelFor and opens ScopedSpan(tracer, name, parent_id)
//     on the worker. This is the pool-hop bridge; RunContext carries the
//     same pair (Tracer* + span id) through layers that already thread a
//     context (see common/run_context.hpp).
//
// The tracer retains a bounded ring of records (oldest evicted first), so a
// long-running daemon's span memory is capped; exports always see the most
// recent activity. Start/End take the tracer mutex but only touch memory —
// no I/O ever happens under it (fd_lint FDL001 holds by construction).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace normalize {

/// One finished-or-in-flight span. `parent == 0` marks a root; ids are
/// assigned 1, 2, 3, … in start order. Times are seconds since the tracer's
/// construction (a steady clock, so durations are meaningful; wall-clock
/// anchoring is the exporter consumer's concern).
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  bool finished = false;
};

struct TracerOptions {
  /// Retained-record cap; the oldest records are evicted beyond it. Ending
  /// an evicted span is a harmless no-op, and consumers treat a parent id
  /// they cannot find as a root (the parent aged out).
  size_t max_spans = 4096;
};

class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  /// Starts a span and returns its id (never 0). `parent == 0` = root.
  uint64_t StartSpan(std::string_view name, uint64_t parent = 0)
      NORMALIZE_EXCLUDES(mu_);
  /// Finishes the span; no-op if the record was evicted or the id unknown.
  void EndSpan(uint64_t id) NORMALIZE_EXCLUDES(mu_);

  /// Copies the retained records, in id (= start) order.
  std::vector<SpanRecord> Export() const NORMALIZE_EXCLUDES(mu_);

  uint64_t started_spans() const NORMALIZE_EXCLUDES(mu_);
  uint64_t evicted_spans() const NORMALIZE_EXCLUDES(mu_);

 private:
  double Now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  const TracerOptions options_;

  mutable Mutex mu_;
  uint64_t next_id_ NORMALIZE_GUARDED_BY(mu_) = 1;
  uint64_t evicted_ NORMALIZE_GUARDED_BY(mu_) = 0;
  std::deque<SpanRecord> spans_ NORMALIZE_GUARDED_BY(mu_);
};

/// The calling thread's ambient span id (0 if none). Maintained by
/// ScopedSpan; read it to capture an explicit parent before a pool hop.
uint64_t CurrentSpanId();

/// RAII span: starts on construction, ends on destruction, and makes itself
/// the thread's ambient span for its scope (restoring the previous one on
/// exit). A null tracer disables everything — no clock reads, no lock, no
/// ambient change — so span call sites cost one branch when tracing is off.
class ScopedSpan {
 public:
  /// Parents under the calling thread's ambient span.
  ScopedSpan(Tracer* tracer, std::string_view name);
  /// Parents under `parent` explicitly (the ThreadPool-hop constructor:
  /// capture the coordinator's span id into the worker lambda).
  ScopedSpan(Tracer* tracer, std::string_view name, uint64_t parent);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// This span's id (0 when tracing is disabled) — pass as the explicit
  /// parent across pool hops.
  uint64_t id() const { return id_; }

 private:
  Tracer* tracer_;
  uint64_t id_ = 0;
  uint64_t saved_ambient_ = 0;
};

}  // namespace normalize
