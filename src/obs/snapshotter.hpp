// Periodic snapshot publication, CoverSnapshot-style: a background thread
// builds a MetricsSnapshot every interval (outside any lock) and swaps an
// immutable shared_ptr under a mutex. Readers grab the latest coherent
// snapshot with one pointer copy and never contend with instrument updates;
// the METRICS service request and scrape endpoints serve from here so a slow
// scraper can never stall a writer.
#pragma once

#include <condition_variable>
#include <memory>
#include <thread>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"

namespace normalize {

struct MetricsSnapshotterOptions {
  double interval_ms = 1000.0;
};

class MetricsSnapshotter {
 public:
  /// `registry` must outlive the snapshotter; not owned.
  MetricsSnapshotter(const MetricsRegistry* registry,
                     MetricsSnapshotterOptions options = {});
  ~MetricsSnapshotter();

  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

  /// Starts the publication thread (idempotent) and publishes an initial
  /// snapshot synchronously so Latest() is never null after Start().
  void Start() NORMALIZE_EXCLUDES(mu_);
  /// Stops the thread promptly (the tick wait is condition-variable based,
  /// not a dumb sleep). Idempotent; also run by the destructor.
  void Stop() NORMALIZE_EXCLUDES(mu_);

  /// The most recently published snapshot (null before the first Start()
  /// or PublishNow()).
  std::shared_ptr<const MetricsSnapshot> Latest() const
      NORMALIZE_EXCLUDES(mu_);

  /// Builds and publishes a snapshot immediately (outside any lock), for
  /// request paths that need fresher data than the periodic tick — e.g. the
  /// service's METRICS request publishes before serving.
  void PublishNow() NORMALIZE_EXCLUDES(mu_);

 private:
  void Loop();

  const MetricsRegistry* const registry_;
  const MetricsSnapshotterOptions options_;

  mutable Mutex mu_;
  std::condition_variable wake_cv_;
  bool stop_ NORMALIZE_GUARDED_BY(mu_) = false;
  bool running_ NORMALIZE_GUARDED_BY(mu_) = false;
  std::shared_ptr<const MetricsSnapshot> published_ NORMALIZE_GUARDED_BY(mu_);
  std::thread thread_;
};

}  // namespace normalize
