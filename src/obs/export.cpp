#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

namespace normalize {

namespace {

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out->append(buf);
}

void AppendU64(std::string* out, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out->append(buf);
}

// Escapes for both Prometheus label values and JSON strings (the shared
// subset: backslash, double quote, newline — our names/labels are plain
// identifiers, this is belt and braces).
void AppendEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

// Renders plain `k=v[,k2=v2]` labels as Prometheus `{k="v",k2="v2"}`;
// empty labels render as nothing.
void AppendPromLabels(std::string* out, std::string_view labels) {
  if (labels.empty()) return;
  out->push_back('{');
  size_t pos = 0;
  bool first = true;
  while (pos <= labels.size()) {
    size_t comma = labels.find(',', pos);
    if (comma == std::string_view::npos) comma = labels.size();
    std::string_view pair = labels.substr(pos, comma - pos);
    if (!pair.empty()) {
      if (!first) out->push_back(',');
      first = false;
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out->append(pair);
        out->append("=\"\"");
      } else {
        out->append(pair.substr(0, eq));
        out->append("=\"");
        AppendEscaped(out, pair.substr(eq + 1));
        out->push_back('"');
      }
    }
    pos = comma + 1;
  }
  out->push_back('}');
}

// Emits a `# TYPE` header the first time each metric name appears; samples
// arrive (name, labels)-sorted, so a name change marks a new family.
void AppendTypeHeader(std::string* out, std::string* last_name,
                      const std::string& name, const char* type) {
  if (name == *last_name) return;
  *last_name = name;
  out->append("# TYPE ");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_name;
  for (const auto& sample : snapshot.counters) {
    AppendTypeHeader(&out, &last_name, sample.name, "counter");
    out.append(sample.name);
    AppendPromLabels(&out, sample.labels);
    out.push_back(' ');
    AppendU64(&out, sample.value);
    out.push_back('\n');
  }
  last_name.clear();
  for (const auto& sample : snapshot.gauges) {
    AppendTypeHeader(&out, &last_name, sample.name, "gauge");
    out.append(sample.name);
    AppendPromLabels(&out, sample.labels);
    out.push_back(' ');
    AppendI64(&out, sample.value);
    out.push_back('\n');
  }
  last_name.clear();
  for (const auto& sample : snapshot.histograms) {
    AppendTypeHeader(&out, &last_name, sample.name, "histogram");
    // Prometheus buckets are cumulative; our samples carry per-bucket counts.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < sample.counts.size(); ++i) {
      cumulative += sample.counts[i];
      out.append(sample.name);
      out.append("_bucket");
      std::string labels(sample.labels);
      if (!labels.empty()) labels.push_back(',');
      labels.append("le=");
      if (i < sample.bounds.size()) {
        std::string bound;
        AppendDouble(&bound, sample.bounds[i]);
        labels.append(bound);
      } else {
        labels.append("+Inf");
      }
      AppendPromLabels(&out, labels);
      out.push_back(' ');
      AppendU64(&out, cumulative);
      out.push_back('\n');
    }
    out.append(sample.name);
    out.append("_sum");
    AppendPromLabels(&out, sample.labels);
    out.push_back(' ');
    AppendDouble(&out, sample.sum_seconds());
    out.push_back('\n');
    out.append(sample.name);
    out.append("_count");
    AppendPromLabels(&out, sample.labels);
    out.push_back(' ');
    AppendU64(&out, sample.count);
    out.push_back('\n');
  }
  return out;
}

namespace {

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  AppendEscaped(out, text);
  out->push_back('"');
}

}  // namespace

std::string ToMetricsJson(const MetricsSnapshot& snapshot,
                          const std::vector<SpanRecord>& spans) {
  std::string out;
  out.append("{\n  \"metrics_schema\": 1,\n  \"counters\": [");
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& sample = snapshot.counters[i];
    out.append(i == 0 ? "\n" : ",\n");
    out.append("    {\"name\": ");
    AppendJsonString(&out, sample.name);
    out.append(", \"labels\": ");
    AppendJsonString(&out, sample.labels);
    out.append(", \"value\": ");
    AppendU64(&out, sample.value);
    out.push_back('}');
  }
  out.append(snapshot.counters.empty() ? "],\n" : "\n  ],\n");
  out.append("  \"gauges\": [");
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& sample = snapshot.gauges[i];
    out.append(i == 0 ? "\n" : ",\n");
    out.append("    {\"name\": ");
    AppendJsonString(&out, sample.name);
    out.append(", \"labels\": ");
    AppendJsonString(&out, sample.labels);
    out.append(", \"value\": ");
    AppendI64(&out, sample.value);
    out.push_back('}');
  }
  out.append(snapshot.gauges.empty() ? "],\n" : "\n  ],\n");
  out.append("  \"histograms\": [");
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& sample = snapshot.histograms[i];
    out.append(i == 0 ? "\n" : ",\n");
    out.append("    {\"name\": ");
    AppendJsonString(&out, sample.name);
    out.append(", \"labels\": ");
    AppendJsonString(&out, sample.labels);
    out.append(", \"bounds\": [");
    for (size_t b = 0; b < sample.bounds.size(); ++b) {
      if (b > 0) out.append(", ");
      AppendDouble(&out, sample.bounds[b]);
    }
    out.append("], \"counts\": [");
    for (size_t b = 0; b < sample.counts.size(); ++b) {
      if (b > 0) out.append(", ");
      AppendU64(&out, sample.counts[b]);
    }
    out.append("], \"count\": ");
    AppendU64(&out, sample.count);
    out.append(", \"sum_seconds\": ");
    AppendDouble(&out, sample.sum_seconds());
    out.push_back('}');
  }
  out.append(snapshot.histograms.empty() ? "],\n" : "\n  ],\n");
  out.append("  \"spans\": [");
  for (size_t i = 0; i < spans.size(); ++i) {
    const auto& span = spans[i];
    out.append(i == 0 ? "\n" : ",\n");
    out.append("    {\"id\": ");
    AppendU64(&out, span.id);
    out.append(", \"parent\": ");
    AppendU64(&out, span.parent);
    out.append(", \"name\": ");
    AppendJsonString(&out, span.name);
    out.append(", \"start_seconds\": ");
    AppendDouble(&out, span.start_seconds);
    out.append(", \"duration_seconds\": ");
    AppendDouble(&out, span.duration_seconds);
    out.append(", \"finished\": ");
    out.append(span.finished ? "true" : "false");
    out.push_back('}');
  }
  out.append(spans.empty() ? "]\n" : "\n  ]\n");
  out.append("}\n");
  return out;
}

}  // namespace normalize
