// The observability substrate (src/obs/): a process-wide registry of typed,
// named instruments that every layer — discovery backends, the shard merge,
// the incremental maintainer, the durable service — reports into, so one
// scrape (Prometheus text) or one JSON snapshot describes the whole process.
// Dependency-free by design: the exporters (obs/export.hpp) and the periodic
// snapshotter (obs/snapshotter.hpp) sit on top of plain snapshots.
//
// Three instrument kinds, all updated with lock-free relaxed atomics (no
// instrument update ever takes a lock, so instrumenting a critical section
// is always FDL001-safe):
//
//   Counter    monotonic uint64 (events, bytes); Increment/Add only.
//   Gauge      int64 point-in-time value (queue depth); Set/Add/MaxWith.
//   Histogram  fixed-boundary exponential buckets. Per-bucket counts and the
//              running sum are plain integer fetch_adds — integer addition
//              commutes, so the same observation stream produces bit-identical
//              bucket counts and sums at ANY thread count (the determinism
//              the obs tests pin). The sum accumulates in fixed-point
//              nanoseconds for exactly that reason: double addition does not
//              commute, uint64 addition does.
//
// The registry's Mutex guards only registration and snapshot enumeration —
// never the hot update path. Instrument pointers returned by Get*() are
// stable for the registry's lifetime, so callers resolve them once (at
// construction / open time) and update through the pointer. A null registry
// pointer everywhere means "instrumentation disabled": call sites guard with
// the null-safe helpers below and pay one branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_annotations.hpp"

namespace normalize {

/// Monotonic event/byte counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value (queue depth, live evidence size).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `value` if larger (peak tracking); lock-free CAS.
  void MaxWith(int64_t value) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed exponential bucket layout: finite upper bounds start * factor^i for
/// i in [0, buckets), plus an implicit +Inf overflow bucket. The default
/// spans 1µs .. ~17min at factor 4 — wide enough for WAL appends and full
/// discovery runs alike. Re-registering a histogram name keeps the FIRST
/// layout; later options are ignored (bucket layouts must agree process-wide
/// for merges to make sense).
struct HistogramOptions {
  double start = 1e-6;
  double factor = 4.0;
  int buckets = 16;
};

class Histogram {
 public:
  explicit Histogram(HistogramOptions options);

  /// Records one observation in seconds. NaN and negatives clamp to 0.
  /// Lock-free; bit-deterministic under any interleaving (see file comment).
  void Observe(double seconds);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; bounds().size() + 1 entries, the
  /// last being the +Inf overflow bucket.
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_nanos() const {
    return sum_nanos_.load(std::memory_order_relaxed);
  }
  double sum_seconds() const { return static_cast<double>(sum_nanos()) * 1e-9; }

 private:
  std::vector<double> bounds_;  // immutable after construction
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
};

/// A plain-data view of every instrument at one moment, ordered by
/// (name, labels) so exports and golden tests are deterministic. Labels are
/// stored in the registry's plain `k=v[,k2=v2]` form; the exporters render
/// them per format.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::string labels;
    uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::string labels;
    int64_t value = 0;
  };
  struct HistogramSample {
    std::string name;
    std::string labels;
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  // bounds.size() + 1 (last = +Inf)
    uint64_t count = 0;
    uint64_t sum_nanos = 0;
    double sum_seconds() const { return static_cast<double>(sum_nanos) * 1e-9; }
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* FindCounter(std::string_view name,
                                   std::string_view labels = "") const;
  const GaugeSample* FindGauge(std::string_view name,
                               std::string_view labels = "") const;
  const HistogramSample* FindHistogram(std::string_view name,
                                       std::string_view labels = "") const;
};

/// Name+labels keyed instrument registry. Get*() registers on first use and
/// returns the same stable pointer afterwards; labels are a plain
/// `key=value[,key2=value2]` string ("" = unlabelled).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view labels = "")
      NORMALIZE_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name, std::string_view labels = "")
      NORMALIZE_EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name, HistogramOptions options = {},
                          std::string_view labels = "")
      NORMALIZE_EXCLUDES(mu_);

  /// A coherent-enough view: each instrument is read atomically; the set of
  /// instruments is enumerated under the registration mutex. Pure memory
  /// reads — no I/O happens under mu_ (exporting a snapshot to a socket or
  /// file is the caller's job, on the returned copy, outside every lock).
  MetricsSnapshot Snapshot() const NORMALIZE_EXCLUDES(mu_);

  /// The process-wide default registry (leaked singleton). Library code
  /// takes an explicit MetricsRegistry* instead of reaching for this; the
  /// default exists for tools and one-process CLIs.
  static MetricsRegistry* Default();

 private:
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  mutable Mutex mu_;
  // std::map for deterministic (name, labels) iteration order in Snapshot().
  std::map<Key, std::unique_ptr<Counter>> counters_ NORMALIZE_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Gauge>> gauges_ NORMALIZE_GUARDED_BY(mu_);
  std::map<Key, std::unique_ptr<Histogram>> histograms_
      NORMALIZE_GUARDED_BY(mu_);
};

// --- null-safe call-site helpers -------------------------------------------
// A null instrument pointer means the owning layer was built without a
// registry; the helpers make "instrumentation disabled" cost one branch.

inline void IncrementCounter(Counter* counter, uint64_t delta = 1) {
  if (counter != nullptr) counter->Increment(delta);
}
inline void SetGauge(Gauge* gauge, int64_t value) {
  if (gauge != nullptr) gauge->Set(value);
}
inline void ObserveHistogram(Histogram* histogram, double seconds) {
  if (histogram != nullptr) histogram->Observe(seconds);
}

/// RAII latency probe: observes the scope's elapsed wall time into the
/// histogram on destruction. Null histogram = no-op (and no clock reads).
class LatencyTimer {
 public:
  explicit LatencyTimer(Histogram* histogram) : histogram_(histogram) {}
  ~LatencyTimer() { Stop(); }

  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

  /// Records now instead of at scope exit; later calls are no-ops.
  void Stop() {
    if (histogram_ == nullptr) return;
    histogram_->Observe(watch_.ElapsedSeconds());
    histogram_ = nullptr;
  }

 private:
  Histogram* histogram_;
  Stopwatch watch_;
};

/// Edge adapter from the legacy per-phase accumulator: folds a PhaseMetrics
/// into the registry as one histogram observation (wall seconds) and one
/// counter add (item count) per phase, labelled by component and phase name.
/// Discovery backends keep filling PhaseMetrics exactly as before — the
/// registry observes at the edges, so phase_metrics() consumers are
/// untouched. Null registry = no-op.
void RecordPhaseMetrics(MetricsRegistry* registry, std::string_view component,
                        const PhaseMetrics& phases);

}  // namespace normalize
