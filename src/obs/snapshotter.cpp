#include "obs/snapshotter.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace normalize {

MetricsSnapshotter::MetricsSnapshotter(const MetricsRegistry* registry,
                                       MetricsSnapshotterOptions options)
    : registry_(registry), options_(options) {}

MetricsSnapshotter::~MetricsSnapshotter() { Stop(); }

void MetricsSnapshotter::Start() {
  {
    MutexLock lock(mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  PublishNow();
  thread_ = std::thread([this] { Loop(); });
}

void MetricsSnapshotter::Stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  MutexLock lock(mu_);
  running_ = false;
}

std::shared_ptr<const MetricsSnapshot> MetricsSnapshotter::Latest() const {
  MutexLock lock(mu_);
  return published_;
}

void MetricsSnapshotter::PublishNow() {
  // Built outside mu_: Snapshot() takes only the registry's own mutex, so
  // publication never holds two locks at once and readers of Latest() only
  // ever wait on a pointer swap.
  auto snapshot = std::make_shared<const MetricsSnapshot>(registry_->Snapshot());
  MutexLock lock(mu_);
  published_ = std::move(snapshot);
}

void MetricsSnapshotter::Loop() {
  const auto interval = std::chrono::duration<double, std::milli>(
      std::max(1.0, options_.interval_ms));
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stop_) return;
      lock.WaitFor(wake_cv_, interval);
      if (stop_) return;
    }
    PublishNow();
  }
}

}  // namespace normalize
