#include "obs/span.hpp"

#include <algorithm>

namespace normalize {

namespace {
// One ambient slot per thread is enough: a process realistically runs one
// tracer, and nested tracers would still restore correctly through the
// ScopedSpan save/restore discipline.
thread_local uint64_t g_ambient_span = 0;
}  // namespace

Tracer::Tracer(TracerOptions options) : options_(options) {}

uint64_t Tracer::StartSpan(std::string_view name, uint64_t parent) {
  const double now = Now();
  MutexLock lock(mu_);
  SpanRecord record;
  record.id = next_id_++;
  record.parent = parent;
  record.name = std::string(name);
  record.start_seconds = now;
  spans_.push_back(std::move(record));
  const size_t cap = std::max<size_t>(1, options_.max_spans);
  while (spans_.size() > cap) {
    spans_.pop_front();
    ++evicted_;
  }
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id) {
  if (id == 0) return;
  const double now = Now();
  MutexLock lock(mu_);
  // Recent spans live near the back; scan from there.
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->id != id) continue;
    it->duration_seconds = now - it->start_seconds;
    it->finished = true;
    return;
  }
}

std::vector<SpanRecord> Tracer::Export() const {
  MutexLock lock(mu_);
  return std::vector<SpanRecord>(spans_.begin(), spans_.end());
}

uint64_t Tracer::started_spans() const {
  MutexLock lock(mu_);
  return next_id_ - 1;
}

uint64_t Tracer::evicted_spans() const {
  MutexLock lock(mu_);
  return evicted_;
}

uint64_t CurrentSpanId() { return g_ambient_span; }

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name)
    : ScopedSpan(tracer, name, g_ambient_span) {}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name, uint64_t parent)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  id_ = tracer_->StartSpan(name, parent);
  saved_ambient_ = g_ambient_span;
  g_ambient_span = id_;
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr || id_ == 0) return;
  g_ambient_span = saved_ambient_;
  tracer_->EndSpan(id_);
}

}  // namespace normalize
