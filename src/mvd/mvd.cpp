#include "mvd/mvd.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "fd/set_trie.hpp"
#include "pli/pli.hpp"
#include "relation/operations.hpp"

namespace normalize {

namespace {

struct CodeVecHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    size_t h = 1469598103934665603ull;
    for (ValueId x : v) {
      h ^= static_cast<size_t>(x) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

std::vector<int> ColumnsOf(const RelationData& data, const AttributeSet& set) {
  std::vector<int> cols;
  for (AttributeId a : set) {
    int ci = data.ColumnIndexOf(a);
    if (ci >= 0) cols.push_back(ci);
  }
  return cols;
}

std::vector<ValueId> CodesAt(const RelationData& data,
                             const std::vector<int>& cols, size_t row) {
  std::vector<ValueId> codes(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    codes[i] = data.column(cols[i]).code(row);
  }
  return codes;
}

/// Groups the distinct rows of `data` by their code tuple over `group_cols`;
/// each group holds one representative row id per distinct full row.
std::unordered_map<std::vector<ValueId>, std::vector<RowId>, CodeVecHash>
GroupDistinctRows(const RelationData& data,
                  const std::vector<int>& group_cols) {
  // Distinct over ALL columns first (relations are sets; generated inputs
  // may carry duplicates).
  std::vector<int> all_cols(static_cast<size_t>(data.num_columns()));
  for (int i = 0; i < data.num_columns(); ++i) {
    all_cols[static_cast<size_t>(i)] = i;
  }
  std::unordered_set<std::vector<ValueId>, CodeVecHash> seen_rows;
  std::unordered_map<std::vector<ValueId>, std::vector<RowId>, CodeVecHash>
      groups;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    if (!seen_rows.insert(CodesAt(data, all_cols, r)).second) continue;
    groups[CodesAt(data, group_cols, r)].push_back(static_cast<RowId>(r));
  }
  return groups;
}

}  // namespace

std::string Mvd::ToString(const std::vector<std::string>& names) const {
  return lhs.ToString(names) + " ->> " + rhs.ToString(names);
}

std::string Mvd::ToString() const {
  return lhs.ToString() + " ->> " + rhs.ToString();
}

bool MvdHolds(const RelationData& data, const AttributeSet& lhs,
              const AttributeSet& rhs) {
  AttributeSet all = data.AttributesAsSet();
  AttributeSet y = rhs.Intersect(all).Difference(lhs);
  AttributeSet z = all.Difference(lhs).Difference(y);
  if (y.Empty() || z.Empty()) return true;  // trivial MVD

  std::vector<int> x_cols = ColumnsOf(data, lhs);
  std::vector<int> y_cols = ColumnsOf(data, y);
  std::vector<int> z_cols = ColumnsOf(data, z);

  auto groups = GroupDistinctRows(data, x_cols);
  for (const auto& [x_codes, rows] : groups) {
    if (rows.size() < 2) continue;
    std::unordered_set<std::vector<ValueId>, CodeVecHash> y_vals, z_vals,
        yz_vals;
    for (RowId r : rows) {
      std::vector<ValueId> yc = CodesAt(data, y_cols, r);
      std::vector<ValueId> zc = CodesAt(data, z_cols, r);
      std::vector<ValueId> yz = yc;
      yz.insert(yz.end(), zc.begin(), zc.end());
      y_vals.insert(std::move(yc));
      z_vals.insert(std::move(zc));
      yz_vals.insert(std::move(yz));
    }
    // The group factorizes iff its distinct (Y,Z) combinations are exactly
    // the cartesian product (they are always a subset, so counting works).
    if (yz_vals.size() != y_vals.size() * z_vals.size()) return false;
  }
  return true;
}

std::vector<Mvd> FindViolatingMvds(const RelationData& data,
                                   const std::vector<AttributeSet>& keys,
                                   MvdSearchOptions options) {
  std::vector<Mvd> result;
  AttributeSet all = data.AttributesAsSet();
  int universe = data.universe_size();

  SetTrie key_trie;
  for (const AttributeSet& key : keys) key_trie.Insert(key);

  AttributeSet nullable(universe);
  for (int c = 0; c < data.num_columns(); ++c) {
    if (data.column(c).has_null()) {
      nullable.Set(data.attribute_ids()[static_cast<size_t>(c)]);
    }
  }

  std::vector<AttributeId> attrs = all.ToVector();
  int n = static_cast<int>(attrs.size());
  int max_lhs = std::min(options.max_lhs_size, n - 2);

  // Enumerate LHS subsets of size 1..max_lhs.
  std::vector<int> idx;
  std::function<void(int, int)> enumerate = [&](int start, int remaining) {
    if (remaining == 0) {
      AttributeSet x(universe);
      for (int i : idx) x.Set(attrs[static_cast<size_t>(i)]);
      if (options.skip_nullable_lhs && x.Intersects(nullable)) return;
      if (key_trie.ContainsSubsetOf(x)) return;  // superkey LHS: 4NF-conform

      AttributeSet rest = all.Difference(x);
      std::vector<AttributeId> rest_attrs = rest.ToVector();
      int m = static_cast<int>(rest_attrs.size());
      if (m < 2) return;

      // Pairwise coupling over the X-groups: attributes that do not
      // factorize pairwise must share a dependency-basis block.
      auto groups = GroupDistinctRows(data, ColumnsOf(data, x));
      std::vector<int> parent(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) parent[static_cast<size_t>(i)] = i;
      std::function<int(int)> find = [&](int v) {
        while (parent[static_cast<size_t>(v)] != v) {
          v = parent[static_cast<size_t>(v)] =
              parent[static_cast<size_t>(parent[static_cast<size_t>(v)])];
        }
        return v;
      };
      auto unite = [&](int a, int b) {
        parent[static_cast<size_t>(find(a))] = find(b);
      };

      for (int i = 0; i < m; ++i) {
        int ci = data.ColumnIndexOf(rest_attrs[static_cast<size_t>(i)]);
        for (int j = i + 1; j < m; ++j) {
          if (find(i) == find(j)) continue;
          int cj = data.ColumnIndexOf(rest_attrs[static_cast<size_t>(j)]);
          for (const auto& [x_codes, rows] : groups) {
            if (rows.size() < 2) continue;
            std::unordered_set<ValueId> vi, vj;
            std::unordered_set<uint64_t> vij;
            for (RowId r : rows) {
              ValueId a = data.column(ci).code(r);
              ValueId b = data.column(cj).code(r);
              vi.insert(a);
              vj.insert(b);
              vij.insert(
                  (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
                  static_cast<uint32_t>(b));
            }
            if (vij.size() != vi.size() * vj.size()) {
              unite(i, j);
              break;
            }
          }
        }
      }

      // Each coupling component is a candidate Y; verify exactly.
      std::unordered_map<int, AttributeSet> components;
      for (int i = 0; i < m; ++i) {
        auto [it, inserted] = components.try_emplace(find(i), universe);
        it->second.Set(rest_attrs[static_cast<size_t>(i)]);
      }
      if (components.size() < 2) return;  // everything coupled: no split
      for (auto& [root, y] : components) {
        // Skip MVDs implied by plain FDs X -> Y: those are the BCNF stage's
        // business (and with X not a superkey, BCNF already rejected them).
        bool is_fd = true;
        for (AttributeId a : y) {
          if (!FdHolds(data, x, a)) {
            is_fd = false;
            break;
          }
        }
        if (is_fd) continue;
        if (MvdHolds(data, x, y)) result.push_back(Mvd{x, y});
      }
      return;
    }
    for (int i = start; i <= n - remaining; ++i) {
      idx.push_back(i);
      enumerate(i + 1, remaining - 1);
      idx.pop_back();
    }
  };
  for (int size = 1; size <= max_lhs; ++size) {
    idx.clear();
    enumerate(0, size);
  }

  // Prefer short LHSs and balanced splits (small Y first so the split-off
  // relation is compact).
  std::sort(result.begin(), result.end(), [](const Mvd& a, const Mvd& b) {
    if (a.lhs.Count() != b.lhs.Count()) return a.lhs.Count() < b.lhs.Count();
    return a.rhs.Count() < b.rhs.Count();
  });
  return result;
}

}  // namespace normalize
