// Multi-valued dependencies (MVDs) and the 4NF machinery the paper sketches
// in §6: "To calculate stricter normal forms than BCNF, we would need to
// have detected other kinds of dependencies. For example, constructing 4NF
// requires all multi-valued dependencies (MVDs) and, hence, an algorithm
// that discovers MVDs. The normalization algorithm, then, would work in the
// same manner."
//
// An MVD X ->> Y (with complement Z = R \ X \ Y) holds iff within every
// group of rows agreeing on X, the distinct (Y, Z) value combinations form
// the full cartesian product of the group's Y values and Z values — i.e.
// R = (X ∪ Y) ⋈ (X ∪ Z) losslessly.
#pragma once

#include <string>
#include <vector>

#include "common/attribute_set.hpp"
#include "relation/relation_data.hpp"

namespace normalize {

/// A multi-valued dependency lhs ->> rhs within the attribute set of one
/// relation; the complement side is implicit (relation attrs minus both).
struct Mvd {
  AttributeSet lhs;
  AttributeSet rhs;

  std::string ToString(const std::vector<std::string>& names) const;
  std::string ToString() const;
};

/// Exact instance check: does lhs ->> rhs hold on `data`? `rhs` must be
/// disjoint from `lhs`; attributes outside lhs ∪ rhs form the complement.
/// Duplicate rows are ignored (relations are sets). NULLs compare equal.
bool MvdHolds(const RelationData& data, const AttributeSet& lhs,
              const AttributeSet& rhs);

struct MvdSearchOptions {
  /// Maximum LHS size to search (like the FD pruning, small LHSs are the
  /// semantically plausible constraints).
  int max_lhs_size = 2;
  /// Skip LHSs that contain NULLs (they cannot anchor a decomposition key).
  bool skip_nullable_lhs = true;
};

/// Searches for *verified, 4NF-violating* MVDs of `data`: nontrivial MVDs
/// X ->> Y whose LHS is not a superkey (per `keys`), with both Y and the
/// complement non-empty, that are not implied by an FD X -> Y.
///
/// Candidate generation uses the pairwise-coupling heuristic: within each
/// X-group, attributes a and b are "coupled" when the group's {a,b}
/// projection is not the product of its a and b projections; connected
/// coupling components are candidate Y sides. Every candidate is verified
/// with the exact cartesian check, so the result is sound; the search is not
/// guaranteed to enumerate every valid MVD (pairwise independence does not
/// imply joint independence), which is acceptable for the normalization
/// use-case: each verified violation enables one lossless 4NF split, and the
/// search re-runs after each split.
std::vector<Mvd> FindViolatingMvds(const RelationData& data,
                                   const std::vector<AttributeSet>& keys,
                                   MvdSearchOptions options = {});

}  // namespace normalize
