#include "closure/closure.hpp"

#include <vector>

#include "common/string_utils.hpp"
#include "common/thread_pool.hpp"
#include "fd/set_trie.hpp"

namespace normalize {

namespace {

/// Builds one LHS trie per RHS attribute: lhs_tries[a] holds the LHSs of all
/// FDs that determine a (paper §4.2). The tries are immutable afterwards —
/// extensions only grow RHSs, which the tries never store.
std::vector<SetTrie> BuildLhsTries(const FdSet& fds,
                                   const AttributeSet& attributes) {
  std::vector<SetTrie> tries(static_cast<size_t>(attributes.capacity()));
  for (const Fd& fd : fds) {
    for (AttributeId a : fd.rhs) {
      tries[static_cast<size_t>(a)].Insert(fd.lhs);
    }
  }
  return tries;
}

/// Runs fn(i) for all FDs, optionally across a thread pool (an externally
/// owned one when the options carry it, else a temporary). The worker `fn`
/// is expected to poll the context itself where useful; this driver checks
/// at chunk boundaries (serial path) and reports interruptions.
Status ForEachFd(FdSet* fds, const ClosureOptions& options,
                 const std::function<void(size_t)>& fn) {
  const RunContext* ctx = options.context;
  if (ResolveThreadCount(options.num_threads) == 1 || fds->size() < 2) {
    for (size_t i = 0; i < fds->size(); ++i) {
      if ((i & 63) == 0) NORMALIZE_RETURN_IF_ERROR(CheckRunContext(ctx));
      fn(i);
    }
    return Status::OK();
  }
  auto guarded = [&fn, ctx](size_t i) {
    if (ctx != nullptr && ctx->SoftInterrupted()) return;
    fn(i);
  };
  Status dispatch;
  if (options.pool != nullptr) {
    dispatch = options.pool->ParallelFor(fds->size(), guarded);
  } else {
    ThreadPool pool(options.num_threads);
    if (ctx != nullptr) pool.SetCancellation(ctx->cancel);
    dispatch = pool.ParallelFor(fds->size(), guarded);
  }
  NORMALIZE_RETURN_IF_ERROR(CheckRunContext(ctx));
  return dispatch;
}

}  // namespace

Status NaiveClosure::Extend(FdSet* fds, const AttributeSet& attributes) const {
  (void)attributes;
  bool something_changed = true;
  while (something_changed) {
    something_changed = false;
    for (size_t i = 0; i < fds->size(); ++i) {
      if ((i & 63) == 0) {
        NORMALIZE_RETURN_IF_ERROR(CheckRunContext(options_.context));
      }
      Fd& fd = (*fds)[i];
      AttributeSet lhs_rhs = fd.lhs.Union(fd.rhs);
      for (size_t j = 0; j < fds->size(); ++j) {
        if (i == j) continue;
        const Fd& other = (*fds)[j];
        if (other.lhs.IsSubsetOf(lhs_rhs)) {
          AttributeSet addition = other.rhs.Difference(lhs_rhs);
          if (!addition.Empty()) {
            fd.rhs.UnionWith(addition);
            lhs_rhs.UnionWith(addition);
            something_changed = true;
          }
        }
      }
    }
  }
  return Status::OK();
}

Status ImprovedClosure::Extend(FdSet* fds,
                               const AttributeSet& attributes) const {
  std::vector<SetTrie> lhs_tries = BuildLhsTries(*fds, attributes);
  return ForEachFd(fds, options_, [&](size_t i) {
    Fd& fd = (*fds)[i];
    bool something_changed = true;
    while (something_changed) {
      something_changed = false;
      AttributeSet lhs_rhs = fd.lhs.Union(fd.rhs);
      for (AttributeId attr : attributes) {
        if (lhs_rhs.Test(attr)) continue;
        // Does any FD with RHS attribute `attr` have its LHS contained in
        // this FD's lhs ∪ rhs? Then transitivity adds `attr`.
        if (lhs_tries[static_cast<size_t>(attr)].ContainsSubsetOf(lhs_rhs)) {
          fd.rhs.Set(attr);
          something_changed = true;
        }
      }
    }
  });
}

Status OptimizedClosure::Extend(FdSet* fds,
                                const AttributeSet& attributes) const {
  std::vector<SetTrie> lhs_tries = BuildLhsTries(*fds, attributes);
  return ForEachFd(fds, options_, [&](size_t i) {
    Fd& fd = (*fds)[i];
    // Completeness + minimality of the input guarantee (Lemma 1) that every
    // valid extension attribute has a witness FD whose LHS is a subset of
    // this FD's *LHS* alone — one pass, no change loop.
    for (AttributeId attr : attributes) {
      if (fd.lhs.Test(attr) || fd.rhs.Test(attr)) continue;
      if (lhs_tries[static_cast<size_t>(attr)].ContainsSubsetOf(fd.lhs)) {
        fd.rhs.Set(attr);
      }
    }
  });
}

std::unique_ptr<ClosureAlgorithm> MakeClosure(const std::string& name,
                                              ClosureOptions options) {
  std::string key = ToLower(name);
  if (key == "naive") return std::make_unique<NaiveClosure>(options);
  if (key == "improved") return std::make_unique<ImprovedClosure>(options);
  if (key == "optimized") return std::make_unique<OptimizedClosure>(options);
  return nullptr;
}

}  // namespace normalize
