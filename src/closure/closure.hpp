// Closure calculation — component (2) and the paper's main algorithmic
// contribution (§4). Given a set of FDs F, each FD's RHS is maximized under
// Armstrong's transitivity axiom (reflexivity is implicit: LHS attributes
// are never stored on the RHS). Three algorithms:
//
//   * NaiveClosure     (Alg. 1): fixpoint of nested FD-pair scans, O(|F|^3).
//   * ImprovedClosure  (Alg. 2): per-RHS-attribute LHS tries + subset search
//                      + FD-local change loop, O(|F|^2). Correct for
//                      arbitrary FD sets.
//   * OptimizedClosure (Alg. 3): single pass testing only subsets of the
//                      *LHS*, O(|F|). Correct only for complete sets of
//                      minimal FDs (paper Lemma 1) — which FD discovery
//                      guarantees.
//
// All algorithms can shard their FD loop across threads: an FD's extension
// reads only its own RHS and the immutable LHS tries (paper §4, last
// paragraph). The naive algorithm reads other FDs' evolving RHSs, so only
// the improved and optimized variants are parallelized here.
#pragma once

#include <memory>
#include <string>

#include "common/attribute_set.hpp"
#include "common/run_context.hpp"
#include "common/status.hpp"
#include "fd/fd.hpp"

namespace normalize {

class ThreadPool;

struct ClosureOptions {
  /// Worker threads for the FD loop; 1 = serial, <= 0 = hardware threads.
  int num_threads = 1;
  /// Externally owned pool: when set and num_threads resolves above 1, the
  /// FD loop runs on it instead of a per-Extend() pool (the Normalizer
  /// passes its process-wide pool here). The pool's worker count then takes
  /// precedence over num_threads; num_threads == 1 still means serial.
  ThreadPool* pool = nullptr;
  /// Robustness context (not owned; null = no limits), polled at FD-loop
  /// boundaries. See Extend() for interruption semantics.
  const RunContext* context = nullptr;
};

/// Interface of the three closure algorithms.
class ClosureAlgorithm {
 public:
  virtual ~ClosureAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Extends every FD's RHS in place to its transitive closure, restricted
  /// to `attributes` (the attribute set of the FDs' relation). Maintains the
  /// invariant rhs ∩ lhs = ∅. Returns OK on completion; kCancelled /
  /// kDeadlineExceeded when the options' RunContext interrupts the run. An
  /// interrupted FdSet is still *valid* (RHS growth is monotone under
  /// Armstrong's axioms — every added attribute is genuinely implied) but
  /// some RHSs may not be maximal yet.
  virtual Status Extend(FdSet* fds, const AttributeSet& attributes) const = 0;

  const ClosureOptions& options() const { return options_; }

 protected:
  explicit ClosureAlgorithm(ClosureOptions options) : options_(options) {}

  ClosureOptions options_;
};

/// Algorithm 1 (after Diederich & Milton). For baselines and tests only.
class NaiveClosure : public ClosureAlgorithm {
 public:
  explicit NaiveClosure(ClosureOptions options = {})
      : ClosureAlgorithm(options) {}
  std::string name() const override { return "NaiveClosure"; }
  Status Extend(FdSet* fds, const AttributeSet& attributes) const override;
};

/// Algorithm 2: correct for arbitrary FD sets.
class ImprovedClosure : public ClosureAlgorithm {
 public:
  explicit ImprovedClosure(ClosureOptions options = {})
      : ClosureAlgorithm(options) {}
  std::string name() const override { return "ImprovedClosure"; }
  Status Extend(FdSet* fds, const AttributeSet& attributes) const override;
};

/// Algorithm 3: requires the input to be a complete set of minimal FDs
/// (or such a set pruned to a maximum LHS size, §4.3).
class OptimizedClosure : public ClosureAlgorithm {
 public:
  explicit OptimizedClosure(ClosureOptions options = {})
      : ClosureAlgorithm(options) {}
  std::string name() const override { return "OptimizedClosure"; }
  Status Extend(FdSet* fds, const AttributeSet& attributes) const override;
};

/// Factory by name ("naive", "improved", "optimized").
std::unique_ptr<ClosureAlgorithm> MakeClosure(const std::string& name,
                                              ClosureOptions options = {});

}  // namespace normalize
