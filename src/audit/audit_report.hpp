// Audit findings of the decomposition auditor (audit/decomposition_auditor
// .hpp): structured issues with a severity, the check that raised them, and a
// human-readable diagnostic. Kept free of normalizer includes so both the
// normalizer (which embeds a report in its result) and the auditor can depend
// on it without a cycle.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace normalize {

/// Cost knobs of the auditor. The symbolic checks (chase, BCNF, schema
/// consistency) are always cheap; the instance-level oracles re-scan the data
/// and are bounded by these limits — exceeded limits downgrade a check to a
/// skip note, never to silence.
struct AuditOptions {
  /// Skip the instance-level rejoin (JoinAll vs. distinct input) when the
  /// input has more rows than this. The symbolic chase still runs.
  size_t max_join_rows = 100000;
  /// Upper bound on unary FDs re-validated against the instance (validity
  /// and minimality checks). Excess FDs are skipped with a note.
  size_t max_validated_fds = 5000;
  /// The naive-oracle completeness check only runs when the input is at most
  /// this many rows and columns (the oracle is exponential in columns).
  size_t max_oracle_rows = 500;
  int max_oracle_columns = 12;
  /// Master switches for the instance-level tiers.
  bool check_instance_join = true;
  bool check_completeness = true;
};

/// One audit finding.
struct AuditIssue {
  /// Which verification tier raised the issue.
  enum class Check {
    kConsistency,        // schema/instance bookkeeping invariants
    kLosslessJoin,       // symbolic chase (tableau) test
    kJoinInstance,       // JoinAll(fragments) vs. distinct input
    kBcnf,               // normal-form compliance of an output relation
    kCoverValidity,      // a discovered FD does not hold on the instance
    kCoverMinimality,    // a discovered FD has a reducible LHS
    kCoverCompleteness,  // the cover misses FDs the naive oracle finds
  };
  /// kFatal findings falsify a correctness guarantee of a completed run.
  /// kAdvisory findings are expected consequences of a degraded (deadline-
  /// curtailed) or advisor-declined run. kNote records skipped or informative
  /// outcomes (e.g. an oracle gated off by size limits).
  enum class Severity { kFatal, kAdvisory, kNote };

  Check check;
  Severity severity = Severity::kFatal;
  /// Name of the output relation concerned, empty for global checks.
  std::string relation;
  std::string detail;

  std::string ToString() const;
};

/// The auditor's verdict: every finding plus counters describing how much of
/// each tier actually ran (so "no findings" is distinguishable from "nothing
/// was checked").
struct AuditReport {
  std::vector<AuditIssue> issues;

  size_t relations_checked = 0;
  size_t fds_validated = 0;
  size_t fds_minimality_checked = 0;
  bool chase_ran = false;
  bool instance_join_ran = false;
  bool completeness_ran = false;

  /// True iff no kFatal issue was found.
  bool passed() const;
  size_t fatal_count() const;
  size_t advisory_count() const;

  void Add(AuditIssue issue) { issues.push_back(std::move(issue)); }

  /// Multi-line summary: verdict, per-tier coverage, then each issue.
  std::string ToString() const;
};

/// Short names for the enums ("lossless-join", "fatal", ...).
const char* AuditCheckName(AuditIssue::Check check);
const char* AuditSeverityName(AuditIssue::Severity severity);

}  // namespace normalize
