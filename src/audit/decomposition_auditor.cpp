#include "audit/decomposition_auditor.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "discovery/fd_discovery.hpp"
#include "fd/armstrong.hpp"
#include "normalize/key_derivation.hpp"
#include "normalize/violation_detection.hpp"
#include "relation/operations.hpp"

namespace normalize {

namespace {

AuditIssue MakeIssue(AuditIssue::Check check, AuditIssue::Severity severity,
                     std::string relation, std::string detail) {
  AuditIssue issue;
  issue.check = check;
  issue.severity = severity;
  issue.relation = std::move(relation);
  issue.detail = std::move(detail);
  return issue;
}

}  // namespace

bool DecompositionAuditor::ChaseLosslessJoin(
    const std::vector<AttributeSet>& fragments, const FdSet& fds,
    const AttributeSet& universe) {
  if (fragments.empty()) return universe.Empty();
  const int capacity = universe.capacity();
  const std::vector<AttributeId> attrs = universe.ToVector();
  // tableau[i][a]: symbol of fragment row i in column a; 0 = distinguished.
  // Every non-member cell starts with a fresh symbol, so symbols are unique
  // per cell and equating them within a column is the classic FD chase.
  std::vector<std::vector<int>> tableau(
      fragments.size(), std::vector<int>(static_cast<size_t>(capacity), 0));
  int next_symbol = 1;
  for (size_t i = 0; i < fragments.size(); ++i) {
    for (AttributeId a : attrs) {
      tableau[i][static_cast<size_t>(a)] =
          fragments[i].Test(a) ? 0 : next_symbol++;
    }
  }

  auto has_distinguished_row = [&]() {
    for (const auto& row : tableau) {
      bool all = true;
      for (AttributeId a : attrs) {
        if (row[static_cast<size_t>(a)] != 0) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  };

  if (has_distinguished_row()) return true;

  // Each equating step strictly reduces the number of distinct symbols in
  // one column, so the fixpoint loop terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds) {
      if (!fd.lhs.IsSubsetOf(universe)) continue;
      const std::vector<AttributeId> lhs = fd.lhs.ToVector();
      const std::vector<AttributeId> rhs =
          fd.rhs.Intersect(universe).ToVector();
      if (rhs.empty()) continue;
      for (size_t i = 0; i < tableau.size(); ++i) {
        for (size_t j = i + 1; j < tableau.size(); ++j) {
          bool agree = true;
          for (AttributeId l : lhs) {
            if (tableau[i][static_cast<size_t>(l)] !=
                tableau[j][static_cast<size_t>(l)]) {
              agree = false;
              break;
            }
          }
          if (!agree) continue;
          for (AttributeId r : rhs) {
            const size_t col = static_cast<size_t>(r);
            int a = tableau[i][col];
            int b = tableau[j][col];
            if (a == b) continue;
            const int keep = std::min(a, b);
            const int drop = std::max(a, b);
            for (auto& row : tableau) {
              if (row[col] == drop) row[col] = keep;
            }
            changed = true;
          }
        }
      }
    }
    if (has_distinguished_row()) return true;
  }
  return false;
}

std::vector<AuditIssue> DecompositionAuditor::CheckRelationNormalForm(
    const RelationSchema& rel, const FdSet& projected,
    const AttributeSet& nullable, NormalForm normal_form,
    AuditIssue::Severity residual_severity) const {
  std::vector<AuditIssue> issues;
  const std::vector<AttributeSet> keys =
      DeriveKeys(projected, rel.attributes());
  // The pipeline's own detector, with the same exemptions Algorithm 4
  // applies: anything it still reports is a violation the normalizer should
  // have decomposed away.
  const std::vector<Fd> residual =
      DetectViolatingFds(projected, keys, rel, nullable, normal_form);
  for (const Fd& fd : residual) {
    issues.push_back(MakeIssue(
        AuditIssue::Check::kBcnf, residual_severity, rel.name(),
        "violating FD remains after normalization: " + fd.ToString()));
  }

  // Strict textbook BCNF probe: X -> Y with X not a superkey. Violations the
  // detector exempted (NULL LHS, primary-/foreign-key preservation) are
  // legitimate residue — surfaced as notes so the report explains why the
  // relation is not textbook BCNF.
  if (normal_form == NormalForm::kBcnf) {
    size_t exempted = 0;
    std::string example;
    for (const Fd& fd : projected) {
      if (fd.rhs.Empty()) continue;
      const AttributeSet closure = AttributeClosure(fd.lhs, projected);
      if (rel.attributes().IsSubsetOf(closure)) continue;  // superkey LHS
      const bool reported =
          std::any_of(residual.begin(), residual.end(),
                      [&fd](const Fd& v) { return v.lhs == fd.lhs; });
      if (reported) continue;
      ++exempted;
      if (example.empty()) example = fd.ToString();
    }
    if (exempted > 0) {
      issues.push_back(MakeIssue(
          AuditIssue::Check::kBcnf, AuditIssue::Severity::kNote, rel.name(),
          "not textbook BCNF: " + std::to_string(exempted) +
              " FD(s) exempted by NULL-LHS/constraint-preservation rules, "
              "e.g. " +
              example));
    }
  }
  return issues;
}

std::vector<AuditIssue> DecompositionAuditor::CheckCoverValidity(
    const RelationData& data, const FdSet& cover, size_t* validated) const {
  std::vector<AuditIssue> issues;
  const AttributeSet universe = data.AttributesAsSet();
  for (const Fd& fd : cover) {
    if (!fd.lhs.IsSubsetOf(universe) || !fd.rhs.IsSubsetOf(universe)) {
      issues.push_back(MakeIssue(
          AuditIssue::Check::kCoverValidity, AuditIssue::Severity::kFatal, "",
          "FD mentions attributes outside the input relation: " +
              fd.ToString()));
      continue;
    }
    for (AttributeId a : fd.rhs) {
      if (*validated >= options_.max_validated_fds) {
        issues.push_back(MakeIssue(
            AuditIssue::Check::kCoverValidity, AuditIssue::Severity::kNote, "",
            "validity check truncated at " +
                std::to_string(options_.max_validated_fds) + " unary FDs"));
        return issues;
      }
      ++*validated;
      if (!FdHolds(data, fd.lhs, a)) {
        issues.push_back(MakeIssue(
            AuditIssue::Check::kCoverValidity, AuditIssue::Severity::kFatal,
            "",
            "discovered FD does not hold on the instance: " +
                Fd(fd.lhs, AttributeSet(fd.rhs.capacity(), {a})).ToString()));
      }
    }
  }
  return issues;
}

std::vector<AuditIssue> DecompositionAuditor::CheckCoverMinimality(
    const RelationData& data, const FdSet& cover, size_t* checked) const {
  std::vector<AuditIssue> issues;
  const AttributeSet universe = data.AttributesAsSet();
  for (const Fd& fd : cover) {
    if (!fd.lhs.IsSubsetOf(universe)) continue;  // reported by validity
    if (fd.lhs.Empty()) continue;  // ∅ -> A has no proper LHS subset
    for (AttributeId a : fd.rhs) {
      if (!universe.Test(a)) continue;
      if (*checked >= options_.max_validated_fds) {
        issues.push_back(MakeIssue(
            AuditIssue::Check::kCoverMinimality, AuditIssue::Severity::kNote,
            "",
            "minimality check truncated at " +
                std::to_string(options_.max_validated_fds) + " unary FDs"));
        return issues;
      }
      ++*checked;
      // Single-attribute removals suffice: any proper subset of X lies
      // inside some X \ {B}, and FD validity is monotone in the LHS.
      for (AttributeId b : fd.lhs) {
        AttributeSet reduced = fd.lhs;
        reduced.Reset(b);
        if (FdHolds(data, reduced, a)) {
          issues.push_back(MakeIssue(
              AuditIssue::Check::kCoverMinimality,
              AuditIssue::Severity::kFatal, "",
              "FD is not LHS-minimal: " +
                  Fd(fd.lhs, AttributeSet(fd.rhs.capacity(), {a}))
                      .ToString() +
                  " still holds without attribute " + std::to_string(b)));
          break;
        }
      }
    }
  }
  return issues;
}

std::vector<AuditIssue> DecompositionAuditor::CheckCoverCompleteness(
    const RelationData& data, const FdSet& cover, int max_lhs,
    AuditIssue::Severity severity) const {
  std::vector<AuditIssue> issues;
  FdDiscoveryOptions oracle_options;
  oracle_options.max_lhs_size = max_lhs;
  oracle_options.threads = 1;
  auto oracle = MakeFdDiscovery("naive", oracle_options);
  auto expected_result = oracle->Discover(data);
  if (!expected_result.ok()) {
    issues.push_back(MakeIssue(
        AuditIssue::Check::kCoverCompleteness, AuditIssue::Severity::kNote, "",
        "naive oracle failed: " + expected_result.status().ToString()));
    return issues;
  }
  const std::vector<Fd> expected = expected_result->ToUnary();
  const std::vector<Fd> actual = cover.ToUnary();
  for (const Fd& fd : expected) {
    if (std::find(actual.begin(), actual.end(), fd) == actual.end()) {
      issues.push_back(MakeIssue(
          AuditIssue::Check::kCoverCompleteness, severity, "",
          "cover misses a minimal FD the oracle finds: " + fd.ToString()));
    }
  }
  for (const Fd& fd : actual) {
    if (std::find(expected.begin(), expected.end(), fd) == expected.end()) {
      // Even an interrupted run's partial cover must be a subset of the
      // full minimal cover, so spurious FDs are always fatal.
      issues.push_back(MakeIssue(
          AuditIssue::Check::kCoverCompleteness, AuditIssue::Severity::kFatal,
          "", "cover contains an FD the oracle rejects: " + fd.ToString()));
    }
  }
  return issues;
}

AuditReport DecompositionAuditor::Audit(const RelationData& input,
                                        const NormalizationResult& result,
                                        NormalForm normal_form,
                                        int discovery_max_lhs) const {
  AuditReport report;
  const Schema& schema = result.schema;
  const AttributeSet universe = input.AttributesAsSet();

  // --- bookkeeping invariants ---
  if (result.relations.size() != schema.relations().size()) {
    report.Add(MakeIssue(
        AuditIssue::Check::kConsistency, AuditIssue::Severity::kFatal, "",
        "schema has " + std::to_string(schema.relations().size()) +
            " relations but " + std::to_string(result.relations.size()) +
            " instances"));
    return report;  // parallel-vector invariant broken; nothing else is safe
  }
  AttributeSet covered(universe.capacity());
  for (size_t i = 0; i < result.relations.size(); ++i) {
    const RelationSchema& rel = schema.relation(static_cast<int>(i));
    const AttributeSet data_attrs =
        result.relations[i].AttributesAsSet(universe.capacity());
    if (data_attrs != rel.attributes()) {
      report.Add(MakeIssue(
          AuditIssue::Check::kConsistency, AuditIssue::Severity::kFatal,
          rel.name(), "schema attributes " + rel.attributes().ToString() +
                          " differ from instance attributes " +
                          data_attrs.ToString()));
    }
    covered.UnionWith(rel.attributes());
  }
  if (covered != universe) {
    report.Add(MakeIssue(
        AuditIssue::Check::kConsistency, AuditIssue::Severity::kFatal, "",
        "output relations cover " + covered.ToString() +
            " but the input has " + universe.ToString()));
  }

  // Degradations that legitimately explain residual violations or missing
  // FDs: a deadline-curtailed run, or an advisor that declined splits.
  const bool degraded =
      !result.stats.completion.ok() || result.stats.degraded_discovery;
  const bool declined = std::any_of(
      result.decisions.begin(), result.decisions.end(),
      [](const DecisionRecord& d) {
        return d.kind == DecisionRecord::Kind::kSplitDeclined;
      });
  const AuditIssue::Severity normal_form_severity =
      (degraded || declined) ? AuditIssue::Severity::kAdvisory
                             : AuditIssue::Severity::kFatal;
  const AuditIssue::Severity completeness_severity =
      degraded ? AuditIssue::Severity::kAdvisory
               : AuditIssue::Severity::kFatal;

  // The pre-closure minimal cover drives the cover checks (the extended FDs
  // are intentionally not LHS-minimal per RHS attribute).
  const FdSet& cover =
      result.discovered_fds.empty() ? result.extended_fds
                                    : result.discovered_fds;
  if (result.discovered_fds.empty() && !result.extended_fds.empty()) {
    report.Add(MakeIssue(
        AuditIssue::Check::kConsistency, AuditIssue::Severity::kNote, "",
        "discovered_fds not populated; auditing the extended FDs instead "
        "(minimality findings may be spurious)"));
  }

  // --- lossless join: symbolic chase ---
  std::vector<AttributeSet> fragments;
  fragments.reserve(schema.relations().size());
  for (const RelationSchema& rel : schema.relations()) {
    fragments.push_back(rel.attributes());
  }
  report.chase_ran = true;
  if (!ChaseLosslessJoin(fragments, cover, universe)) {
    report.Add(MakeIssue(
        AuditIssue::Check::kLosslessJoin, AuditIssue::Severity::kFatal, "",
        "chase tableau does not reach a distinguished row: the schema is "
        "not provably lossless under the discovered FDs"));
  }

  // --- lossless join: instance-level rejoin ---
  if (options_.check_instance_join &&
      input.num_rows() <= options_.max_join_rows) {
    const RelationData rejoined = JoinAll(result.relations);
    const RelationData dedup = Project(input, universe, /*distinct=*/true);
    report.instance_join_ran = true;
    if (!InstancesEqual(rejoined, dedup)) {
      report.Add(MakeIssue(
          AuditIssue::Check::kJoinInstance, AuditIssue::Severity::kFatal, "",
          "rejoined instance (" + std::to_string(rejoined.num_rows()) +
              " rows) differs from the distinct input (" +
              std::to_string(dedup.num_rows()) + " rows)"));
    }
  } else if (options_.check_instance_join) {
    report.Add(MakeIssue(
        AuditIssue::Check::kJoinInstance, AuditIssue::Severity::kNote, "",
        "instance rejoin skipped: " + std::to_string(input.num_rows()) +
            " rows exceed max_join_rows=" +
            std::to_string(options_.max_join_rows)));
  }

  // --- normal-form compliance per output relation ---
  AttributeSet nullable(input.universe_size());
  for (int c = 0; c < input.num_columns(); ++c) {
    if (input.column(c).has_null()) {
      nullable.Set(input.attribute_ids()[static_cast<size_t>(c)]);
    }
  }
  for (const RelationSchema& rel : schema.relations()) {
    const FdSet projected = ProjectFds(result.extended_fds, rel.attributes());
    for (AuditIssue& issue : CheckRelationNormalForm(
             rel, projected, nullable, normal_form, normal_form_severity)) {
      report.Add(std::move(issue));
    }
    ++report.relations_checked;
  }

  // --- cover soundness against the input instance ---
  for (AuditIssue& issue :
       CheckCoverValidity(input, cover, &report.fds_validated)) {
    report.Add(std::move(issue));
  }
  for (AuditIssue& issue :
       CheckCoverMinimality(input, cover, &report.fds_minimality_checked)) {
    report.Add(std::move(issue));
  }
  if (options_.check_completeness) {
    if (input.num_rows() <= options_.max_oracle_rows &&
        input.num_columns() <= options_.max_oracle_columns) {
      report.completeness_ran = true;
      for (AuditIssue& issue : CheckCoverCompleteness(
               input, cover, discovery_max_lhs, completeness_severity)) {
        report.Add(std::move(issue));
      }
    } else {
      report.Add(MakeIssue(
          AuditIssue::Check::kCoverCompleteness, AuditIssue::Severity::kNote,
          "",
          "completeness oracle skipped: input exceeds " +
              std::to_string(options_.max_oracle_rows) + " rows / " +
              std::to_string(options_.max_oracle_columns) + " columns"));
    }
  }

  return report;
}

}  // namespace normalize
