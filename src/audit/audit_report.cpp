#include "audit/audit_report.hpp"

#include <sstream>

namespace normalize {

const char* AuditCheckName(AuditIssue::Check check) {
  switch (check) {
    case AuditIssue::Check::kConsistency:
      return "consistency";
    case AuditIssue::Check::kLosslessJoin:
      return "lossless-join";
    case AuditIssue::Check::kJoinInstance:
      return "join-instance";
    case AuditIssue::Check::kBcnf:
      return "normal-form";
    case AuditIssue::Check::kCoverValidity:
      return "cover-validity";
    case AuditIssue::Check::kCoverMinimality:
      return "cover-minimality";
    case AuditIssue::Check::kCoverCompleteness:
      return "cover-completeness";
  }
  return "unknown";
}

const char* AuditSeverityName(AuditIssue::Severity severity) {
  switch (severity) {
    case AuditIssue::Severity::kFatal:
      return "FATAL";
    case AuditIssue::Severity::kAdvisory:
      return "advisory";
    case AuditIssue::Severity::kNote:
      return "note";
  }
  return "unknown";
}

std::string AuditIssue::ToString() const {
  std::ostringstream out;
  out << "[" << AuditSeverityName(severity) << "] " << AuditCheckName(check);
  if (!relation.empty()) out << " (" << relation << ")";
  out << ": " << detail;
  return out.str();
}

bool AuditReport::passed() const { return fatal_count() == 0; }

size_t AuditReport::fatal_count() const {
  size_t n = 0;
  for (const AuditIssue& issue : issues) {
    if (issue.severity == AuditIssue::Severity::kFatal) ++n;
  }
  return n;
}

size_t AuditReport::advisory_count() const {
  size_t n = 0;
  for (const AuditIssue& issue : issues) {
    if (issue.severity == AuditIssue::Severity::kAdvisory) ++n;
  }
  return n;
}

std::string AuditReport::ToString() const {
  std::ostringstream out;
  out << "audit: " << (passed() ? "PASS" : "FAIL") << " (" << fatal_count()
      << " fatal, " << advisory_count() << " advisory, "
      << issues.size() - fatal_count() - advisory_count() << " notes)\n";
  out << "  relations checked: " << relations_checked
      << ", FDs validated: " << fds_validated
      << ", minimality-checked: " << fds_minimality_checked << "\n";
  out << "  chase: " << (chase_ran ? "ran" : "skipped")
      << ", instance join: " << (instance_join_ran ? "ran" : "skipped")
      << ", completeness oracle: " << (completeness_ran ? "ran" : "skipped")
      << "\n";
  for (const AuditIssue& issue : issues) {
    out << "  " << issue.ToString() << "\n";
  }
  return out.str();
}

}  // namespace normalize
