// Correctness auditor for normalization runs. Independently re-derives the
// guarantees the pipeline claims (paper §3) and reports every discrepancy:
//
//   * lossless join — the symbolic chase (tableau) test proves the output
//     schema rejoins to the input relation under the discovered FDs, and an
//     instance-level JoinAll comparison confirms it on the data itself;
//   * normal-form compliance — every output relation is re-checked against
//     its projected extended FDs with the same exemptions Algorithm 4
//     applies (NULL LHSs, constraint preservation), plus a strict textbook
//     BCNF probe that reports exempted residual violations as notes;
//   * cover soundness — every discovered FD is re-validated against the
//     input instance, LHS minimality is verified by single-attribute
//     removals (sufficient: any proper subset of X lies inside some
//     X \ {B}, and FD validity is monotone in the LHS), and on small
//     inputs the cover is compared against the naive brute-force oracle
//     for completeness.
//
// The auditor is read-only and side-effect-free; it never fails the
// normalization run itself. Degraded runs (deadline-curtailed discovery or
// advisor-declined splits) downgrade the checks whose failure those
// degradations legitimately explain — completeness and normal-form findings
// become advisory — while soundness findings (validity, minimality,
// losslessness) stay fatal: no degradation excuses an unsound result.
#pragma once

#include <vector>

#include "audit/audit_report.hpp"
#include "common/attribute_set.hpp"
#include "fd/fd.hpp"
#include "normalize/normalizer.hpp"
#include "relation/relation_data.hpp"
#include "relation/schema.hpp"

namespace normalize {

class DecompositionAuditor {
 public:
  explicit DecompositionAuditor(AuditOptions options = {})
      : options_(options) {}

  const AuditOptions& options() const { return options_; }

  /// Full audit of a normalization run: `input` is the relation that was
  /// normalized, `result` the pipeline's output (discovered_fds must be
  /// populated). `normal_form` and `discovery_max_lhs` must mirror the
  /// NormalizerOptions of the run so the auditor re-checks the guarantees
  /// that were actually promised.
  AuditReport Audit(const RelationData& input,
                    const NormalizationResult& result,
                    NormalForm normal_form = NormalForm::kBcnf,
                    int discovery_max_lhs = -1) const;

  /// The chase (tableau) test: true iff decomposing a relation over
  /// `universe` into `fragments` is lossless under `fds`. Rows of the
  /// tableau are fragments, columns the universe attributes; FDs equate
  /// symbols until some row becomes all-distinguished or a fixpoint is
  /// reached.
  static bool ChaseLosslessJoin(const std::vector<AttributeSet>& fragments,
                                const FdSet& fds,
                                const AttributeSet& universe);

  /// Normal-form compliance of one output relation. `projected` must be the
  /// extended FDs projected onto the relation (Lemma 3), `nullable` the
  /// NULL-carrying attributes of the input. Residual violations that
  /// Algorithm 4 would have acted on are reported at `residual_severity`;
  /// exempted ones (NULL LHS / constraint preservation) as notes.
  std::vector<AuditIssue> CheckRelationNormalForm(
      const RelationSchema& rel, const FdSet& projected,
      const AttributeSet& nullable, NormalForm normal_form,
      AuditIssue::Severity residual_severity) const;

  /// Re-validates every unary FD of `cover` against `data` (bounded by
  /// options().max_validated_fds). `validated` reports how many ran.
  std::vector<AuditIssue> CheckCoverValidity(const RelationData& data,
                                             const FdSet& cover,
                                             size_t* validated) const;

  /// Verifies LHS minimality of every unary FD of `cover` on `data` by
  /// single-attribute removals (bounded by options().max_validated_fds).
  std::vector<AuditIssue> CheckCoverMinimality(const RelationData& data,
                                               const FdSet& cover,
                                               size_t* checked) const;

  /// Compares `cover` against the naive discovery oracle on `data`
  /// (honouring `max_lhs`). Only call when the input fits the oracle
  /// limits; missing and spurious FDs are reported at `severity`.
  std::vector<AuditIssue> CheckCoverCompleteness(
      const RelationData& data, const FdSet& cover, int max_lhs,
      AuditIssue::Severity severity) const;

 private:
  AuditOptions options_;
};

}  // namespace normalize
