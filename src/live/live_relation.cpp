#include "live/live_relation.hpp"

#include <algorithm>
#include <unordered_set>

namespace normalize {

LiveRelation::LiveRelation(const RelationData& initial) : data_(initial) {
  // The copy shares `initial`'s value dictionaries (Column holds them by
  // shared_ptr), so codes stay comparable with relations derived from it.
  size_t rows = data_.num_rows();
  int n = data_.num_columns();
  live_.assign(rows, 1);
  live_list_.resize(rows);
  live_pos_.resize(rows);
  indexes_.resize(static_cast<size_t>(n));
  for (size_t r = 0; r < rows; ++r) {
    live_list_[r] = static_cast<RowId>(r);
    live_pos_[r] = static_cast<uint32_t>(r);
    for (int c = 0; c < n; ++c) {
      indexes_[static_cast<size_t>(c)].Insert(static_cast<RowId>(r),
                                              data_.column(c).code(r));
    }
  }
}

LiveRelation::LiveRelation(const RelationData& full_log,
                           const std::vector<char>& live_mask)
    : data_(full_log) {
  size_t rows = data_.num_rows();
  int n = data_.num_columns();
  live_.assign(live_mask.begin(), live_mask.end());
  live_.resize(rows, 0);
  live_pos_.assign(rows, 0);
  indexes_.resize(static_cast<size_t>(n));
  for (size_t r = 0; r < rows; ++r) {
    if (live_[r] == 0) continue;
    live_pos_[r] = static_cast<uint32_t>(live_list_.size());
    live_list_.push_back(static_cast<RowId>(r));
    for (int c = 0; c < n; ++c) {
      indexes_[static_cast<size_t>(c)].Insert(static_cast<RowId>(r),
                                              data_.column(c).code(r));
    }
  }
}

std::vector<RowId> LiveRelation::LiveRowIds() const {
  std::vector<RowId> ids = live_list_;
  std::sort(ids.begin(), ids.end());
  return ids;
}

void LiveRelation::AppendLiveRow(const std::vector<std::string>& cells) {
  RowId row = static_cast<RowId>(data_.num_rows());
  data_.AppendRow(cells);
  live_.push_back(1);
  live_pos_.push_back(static_cast<uint32_t>(live_list_.size()));
  live_list_.push_back(row);
  for (int c = 0; c < data_.num_columns(); ++c) {
    indexes_[static_cast<size_t>(c)].Insert(row, data_.column(c).code(row));
  }
}

void LiveRelation::KillRow(RowId row) {
  live_[static_cast<size_t>(row)] = 0;
  uint32_t pos = live_pos_[static_cast<size_t>(row)];
  RowId moved = live_list_.back();
  live_list_[pos] = moved;
  live_pos_[static_cast<size_t>(moved)] = pos;
  live_list_.pop_back();
  for (auto& index : indexes_) index.Erase(row);
}

Status LiveRelation::ValidateBatch(const LiveBatch& batch) const {
  size_t cols = static_cast<size_t>(data_.num_columns());
  std::unordered_set<RowId> targets;
  for (RowId row : batch.deletes) {
    if (!IsLive(row)) {
      return Status::InvalidArgument("delete of non-live row " +
                                     std::to_string(row));
    }
    if (!targets.insert(row).second) {
      return Status::InvalidArgument("row " + std::to_string(row) +
                                     " targeted twice in one batch");
    }
  }
  for (const auto& [row, cells] : batch.updates) {
    if (!IsLive(row)) {
      return Status::InvalidArgument("update of non-live row " +
                                     std::to_string(row));
    }
    if (!targets.insert(row).second) {
      return Status::InvalidArgument("row " + std::to_string(row) +
                                     " targeted twice in one batch");
    }
    if (cells.size() != cols) {
      return Status::InvalidArgument("update row has " +
                                     std::to_string(cells.size()) +
                                     " cells, relation has " +
                                     std::to_string(cols) + " columns");
    }
  }
  for (const auto& cells : batch.inserts) {
    if (cells.size() != cols) {
      return Status::InvalidArgument("insert row has " +
                                     std::to_string(cells.size()) +
                                     " cells, relation has " +
                                     std::to_string(cols) + " columns");
    }
  }
  return Status::OK();
}

Result<BatchDelta> LiveRelation::Apply(const LiveBatch& batch) {
  // Validate everything up front so a bad batch leaves the store untouched.
  NORMALIZE_RETURN_IF_ERROR(ValidateBatch(batch));

  BatchDelta delta;
  for (RowId row : batch.deletes) {
    KillRow(row);
    delta.deleted.push_back(row);
  }
  for (const auto& [row, cells] : batch.updates) {
    KillRow(row);
    delta.deleted.push_back(row);
    delta.inserted.push_back(static_cast<RowId>(data_.num_rows()));
    AppendLiveRow(cells);
  }
  for (const auto& cells : batch.inserts) {
    delta.inserted.push_back(static_cast<RowId>(data_.num_rows()));
    AppendLiveRow(cells);
  }
  return delta;
}

AttributeSet LiveRelation::AgreeSet(RowId r1, RowId r2) const {
  int n = data_.num_columns();
  AttributeSet s(n);
  for (int c = 0; c < n; ++c) {
    if (data_.column(c).code(r1) == data_.column(c).code(r2)) s.Set(c);
  }
  return s;
}

RelationData LiveRelation::Materialize(const std::string& name) const {
  RelationData out = RelationData::EmptyLike(
      data_, name.empty() ? data_.name() : name);
  int n = data_.num_columns();
  std::vector<ValueId> codes(static_cast<size_t>(n));
  for (size_t r = 0; r < data_.num_rows(); ++r) {
    if (live_[r] == 0) continue;
    for (int c = 0; c < n; ++c) {
      codes[static_cast<size_t>(c)] = data_.column(c).code(r);
    }
    out.AppendRowCodes(codes);
  }
  return out;
}

}  // namespace normalize
