#include "live/delta_fd_maintainer.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/thread_pool.hpp"
#include "discovery/discovery_util.hpp"
#include "discovery/hyfd.hpp"
#include "discovery/induction.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace normalize {

namespace {

struct CodeVecHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    size_t h = 1469598103934665603ull;
    for (ValueId x : v) {
      h ^= static_cast<size_t>(x) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

void SeedFullCover(FdTree* tree) {
  AttributeSet empty(tree->num_attributes());
  for (AttributeId a = 0; a < tree->num_attributes(); ++a) {
    tree->AddFd(empty, a);
  }
}

}  // namespace

DeltaFdMaintainer::DeltaFdMaintainer(LiveRelation* relation,
                                     DeltaFdMaintainerOptions options)
    : relation_(relation),
      options_(options),
      tree_(relation->num_columns()) {
  if (options_.pool == nullptr && options_.threads != 1) {
    own_pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
  if (MetricsRegistry* registry = options_.metrics; registry != nullptr) {
    constexpr std::string_view kLabels = "component=live";
    batch_seconds_hist_ =
        registry->GetHistogram("live_batch_apply_seconds", {}, kLabels);
    batches_applied_counter_ =
        registry->GetCounter("live_batches_applied_total", kLabels);
    full_validations_counter_ =
        registry->GetCounter("live_full_validations_total", kLabels);
    guided_probes_counter_ =
        registry->GetCounter("live_guided_probes_total", kLabels);
    carried_valid_counter_ =
        registry->GetCounter("live_carried_valid_total", kLabels);
    violations_counter_ =
        registry->GetCounter("live_violations_total", kLabels);
    evidence_dropped_counter_ =
        registry->GetCounter("live_evidence_dropped_total", kLabels);
    evidence_reseated_counter_ =
        registry->GetCounter("live_evidence_reseated_total", kLabels);
    tree_rebuilds_counter_ =
        registry->GetCounter("live_tree_rebuilds_total", kLabels);
    witnessed_evidence_gauge_ =
        registry->GetGauge("live_witnessed_evidence", kLabels);
    epoch_gauge_ = registry->GetGauge("live_epoch", kLabels);
    live_rows_gauge_ = registry->GetGauge("live_rows", kLabels);
  }
}

DeltaFdMaintainer::~DeltaFdMaintainer() = default;

Status DeltaFdMaintainer::Initialize() {
  ScopedSpan init_span(options_.tracer, "initialize");
  const Stats before;  // Initialize resets stats_, so the delta base is zero
  Stopwatch watch;
  int n = relation_->num_columns();
  tree_ = FdTree(n);
  SeedFullCover(&tree_);
  evidence_.clear();
  unwitnessed_refutations_ = false;
  stats_ = Stats{};

  if (options_.hyfd_bootstrap && relation_->live_rows() >= 2) {
    // Seed the candidate tree with a HyFd run's negative cover over the
    // initial instance: its evidence fully determines the tree it reached
    // (fd_discovery.hpp), so the bootstrap sweep below mostly confirms
    // already-exact candidates instead of refuting from {} -> A. The agree
    // sets are attribute sets in local column space — they transfer from the
    // materialized copy verbatim — but they carry no live witness pair, so
    // they only shape the tree and never enter evidence_.
    FdDiscoveryOptions dopts;
    dopts.max_lhs_size = options_.max_lhs_size;
    dopts.threads = options_.threads;
    dopts.pool = options_.pool != nullptr ? options_.pool : own_pool_.get();
    HyFd bootstrap(dopts);
    RelationData initial = relation_->Materialize();
    Result<FdSet> discovered = bootstrap.Discover(initial);
    if (!discovered.ok()) return discovered.status();
    std::vector<AttributeSet> seeds = bootstrap.ExportEvidence();
    for (const AttributeSet& agree : seeds) {
      InduceFromAgreeSet(&tree_, agree, options_.max_lhs_size);
    }
    unwitnessed_refutations_ = !seeds.empty();
  }

  Status swept = RunSweep(nullptr, std::vector<RowId>());
  if (!swept.ok()) return swept;
  ++stats_.batches_applied;
  Publish();
  RecordBatchObservability(before, watch.ElapsedSeconds());
  return Status::OK();
}

Status DeltaFdMaintainer::ApplyBatch(const LiveBatch& batch) {
  ScopedSpan batch_span(options_.tracer, "apply_batch");
  const Stats before = stats_;
  Stopwatch watch;
  Result<BatchDelta> applied = relation_->Apply(batch);
  if (!applied.ok()) return applied.status();
  const BatchDelta& delta = *applied;

  // The pre-batch cover: every member was validated against the pre-batch
  // instance, so during the sweep it is either carried (delete-only batch)
  // or re-checked with a guided probe. Snapshotted up front because tree_
  // mutates as the sweep specializes.
  FdTree old_valid(relation_->num_columns());
  for (const Fd& fd : tree_.CollectAllFds()) {
    for (AttributeId a : fd.rhs) old_valid.AddFd(fd.lhs, a);
  }

  if (!delta.deleted.empty()) {
    // Deletes can only validate. Drop evidence whose witness pair died —
    // its g3-style support is gone, the agree set may no longer be real —
    // and re-induce the tree from the surviving negative cover; only the
    // candidates that newly appear (generalizations freed by the dropped
    // refutations) miss from old_valid and get revalidated below.
    size_t dropped = 0;
    for (auto it = evidence_.begin(); it != evidence_.end();) {
      bool first_live = relation_->IsLive(it->second.first);
      bool second_live = relation_->IsLive(it->second.second);
      if (first_live && second_live) {
        ++it;
        continue;
      }
      // Before discarding: if one witness survived, the agree set is often
      // still realized — hot rows die constantly under NURand skew, but the
      // value combination they carried rarely dies with them. Re-seating on
      // a surviving pair keeps the entry and, when every dead-witness entry
      // re-seats, skips the tree re-induction entirely.
      std::optional<std::pair<RowId, RowId>> replacement;
      if (options_.witness_reseat && (first_live || second_live)) {
        replacement = ReseatWitness(
            it->first, first_live ? it->second.first : it->second.second);
      }
      if (replacement.has_value()) {
        it->second = *replacement;
        ++stats_.evidence_reseated;
        ++it;
      } else {
        it = evidence_.erase(it);
        ++dropped;
      }
    }
    stats_.evidence_dropped += dropped;
    if (dropped > 0 || unwitnessed_refutations_) {
      RebuildTreeFromEvidence();
      unwitnessed_refutations_ = false;
    }
  }

  Status swept = RunSweep(&old_valid, delta.inserted);
  if (!swept.ok()) return swept;
  ++stats_.batches_applied;
  Publish();
  RecordBatchObservability(before, watch.ElapsedSeconds());
  return Status::OK();
}

void DeltaFdMaintainer::RecordBatchObservability(const Stats& before,
                                                 double seconds) {
  if (options_.metrics == nullptr) return;
  ObserveHistogram(batch_seconds_hist_, seconds);
  // Counter deltas against the pre-batch stats: the Stats struct stays the
  // in-process API (and the one source the counters derive from), the
  // registry mirrors it one batch at a time.
  IncrementCounter(batches_applied_counter_,
                   stats_.batches_applied - before.batches_applied);
  IncrementCounter(full_validations_counter_,
                   stats_.full_validations - before.full_validations);
  IncrementCounter(guided_probes_counter_,
                   stats_.guided_probes - before.guided_probes);
  IncrementCounter(carried_valid_counter_,
                   stats_.carried_valid - before.carried_valid);
  IncrementCounter(violations_counter_, stats_.violations - before.violations);
  IncrementCounter(evidence_dropped_counter_,
                   stats_.evidence_dropped - before.evidence_dropped);
  IncrementCounter(evidence_reseated_counter_,
                   stats_.evidence_reseated - before.evidence_reseated);
  IncrementCounter(tree_rebuilds_counter_,
                   stats_.tree_rebuilds - before.tree_rebuilds);
  SetGauge(witnessed_evidence_gauge_,
           static_cast<int64_t>(stats_.witnessed_evidence));
  SetGauge(epoch_gauge_, static_cast<int64_t>(epoch_));
  SetGauge(live_rows_gauge_, static_cast<int64_t>(relation_->live_rows()));
}

std::shared_ptr<const CoverSnapshot> DeltaFdMaintainer::snapshot() const {
  MutexLock lock(mu_);
  return published_;
}

std::optional<std::pair<RowId, RowId>> DeltaFdMaintainer::FullValidate(
    const std::vector<AttributeId>& lhs_attrs, AttributeId rhs) const {
  size_t total = relation_->total_rows();
  if (lhs_attrs.empty()) {
    // {} -> A holds iff A is constant over the live rows.
    bool have_first = false;
    RowId first = 0;
    ValueId first_code = 0;
    for (size_t r = 0; r < total; ++r) {
      RowId row = static_cast<RowId>(r);
      if (!relation_->IsLive(row)) continue;
      ValueId code = relation_->code(rhs, row);
      if (!have_first) {
        have_first = true;
        first = row;
        first_code = code;
      } else if (code != first_code) {
        return std::make_pair(first, row);
      }
    }
    return std::nullopt;
  }
  // One hash scan over the live rows in ascending id order: group by LHS
  // codes, remember each group's first row and its RHS code, report the
  // first disagreement. Deterministic function of the store alone.
  std::unordered_map<std::vector<ValueId>, std::pair<RowId, ValueId>,
                     CodeVecHash>
      groups;
  std::vector<ValueId> key(lhs_attrs.size());
  for (size_t r = 0; r < total; ++r) {
    RowId row = static_cast<RowId>(r);
    if (!relation_->IsLive(row)) continue;
    for (size_t k = 0; k < lhs_attrs.size(); ++k) {
      key[k] = relation_->code(lhs_attrs[k], row);
    }
    ValueId rhs_code = relation_->code(rhs, row);
    auto [it, is_new] = groups.emplace(key, std::make_pair(row, rhs_code));
    if (!is_new && it->second.second != rhs_code) {
      return std::make_pair(it->second.first, row);
    }
  }
  return std::nullopt;
}

std::optional<std::pair<RowId, RowId>> DeltaFdMaintainer::GuidedValidate(
    const std::vector<AttributeId>& lhs_attrs, AttributeId rhs,
    const std::vector<RowId>& inserted) const {
  if (lhs_attrs.empty()) {
    // The whole-relation group; the full constant check is already one
    // early-exiting column scan.
    return FullValidate(lhs_attrs, rhs);
  }
  // The candidate held before the batch and surviving rows are unchanged,
  // so a new violation must involve an inserted row: probe each inserted
  // row's smallest LHS cluster for a live partner agreeing on the whole LHS
  // but not on the RHS.
  for (RowId t : inserted) {
    AttributeId pivot = lhs_attrs[0];
    size_t pivot_size = relation_->column_index(pivot).ClusterSizeOf(t);
    for (AttributeId c : lhs_attrs) {
      size_t size = relation_->column_index(c).ClusterSizeOf(t);
      if (size < pivot_size) {
        pivot_size = size;
        pivot = c;
      }
    }
    const std::vector<RowId>& cluster =
        relation_->column_index(pivot).Cluster(relation_->code(pivot, t));
    ValueId t_rhs = relation_->code(rhs, t);
    for (RowId r : cluster) {
      if (r == t) continue;
      bool agrees = true;
      for (AttributeId c : lhs_attrs) {
        if (c == pivot) continue;
        if (relation_->code(c, r) != relation_->code(c, t)) {
          agrees = false;
          break;
        }
      }
      if (agrees && relation_->code(rhs, r) != t_rhs) {
        return std::make_pair(std::min(t, r), std::max(t, r));
      }
    }
  }
  return std::nullopt;
}

Status DeltaFdMaintainer::RunSweep(const FdTree* old_valid,
                                   const std::vector<RowId>& inserted) {
  ScopedSpan sweep_span(options_.tracer, "probe");
  ThreadPool* pool =
      options_.pool != nullptr ? options_.pool : own_pool_.get();
  int n = relation_->num_columns();
  int max_level =
      options_.max_lhs_size > 0 ? std::min(options_.max_lhs_size, n) : n;
  for (int level = 0; level <= max_level; ++level) {
    std::vector<Fd> level_fds = tree_.GetLevel(level);
    if (level_fds.empty()) continue;
    std::vector<Unit> units;
    for (const Fd& fd : level_fds) {
      for (AttributeId rhs : fd.rhs) {
        bool was_valid =
            old_valid != nullptr && old_valid->ContainsFd(fd.lhs, rhs);
        if (was_valid && inserted.empty()) {
          // Deletes only shrink evidence: a pre-batch-valid FD stays valid
          // with no scan at all.
          ++stats_.carried_valid;
          continue;
        }
        Unit unit;
        unit.lhs = fd.lhs;
        unit.lhs_attrs = fd.lhs.ToVector();
        unit.rhs = rhs;
        unit.guided = was_valid;
        if (was_valid) {
          ++stats_.guided_probes;
        } else {
          ++stats_.full_validations;
        }
        units.push_back(std::move(unit));
      }
    }
    if (units.empty()) continue;

    // Each probe is a pure read of the (quiescent) store writing one
    // disjoint slot; violations then apply serially in unit order. Both
    // together make the maintained state bit-identical at any thread count.
    std::vector<std::optional<std::pair<RowId, RowId>>> hits(units.size());
    Status ran = ParallelFor(pool, units.size(), [&](size_t i) {
      const Unit& unit = units[i];
      hits[i] = unit.guided ? GuidedValidate(unit.lhs_attrs, unit.rhs, inserted)
                            : FullValidate(unit.lhs_attrs, unit.rhs);
    });
    if (!ran.ok()) return ran;

    for (size_t i = 0; i < units.size(); ++i) {
      if (!hits[i].has_value()) continue;
      ++stats_.violations;
      AttributeSet agree =
          relation_->AgreeSet(hits[i]->first, hits[i]->second);
      // Keep the first witness per agree set; a later duplicate changes
      // nothing (the tree is already consistent with the evidence).
      evidence_.emplace(agree, *hits[i]);
      // Apply the full evidence (every RHS outside the agree set), exactly
      // like negative-cover induction: tree_ then stays the pure function
      // Induce(evidence_) that RebuildTreeFromEvidence reproduces.
      InduceFromAgreeSet(&tree_, agree, options_.max_lhs_size);
    }
  }
  return Status::OK();
}

std::optional<std::pair<RowId, RowId>> DeltaFdMaintainer::ReseatWitness(
    const AttributeSet& agree, RowId survivor) const {
  std::vector<AttributeId> attrs = agree.ToVector();
  // An all-disagreeing pair has no cluster to probe; let the entry drop.
  if (attrs.empty()) return std::nullopt;
  AttributeId pivot = attrs[0];
  size_t pivot_size = relation_->column_index(pivot).ClusterSizeOf(survivor);
  for (AttributeId c : attrs) {
    size_t size = relation_->column_index(c).ClusterSizeOf(survivor);
    if (size < pivot_size) {
      pivot_size = size;
      pivot = c;
    }
  }
  // Candidates agreeing with the survivor on the pivot, all live by index
  // maintenance; the exact-agree check filters the rest. The scan bound
  // keeps a pathological mega-cluster from turning one delete into a table
  // scan — past it we drop the entry, which is always correct.
  const std::vector<RowId>& cluster =
      relation_->column_index(pivot).Cluster(relation_->code(pivot, survivor));
  size_t scanned = 0;
  for (RowId r : cluster) {
    if (r == survivor) continue;
    if (++scanned > options_.reseat_probe_limit) break;
    if (relation_->AgreeSet(survivor, r) == agree) {
      return std::make_pair(std::min(survivor, r), std::max(survivor, r));
    }
  }
  return std::nullopt;
}

std::vector<std::pair<AttributeSet, std::pair<RowId, RowId>>>
DeltaFdMaintainer::ExportWitnessedEvidence() const {
  std::vector<std::pair<AttributeSet, std::pair<RowId, RowId>>> out(
      evidence_.begin(), evidence_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void DeltaFdMaintainer::RebuildTreeFromEvidence() {
  tree_ = FdTree(relation_->num_columns());
  SeedFullCover(&tree_);
  std::vector<AttributeSet> keys;
  keys.reserve(evidence_.size());
  for (const auto& [agree, witness] : evidence_) keys.push_back(agree);
  // Canonical order so the rebuilt tree's node layout is independent of the
  // hash map's iteration order (the induced FD set itself is already
  // order-independent).
  std::sort(keys.begin(), keys.end());
  for (const AttributeSet& agree : keys) {
    InduceFromAgreeSet(&tree_, agree, options_.max_lhs_size);
  }
  ++stats_.tree_rebuilds;
}

void DeltaFdMaintainer::Publish() {
  ScopedSpan publish_span(options_.tracer, "publish");
  // Minimize a scratch copy (tree_ must keep being Induce(evidence_)) and
  // remap through the same tail as one-shot discovery; RemapToGlobal
  // aggregates and sorts, so the snapshot is canonical.
  FdTree minimal(relation_->num_columns());
  for (const Fd& fd : tree_.CollectAllFds()) {
    for (AttributeId a : fd.rhs) minimal.AddFd(fd.lhs, a);
  }
  MinimizeCover(&minimal);
  auto snap = std::make_shared<CoverSnapshot>();
  snap->epoch = epoch_ + 1;
  snap->live_rows = relation_->live_rows();
  snap->cover = RemapToGlobal(minimal.CollectAllFds(), relation_->data());
  ++epoch_;
  stats_.witnessed_evidence = evidence_.size();
  MutexLock lock(mu_);
  published_ = std::move(snap);
}

}  // namespace normalize
