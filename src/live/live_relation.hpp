// LiveRelation: the mutable store of the incremental normalization engine
// (the ROADMAP's "normalization-as-a-service" substrate). It wraps the
// dictionary-encoded columnar store in an append-only row log with a
// liveness mask and accepts insert/update/delete batches; single-column
// position indexes (pli/MutableColumnPli) are maintained per batch as
// cluster deltas instead of partition rebuilds, so violation probes and
// stripped-PLI materialization stay cheap under churn.
//
// Row identity: Apply() assigns every inserted row a stable RowId (its index
// in the append-only log) that is never reused; deletes only flip liveness.
// Updates are full-row replacements = delete(old) + insert(new), so an
// updated row gets a fresh id — exactly the version discipline the delta FD
// maintainer's witnessed evidence relies on (a witness row id either stays
// live with unchanged values or is dead, never silently mutated).
//
// Concurrency contract (phase discipline, not locks — see
// common/thread_annotations.hpp): Apply() is single-writer; the const read
// surface (codes, clusters, Materialize) may be used by any number of
// threads only while no Apply() runs. DeltaFdMaintainer enforces this by
// running its read-only validation sweeps strictly between mutations and
// publishing covers through an epoch snapshot readers consume instead of
// touching the store.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/attribute_set.hpp"
#include "common/result.hpp"
#include "common/thread_annotations.hpp"
#include "pli/pli.hpp"
#include "relation/relation_data.hpp"

namespace normalize {

/// One batch of mutations, applied atomically with respect to the published
/// cover: readers either see the cover before the whole batch or after it.
/// Cells are taken verbatim (the empty string is the empty string, not
/// NULL), matching RelationData::AppendRow(cells).
struct LiveBatch {
  /// New rows (one cell per column, relation column order).
  std::vector<std::vector<std::string>> inserts;
  /// Full-row replacements of live rows: the target is deleted and the new
  /// version appended under a fresh RowId.
  std::vector<std::pair<RowId, std::vector<std::string>>> updates;
  /// Live rows to delete.
  std::vector<RowId> deletes;

  bool empty() const {
    return inserts.empty() && updates.empty() && deletes.empty();
  }
  size_t size() const {
    return inserts.size() + updates.size() + deletes.size();
  }
};

/// What one Apply() call changed, in application order: all row ids that
/// died (explicit deletes, then the old versions of updates) and all row ids
/// that were born (update replacements, then inserts).
struct BatchDelta {
  std::vector<RowId> deleted;
  std::vector<RowId> inserted;
};

class LiveRelation {
 public:
  /// Seeds the store with an initial instance (copied; value dictionaries
  /// are shared with the copy, so codes agree with relations derived from
  /// `initial`). All initial rows are live.
  explicit LiveRelation(const RelationData& initial);

  /// Restores a store from a persisted append-only row log plus its liveness
  /// mask (the service checkpoint path): row r of `full_log` is live iff
  /// `live_mask[r] != 0`. The RowId space is reproduced exactly — dead rows
  /// keep their slots — so WAL records captured before the crash replay
  /// against the same ids. The internal live order is rebuilt ascending, not
  /// the pre-crash swap-remove order; only NthLiveRow observes that order,
  /// and the service never calls it (clients drive target selection).
  LiveRelation(const RelationData& full_log,
               const std::vector<char>& live_mask);

  /// The append-only backing store, dead rows included. Row ids index into
  /// it; attribute ids / universe metadata are the initial relation's.
  const RelationData& data() const { return data_; }
  int num_columns() const { return data_.num_columns(); }
  /// Rows ever appended, dead ones included (the RowId space).
  size_t total_rows() const { return data_.num_rows(); }
  size_t live_rows() const { return live_list_.size(); }

  bool IsLive(RowId row) const {
    return static_cast<size_t>(row) < live_.size() &&
           live_[static_cast<size_t>(row)] != 0;
  }
  ValueId code(int column, RowId row) const {
    return data_.column(column).code(row);
  }

  /// The k-th live row under the engine's internal O(1) order (perturbed by
  /// deletions, deterministic for a given mutation history). The NURand
  /// update-stream applier resolves its skewed target indexes through this.
  RowId NthLiveRow(size_t k) const { return live_list_[k]; }
  /// All live row ids, ascending.
  std::vector<RowId> LiveRowIds() const;

  /// Applies one batch: deletes first, then updates (delete old + append new
  /// version), then inserts. Fails with kInvalidArgument — leaving the store
  /// untouched — when a target row is not live, is named twice, or a new row
  /// has the wrong arity. Returns the delta for the FD maintainer.
  Result<BatchDelta> Apply(const LiveBatch& batch) NORMALIZE_MUTATES_STORE;

  /// The admission check Apply() runs before mutating anything, exposed so
  /// the service can reject a malformed batch *before* logging it to the
  /// WAL (a rejected batch must never reach the durable log — replay only
  /// sees batches that applied). OK iff Apply(batch) would succeed now.
  [[nodiscard]] Status ValidateBatch(const LiveBatch& batch) const;

  /// The delta-maintained position index of one column (all live rows,
  /// singletons included).
  const MutableColumnPli& column_index(int column) const {
    return indexes_[static_cast<size_t>(column)];
  }
  /// Canonical stripped partition of one column over the live rows, served
  /// from the maintained index (no rebuild). Row ids are this store's stable
  /// ids, not materialized positions.
  Pli ColumnPli(int column) const {
    return indexes_[static_cast<size_t>(column)].ToStripped(total_rows());
  }

  /// Agree set of two (live) rows in local column space.
  AttributeSet AgreeSet(RowId r1, RowId r2) const;

  /// Compacts the live rows (ascending row id) into a standalone
  /// RelationData sharing this store's dictionaries — the instance one-shot
  /// discovery sees. The maintained cover is bit-identical to discovery on
  /// this materialization; tests and the re-normalization path consume it.
  RelationData Materialize(const std::string& name = "") const;

 private:
  void AppendLiveRow(const std::vector<std::string>& cells);
  void KillRow(RowId row);

  RelationData data_;
  std::vector<char> live_;
  /// Live row ids in internal order + each live row's index therein
  /// (swap-remove on death), giving O(1) NthLiveRow and deletion.
  std::vector<RowId> live_list_;
  std::vector<uint32_t> live_pos_;
  std::vector<MutableColumnPli> indexes_;
};

}  // namespace normalize
