// DeltaFdMaintainer: keeps the minimal FD cover of a LiveRelation
// continuously exact under insert/update/delete batches — the incremental
// maintenance core the future normalization daemon sits on. After every
// applied batch the maintained cover is bit-identical to one-shot discovery
// on the materialized live rows, at a fraction of the cost: only the lattice
// region a batch actually touched is re-examined.
//
// The delta argument, per mutation direction:
//
//   Inserts can only *invalidate* FDs (agree-set evidence grows, validity
//   shrinks). Every old pair of surviving rows is unchanged, so an FD that
//   held before the batch can only be broken by a pair involving an inserted
//   row — cover members are therefore re-checked with a *guided* probe that
//   scans each inserted row's smallest LHS cluster (served by the
//   delta-maintained MutableColumnPli indexes) instead of the whole store.
//   Violations feed the existing HyFD induction path (SpecializeCover), and
//   only the specialized candidates — the affected lattice region — get a
//   full validation.
//
//   Deletes can only *validate* FDs (evidence shrinks). The maintainer
//   stores every agree set it has ever applied together with a witness row
//   pair — a g3-style violation support in the spirit of
//   normalize/constraint_monitor and fd/approximate: evidence is real
//   exactly while its witness pair is live (its g3 contribution is > 0).
//   A delete batch drops evidence whose witness died, marks the refutations
//   that depended on it stale, and lazily revalidates just those candidates:
//   the tree is re-induced from the surviving (still-witnessed) negative
//   cover, candidates equal to previously valid cover members are carried
//   over without a scan (deletes preserve validity), and only the newly
//   optimistic generalizations are validated against the store.
//
//   Updates are delete(old version) + insert(new version) in one batch;
//   both passes above run once, over the combined delta.
//
// Covers are published under epoch/snapshot semantics: readers obtain an
// immutable shared snapshot (schema/cover/advisor queries never observe a
// half-updated cover) while ApplyBatch() swaps in the next epoch atomically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/attribute_set.hpp"
#include "common/mutex.hpp"
#include "common/result.hpp"
#include "common/thread_annotations.hpp"
#include "fd/fd.hpp"
#include "fd/fd_tree.hpp"
#include "live/live_relation.hpp"

namespace normalize {

class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class ThreadPool;
class Tracer;

/// One published cover: immutable once returned from snapshot(), shared by
/// any number of concurrent readers.
struct CoverSnapshot {
  /// Monotonic publication counter; epoch e+1 reflects exactly one more
  /// applied batch than epoch e.
  uint64_t epoch = 0;
  /// Live rows at publication time.
  size_t live_rows = 0;
  /// The minimal cover in global attribute space, aggregated and sorted —
  /// the same form one-shot discovery returns.
  FdSet cover;
};

struct DeltaFdMaintainerOptions {
  /// Maximum LHS size, as FdDiscoveryOptions::max_lhs_size. The equivalence
  /// guarantee is against one-shot discovery under the same bound.
  int max_lhs_size = -1;
  /// Worker threads for the validation sweeps: <= 1 is serial; an external
  /// `pool` takes precedence. The maintained cover is bit-identical at
  /// every thread count — probes are pure reads with disjoint result slots
  /// and violations apply in snapshot order.
  int threads = 1;
  ThreadPool* pool = nullptr;
  /// Bootstrap the negative cover from a HyFd run over the initial instance
  /// (cheap sampling evidence) instead of refuting from scratch. Seeded
  /// refutations carry no witness, so the first batch containing deletes
  /// forces one full tree re-induction; afterwards all evidence is
  /// witnessed and delete handling is incremental.
  bool hyfd_bootstrap = true;
  /// Before dropping evidence whose witness row died, probe the surviving
  /// witness's smallest cluster for a replacement pair realizing the exact
  /// same agree set. Under NURand skew hot rows die nearly every batch, and
  /// without re-seating each death discards still-real evidence and forces
  /// a tree re-induction; a successful re-seat keeps the entry (the tree is
  /// untouched — the agree set is unchanged) at the cost of one bounded
  /// cluster scan. Covers are bit-identical either way.
  bool witness_reseat = true;
  /// Cap on candidate rows scanned per re-seat probe; past it the entry is
  /// dropped as if unwitnessed (correct, just slower on the next batch).
  size_t reseat_probe_limit = 128;
  /// Observability registry (obs/metrics.hpp; not owned, null = disabled).
  /// Batch latency lands in the `live_batch_apply_seconds` histogram and the
  /// Stats counters are mirrored as `live_*_total` after each batch, so one
  /// scrape shows probe/reseat/rebuild activity without polling stats().
  MetricsRegistry* metrics = nullptr;
  /// Trace sink (obs/span.hpp; not owned, null = disabled). Each batch
  /// yields the span tree apply_batch → probe (per sweep) → publish,
  /// parented under the calling thread's ambient span (the service's
  /// per-batch span when running under ServiceCore).
  Tracer* tracer = nullptr;
};

class DeltaFdMaintainer {
 public:
  struct Stats {
    uint64_t batches_applied = 0;
    /// Probe counts, cumulative over all sweeps (bootstrap included).
    size_t full_validations = 0;
    size_t guided_probes = 0;
    /// Cover members carried over without any scan (delete-only batches).
    size_t carried_valid = 0;
    size_t violations = 0;
    /// Witnessed evidence entries dropped because a witness row died.
    size_t evidence_dropped = 0;
    /// Evidence entries whose dead witness was replaced in place by a
    /// surviving pair with the identical agree set (no drop, no rebuild).
    size_t evidence_reseated = 0;
    /// Tree re-inductions from the surviving negative cover.
    size_t tree_rebuilds = 0;
    /// Current witnessed negative-cover size.
    size_t witnessed_evidence = 0;
  };

  /// The relation must outlive the maintainer. Call Initialize() before the
  /// first ApplyBatch().
  explicit DeltaFdMaintainer(LiveRelation* relation,
                             DeltaFdMaintainerOptions options = {});
  ~DeltaFdMaintainer();

  /// Bootstraps the cover for the relation's current contents and publishes
  /// epoch 1. Idempotent only in the sense that calling it again rebuilds
  /// from scratch.
  Status Initialize();

  /// Applies the batch to the store, maintains the cover, and publishes the
  /// next epoch. On a batch validation error (kInvalidArgument) neither the
  /// store nor the cover changes.
  Status ApplyBatch(const LiveBatch& batch) NORMALIZE_MUTATES_STORE;

  /// The latest published cover. Never null after Initialize(); safe to
  /// call from any thread concurrently with ApplyBatch().
  std::shared_ptr<const CoverSnapshot> snapshot() const;

  const Stats& stats() const { return stats_; }

  /// The witnessed negative cover in canonical (sorted agree set) order,
  /// for the service checkpoint. Restoring is not supported — recovery
  /// re-runs Initialize() — but persisting it lets recovery cross-check
  /// the rebuilt evidence against what the checkpointed cover was built
  /// from.
  std::vector<std::pair<AttributeSet, std::pair<RowId, RowId>>>
  ExportWitnessedEvidence() const;

 private:
  struct Unit {
    AttributeSet lhs;
    std::vector<AttributeId> lhs_attrs;
    AttributeId rhs;
    bool guided = false;  // probe only pairs involving inserted rows
  };

  /// Full validation of lhs -> rhs over all live rows: one hash scan,
  /// first violating pair in ascending row order, or nullopt.
  std::optional<std::pair<RowId, RowId>> FullValidate(
      const std::vector<AttributeId>& lhs_attrs, AttributeId rhs) const;

  /// Guided probe: a violating pair involving at least one row of
  /// `inserted`, found through the smallest LHS cluster index.
  std::optional<std::pair<RowId, RowId>> GuidedValidate(
      const std::vector<AttributeId>& lhs_attrs, AttributeId rhs,
      const std::vector<RowId>& inserted) const;

  /// Level-wise validation of the candidate tree. `old_valid` holds the
  /// pre-batch cover (carried-valid skips); `inserted` drives the guided
  /// probes (empty = deletes only, old members skip entirely).
  Status RunSweep(const FdTree* old_valid, const std::vector<RowId>& inserted);

  /// Re-induces tree_ from the witnessed evidence (canonical order).
  void RebuildTreeFromEvidence();

  /// Searches for a live pair realizing exactly `agree`, starting from the
  /// surviving witness row: scans `survivor`'s smallest cluster over the
  /// agree set's attributes (bounded by reseat_probe_limit) for a live
  /// partner whose agree set with `survivor` is exactly `agree`. nullopt if
  /// none is found within the bound (the entry is then dropped).
  std::optional<std::pair<RowId, RowId>> ReseatWitness(
      const AttributeSet& agree,
                                                       RowId survivor) const;

  void Publish();

  /// Folds the batch just applied into the registry: counter deltas against
  /// `before`, the batch latency, and the point-in-time gauges. No-op
  /// without a registry.
  void RecordBatchObservability(const Stats& before, double seconds);

  LiveRelation* relation_;
  DeltaFdMaintainerOptions options_;
  // Registry instruments, resolved once at construction (all null when
  // options_.metrics is null). Updates are lock-free atomics.
  Histogram* batch_seconds_hist_ = nullptr;
  Counter* batches_applied_counter_ = nullptr;
  Counter* full_validations_counter_ = nullptr;
  Counter* guided_probes_counter_ = nullptr;
  Counter* carried_valid_counter_ = nullptr;
  Counter* violations_counter_ = nullptr;
  Counter* evidence_dropped_counter_ = nullptr;
  Counter* evidence_reseated_counter_ = nullptr;
  Counter* tree_rebuilds_counter_ = nullptr;
  Gauge* witnessed_evidence_gauge_ = nullptr;
  Gauge* epoch_gauge_ = nullptr;
  Gauge* live_rows_gauge_ = nullptr;
  /// Owned worker pool when `options_.threads` asks for parallelism and no
  /// external pool was supplied.
  std::unique_ptr<ThreadPool> own_pool_;
  FdTree tree_;
  /// Witnessed negative cover: agree set -> one live row pair realizing it.
  /// The map owns the maintainer's delete-side exactness: an entry is
  /// guaranteed-real while both witness rows live.
  std::unordered_map<AttributeSet, std::pair<RowId, RowId>> evidence_;
  /// The bootstrap seeded refutations that are not in evidence_; the next
  /// delete batch must rebuild unconditionally (see hyfd_bootstrap).
  bool unwitnessed_refutations_ = false;
  Stats stats_;
  uint64_t epoch_ = 0;

  mutable Mutex mu_;
  std::shared_ptr<const CoverSnapshot> published_ NORMALIZE_GUARDED_BY(mu_);
};

}  // namespace normalize
