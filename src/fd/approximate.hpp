// Approximate functional dependencies: the g3 error measure (Kivinen &
// Mannila; used by TANE's approximate mode) — the minimum fraction of rows
// that must be removed for an FD to hold exactly. The paper's conclusion
// names "errors in the data" as open future work: g3 quantifies how close a
// broken design FD still is to holding, which the constraint monitor's
// consumers use to distinguish data errors (tiny g3) from semantically
// false, coincidental FDs (large g3).
#pragma once

#include "common/attribute_set.hpp"
#include "relation/relation_data.hpp"

namespace normalize {

/// The g3 error of lhs -> rhs_attr on `data`: (number of rows that must be
/// removed so the FD holds) / (total rows). 0.0 = the FD holds exactly;
/// approaches 1 as the LHS groups become uniformly mixed. For each LHS
/// group, all rows except the most frequent RHS value must go. Returns 0.0
/// on empty instances. NULLs compare equal.
double FdError(const RelationData& data, const AttributeSet& lhs,
               AttributeId rhs_attr);

/// True iff the FD holds approximately: FdError <= max_error.
bool FdHoldsApproximately(const RelationData& data, const AttributeSet& lhs,
                          AttributeId rhs_attr, double max_error);

}  // namespace normalize
