#include "fd/hitting_set.hpp"

namespace normalize {

std::vector<AttributeSet> MinimalHittingSets(
    const std::vector<AttributeSet>& family, int capacity) {
  // Berge's algorithm: fold the family, maintaining the minimal transversals
  // of the prefix processed so far.
  std::vector<AttributeSet> current = {AttributeSet(capacity)};
  for (const AttributeSet& set : family) {
    if (set.Empty()) return {};  // the empty set cannot be hit
    std::vector<AttributeSet> next;
    std::vector<AttributeSet> extensions;
    for (const AttributeSet& t : current) {
      if (t.Intersects(set)) {
        next.push_back(t);
      } else {
        for (AttributeId a : set) {
          AttributeSet extended = t;
          extended.Set(a);
          extensions.push_back(std::move(extended));
        }
      }
    }
    // Keep only minimal extensions (an extension may contain a transversal
    // that already hits the new set, or another smaller extension). The
    // filtering reads `extensions`, so survivors are copied out rather than
    // moved while the scan is still running.
    size_t kept_before = next.size();
    for (size_t i = 0; i < extensions.size(); ++i) {
      const AttributeSet& candidate = extensions[i];
      bool minimal = true;
      for (size_t k = 0; k < kept_before && minimal; ++k) {
        if (next[k].IsSubsetOf(candidate)) minimal = false;
      }
      for (size_t j = 0; j < extensions.size() && minimal; ++j) {
        if (j != i && extensions[j].IsProperSubsetOf(candidate)) {
          minimal = false;
        }
      }
      // Dedupe against earlier surviving duplicates of the same value.
      for (size_t j = 0; j < i && minimal; ++j) {
        if (extensions[j] == candidate) minimal = false;
      }
      if (minimal) next.push_back(candidate);
    }
    current = std::move(next);
  }
  return current;
}

}  // namespace normalize
