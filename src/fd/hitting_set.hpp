// Minimal hitting set enumeration (Berge's incremental algorithm). Used by
// DFD's seed generation: the unexplored lattice nodes are exactly the
// minimal transversals of the complements of the maximal non-dependencies.
#pragma once

#include <vector>

#include "common/attribute_set.hpp"

namespace normalize {

/// Enumerates all minimal hitting sets of `family`: the inclusion-minimal
/// sets H with H ∩ S ≠ ∅ for every S in the family. An empty family yields
/// {∅}; a family containing the empty set yields {} (nothing can hit ∅).
/// All sets share `capacity`.
std::vector<AttributeSet> MinimalHittingSets(
    const std::vector<AttributeSet>& family, int capacity);

}  // namespace normalize
