// FD result-set I/O in the Metanome text style the paper's tooling uses:
// one FD per line, "[Lhs1, Lhs2] --> Rhs1, Rhs2". This lets the closure and
// normalization components run on externally discovered FD sets (the
// framework's "FD input handling", reimplemented self-contained).
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "fd/fd.hpp"

namespace normalize {

/// Serializes an FD set, one aggregated FD per line:
///   [First, Last] --> Postcode, City, Mayor
/// An empty LHS renders as "[]".
std::string WriteFdsToString(const FdSet& fds,
                             const std::vector<std::string>& attribute_names);

/// Parses the format written by WriteFdsToString. Attribute names are
/// resolved against `attribute_names` (the index becomes the attribute id);
/// unknown names are an error. Blank lines and lines starting with '#' are
/// skipped. The result is aggregated per LHS.
Result<FdSet> ReadFdsFromString(
    const std::string& text, const std::vector<std::string>& attribute_names);

/// File variants of the two functions above.
Status WriteFdFile(const FdSet& fds,
                   const std::vector<std::string>& attribute_names,
                   const std::string& path);
Result<FdSet> ReadFdFile(const std::string& path,
                         const std::vector<std::string>& attribute_names);

}  // namespace normalize
