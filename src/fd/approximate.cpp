#include "fd/approximate.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace normalize {

namespace {

struct CodeVecHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    size_t h = 1469598103934665603ull;
    for (ValueId x : v) {
      h ^= static_cast<size_t>(x) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

double FdError(const RelationData& data, const AttributeSet& lhs,
               AttributeId rhs_attr) {
  size_t rows = data.num_rows();
  if (rows == 0) return 0.0;
  std::vector<int> lhs_cols;
  for (AttributeId a : lhs) {
    int ci = data.ColumnIndexOf(a);
    assert(ci >= 0);
    lhs_cols.push_back(ci);
  }
  int rhs_col = data.ColumnIndexOf(rhs_attr);
  assert(rhs_col >= 0);

  // Per LHS group: count the frequency of each RHS code; the group keeps its
  // most frequent RHS value, everything else must be removed.
  std::unordered_map<std::vector<ValueId>,
                     std::unordered_map<ValueId, size_t>, CodeVecHash>
      groups;
  std::vector<ValueId> key(lhs_cols.size());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t i = 0; i < lhs_cols.size(); ++i) {
      key[i] = data.column(lhs_cols[i]).code(r);
    }
    groups[key][data.column(rhs_col).code(r)]++;
  }

  size_t keep = 0;
  for (const auto& [k, counts] : groups) {
    size_t best = 0;
    for (const auto& [code, count] : counts) best = std::max(best, count);
    keep += best;
  }
  return static_cast<double>(rows - keep) / static_cast<double>(rows);
}

bool FdHoldsApproximately(const RelationData& data, const AttributeSet& lhs,
                          AttributeId rhs_attr, double max_error) {
  return FdError(data, lhs, rhs_attr) <= max_error;
}

}  // namespace normalize
