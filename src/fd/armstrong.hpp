// Armstrong-axiom utilities on FD sets: attribute-set closure X+ under F,
// the membership problem ("is X -> A in the cover?", the linear-time test of
// Beeri & Bernstein the paper's related work discusses), implication between
// FD sets, and minimal-cover reduction (removal of extraneous attributes and
// redundant FDs, Diederich & Milton's preprocessing — which the paper notes
// is futile on discovered covers because those are already minimal).
#pragma once

#include "common/attribute_set.hpp"
#include "fd/fd.hpp"

namespace normalize {

/// Computes the attribute closure X+ under F: all attributes reachable from
/// X via reflexivity and transitivity. Linear-ish fixpoint (Beeri-Bernstein
/// style: each FD fires once, when its LHS becomes covered).
AttributeSet AttributeClosure(const AttributeSet& x, const FdSet& fds);

/// Membership test: does F imply lhs -> rhs_attr?
bool Implies(const FdSet& fds, const AttributeSet& lhs, AttributeId rhs_attr);

/// Does F imply every (unary) FD of G?
bool ImpliesAll(const FdSet& fds, const FdSet& other);

/// Are F and G equivalent covers (each implies the other)?
bool EquivalentCovers(const FdSet& a, const FdSet& b);

/// Reduces F to a minimal (canonical) cover: LHS attributes that are
/// extraneous are removed, then FDs implied by the rest are dropped. The
/// result is aggregated. Useful for hand-written FD sets; discovery output
/// is already minimal (paper §2/§3).
FdSet MinimalCover(const FdSet& fds);

}  // namespace normalize
