// FdTree: an FD-cover prefix tree (as used by FDEP and HyFD). Each node path
// is an ascending LHS attribute sequence; a bitset at the node records which
// RHS attributes the LHS determines. Supports the generalization queries and
// specialization updates that negative-cover inversion and hybrid validation
// need.
#pragma once

#include <memory>
#include <vector>

#include "common/attribute_set.hpp"
#include "fd/fd.hpp"

namespace normalize {

/// Prefix tree storing unary FDs grouped by LHS, with generalization search.
class FdTree {
 public:
  explicit FdTree(int num_attributes)
      : num_attributes_(num_attributes), root_(std::make_unique<Node>()) {
    root_->rhs = AttributeSet(num_attributes);
  }

  int num_attributes() const { return num_attributes_; }

  /// Adds lhs -> rhs_attr (idempotent).
  void AddFd(const AttributeSet& lhs, AttributeId rhs_attr);

  /// Removes the exact FD lhs -> rhs_attr if present (nodes are retained).
  void RemoveFd(const AttributeSet& lhs, AttributeId rhs_attr);

  /// True iff the exact FD is stored.
  bool ContainsFd(const AttributeSet& lhs, AttributeId rhs_attr) const;

  /// True iff some stored FD Y -> rhs_attr has Y ⊆ lhs.
  bool ContainsFdOrGeneralization(const AttributeSet& lhs,
                                  AttributeId rhs_attr) const;

  /// All stored LHSs Y ⊆ lhs with Y -> rhs_attr.
  std::vector<AttributeSet> GetFdAndGeneralizations(const AttributeSet& lhs,
                                                    AttributeId rhs_attr) const;

  /// All FDs whose LHS has exactly `level` attributes (aggregated RHS).
  std::vector<Fd> GetLevel(int level) const;

  /// All stored FDs, aggregated per LHS node.
  std::vector<Fd> CollectAllFds() const;

  /// Number of stored unary FDs.
  size_t CountFds() const;

 private:
  struct Node {
    std::vector<std::pair<AttributeId, std::unique_ptr<Node>>> children;
    AttributeSet rhs;  // RHS attributes determined by this node's LHS path

    Node* Child(AttributeId a) const;
    Node* GetOrCreateChild(AttributeId a, int num_attributes);
  };

  bool SearchGeneralization(const Node* node, const AttributeSet& lhs,
                            AttributeId rhs_attr, AttributeId from) const;
  void CollectGeneralizations(const Node* node, const AttributeSet& lhs,
                              AttributeId rhs_attr, AttributeId from,
                              AttributeSet* current,
                              std::vector<AttributeSet>* out) const;
  void CollectLevel(const Node* node, int remaining, AttributeSet* current,
                    std::vector<Fd>* out) const;
  void CollectAll(const Node* node, AttributeSet* current,
                  std::vector<Fd>* out) const;

  int num_attributes_;
  std::unique_ptr<Node> root_;
};

}  // namespace normalize
