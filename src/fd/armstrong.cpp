#include "fd/armstrong.hpp"

#include <vector>

namespace normalize {

AttributeSet AttributeClosure(const AttributeSet& x, const FdSet& fds) {
  AttributeSet closure = x;
  // Fixpoint: fire every FD whose LHS is covered. Each FD fires at most
  // once; remaining[i] tracks whether FD i has fired.
  std::vector<bool> fired(fds.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < fds.size(); ++i) {
      if (fired[i]) continue;
      const Fd& fd = fds[i];
      if (fd.lhs.IsSubsetOf(closure)) {
        fired[i] = true;
        if (!fd.rhs.IsSubsetOf(closure)) {
          closure.UnionWith(fd.rhs);
          changed = true;
        }
      }
    }
  }
  return closure;
}

bool Implies(const FdSet& fds, const AttributeSet& lhs, AttributeId rhs_attr) {
  if (lhs.Test(rhs_attr)) return true;  // reflexivity
  return AttributeClosure(lhs, fds).Test(rhs_attr);
}

bool ImpliesAll(const FdSet& fds, const FdSet& other) {
  for (const Fd& fd : other) {
    AttributeSet closure = AttributeClosure(fd.lhs, fds);
    if (!fd.rhs.IsSubsetOf(closure)) return false;
  }
  return true;
}

bool EquivalentCovers(const FdSet& a, const FdSet& b) {
  return ImpliesAll(a, b) && ImpliesAll(b, a);
}

FdSet MinimalCover(const FdSet& fds) {
  // Work on unary FDs.
  std::vector<Fd> unary = fds.ToUnary();

  // 1) Remove extraneous LHS attributes: a is extraneous in X -> A when
  //    (X \ {a})+ still contains A.
  FdSet current(unary);
  for (size_t i = 0; i < current.size(); ++i) {
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      for (AttributeId a : current[i].lhs) {
        // a is extraneous iff (X \ {a})+ under F (including this FD, the
        // textbook rule) still reaches the RHS attribute.
        AttributeSet smaller = current[i].lhs;
        smaller.Reset(a);
        if (AttributeClosure(smaller, current).Test(current[i].rhs.First())) {
          current[i].lhs = smaller;
          shrunk = true;
          break;
        }
      }
    }
  }

  // 2) Drop redundant FDs: X -> A is redundant when F \ {X -> A} implies it.
  std::vector<bool> keep(current.size(), true);
  for (size_t i = 0; i < current.size(); ++i) {
    FdSet rest;
    for (size_t j = 0; j < current.size(); ++j) {
      if (j != i && keep[j]) rest.Add(current[j]);
    }
    if (Implies(rest, current[i].lhs, current[i].rhs.First())) {
      keep[i] = false;
    }
  }
  FdSet result;
  for (size_t i = 0; i < current.size(); ++i) {
    if (keep[i]) result.Add(current[i]);
  }
  result.Aggregate();
  return result;
}

}  // namespace normalize
