// SetTrie: the paper's "prefix tree" over attribute sets. Sets are stored as
// ascending attribute-id paths; the key operation is the subset-existence
// query ContainsSubsetOf used by the improved/optimized closure algorithms
// (one trie per RHS attribute, §4.2/4.3) and by violation detection's key
// trie (§6, Algorithm 4).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/attribute_set.hpp"

namespace normalize {

/// A trie of attribute sets supporting subset search.
class SetTrie {
 public:
  SetTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts a set (duplicates are fine; the trie stores presence only).
  void Insert(const AttributeSet& set);

  /// True iff some stored set is a subset of `query` (improper subsets
  /// included: an exact match counts).
  bool ContainsSubsetOf(const AttributeSet& query) const;

  /// True iff some stored set is a superset of `query` (exact match counts).
  /// Used to filter non-maximal agree sets out of negative covers.
  bool ContainsSupersetOf(const AttributeSet& query) const;

  /// Collects all stored sets that are subsets of `query`.
  std::vector<AttributeSet> SubsetsOf(const AttributeSet& query) const;

  /// True iff the exact set was inserted.
  bool Contains(const AttributeSet& set) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Node {
    // Children sorted by attribute id; attribute universes are small
    // (~100s), so a sorted vector beats a map.
    std::vector<std::pair<AttributeId, std::unique_ptr<Node>>> children;
    bool is_end = false;

    Node* Child(AttributeId a) const;
    Node* GetOrCreateChild(AttributeId a);
  };

  static bool SearchSubset(const Node* node, const AttributeSet& query,
                           AttributeId from);
  static bool SearchSuperset(const Node* node, const AttributeSet& query,
                             AttributeId next_required);
  static void CollectSubsets(const Node* node, const AttributeSet& query,
                             AttributeId from, AttributeSet* current,
                             std::vector<AttributeSet>* out);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace normalize
