#include "fd/fd.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace normalize {

std::string Fd::ToString() const {
  return lhs.ToString() + " -> " + rhs.ToString();
}

std::string Fd::ToString(const std::vector<std::string>& names) const {
  return lhs.ToString(names) + " -> " + rhs.ToString(names);
}

size_t FdSet::CountUnaryFds() const {
  size_t n = 0;
  for (const Fd& fd : fds_) n += static_cast<size_t>(fd.rhs.Count());
  return n;
}

double FdSet::AverageRhsSize() const {
  if (fds_.empty()) return 0.0;
  size_t total = CountUnaryFds();
  return static_cast<double>(total) / static_cast<double>(fds_.size());
}

void FdSet::Aggregate() {
  std::map<AttributeSet, AttributeSet> merged;
  for (const Fd& fd : fds_) {
    auto it = merged.find(fd.lhs);
    if (it == merged.end()) {
      merged.emplace(fd.lhs, fd.rhs);
    } else {
      it->second.UnionWith(fd.rhs);
    }
  }
  fds_.clear();
  fds_.reserve(merged.size());
  for (auto& [lhs, rhs] : merged) {
    AttributeSet clean_rhs = rhs;
    clean_rhs.DifferenceWith(lhs);  // rhs never overlaps lhs
    if (!clean_rhs.Empty()) fds_.emplace_back(lhs, std::move(clean_rhs));
  }
}

std::vector<Fd> FdSet::ToUnary() const {
  std::vector<Fd> unary;
  unary.reserve(CountUnaryFds());
  for (const Fd& fd : fds_) {
    for (AttributeId a : fd.rhs) {
      AttributeSet rhs(fd.rhs.capacity());
      rhs.Set(a);
      unary.emplace_back(fd.lhs, std::move(rhs));
    }
  }
  std::sort(unary.begin(), unary.end(), [](const Fd& a, const Fd& b) {
    if (a.lhs != b.lhs) return a.lhs < b.lhs;
    return a.rhs < b.rhs;
  });
  return unary;
}

bool FdSet::EquivalentTo(const FdSet& other) const {
  return ToUnary() == other.ToUnary();
}

void FdSet::PruneByLhsSize(int max_lhs) {
  fds_.erase(std::remove_if(fds_.begin(), fds_.end(),
                            [max_lhs](const Fd& fd) {
                              return fd.lhs.Count() > max_lhs;
                            }),
             fds_.end());
}

std::string FdSet::ToString(const std::vector<std::string>& names) const {
  std::ostringstream os;
  for (const Fd& fd : fds_) os << fd.ToString(names) << "\n";
  return os.str();
}

}  // namespace normalize
