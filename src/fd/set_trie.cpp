#include "fd/set_trie.hpp"

#include <algorithm>

namespace normalize {

SetTrie::Node* SetTrie::Node::Child(AttributeId a) const {
  auto it = std::lower_bound(
      children.begin(), children.end(), a,
      [](const auto& entry, AttributeId key) { return entry.first < key; });
  if (it != children.end() && it->first == a) return it->second.get();
  return nullptr;
}

SetTrie::Node* SetTrie::Node::GetOrCreateChild(AttributeId a) {
  auto it = std::lower_bound(
      children.begin(), children.end(), a,
      [](const auto& entry, AttributeId key) { return entry.first < key; });
  if (it != children.end() && it->first == a) return it->second.get();
  it = children.emplace(it, a, std::make_unique<Node>());
  return it->second.get();
}

void SetTrie::Insert(const AttributeSet& set) {
  Node* node = root_.get();
  for (AttributeId a : set) node = node->GetOrCreateChild(a);
  if (!node->is_end) {
    node->is_end = true;
    ++size_;
  }
}

bool SetTrie::Contains(const AttributeSet& set) const {
  const Node* node = root_.get();
  for (AttributeId a : set) {
    node = node->Child(a);
    if (node == nullptr) return false;
  }
  return node->is_end;
}

bool SetTrie::SearchSubset(const Node* node, const AttributeSet& query,
                           AttributeId from) {
  if (node->is_end) return true;
  // Only children whose attribute is in the query (and beyond `from`, since
  // paths are ascending) can lead to a stored subset.
  for (const auto& [attr, child] : node->children) {
    if (attr < from) continue;
    if (query.Test(attr) && SearchSubset(child.get(), query, attr + 1)) {
      return true;
    }
  }
  return false;
}

bool SetTrie::ContainsSubsetOf(const AttributeSet& query) const {
  return SearchSubset(root_.get(), query, 0);
}

bool SetTrie::SearchSuperset(const Node* node, const AttributeSet& query,
                             AttributeId next_required) {
  if (next_required < 0) {
    // All query attributes consumed: any stored set at or below this node is
    // a superset. Every path in the trie terminates in an is_end node, so a
    // non-empty subtree suffices.
    return node->is_end || !node->children.empty();
  }
  for (const auto& [attr, child] : node->children) {
    if (attr < next_required) {
      // Extra attribute not in the query — allowed in a superset.
      if (SearchSuperset(child.get(), query, next_required)) return true;
    } else if (attr == next_required) {
      if (SearchSuperset(child.get(), query, query.Next(attr))) return true;
    } else {
      // Children are sorted ascending and paths ascend: next_required can
      // no longer be matched in this subtree.
      break;
    }
  }
  return false;
}

bool SetTrie::ContainsSupersetOf(const AttributeSet& query) const {
  return SearchSuperset(root_.get(), query, query.First());
}

void SetTrie::CollectSubsets(const Node* node, const AttributeSet& query,
                             AttributeId from, AttributeSet* current,
                             std::vector<AttributeSet>* out) {
  if (node->is_end) out->push_back(*current);
  for (const auto& [attr, child] : node->children) {
    if (attr < from || !query.Test(attr)) continue;
    current->Set(attr);
    CollectSubsets(child.get(), query, attr + 1, current, out);
    current->Reset(attr);
  }
}

std::vector<AttributeSet> SetTrie::SubsetsOf(const AttributeSet& query) const {
  std::vector<AttributeSet> out;
  AttributeSet current(query.capacity());
  CollectSubsets(root_.get(), query, 0, &current, &out);
  return out;
}

}  // namespace normalize
