#include "fd/fd_tree.hpp"

#include <algorithm>

namespace normalize {

FdTree::Node* FdTree::Node::Child(AttributeId a) const {
  auto it = std::lower_bound(
      children.begin(), children.end(), a,
      [](const auto& entry, AttributeId key) { return entry.first < key; });
  if (it != children.end() && it->first == a) return it->second.get();
  return nullptr;
}

FdTree::Node* FdTree::Node::GetOrCreateChild(AttributeId a,
                                             int num_attributes) {
  auto it = std::lower_bound(
      children.begin(), children.end(), a,
      [](const auto& entry, AttributeId key) { return entry.first < key; });
  if (it != children.end() && it->first == a) return it->second.get();
  auto node = std::make_unique<Node>();
  node->rhs = AttributeSet(num_attributes);
  it = children.emplace(it, a, std::move(node));
  return it->second.get();
}

void FdTree::AddFd(const AttributeSet& lhs, AttributeId rhs_attr) {
  Node* node = root_.get();
  for (AttributeId a : lhs) node = node->GetOrCreateChild(a, num_attributes_);
  node->rhs.Set(rhs_attr);
}

void FdTree::RemoveFd(const AttributeSet& lhs, AttributeId rhs_attr) {
  Node* node = root_.get();
  for (AttributeId a : lhs) {
    node = node->Child(a);
    if (node == nullptr) return;
  }
  node->rhs.Reset(rhs_attr);
}

bool FdTree::ContainsFd(const AttributeSet& lhs, AttributeId rhs_attr) const {
  const Node* node = root_.get();
  for (AttributeId a : lhs) {
    node = node->Child(a);
    if (node == nullptr) return false;
  }
  return node->rhs.Test(rhs_attr);
}

bool FdTree::SearchGeneralization(const Node* node, const AttributeSet& lhs,
                                  AttributeId rhs_attr,
                                  AttributeId from) const {
  if (node->rhs.Test(rhs_attr)) return true;
  for (const auto& [attr, child] : node->children) {
    if (attr < from) continue;
    if (lhs.Test(attr) &&
        SearchGeneralization(child.get(), lhs, rhs_attr, attr + 1)) {
      return true;
    }
  }
  return false;
}

bool FdTree::ContainsFdOrGeneralization(const AttributeSet& lhs,
                                        AttributeId rhs_attr) const {
  return SearchGeneralization(root_.get(), lhs, rhs_attr, 0);
}

void FdTree::CollectGeneralizations(const Node* node, const AttributeSet& lhs,
                                    AttributeId rhs_attr, AttributeId from,
                                    AttributeSet* current,
                                    std::vector<AttributeSet>* out) const {
  if (node->rhs.Test(rhs_attr)) out->push_back(*current);
  for (const auto& [attr, child] : node->children) {
    if (attr < from || !lhs.Test(attr)) continue;
    current->Set(attr);
    CollectGeneralizations(child.get(), lhs, rhs_attr, attr + 1, current, out);
    current->Reset(attr);
  }
}

std::vector<AttributeSet> FdTree::GetFdAndGeneralizations(
    const AttributeSet& lhs, AttributeId rhs_attr) const {
  std::vector<AttributeSet> out;
  AttributeSet current(num_attributes_);
  CollectGeneralizations(root_.get(), lhs, rhs_attr, 0, &current, &out);
  return out;
}

void FdTree::CollectLevel(const Node* node, int remaining,
                          AttributeSet* current, std::vector<Fd>* out) const {
  if (remaining == 0) {
    if (!node->rhs.Empty()) out->emplace_back(*current, node->rhs);
    return;
  }
  for (const auto& [attr, child] : node->children) {
    current->Set(attr);
    CollectLevel(child.get(), remaining - 1, current, out);
    current->Reset(attr);
  }
}

std::vector<Fd> FdTree::GetLevel(int level) const {
  std::vector<Fd> out;
  AttributeSet current(num_attributes_);
  CollectLevel(root_.get(), level, &current, &out);
  return out;
}

void FdTree::CollectAll(const Node* node, AttributeSet* current,
                        std::vector<Fd>* out) const {
  if (!node->rhs.Empty()) out->emplace_back(*current, node->rhs);
  for (const auto& [attr, child] : node->children) {
    current->Set(attr);
    CollectAll(child.get(), current, out);
    current->Reset(attr);
  }
}

std::vector<Fd> FdTree::CollectAllFds() const {
  std::vector<Fd> out;
  AttributeSet current(num_attributes_);
  CollectAll(root_.get(), &current, &out);
  return out;
}

size_t FdTree::CountFds() const {
  std::vector<Fd> all = CollectAllFds();
  size_t n = 0;
  for (const Fd& fd : all) n += static_cast<size_t>(fd.rhs.Count());
  return n;
}

}  // namespace normalize
