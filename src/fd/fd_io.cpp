#include "fd/fd_io.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/string_utils.hpp"

namespace normalize {

std::string WriteFdsToString(const FdSet& fds,
                             const std::vector<std::string>& attribute_names) {
  std::ostringstream os;
  for (const Fd& fd : fds) {
    os << "[";
    bool first = true;
    for (AttributeId a : fd.lhs) {
      if (!first) os << ", ";
      os << attribute_names[static_cast<size_t>(a)];
      first = false;
    }
    os << "] --> ";
    first = true;
    for (AttributeId a : fd.rhs) {
      if (!first) os << ", ";
      os << attribute_names[static_cast<size_t>(a)];
      first = false;
    }
    os << "\n";
  }
  return os.str();
}

Result<FdSet> ReadFdsFromString(
    const std::string& text, const std::vector<std::string>& attribute_names) {
  std::unordered_map<std::string, AttributeId> index;
  for (size_t i = 0; i < attribute_names.size(); ++i) {
    index.emplace(attribute_names[i], static_cast<AttributeId>(i));
  }
  int capacity = static_cast<int>(attribute_names.size());

  auto resolve = [&](std::string_view token,
                     AttributeSet* set) -> Status {
    std::string name = Trim(token);
    if (name.empty()) return Status::OK();  // tolerate "[]" and ", ,"
    auto it = index.find(name);
    if (it == index.end()) {
      return Status::InvalidArgument("unknown attribute: '" + name + "'");
    }
    set->Set(it->second);
    return Status::OK();
  };

  FdSet fds;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    size_t arrow = trimmed.find("-->");
    size_t open = trimmed.find('[');
    size_t close = trimmed.find(']');
    if (arrow == std::string::npos || open == std::string::npos ||
        close == std::string::npos || close > arrow) {
      return Status::InvalidArgument("malformed FD on line " +
                                     std::to_string(line_no) + ": " + trimmed);
    }
    AttributeSet lhs(capacity), rhs(capacity);
    for (const std::string& token :
         SplitString(trimmed.substr(open + 1, close - open - 1), ',')) {
      NORMALIZE_RETURN_IF_ERROR(resolve(token, &lhs));
    }
    for (const std::string& token :
         SplitString(trimmed.substr(arrow + 3), ',')) {
      NORMALIZE_RETURN_IF_ERROR(resolve(token, &rhs));
    }
    rhs.DifferenceWith(lhs);
    if (rhs.Empty()) {
      return Status::InvalidArgument("FD with empty RHS on line " +
                                     std::to_string(line_no));
    }
    fds.Add(Fd(std::move(lhs), std::move(rhs)));
  }
  fds.Aggregate();
  return fds;
}

Status WriteFdFile(const FdSet& fds,
                   const std::vector<std::string>& attribute_names,
                   const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << WriteFdsToString(fds, attribute_names);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<FdSet> ReadFdFile(const std::string& path,
                         const std::vector<std::string>& attribute_names) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadFdsFromString(buffer.str(), attribute_names);
}

}  // namespace normalize
