// Functional dependencies in aggregated form: X -> Y with Y a set (the paper
// writes Postcode -> City,Mayor). LHS attributes are implicit RHS members by
// reflexivity and are *not* stored in the RHS (paper §4).
#pragma once

#include <string>
#include <vector>

#include "common/attribute_set.hpp"

namespace normalize {

/// An aggregated functional dependency lhs -> rhs (rhs may contain several
/// attributes; never overlaps lhs).
struct Fd {
  AttributeSet lhs;
  AttributeSet rhs;

  Fd() = default;
  Fd(AttributeSet l, AttributeSet r) : lhs(std::move(l)), rhs(std::move(r)) {}

  bool operator==(const Fd& other) const {
    return lhs == other.lhs && rhs == other.rhs;
  }

  /// "{0, 1} -> {2, 3}" or with names "[First, Last] -> [City, Mayor]".
  std::string ToString() const;
  std::string ToString(const std::vector<std::string>& names) const;
};

/// A list of FDs with utility operations used throughout the pipeline.
class FdSet {
 public:
  FdSet() = default;
  explicit FdSet(std::vector<Fd> fds) : fds_(std::move(fds)) {}

  size_t size() const { return fds_.size(); }
  bool empty() const { return fds_.empty(); }
  const Fd& operator[](size_t i) const { return fds_[i]; }
  Fd& operator[](size_t i) { return fds_[i]; }
  const std::vector<Fd>& fds() const { return fds_; }
  std::vector<Fd>* mutable_fds() { return &fds_; }

  void Add(Fd fd) { fds_.push_back(std::move(fd)); }
  void Clear() { fds_.clear(); }

  auto begin() const { return fds_.begin(); }
  auto end() const { return fds_.end(); }
  auto begin() { return fds_.begin(); }
  auto end() { return fds_.end(); }

  /// Total number of unary (single-RHS-attribute) FDs represented.
  size_t CountUnaryFds() const;

  /// Mean RHS size — the paper reports how closure grows this (e.g. 3 -> 40
  /// for MusicBrainz).
  double AverageRhsSize() const;

  /// Merges FDs with identical LHS into one aggregated FD and sorts by LHS;
  /// the result has unique LHSs.
  void Aggregate();

  /// Expands every FD into unary FDs (one per RHS attribute), sorted. Used
  /// to compare result sets across discovery algorithms.
  std::vector<Fd> ToUnary() const;

  /// Canonical sorted/aggregated comparison.
  bool EquivalentTo(const FdSet& other) const;

  /// Drops FDs whose LHS has more than `max_lhs` attributes (the paper's
  /// memory-pruning rule, §4.3).
  void PruneByLhsSize(int max_lhs);

  std::string ToString(const std::vector<std::string>& names) const;

 private:
  std::vector<Fd> fds_;
};

}  // namespace normalize
