// CheckpointManager: the coordinator that turns pipeline events into
// snapshot files and snapshot files back into resume state. One manager
// instance owns one checkpoint directory for one run configuration
// (identified by a CheckpointFingerprint — loads verify it so a directory
// can never silently resume a different run).
//
// Directory layout (each file an atomic snapshot, see snapshot.hpp):
//
//   ingest.snap, shard_<i>.snap, pli_<i>.snap   — ShardStore (rows + PLIs)
//   covers.snap      per-shard minimal covers after the discovery fan-out
//   frontier.snap    merge candidate tree + evidence after each level
//   evidence.snap    unsharded HyFD agree-set evidence (negative cover)
//   cover.snap       the final global minimal cover
//   interrupted.snap why the previous run stopped (written by the hook)
//
// The manager implements both checkpoint interfaces of the pipeline:
// DiscoveryCheckpointSink (called by ShardedDiscovery between merge sweeps)
// and CheckpointHook (called via RunContext::NotifyInterruption when an
// interruption ends the run). Sink calls happen on the coordinating thread;
// the hook may race with them in principle, so its latch is mutex-guarded.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/run_context.hpp"
#include "persist/checkpoint_options.hpp"
#include "persist/shard_store.hpp"
#include "persist/state_io.hpp"
#include "shard/sharded_discovery.hpp"

namespace normalize {

/// The durable image of a live normalization service at one checkpoint tick
/// (live.snap): the full append-only row log — dead rows included, so the
/// RowId space WAL records address is reproduced exactly — its liveness
/// mask, the published cover plus witnessed evidence, and the sequence
/// high-water mark the image covers (WAL records at or below it are
/// truncated away after the save).
struct LiveServiceState {
  RelationData log;
  /// One byte per log row: 0 dead, 1 live.
  std::string live_mask;
  uint64_t epoch = 0;
  uint64_t last_applied_seq = 0;
  uint64_t batches_applied = 0;
  FdSet cover;
  /// Witnessed negative cover (sorted agree sets). Recovery re-derives its
  /// own evidence via Initialize(); the persisted copy documents what the
  /// checkpointed cover was built from and feeds integrity cross-checks.
  std::vector<std::pair<AttributeSet, std::pair<RowId, RowId>>> evidence;
};

class CheckpointManager : public DiscoveryCheckpointSink,
                          public CheckpointHook {
 public:
  /// Creates the checkpoint directory if needed (best-effort: a directory
  /// that cannot be created surfaces as a precise write error on the first
  /// snapshot instead).
  CheckpointManager(CheckpointOptions options,
                    CheckpointFingerprint fingerprint);

  const CheckpointOptions& options() const { return options_; }
  const CheckpointFingerprint& fingerprint() const { return fingerprint_; }
  ShardStore& shard_store() { return store_; }

  // --- ingest stage ---

  /// Persists the ingested shards (rows + shared dictionaries) so a resumed
  /// run skips the CSV re-parse.
  Status SaveIngest(const ShardedRelation& sharded) {
    return store_.SaveSharded(sharded, fingerprint_);
  }
  /// kNotFound when no ingest was checkpointed (callers ingest fresh).
  Result<ShardedRelation> LoadIngest() {
    return store_.LoadSharded(fingerprint_);
  }

  // --- discovery stage (DiscoveryCheckpointSink) ---

  Status OnShardState(
      const std::vector<FdSet>& shard_covers,
      const std::vector<std::shared_ptr<const PliCache>>& shard_plis) override;
  Status OnMergeLevel(int level, const std::vector<Fd>& frontier_fds,
                      const std::vector<AttributeSet>& agree_sets) override;

  /// Assembles whatever discovery state the directory holds into a resume
  /// state for ShardedDiscovery: covers (skips the fan-out), per-shard PLIs
  /// (skips the rebuild), and the merge frontier (skips validated levels).
  /// A directory with none of it yields a default state (fresh run);
  /// corruption and fingerprint mismatches propagate as errors.
  Result<DiscoveryResumeState> LoadDiscoveryResume(size_t shard_count);

  /// Unsharded runs checkpoint the backend's agree-set evidence instead of
  /// per-shard state (FdDiscovery::ExportEvidence/ImportEvidence).
  Status SaveEvidence(const std::vector<AttributeSet>& evidence);
  /// kNotFound when no evidence was checkpointed.
  Result<std::vector<AttributeSet>> LoadEvidence();

  /// The final global minimal cover — once this exists, a resumed run skips
  /// discovery entirely (the cover uniquely determines the decomposition).
  Status SaveCover(const FdSet& cover);
  /// kNotFound when no final cover was checkpointed.
  Result<FdSet> LoadCover();

  // --- live service stage ---

  /// Persists the service image atomically (live.snap, tmp + rename): a
  /// crash mid-save leaves the previous image intact, and a crash between
  /// the save and the WAL truncation only makes replay skip already-covered
  /// sequence numbers.
  Status SaveLiveState(const LiveServiceState& state);
  /// kNotFound when no live image exists (fresh service start); corruption
  /// is kDataLoss and a fingerprint mismatch kFailedPrecondition, exactly
  /// like the pipeline snapshots.
  Result<LiveServiceState> LoadLiveState();

  // --- interruption hook (CheckpointHook) ---

  /// Records why the run stopped (interrupted.snap). Idempotent: only the
  /// first interruption of a run is recorded. Write failures are swallowed —
  /// the record is a courtesy for the next run's logs, and the hook must
  /// never turn an orderly interruption into a crash path.
  void OnInterruption(const Status& why) override;

  /// True once OnInterruption has fired for this run.
  bool interruption_noted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return interruption_noted_;
  }

 private:
  CheckpointOptions options_;
  CheckpointFingerprint fingerprint_;
  ShardStore store_;
  mutable std::mutex mu_;
  bool interruption_noted_ = false;
};

}  // namespace normalize
