#include "persist/codec.hpp"

#include <array>
#include <cstring>

namespace normalize {

void SnapshotEncoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void SnapshotEncoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void SnapshotEncoder::PutDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void SnapshotEncoder::PutString(std::string_view s) {
  PutU64(s.size());
  out_.append(s.data(), s.size());
}

Status SnapshotDecoder::Need(size_t n, const char* what) const {
  if (in_.size() - pos_ < n) {
    return Status::DataLoss(std::string("snapshot payload truncated reading ") +
                            what + " at offset " + std::to_string(pos_));
  }
  return Status::OK();
}

Result<uint8_t> SnapshotDecoder::GetU8() {
  NORMALIZE_RETURN_IF_ERROR(Need(1, "u8"));
  return static_cast<uint8_t>(in_[pos_++]);
}

Result<uint32_t> SnapshotDecoder::GetU32() {
  NORMALIZE_RETURN_IF_ERROR(Need(4, "u32"));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> SnapshotDecoder::GetU64() {
  NORMALIZE_RETURN_IF_ERROR(Need(8, "u64"));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int32_t> SnapshotDecoder::GetI32() {
  NORMALIZE_ASSIGN_OR_RETURN(uint32_t v, GetU32());
  return static_cast<int32_t>(v);
}

Result<int64_t> SnapshotDecoder::GetI64() {
  NORMALIZE_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<bool> SnapshotDecoder::GetBool() {
  NORMALIZE_ASSIGN_OR_RETURN(uint8_t v, GetU8());
  if (v > 1) {
    return Status::DataLoss("snapshot bool cell holds " + std::to_string(v));
  }
  return v == 1;
}

Result<double> SnapshotDecoder::GetDouble() {
  NORMALIZE_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> SnapshotDecoder::GetString() {
  NORMALIZE_ASSIGN_OR_RETURN(uint64_t len, GetU64());
  if (len > in_.size() - pos_) {
    return Status::DataLoss("snapshot string length " + std::to_string(len) +
                            " overruns payload at offset " +
                            std::to_string(pos_));
  }
  std::string out(in_.substr(pos_, static_cast<size_t>(len)));
  pos_ += static_cast<size_t>(len);
  return out;
}

Result<std::string_view> SnapshotDecoder::GetRaw(size_t n) {
  NORMALIZE_RETURN_IF_ERROR(Need(n, "raw bytes"));
  std::string_view out = in_.substr(pos_, n);
  pos_ += n;
  return out;
}

Status SnapshotDecoder::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::DataLoss("snapshot payload has " +
                            std::to_string(remaining()) +
                            " trailing bytes after the last field");
  }
  return Status::OK();
}

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xffffffffu;
  for (char ch : bytes) {
    crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace normalize
