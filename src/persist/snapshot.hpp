// The snapshot container format: a small, versioned, checksummed binary
// envelope holding named sections of encoded pipeline state.
//
//   offset  width  field
//   0       8      magic "NRMZSNAP"
//   8       4      format version (u32, currently 1)
//   12      4      section count (u32)
//   per section:
//           4      section id (u32, snapshot_section_ids.hpp-style constants
//                  owned by the writer; the container does not interpret it)
//           8      payload size in bytes (u64)
//           4      CRC-32 of the payload (codec.hpp Crc32)
//           n      payload bytes
//
// Writers produce the container in memory and publish it atomically: the
// bytes go to "<path>.tmp" which is then renamed over <path>, so a reader
// never observes a half-written snapshot — it sees the old file, the new
// file, or no file. Readers verify magic, version, structural sizes, and
// every section CRC before exposing any payload; all corruption (bad magic,
// unsupported version, truncation, bit flips) surfaces as kDataLoss with no
// partial state applied.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/byte_source.hpp"
#include "common/result.hpp"
#include "common/status.hpp"

namespace normalize {

/// Format version written by this build; readers accept exactly this.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Builds a snapshot container from encoded sections and publishes it
/// atomically.
class SnapshotWriter {
 public:
  /// Appends a section. Ids must be unique within one snapshot.
  void AddSection(uint32_t id, std::string payload);

  /// The full container bytes (magic, version, sections).
  std::string Serialize() const;

  /// Serializes to "<path>.tmp", then renames over `path` (atomic publish on
  /// POSIX filesystems). Any I/O failure leaves `path` untouched.
  Status WriteToFile(const std::string& path) const;

 private:
  std::vector<std::pair<uint32_t, std::string>> sections_;
};

/// Parses and verifies a snapshot container; owns the decoded payloads.
class SnapshotReader {
 public:
  /// Parses in-memory container bytes. kDataLoss on any corruption.
  static Result<SnapshotReader> FromBytes(std::string bytes);

  /// Drains `source` and parses. The ByteSource seam lets tests inject read
  /// faults and truncation under the parser.
  static Result<SnapshotReader> FromSource(ByteSource* source);

  /// Opens and parses a snapshot file. kNotFound when the file is absent —
  /// callers use that to distinguish "no checkpoint yet" from corruption.
  static Result<SnapshotReader> FromFile(const std::string& path);

  bool HasSection(uint32_t id) const { return index_.count(id) > 0; }

  /// The payload of section `id`; kNotFound when absent. The view points
  /// into this reader — it must outlive the use.
  Result<std::string_view> Section(uint32_t id) const;

  /// Section ids in file order.
  std::vector<uint32_t> SectionIds() const;

 private:
  SnapshotReader() = default;

  std::vector<std::pair<uint32_t, std::string>> sections_;
  std::unordered_map<uint32_t, size_t> index_;
};

}  // namespace normalize
