#include "persist/state_io.hpp"

#include <utility>

namespace normalize {

namespace {

/// Guard against absurd element counts from corrupted length fields: no
/// decoded container may claim more elements than remaining payload bytes
/// (every element encodes to at least one byte).
Status CheckCount(const SnapshotDecoder& dec, uint64_t count,
                  const char* what) {
  if (count > dec.remaining()) {
    return Status::DataLoss(std::string("snapshot ") + what + " count " +
                            std::to_string(count) +
                            " exceeds the remaining payload");
  }
  return Status::OK();
}

}  // namespace

void EncodeAttributeSet(SnapshotEncoder* enc, const AttributeSet& set) {
  enc->PutI32(set.capacity());
  std::vector<AttributeId> ids = set.ToVector();
  enc->PutU32(static_cast<uint32_t>(ids.size()));
  for (AttributeId a : ids) enc->PutI32(a);
}

Result<AttributeSet> DecodeAttributeSet(SnapshotDecoder* dec) {
  NORMALIZE_ASSIGN_OR_RETURN(int32_t capacity, dec->GetI32());
  if (capacity < 0 || capacity > (1 << 24)) {
    return Status::DataLoss("snapshot attribute-set capacity " +
                            std::to_string(capacity) + " is implausible");
  }
  NORMALIZE_ASSIGN_OR_RETURN(uint32_t count, dec->GetU32());
  NORMALIZE_RETURN_IF_ERROR(CheckCount(*dec, count, "attribute"));
  AttributeSet set(capacity);
  for (uint32_t i = 0; i < count; ++i) {
    NORMALIZE_ASSIGN_OR_RETURN(int32_t a, dec->GetI32());
    if (a < 0 || a >= capacity) {
      return Status::DataLoss("snapshot attribute id " + std::to_string(a) +
                              " outside capacity " + std::to_string(capacity));
    }
    set.Set(a);
  }
  return set;
}

void EncodeFd(SnapshotEncoder* enc, const Fd& fd) {
  EncodeAttributeSet(enc, fd.lhs);
  EncodeAttributeSet(enc, fd.rhs);
}

Result<Fd> DecodeFd(SnapshotDecoder* dec) {
  NORMALIZE_ASSIGN_OR_RETURN(AttributeSet lhs, DecodeAttributeSet(dec));
  NORMALIZE_ASSIGN_OR_RETURN(AttributeSet rhs, DecodeAttributeSet(dec));
  return Fd(std::move(lhs), std::move(rhs));
}

void EncodeFdVector(SnapshotEncoder* enc, const std::vector<Fd>& fds) {
  enc->PutU64(fds.size());
  for (const Fd& fd : fds) EncodeFd(enc, fd);
}

Result<std::vector<Fd>> DecodeFdVector(SnapshotDecoder* dec) {
  NORMALIZE_ASSIGN_OR_RETURN(uint64_t count, dec->GetU64());
  NORMALIZE_RETURN_IF_ERROR(CheckCount(*dec, count, "FD"));
  std::vector<Fd> fds;
  fds.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    NORMALIZE_ASSIGN_OR_RETURN(Fd fd, DecodeFd(dec));
    fds.push_back(std::move(fd));
  }
  return fds;
}

void EncodeFdSet(SnapshotEncoder* enc, const FdSet& fds) {
  EncodeFdVector(enc, fds.fds());
}

Result<FdSet> DecodeFdSet(SnapshotDecoder* dec) {
  NORMALIZE_ASSIGN_OR_RETURN(std::vector<Fd> fds, DecodeFdVector(dec));
  return FdSet(std::move(fds));
}

void EncodeAttributeSetVector(SnapshotEncoder* enc,
                              const std::vector<AttributeSet>& sets) {
  enc->PutU64(sets.size());
  for (const AttributeSet& set : sets) EncodeAttributeSet(enc, set);
}

Result<std::vector<AttributeSet>> DecodeAttributeSetVector(
    SnapshotDecoder* dec) {
  NORMALIZE_ASSIGN_OR_RETURN(uint64_t count, dec->GetU64());
  NORMALIZE_RETURN_IF_ERROR(CheckCount(*dec, count, "attribute-set"));
  std::vector<AttributeSet> sets;
  sets.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    NORMALIZE_ASSIGN_OR_RETURN(AttributeSet set, DecodeAttributeSet(dec));
    sets.push_back(std::move(set));
  }
  return sets;
}

void EncodeRelationPrototype(SnapshotEncoder* enc, const RelationData& proto) {
  enc->PutString(proto.name());
  enc->PutI32(proto.universe_size());
  enc->PutU32(static_cast<uint32_t>(proto.num_columns()));
  for (int c = 0; c < proto.num_columns(); ++c) {
    const Column& col = proto.column(c);
    enc->PutI32(proto.attribute_ids()[static_cast<size_t>(c)]);
    enc->PutString(col.name());
    // The dictionary in code order: re-interning in this order reproduces
    // the exact code assignment, so stored shard rows stay valid.
    const ValueDictionary& dict = *col.dictionary();
    enc->PutU64(dict.size());
    enc->PutI32(dict.null_code());
    for (size_t code = 0; code < dict.size(); ++code) {
      if (static_cast<ValueId>(code) == dict.null_code()) continue;
      enc->PutString(dict.value(static_cast<ValueId>(code)));
    }
  }
}

Result<RelationData> DecodeRelationPrototype(SnapshotDecoder* dec) {
  NORMALIZE_ASSIGN_OR_RETURN(std::string name, dec->GetString());
  NORMALIZE_ASSIGN_OR_RETURN(int32_t universe, dec->GetI32());
  NORMALIZE_ASSIGN_OR_RETURN(uint32_t ncols, dec->GetU32());
  NORMALIZE_RETURN_IF_ERROR(CheckCount(*dec, ncols, "column"));
  std::vector<AttributeId> ids;
  std::vector<std::string> names;
  struct DictSpec {
    uint64_t size;
    int32_t null_code;
    std::vector<std::string> values;  // non-NULL values in code order
  };
  std::vector<DictSpec> dicts;
  ids.reserve(ncols);
  names.reserve(ncols);
  dicts.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    NORMALIZE_ASSIGN_OR_RETURN(int32_t id, dec->GetI32());
    NORMALIZE_ASSIGN_OR_RETURN(std::string col_name, dec->GetString());
    DictSpec spec;
    NORMALIZE_ASSIGN_OR_RETURN(spec.size, dec->GetU64());
    NORMALIZE_RETURN_IF_ERROR(CheckCount(*dec, spec.size, "dictionary"));
    NORMALIZE_ASSIGN_OR_RETURN(spec.null_code, dec->GetI32());
    if (spec.null_code >= 0 &&
        static_cast<uint64_t>(spec.null_code) >= spec.size) {
      return Status::DataLoss("snapshot dictionary NULL code " +
                              std::to_string(spec.null_code) +
                              " outside dictionary of size " +
                              std::to_string(spec.size));
    }
    uint64_t value_count = spec.size - (spec.null_code >= 0 ? 1 : 0);
    spec.values.reserve(static_cast<size_t>(value_count));
    for (uint64_t i = 0; i < value_count; ++i) {
      NORMALIZE_ASSIGN_OR_RETURN(std::string value, dec->GetString());
      spec.values.push_back(std::move(value));
    }
    ids.push_back(id);
    names.push_back(std::move(col_name));
    dicts.push_back(std::move(spec));
  }
  RelationData proto(std::move(name), std::move(ids), std::move(names));
  if (universe < proto.universe_size()) {
    return Status::DataLoss("snapshot universe size " +
                            std::to_string(universe) +
                            " too small for its attribute ids");
  }
  proto.set_universe_size(universe);
  for (uint32_t c = 0; c < ncols; ++c) {
    const DictSpec& spec = dicts[c];
    ValueDictionary* dict =
        proto.column(static_cast<int>(c)).dictionary().get();
    size_t next_value = 0;
    for (uint64_t code = 0; code < spec.size; ++code) {
      ValueId assigned;
      if (static_cast<int64_t>(code) == spec.null_code) {
        assigned = dict->InternNull();
      } else {
        assigned = dict->Intern(spec.values[next_value++]);
      }
      if (assigned != static_cast<ValueId>(code)) {
        // A duplicate string in the stored value list would make Intern
        // return an earlier code — corrupted input, not a logic error.
        return Status::DataLoss(
            "snapshot dictionary replay diverged at code " +
            std::to_string(code) + " (duplicate or reordered values)");
      }
    }
  }
  return proto;
}

void EncodeShardRows(SnapshotEncoder* enc, const RelationData& shard) {
  enc->PutString(shard.name());
  enc->PutU64(shard.num_rows());
  enc->PutU32(static_cast<uint32_t>(shard.num_columns()));
  for (int c = 0; c < shard.num_columns(); ++c) {
    for (ValueId code : shard.column(c).codes()) enc->PutI32(code);
  }
}

Result<RelationData> DecodeShardRows(SnapshotDecoder* dec,
                                     const RelationData& proto,
                                     const std::string& shard_name) {
  NORMALIZE_ASSIGN_OR_RETURN(std::string stored_name, dec->GetString());
  NORMALIZE_ASSIGN_OR_RETURN(uint64_t rows, dec->GetU64());
  NORMALIZE_ASSIGN_OR_RETURN(uint32_t ncols, dec->GetU32());
  if (static_cast<int>(ncols) != proto.num_columns()) {
    return Status::DataLoss("snapshot shard has " + std::to_string(ncols) +
                            " columns, prototype has " +
                            std::to_string(proto.num_columns()));
  }
  if (rows * ncols > dec->remaining() / 4) {
    return Status::DataLoss("snapshot shard row count " +
                            std::to_string(rows) + " overruns the payload");
  }
  RelationData shard = RelationData::EmptyLike(
      proto, shard_name.empty() ? stored_name : shard_name);
  // Column-major decode mirroring EncodeShardRows; validate every code
  // against the (already rebuilt) dictionary before appending.
  std::vector<std::vector<ValueId>> columns(
      ncols, std::vector<ValueId>(static_cast<size_t>(rows)));
  for (uint32_t c = 0; c < ncols; ++c) {
    const ValueDictionary& dict =
        *proto.column(static_cast<int>(c)).dictionary();
    for (uint64_t r = 0; r < rows; ++r) {
      NORMALIZE_ASSIGN_OR_RETURN(int32_t code, dec->GetI32());
      if (code < 0 || static_cast<size_t>(code) >= dict.size()) {
        return Status::DataLoss("snapshot shard code " + std::to_string(code) +
                                " outside dictionary of size " +
                                std::to_string(dict.size()));
      }
      columns[c][static_cast<size_t>(r)] = code;
    }
  }
  std::vector<ValueId> row(ncols);
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < ncols; ++c) row[c] = columns[c][r];
    shard.AppendRowCodes(row);
  }
  return shard;
}

void EncodePli(SnapshotEncoder* enc, const Pli& pli) {
  enc->PutU64(pli.num_rows());
  enc->PutU64(pli.num_clusters());
  for (const std::vector<RowId>& cluster : pli.clusters()) {
    enc->PutU64(cluster.size());
    for (RowId r : cluster) enc->PutU32(r);
  }
}

Result<Pli> DecodePli(SnapshotDecoder* dec) {
  NORMALIZE_ASSIGN_OR_RETURN(uint64_t num_rows, dec->GetU64());
  NORMALIZE_ASSIGN_OR_RETURN(uint64_t num_clusters, dec->GetU64());
  NORMALIZE_RETURN_IF_ERROR(CheckCount(*dec, num_clusters, "PLI cluster"));
  std::vector<std::vector<RowId>> clusters;
  clusters.reserve(static_cast<size_t>(num_clusters));
  for (uint64_t i = 0; i < num_clusters; ++i) {
    NORMALIZE_ASSIGN_OR_RETURN(uint64_t size, dec->GetU64());
    if (size < 2 || size > num_rows) {
      return Status::DataLoss("snapshot PLI cluster of size " +
                              std::to_string(size) +
                              " is not a stripped cluster");
    }
    NORMALIZE_RETURN_IF_ERROR(CheckCount(*dec, size, "PLI row"));
    std::vector<RowId> cluster;
    cluster.reserve(static_cast<size_t>(size));
    for (uint64_t j = 0; j < size; ++j) {
      NORMALIZE_ASSIGN_OR_RETURN(uint32_t r, dec->GetU32());
      if (r >= num_rows) {
        return Status::DataLoss("snapshot PLI row id " + std::to_string(r) +
                                " outside relation of " +
                                std::to_string(num_rows) + " rows");
      }
      cluster.push_back(r);
    }
    clusters.push_back(std::move(cluster));
  }
  return Pli(std::move(clusters), static_cast<size_t>(num_rows));
}

void EncodeColumnPlis(SnapshotEncoder* enc, const PliCache& cache) {
  enc->PutU32(static_cast<uint32_t>(cache.num_columns()));
  for (int c = 0; c < cache.num_columns(); ++c) {
    EncodePli(enc, cache.ColumnPli(c));
  }
}

Result<std::vector<Pli>> DecodeColumnPlis(SnapshotDecoder* dec) {
  NORMALIZE_ASSIGN_OR_RETURN(uint32_t ncols, dec->GetU32());
  NORMALIZE_RETURN_IF_ERROR(CheckCount(*dec, ncols, "column-PLI"));
  std::vector<Pli> plis;
  plis.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    NORMALIZE_ASSIGN_OR_RETURN(Pli pli, DecodePli(dec));
    plis.push_back(std::move(pli));
  }
  return plis;
}

bool CheckpointFingerprint::operator==(
    const CheckpointFingerprint& other) const {
  return source == other.source && source_size == other.source_size &&
         backend == other.backend && max_lhs_size == other.max_lhs_size &&
         shard_rows == other.shard_rows && columns == other.columns;
}

std::string CheckpointFingerprint::Describe() const {
  return "source=" + source + " size=" + std::to_string(source_size) +
         " backend=" + backend + " max_lhs=" + std::to_string(max_lhs_size) +
         " shard_rows=" + std::to_string(shard_rows) +
         " columns=" + std::to_string(columns);
}

void EncodeFingerprint(SnapshotEncoder* enc, const CheckpointFingerprint& fp) {
  enc->PutString(fp.source);
  enc->PutU64(fp.source_size);
  enc->PutString(fp.backend);
  enc->PutI32(fp.max_lhs_size);
  enc->PutU64(fp.shard_rows);
  enc->PutI32(fp.columns);
}

Result<CheckpointFingerprint> DecodeFingerprint(SnapshotDecoder* dec) {
  CheckpointFingerprint fp;
  NORMALIZE_ASSIGN_OR_RETURN(fp.source, dec->GetString());
  NORMALIZE_ASSIGN_OR_RETURN(fp.source_size, dec->GetU64());
  NORMALIZE_ASSIGN_OR_RETURN(fp.backend, dec->GetString());
  NORMALIZE_ASSIGN_OR_RETURN(fp.max_lhs_size, dec->GetI32());
  NORMALIZE_ASSIGN_OR_RETURN(fp.shard_rows, dec->GetU64());
  NORMALIZE_ASSIGN_OR_RETURN(fp.columns, dec->GetI32());
  return fp;
}

void AddFingerprintSection(SnapshotWriter* writer,
                           const CheckpointFingerprint& fp) {
  SnapshotEncoder enc;
  EncodeFingerprint(&enc, fp);
  writer->AddSection(kFingerprintSectionId, std::move(enc).bytes());
}

Result<SnapshotReader> OpenVerifiedSnapshot(
    const std::string& path, const CheckpointFingerprint& expected) {
  NORMALIZE_ASSIGN_OR_RETURN(SnapshotReader reader,
                             SnapshotReader::FromFile(path));
  NORMALIZE_ASSIGN_OR_RETURN(std::string_view fp_bytes,
                             reader.Section(kFingerprintSectionId));
  SnapshotDecoder dec(fp_bytes);
  NORMALIZE_ASSIGN_OR_RETURN(CheckpointFingerprint stored,
                             DecodeFingerprint(&dec));
  NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
  if (stored != expected) {
    return Status::FailedPrecondition(
        "checkpoint " + path + " belongs to a different run: stored {" +
        stored.Describe() + "}, expected {" + expected.Describe() + "}");
  }
  return reader;
}

}  // namespace normalize
