// CheckpointOptions: the knob surface for persistent pipeline state, kept in
// its own light header so NormalizerOptions can embed it without pulling the
// whole persist subsystem into every normalizer consumer.
#pragma once

#include <string>

namespace normalize {

/// Where (and whether) to persist pipeline state. An empty `dir` disables
/// checkpointing entirely — the default, zero-overhead path.
struct CheckpointOptions {
  /// Directory for the checkpoint files; created on first write. One
  /// directory holds one run's state (keyed by a stored fingerprint, so
  /// reusing it for a different input fails loudly instead of mixing runs).
  std::string dir;
  /// Load whatever stages the directory already holds (ingest shards,
  /// per-shard covers, merge frontier, final cover) and continue from the
  /// furthest one, instead of starting fresh and overwriting.
  bool resume = false;

  bool enabled() const { return !dir.empty(); }
};

}  // namespace normalize
