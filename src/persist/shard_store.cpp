#include "persist/shard_store.hpp"

#include <filesystem>
#include <utility>

#include "persist/snapshot.hpp"

namespace normalize {

namespace {

// Section ids within the store's snapshot files (kFingerprintSectionId = 1).
constexpr uint32_t kSectionPrototype = 2;
constexpr uint32_t kSectionManifestMeta = 3;
constexpr uint32_t kSectionShardRows = 4;
constexpr uint32_t kSectionColumnPlis = 5;

Status EnsureDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint directory " + dir + ": " +
                           ec.message());
  }
  return Status::OK();
}

}  // namespace

std::string ShardStore::ManifestPath() const { return dir_ + "/ingest.snap"; }

std::string ShardStore::ShardPath(size_t index) const {
  return dir_ + "/shard_" + std::to_string(index) + ".snap";
}

std::string ShardStore::PliPath(size_t index) const {
  return dir_ + "/pli_" + std::to_string(index) + ".snap";
}

Status ShardStore::SaveSharded(const ShardedRelation& sharded,
                               const CheckpointFingerprint& fingerprint) const {
  NORMALIZE_RETURN_IF_ERROR(EnsureDir(dir_));
  if (sharded.shards.empty()) {
    return Status::InvalidArgument(
        "cannot persist a sharded relation with no shards");
  }
  // Shards first, manifest last: a readable manifest implies every shard
  // file it references was already published (atomic rename per file).
  for (size_t i = 0; i < sharded.shards.size(); ++i) {
    SnapshotEncoder rows;
    EncodeShardRows(&rows, sharded.shards[i]);
    SnapshotWriter writer;
    writer.AddSection(kSectionShardRows, std::move(rows).bytes());
    NORMALIZE_RETURN_IF_ERROR(writer.WriteToFile(ShardPath(i)));
  }

  SnapshotEncoder proto;
  // Shard 0 carries the shared dictionaries; any shard would do since all
  // shards of one relation share them.
  EncodeRelationPrototype(&proto, sharded.shards[0]);
  SnapshotEncoder meta;
  meta.PutString(sharded.name);
  meta.PutU64(sharded.shards.size());
  meta.PutU64(sharded.total_rows);
  meta.PutU64(sharded.peak_ingest_buffer_bytes);

  SnapshotWriter writer;
  AddFingerprintSection(&writer, fingerprint);
  writer.AddSection(kSectionPrototype, std::move(proto).bytes());
  writer.AddSection(kSectionManifestMeta, std::move(meta).bytes());
  return writer.WriteToFile(ManifestPath());
}

Status ShardStore::LoadManifest(const CheckpointFingerprint& expected,
                                RelationData* proto, size_t* shard_count,
                                size_t* peak_ingest_buffer_bytes) const {
  NORMALIZE_ASSIGN_OR_RETURN(SnapshotReader reader,
                             OpenVerifiedSnapshot(ManifestPath(), expected));

  NORMALIZE_ASSIGN_OR_RETURN(std::string_view proto_bytes,
                             reader.Section(kSectionPrototype));
  SnapshotDecoder proto_dec(proto_bytes);
  NORMALIZE_ASSIGN_OR_RETURN(*proto, DecodeRelationPrototype(&proto_dec));
  NORMALIZE_RETURN_IF_ERROR(proto_dec.ExpectEnd());

  NORMALIZE_ASSIGN_OR_RETURN(std::string_view meta_bytes,
                             reader.Section(kSectionManifestMeta));
  SnapshotDecoder meta_dec(meta_bytes);
  NORMALIZE_ASSIGN_OR_RETURN(std::string name, meta_dec.GetString());
  NORMALIZE_ASSIGN_OR_RETURN(uint64_t count, meta_dec.GetU64());
  NORMALIZE_ASSIGN_OR_RETURN(uint64_t total_rows, meta_dec.GetU64());
  NORMALIZE_ASSIGN_OR_RETURN(uint64_t peak, meta_dec.GetU64());
  NORMALIZE_RETURN_IF_ERROR(meta_dec.ExpectEnd());
  (void)total_rows;
  if (count == 0 || count > (1u << 24)) {
    return Status::DataLoss("checkpoint manifest shard count " +
                            std::to_string(count) + " is implausible");
  }
  proto->set_name(name);
  *shard_count = static_cast<size_t>(count);
  *peak_ingest_buffer_bytes = static_cast<size_t>(peak);
  return Status::OK();
}

Result<RelationData> ShardStore::LoadPrototype(
    const CheckpointFingerprint& expected) const {
  RelationData proto("", {}, {});
  size_t shard_count = 0;
  size_t peak = 0;
  NORMALIZE_RETURN_IF_ERROR(
      LoadManifest(expected, &proto, &shard_count, &peak));
  return proto;
}

Result<size_t> ShardStore::ShardCount(
    const CheckpointFingerprint& expected) const {
  RelationData proto("", {}, {});
  size_t shard_count = 0;
  size_t peak = 0;
  NORMALIZE_RETURN_IF_ERROR(
      LoadManifest(expected, &proto, &shard_count, &peak));
  return shard_count;
}

Result<RelationData> ShardStore::LoadShard(size_t index,
                                           const RelationData& proto) const {
  NORMALIZE_ASSIGN_OR_RETURN(SnapshotReader reader,
                             SnapshotReader::FromFile(ShardPath(index)));
  NORMALIZE_ASSIGN_OR_RETURN(std::string_view bytes,
                             reader.Section(kSectionShardRows));
  SnapshotDecoder dec(bytes);
  NORMALIZE_ASSIGN_OR_RETURN(RelationData shard,
                             DecodeShardRows(&dec, proto, ""));
  NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
  return shard;
}

Result<ShardedRelation> ShardStore::LoadSharded(
    const CheckpointFingerprint& expected) const {
  ShardedRelation out;
  RelationData proto("", {}, {});
  size_t shard_count = 0;
  NORMALIZE_RETURN_IF_ERROR(LoadManifest(expected, &proto, &shard_count,
                                         &out.peak_ingest_buffer_bytes));
  out.name = proto.name();
  out.shards.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    NORMALIZE_ASSIGN_OR_RETURN(RelationData shard, LoadShard(i, proto));
    out.total_rows += shard.num_rows();
    out.shards.push_back(std::move(shard));
  }
  return out;
}

Status ShardStore::SavePlis(size_t index, const PliCache& cache) const {
  NORMALIZE_RETURN_IF_ERROR(EnsureDir(dir_));
  SnapshotEncoder enc;
  EncodeColumnPlis(&enc, cache);
  SnapshotWriter writer;
  writer.AddSection(kSectionColumnPlis, std::move(enc).bytes());
  return writer.WriteToFile(PliPath(index));
}

Result<std::vector<Pli>> ShardStore::LoadPlis(size_t index) const {
  NORMALIZE_ASSIGN_OR_RETURN(SnapshotReader reader,
                             SnapshotReader::FromFile(PliPath(index)));
  NORMALIZE_ASSIGN_OR_RETURN(std::string_view bytes,
                             reader.Section(kSectionColumnPlis));
  SnapshotDecoder dec(bytes);
  NORMALIZE_ASSIGN_OR_RETURN(std::vector<Pli> plis, DecodeColumnPlis(&dec));
  NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
  return plis;
}

}  // namespace normalize
