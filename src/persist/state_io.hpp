// Serializers for the pipeline state that checkpoints persist: attribute
// sets, FD covers, value dictionaries, row-range shards, column PLIs, and
// the run-stats snapshot. Each Encode* appends to a SnapshotEncoder; each
// Decode* reads from a SnapshotDecoder and fails with kDataLoss on any
// malformed input (no partial state escapes a failed decode).
//
// Encoding is canonical: the same state always produces the same bytes
// (containers are written in deterministic order), so round-trip tests can
// assert bit-identical re-encoding.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/attribute_set.hpp"
#include "fd/fd.hpp"
#include "persist/codec.hpp"
#include "persist/snapshot.hpp"
#include "pli/pli.hpp"
#include "relation/relation_data.hpp"
#include "shard/shard_relation.hpp"

namespace normalize {

// --- attribute sets and FDs ------------------------------------------------

void EncodeAttributeSet(SnapshotEncoder* enc, const AttributeSet& set);
Result<AttributeSet> DecodeAttributeSet(SnapshotDecoder* dec);

void EncodeFd(SnapshotEncoder* enc, const Fd& fd);
Result<Fd> DecodeFd(SnapshotDecoder* dec);

void EncodeFdVector(SnapshotEncoder* enc, const std::vector<Fd>& fds);
Result<std::vector<Fd>> DecodeFdVector(SnapshotDecoder* dec);

void EncodeFdSet(SnapshotEncoder* enc, const FdSet& fds);
Result<FdSet> DecodeFdSet(SnapshotDecoder* dec);

void EncodeAttributeSetVector(SnapshotEncoder* enc,
                              const std::vector<AttributeSet>& sets);
Result<std::vector<AttributeSet>> DecodeAttributeSetVector(
    SnapshotDecoder* dec);

// --- relations and shards --------------------------------------------------

/// Encodes the schema and shared dictionaries of a sharded relation (its
/// "prototype"): relation name, attribute ids/names, universe size, and each
/// column's dictionary in code order (so decoding re-interns to identical
/// codes).
void EncodeRelationPrototype(SnapshotEncoder* enc, const RelationData& proto);

/// Rebuilds an empty relation with freshly interned dictionaries whose codes
/// match the encoded ones exactly. Shards decoded against this prototype
/// (DecodeShardRows) share its dictionaries, mirroring the ingest layout.
Result<RelationData> DecodeRelationPrototype(SnapshotDecoder* dec);

/// Encodes one shard's rows as raw dictionary codes (columns share the
/// prototype's dictionaries, so codes are self-contained).
void EncodeShardRows(SnapshotEncoder* enc, const RelationData& shard);

/// Decodes rows into a new shard of `proto` (shares its dictionaries).
Result<RelationData> DecodeShardRows(SnapshotDecoder* dec,
                                     const RelationData& proto,
                                     const std::string& shard_name);

// --- PLIs ------------------------------------------------------------------

void EncodePli(SnapshotEncoder* enc, const Pli& pli);
Result<Pli> DecodePli(SnapshotDecoder* dec);

/// All single-column PLIs of one shard, in column order.
void EncodeColumnPlis(SnapshotEncoder* enc, const PliCache& cache);
Result<std::vector<Pli>> DecodeColumnPlis(SnapshotDecoder* dec);

// --- run identity ----------------------------------------------------------

/// Identifies the run configuration a checkpoint belongs to. Resuming with a
/// different source, backend, or sharding would silently change the result,
/// so loads verify the stored fingerprint and fail with kFailedPrecondition
/// on mismatch.
struct CheckpointFingerprint {
  /// Source identity: the CSV path (NormalizeCsvFile) or relation name
  /// (Normalize).
  std::string source;
  /// File size in bytes, or total input rows for in-memory runs.
  uint64_t source_size = 0;
  std::string backend;
  int max_lhs_size = -1;
  uint64_t shard_rows = 0;
  int columns = 0;

  bool operator==(const CheckpointFingerprint& other) const;
  bool operator!=(const CheckpointFingerprint& other) const {
    return !(*this == other);
  }
  std::string Describe() const;
};

void EncodeFingerprint(SnapshotEncoder* enc, const CheckpointFingerprint& fp);
Result<CheckpointFingerprint> DecodeFingerprint(SnapshotDecoder* dec);

/// Every checkpoint file stores the run fingerprint in this section id;
/// payloads live in higher-numbered sections.
inline constexpr uint32_t kFingerprintSectionId = 1;

/// Appends the fingerprint section to a snapshot under construction.
void AddFingerprintSection(SnapshotWriter* writer,
                           const CheckpointFingerprint& fp);

/// Opens `path` as a snapshot and verifies its fingerprint section against
/// `expected`. kNotFound passes through for absent files; a mismatch is
/// kFailedPrecondition naming both fingerprints (resuming a checkpoint from
/// a different run would silently change the result).
Result<SnapshotReader> OpenVerifiedSnapshot(
    const std::string& path, const CheckpointFingerprint& expected);

}  // namespace normalize
