#include "persist/snapshot.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "persist/codec.hpp"

namespace normalize {

namespace {

constexpr char kMagic[] = "NRMZSNAP";  // 8 bytes, no terminator written
constexpr size_t kMagicSize = 8;

/// Drains a ByteSource into one string. I/O errors pass through verbatim;
/// short reads are looped over like every other consumer of the seam.
Result<std::string> ReadAll(ByteSource* source) {
  std::string out;
  char buf[64 * 1024];
  for (;;) {
    NORMALIZE_ASSIGN_OR_RETURN(size_t n, source->Read(buf, sizeof(buf)));
    if (n == 0) break;
    out.append(buf, n);
  }
  return out;
}

}  // namespace

void SnapshotWriter::AddSection(uint32_t id, std::string payload) {
  sections_.emplace_back(id, std::move(payload));
}

std::string SnapshotWriter::Serialize() const {
  SnapshotEncoder enc;
  enc.PutRaw(std::string_view(kMagic, kMagicSize));
  enc.PutU32(kSnapshotFormatVersion);
  enc.PutU32(static_cast<uint32_t>(sections_.size()));
  for (const auto& [id, payload] : sections_) {
    enc.PutU32(id);
    enc.PutU64(payload.size());
    enc.PutU32(Crc32(payload));
    enc.PutRaw(payload);
  }
  return std::move(enc).bytes();
}

Status SnapshotWriter::WriteToFile(const std::string& path) const {
  const std::string bytes = Serialize();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open " + tmp + " for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IoError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " over " + path);
  }
  return Status::OK();
}

Result<SnapshotReader> SnapshotReader::FromBytes(std::string bytes) {
  if (bytes.size() < kMagicSize + 8) {
    return Status::DataLoss("snapshot truncated: " +
                            std::to_string(bytes.size()) +
                            " bytes is smaller than the header");
  }
  if (std::string_view(bytes).substr(0, kMagicSize) !=
      std::string_view(kMagic, kMagicSize)) {
    return Status::DataLoss("snapshot magic mismatch (not a snapshot file)");
  }
  SnapshotDecoder dec(std::string_view(bytes).substr(kMagicSize));
  NORMALIZE_ASSIGN_OR_RETURN(uint32_t version, dec.GetU32());
  if (version != kSnapshotFormatVersion) {
    return Status::DataLoss(
        "snapshot format version " + std::to_string(version) +
        " unsupported (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  NORMALIZE_ASSIGN_OR_RETURN(uint32_t count, dec.GetU32());

  SnapshotReader reader;
  for (uint32_t i = 0; i < count; ++i) {
    NORMALIZE_ASSIGN_OR_RETURN(uint32_t id, dec.GetU32());
    NORMALIZE_ASSIGN_OR_RETURN(uint64_t size, dec.GetU64());
    NORMALIZE_ASSIGN_OR_RETURN(uint32_t crc, dec.GetU32());
    if (size > dec.remaining()) {
      return Status::DataLoss("snapshot section " + std::to_string(id) +
                              " truncated: payload claims " +
                              std::to_string(size) + " bytes, " +
                              std::to_string(dec.remaining()) + " remain");
    }
    NORMALIZE_ASSIGN_OR_RETURN(std::string_view payload,
                               dec.GetRaw(static_cast<size_t>(size)));
    if (Crc32(payload) != crc) {
      return Status::DataLoss("snapshot section " + std::to_string(id) +
                              " CRC mismatch (corrupted payload)");
    }
    if (reader.index_.count(id) > 0) {
      return Status::DataLoss("snapshot section " + std::to_string(id) +
                              " appears twice");
    }
    reader.index_.emplace(id, reader.sections_.size());
    reader.sections_.emplace_back(id, std::string(payload));
  }
  NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
  return reader;
}

Result<std::string_view> SnapshotReader::Section(uint32_t id) const {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("snapshot has no section " + std::to_string(id));
  }
  return std::string_view(sections_[it->second].second);
}

std::vector<uint32_t> SnapshotReader::SectionIds() const {
  std::vector<uint32_t> ids;
  ids.reserve(sections_.size());
  for (const auto& [id, payload] : sections_) ids.push_back(id);
  return ids;
}

Result<SnapshotReader> SnapshotReader::FromSource(ByteSource* source) {
  NORMALIZE_ASSIGN_OR_RETURN(std::string bytes, ReadAll(source));
  return FromBytes(std::move(bytes));
}

Result<SnapshotReader> SnapshotReader::FromFile(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return Status::NotFound("snapshot file " + path + " does not exist");
  }
  FileByteSource source(path);
  return FromSource(&source);
}

}  // namespace normalize
