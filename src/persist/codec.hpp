// Fixed-width little-endian encode/decode primitives for the snapshot
// format (snapshot.hpp). The encoder appends to a growable byte string; the
// decoder is a bounds-checked cursor over an immutable byte view — every
// underflow or malformed length surfaces as a kDataLoss Status instead of
// reading past the buffer, which is what makes corrupted snapshots safe to
// open.
//
// All integers are little-endian regardless of host order; doubles travel as
// their IEEE-754 bit pattern in a u64. Strings are a u64 length followed by
// raw bytes (binary-safe: embedded NULs round-trip).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "common/status.hpp"

namespace normalize {

/// Append-only byte-string builder for snapshot payloads.
class SnapshotEncoder {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  /// IEEE-754 bit pattern as a u64.
  void PutDouble(double v);
  /// u64 length + raw bytes (binary-safe).
  void PutString(std::string_view s);
  /// Raw bytes, no length prefix (the caller knows the width).
  void PutRaw(std::string_view s) { out_.append(s.data(), s.size()); }

  size_t size() const { return out_.size(); }
  const std::string& bytes() const& { return out_; }
  std::string bytes() && { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked cursor over an encoded payload. The view is not owned;
/// the underlying bytes must outlive the decoder (GetString copies out, so
/// decoded values are safe past the view's lifetime).
class SnapshotDecoder {
 public:
  explicit SnapshotDecoder(std::string_view bytes) : in_(bytes) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int32_t> GetI32();
  Result<int64_t> GetI64();
  Result<bool> GetBool();
  Result<double> GetDouble();
  Result<std::string> GetString();
  /// `n` raw bytes without a length prefix; the view aliases the input.
  Result<std::string_view> GetRaw(size_t n);

  size_t remaining() const { return in_.size() - pos_; }
  bool AtEnd() const { return pos_ == in_.size(); }
  /// kDataLoss unless the whole payload was consumed — trailing garbage in a
  /// section is corruption, not padding.
  Status ExpectEnd() const;

 private:
  /// kDataLoss unless `n` more bytes are available.
  Status Need(size_t n, const char* what) const;

  std::string_view in_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) over `bytes`.
/// Implemented locally so snapshots need no external checksum dependency.
uint32_t Crc32(std::string_view bytes);

}  // namespace normalize
