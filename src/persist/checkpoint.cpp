#include "persist/checkpoint.hpp"

#include <filesystem>
#include <system_error>
#include <utility>

#include "persist/snapshot.hpp"

namespace normalize {

CheckpointManager::CheckpointManager(CheckpointOptions options,
                                     CheckpointFingerprint fingerprint)
    : options_(std::move(options)),
      fingerprint_(std::move(fingerprint)),
      store_(options_.dir) {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
}

namespace {

// Payload section ids (kFingerprintSectionId = 1 in every file).
constexpr uint32_t kSectionShardCovers = 2;
constexpr uint32_t kSectionFrontier = 3;
constexpr uint32_t kSectionEvidence = 4;
constexpr uint32_t kSectionCover = 5;
constexpr uint32_t kSectionInterruption = 6;
constexpr uint32_t kSectionLiveMeta = 7;
constexpr uint32_t kSectionLiveStore = 8;
constexpr uint32_t kSectionLiveCover = 9;
constexpr uint32_t kSectionLiveEvidence = 10;

}  // namespace

Status CheckpointManager::OnShardState(
    const std::vector<FdSet>& shard_covers,
    const std::vector<std::shared_ptr<const PliCache>>& shard_plis) {
  SnapshotEncoder enc;
  enc.PutU64(shard_covers.size());
  for (const FdSet& cover : shard_covers) EncodeFdSet(&enc, cover);
  SnapshotWriter writer;
  AddFingerprintSection(&writer, fingerprint_);
  writer.AddSection(kSectionShardCovers, std::move(enc).bytes());
  NORMALIZE_RETURN_IF_ERROR(
      writer.WriteToFile(options_.dir + "/covers.snap"));
  for (size_t s = 0; s < shard_plis.size(); ++s) {
    if (shard_plis[s] == nullptr) continue;  // backend exposes no cache
    NORMALIZE_RETURN_IF_ERROR(store_.SavePlis(s, *shard_plis[s]));
  }
  return Status::OK();
}

Status CheckpointManager::OnMergeLevel(
    int level, const std::vector<Fd>& frontier_fds,
    const std::vector<AttributeSet>& agree_sets) {
  SnapshotEncoder enc;
  enc.PutI32(level);
  EncodeFdVector(&enc, frontier_fds);
  EncodeAttributeSetVector(&enc, agree_sets);
  SnapshotWriter writer;
  AddFingerprintSection(&writer, fingerprint_);
  writer.AddSection(kSectionFrontier, std::move(enc).bytes());
  return writer.WriteToFile(options_.dir + "/frontier.snap");
}

Result<DiscoveryResumeState> CheckpointManager::LoadDiscoveryResume(
    size_t shard_count) {
  DiscoveryResumeState state;

  auto covers = OpenVerifiedSnapshot(options_.dir + "/covers.snap",
                                     fingerprint_);
  if (!covers.ok()) {
    if (covers.status().code() == StatusCode::kNotFound) return state;
    return covers.status();
  }
  {
    NORMALIZE_ASSIGN_OR_RETURN(std::string_view bytes,
                               covers->Section(kSectionShardCovers));
    SnapshotDecoder dec(bytes);
    NORMALIZE_ASSIGN_OR_RETURN(uint64_t count, dec.GetU64());
    if (count != shard_count) {
      return Status::FailedPrecondition(
          "checkpointed covers describe " + std::to_string(count) +
          " shards but the resumed ingest has " + std::to_string(shard_count));
    }
    state.shard_covers.reserve(shard_count);
    for (uint64_t s = 0; s < count; ++s) {
      NORMALIZE_ASSIGN_OR_RETURN(FdSet cover, DecodeFdSet(&dec));
      state.shard_covers.push_back(std::move(cover));
    }
    NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
  }

  // PLIs are a per-shard optimization: a shard whose file is missing is
  // simply rebuilt, but a corrupt file is an error like any other snapshot.
  state.shard_plis.resize(shard_count);
  for (size_t s = 0; s < shard_count; ++s) {
    auto plis = store_.LoadPlis(s);
    if (plis.ok()) {
      state.shard_plis[s] = std::move(plis).value();
    } else if (plis.status().code() != StatusCode::kNotFound) {
      return plis.status();
    }
  }

  auto frontier = OpenVerifiedSnapshot(options_.dir + "/frontier.snap",
                                       fingerprint_);
  if (!frontier.ok()) {
    if (frontier.status().code() == StatusCode::kNotFound) return state;
    return frontier.status();
  }
  NORMALIZE_ASSIGN_OR_RETURN(std::string_view bytes,
                             frontier->Section(kSectionFrontier));
  SnapshotDecoder dec(bytes);
  NORMALIZE_ASSIGN_OR_RETURN(int32_t level, dec.GetI32());
  if (level < 0) {
    return Status::DataLoss("checkpointed frontier level " +
                            std::to_string(level) + " is negative");
  }
  NORMALIZE_ASSIGN_OR_RETURN(state.frontier_fds, DecodeFdVector(&dec));
  NORMALIZE_ASSIGN_OR_RETURN(state.agree_sets, DecodeAttributeSetVector(&dec));
  NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
  state.last_complete_level = level;
  state.has_frontier = true;
  return state;
}

Status CheckpointManager::SaveEvidence(
    const std::vector<AttributeSet>& evidence) {
  SnapshotEncoder enc;
  EncodeAttributeSetVector(&enc, evidence);
  SnapshotWriter writer;
  AddFingerprintSection(&writer, fingerprint_);
  writer.AddSection(kSectionEvidence, std::move(enc).bytes());
  return writer.WriteToFile(options_.dir + "/evidence.snap");
}

Result<std::vector<AttributeSet>> CheckpointManager::LoadEvidence() {
  NORMALIZE_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      OpenVerifiedSnapshot(options_.dir + "/evidence.snap", fingerprint_));
  NORMALIZE_ASSIGN_OR_RETURN(std::string_view bytes,
                             reader.Section(kSectionEvidence));
  SnapshotDecoder dec(bytes);
  NORMALIZE_ASSIGN_OR_RETURN(std::vector<AttributeSet> evidence,
                             DecodeAttributeSetVector(&dec));
  NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
  return evidence;
}

Status CheckpointManager::SaveCover(const FdSet& cover) {
  SnapshotEncoder enc;
  EncodeFdSet(&enc, cover);
  SnapshotWriter writer;
  AddFingerprintSection(&writer, fingerprint_);
  writer.AddSection(kSectionCover, std::move(enc).bytes());
  return writer.WriteToFile(options_.dir + "/cover.snap");
}

Result<FdSet> CheckpointManager::LoadCover() {
  NORMALIZE_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      OpenVerifiedSnapshot(options_.dir + "/cover.snap", fingerprint_));
  NORMALIZE_ASSIGN_OR_RETURN(std::string_view bytes,
                             reader.Section(kSectionCover));
  SnapshotDecoder dec(bytes);
  NORMALIZE_ASSIGN_OR_RETURN(FdSet cover, DecodeFdSet(&dec));
  NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
  return cover;
}

Status CheckpointManager::SaveLiveState(const LiveServiceState& state) {
  SnapshotEncoder meta;
  meta.PutU64(state.epoch);
  meta.PutU64(state.last_applied_seq);
  meta.PutU64(state.batches_applied);

  SnapshotEncoder store;
  EncodeRelationPrototype(&store, state.log);
  EncodeShardRows(&store, state.log);
  store.PutString(state.live_mask);

  SnapshotEncoder cover;
  EncodeFdSet(&cover, state.cover);

  SnapshotEncoder evidence;
  evidence.PutU64(state.evidence.size());
  for (const auto& [agree, witness] : state.evidence) {
    EncodeAttributeSet(&evidence, agree);
    evidence.PutU64(witness.first);
    evidence.PutU64(witness.second);
  }

  SnapshotWriter writer;
  AddFingerprintSection(&writer, fingerprint_);
  writer.AddSection(kSectionLiveMeta, std::move(meta).bytes());
  writer.AddSection(kSectionLiveStore, std::move(store).bytes());
  writer.AddSection(kSectionLiveCover, std::move(cover).bytes());
  writer.AddSection(kSectionLiveEvidence, std::move(evidence).bytes());
  return writer.WriteToFile(options_.dir + "/live.snap");
}

Result<LiveServiceState> CheckpointManager::LoadLiveState() {
  NORMALIZE_ASSIGN_OR_RETURN(
      SnapshotReader reader,
      OpenVerifiedSnapshot(options_.dir + "/live.snap", fingerprint_));
  LiveServiceState state;
  {
    NORMALIZE_ASSIGN_OR_RETURN(std::string_view bytes,
                               reader.Section(kSectionLiveMeta));
    SnapshotDecoder dec(bytes);
    NORMALIZE_ASSIGN_OR_RETURN(state.epoch, dec.GetU64());
    NORMALIZE_ASSIGN_OR_RETURN(state.last_applied_seq, dec.GetU64());
    NORMALIZE_ASSIGN_OR_RETURN(state.batches_applied, dec.GetU64());
    NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
  }
  {
    NORMALIZE_ASSIGN_OR_RETURN(std::string_view bytes,
                               reader.Section(kSectionLiveStore));
    SnapshotDecoder dec(bytes);
    NORMALIZE_ASSIGN_OR_RETURN(RelationData proto,
                               DecodeRelationPrototype(&dec));
    NORMALIZE_ASSIGN_OR_RETURN(state.log,
                               DecodeShardRows(&dec, proto, proto.name()));
    NORMALIZE_ASSIGN_OR_RETURN(state.live_mask, dec.GetString());
    NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
    if (state.live_mask.size() != state.log.num_rows()) {
      return Status::DataLoss(
          "live.snap mask covers " + std::to_string(state.live_mask.size()) +
          " rows but the log holds " + std::to_string(state.log.num_rows()));
    }
  }
  {
    NORMALIZE_ASSIGN_OR_RETURN(std::string_view bytes,
                               reader.Section(kSectionLiveCover));
    SnapshotDecoder dec(bytes);
    NORMALIZE_ASSIGN_OR_RETURN(state.cover, DecodeFdSet(&dec));
    NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
  }
  {
    NORMALIZE_ASSIGN_OR_RETURN(std::string_view bytes,
                               reader.Section(kSectionLiveEvidence));
    SnapshotDecoder dec(bytes);
    NORMALIZE_ASSIGN_OR_RETURN(uint64_t count, dec.GetU64());
    state.evidence.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      NORMALIZE_ASSIGN_OR_RETURN(AttributeSet agree, DecodeAttributeSet(&dec));
      NORMALIZE_ASSIGN_OR_RETURN(uint64_t first, dec.GetU64());
      NORMALIZE_ASSIGN_OR_RETURN(uint64_t second, dec.GetU64());
      if (first >= state.log.num_rows() || second >= state.log.num_rows()) {
        return Status::DataLoss("live.snap evidence witness row out of range");
      }
      state.evidence.emplace_back(
          std::move(agree), std::make_pair(static_cast<RowId>(first),
                                           static_cast<RowId>(second)));
    }
    NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
  }
  return state;
}

void CheckpointManager::OnInterruption(const Status& why) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (interruption_noted_) return;
    interruption_noted_ = true;
  }
  SnapshotEncoder enc;
  enc.PutI32(static_cast<int32_t>(why.code()));
  enc.PutString(why.message());
  SnapshotWriter writer;
  AddFingerprintSection(&writer, fingerprint_);
  writer.AddSection(kSectionInterruption, std::move(enc).bytes());
  // Best-effort: the real state files were written by the sink already.
  (void)writer.WriteToFile(options_.dir + "/interrupted.snap");
}

}  // namespace normalize
