// Spill-to-disk store for row-range shards and their per-shard PLIs.
//
// The store is a directory of snapshot files (snapshot.hpp):
//
//   ingest.snap    fingerprint + relation prototype (schema + dictionaries)
//                  + shard count + peak ingest buffer bytes
//   shard_<i>.snap one shard's rows as raw dictionary codes
//   pli_<i>.snap   shard i's single-column PLIs (optional; written by the
//                  discovery handoff so resumed runs skip the rebuild)
//
// Saving a ShardedRelation persists the dictionaries once (in the prototype)
// and each shard's codes separately, so a consumer can stream shards back
// one at a time — the basis of out-of-core BCNF decomposition, which never
// needs all shards' text in memory at once.
//
// Every load verifies the stored CheckpointFingerprint against the caller's:
// resuming against a different source file, backend, or shard layout would
// silently produce a different schema, so mismatches fail loudly with
// kFailedPrecondition. Corrupt files fail with kDataLoss (snapshot layer);
// a missing store is kNotFound so callers can distinguish "no checkpoint
// yet" from "checkpoint damaged".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "persist/state_io.hpp"
#include "pli/pli.hpp"
#include "shard/shard_relation.hpp"

namespace normalize {

/// Directory-backed persistence for one sharded relation. Stateless between
/// calls apart from the directory path; safe to create fresh per operation.
class ShardStore {
 public:
  /// `dir` is created on first save if absent.
  explicit ShardStore(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// Persists the manifest (fingerprint, prototype, shard count, peak
  /// buffer bytes) and every shard's rows. Each file is written atomically;
  /// the manifest is written last so a complete ingest.snap implies the
  /// shard files it references were published first.
  Status SaveSharded(const ShardedRelation& sharded,
                     const CheckpointFingerprint& fingerprint) const;

  /// Loads the full sharded relation back. kNotFound when no manifest
  /// exists; kFailedPrecondition when the stored fingerprint differs from
  /// `expected`; kDataLoss on any corruption.
  Result<ShardedRelation> LoadSharded(
      const CheckpointFingerprint& expected) const;

  /// Loads the manifest's prototype relation (schema + dictionaries, no
  /// rows) after fingerprint verification.
  Result<RelationData> LoadPrototype(
      const CheckpointFingerprint& expected) const;

  /// Number of shards recorded in the manifest (after fingerprint check).
  Result<size_t> ShardCount(const CheckpointFingerprint& expected) const;

  /// Loads a single shard's rows against `proto` (from LoadPrototype), for
  /// shard-at-a-time streaming.
  Result<RelationData> LoadShard(size_t index, const RelationData& proto) const;

  /// Persists shard `index`'s single-column PLIs.
  Status SavePlis(size_t index, const PliCache& cache) const;

  /// Loads shard `index`'s single-column PLIs. kNotFound when that shard's
  /// PLI file was never written (callers rebuild instead).
  Result<std::vector<Pli>> LoadPlis(size_t index) const;

 private:
  std::string ManifestPath() const;
  std::string ShardPath(size_t index) const;
  std::string PliPath(size_t index) const;

  /// Reads ingest.snap and verifies the fingerprint; returns the decoded
  /// manifest pieces via out-params.
  Status LoadManifest(const CheckpointFingerprint& expected,
                      RelationData* proto, size_t* shard_count,
                      size_t* peak_ingest_buffer_bytes) const;

  std::string dir_;
};

}  // namespace normalize
