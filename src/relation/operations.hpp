// Relational-algebra operations on RelationData: projection (used by schema
// decomposition), natural join (used to verify lossless-join recoverability
// and to build denormalized inputs), and instance comparison.
#pragma once

#include <string>
#include <vector>

#include "common/attribute_set.hpp"
#include "common/result.hpp"
#include "relation/relation_data.hpp"

namespace normalize {

/// Projects `input` onto the global attributes in `attrs` (which must all be
/// present in the input). If `distinct` is true, duplicate rows are removed —
/// this is the π with duplicate elimination that decomposition step (6) uses
/// to build R2, where the paper's Table 2 shrinks from 6 to 3 rows.
RelationData Project(const RelationData& input, const AttributeSet& attrs,
                     bool distinct, std::string result_name = "");

/// Sharded π with duplicate elimination — the out-of-core decomposition
/// primitive. `shards` must be non-empty row-range shards sharing one schema
/// and one set of value dictionaries (the sharded-ingest invariant), in
/// concatenation order. Output shard i holds input shard i's surviving rows;
/// the output shards share fresh dictionaries, and their concatenation is
/// bit-identical (row order, interning order, codes) to
/// `Project(concatenated_input, attrs, /*distinct=*/true, result_name)` —
/// without ever materializing the concatenation. Deduplication runs on
/// dictionary-code tuples, which is exact because the shared dictionaries
/// make code equality coincide with (value, NULL)-tuple equality.
/// `transient_bytes`, when non-null, receives the footprint of the
/// cross-shard dedup set this call held (released on return) — the number
/// callers charge against a memory budget.
std::vector<RelationData> ProjectShardsDistinct(
    const std::vector<RelationData>& shards, const AttributeSet& attrs,
    std::string result_name = "", size_t* transient_bytes = nullptr);

/// Natural join of two relations on their shared global attributes. NULL
/// join keys never match (SQL semantics). If the relations share no
/// attributes the result is the cross product.
RelationData NaturalJoin(const RelationData& left, const RelationData& right,
                         std::string result_name = "");

/// Natural-joins all relations, greedily picking at each step a relation
/// that shares at least one attribute with the accumulated result (so that a
/// decomposition tree is rejoined along its keys and never degenerates to a
/// cross product). Relations sharing no attributes with any other are
/// cross-joined last. Used to verify lossless recoverability.
RelationData JoinAll(const std::vector<RelationData>& relations,
                     std::string result_name = "joined");

/// True iff both instances contain the same bag of rows over the same global
/// attributes (row and column order are irrelevant; NULLs compare equal).
bool InstancesEqual(const RelationData& a, const RelationData& b);

/// True iff the FD (lhs -> rhs_attr) holds on `data`: any two rows agreeing
/// on all lhs columns agree on the rhs column. NULLs compare equal. This is
/// the brute-force oracle used by tests and the naive discovery algorithm.
bool FdHolds(const RelationData& data, const AttributeSet& lhs,
             AttributeId rhs_attr);

/// True iff `attrs` is a unique column combination (no two rows share all
/// `attrs` values) on `data`.
bool IsUnique(const RelationData& data, const AttributeSet& attrs);

/// Materializes one row as strings, with NULLs rendered as `null_token`.
std::vector<std::string> RowValues(const RelationData& data, size_t row,
                                   const std::string& null_token = "NULL");

}  // namespace normalize
