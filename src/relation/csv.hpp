// CSV import/export — the "FD input handling" of the Metanome framework,
// reimplemented self-contained: RFC-4180-style quoting, configurable
// delimiter, header handling, and a NULL token.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/byte_source.hpp"
#include "common/result.hpp"
#include "relation/relation_data.hpp"

namespace normalize {

/// Options controlling CSV parsing and serialization.
struct CsvOptions {
  char delimiter = ',';
  char quote = '"';
  bool has_header = true;
  /// Unquoted cells equal to this token become NULL; empty unquoted cells
  /// become NULL too when `empty_is_null` is set.
  std::string null_token = "";
  bool empty_is_null = true;
};

/// One parsed CSV cell. `quoted` records whether the cell was written in
/// quotes — a quoted empty cell is an empty string, an unquoted one is NULL
/// (under `empty_is_null`).
struct CsvCell {
  std::string text;
  bool quoted = false;
};

/// Parses one CSV record starting at `*pos`; advances `*pos` past the
/// record's terminating newline (or to s.size() for the final record).
/// Handles quoted cells with "" escapes, embedded delimiters and newlines,
/// and \r\n / \r / \n terminators. Shared grammar of CsvReader and
/// ShardedCsvReader — the two must parse identically.
Result<std::vector<CsvCell>> ParseCsvRecord(std::string_view s, size_t* pos,
                                            const CsvOptions& options);

/// True iff the record is a blank line (one empty unquoted cell). Blank
/// lines are skipped except in single-column relations, where an empty
/// unquoted line legitimately encodes a NULL cell (round-trip fidelity).
bool IsBlankCsvRecord(const std::vector<CsvCell>& record);

/// Converts a parsed record into row text plus NULL mask per the options.
void CsvRecordToRow(const std::vector<CsvCell>& record,
                    const CsvOptions& options, std::vector<std::string>* row,
                    std::vector<bool>* is_null);

/// Default relation name for a CSV file: basename without extension.
std::string RelationNameFromPath(const std::string& path);

class CsvReader {
 public:
  explicit CsvReader(CsvOptions options = {}) : options_(options) {}

  /// Parses CSV text into a relation. Attribute ids are assigned 0..n-1 in
  /// column order; generated names "column0".. are used without a header.
  Result<RelationData> ReadString(const std::string& content,
                                  const std::string& relation_name) const;

  /// Reads and parses a CSV file.
  Result<RelationData> ReadFile(const std::string& path,
                                const std::string& relation_name = "") const;

  /// Drains `source` and parses like ReadString. The ByteSource seam both
  /// file reading and fault-injection tests go through.
  Result<RelationData> ReadSource(ByteSource* source,
                                  const std::string& relation_name) const;

 private:
  CsvOptions options_;
};

class CsvWriter {
 public:
  explicit CsvWriter(CsvOptions options = {}) : options_(options) {}

  /// Serializes the relation (with header iff options.has_header).
  std::string WriteString(const RelationData& data) const;

  /// Writes the relation to a file.
  Status WriteFile(const RelationData& data, const std::string& path) const;

 private:
  CsvOptions options_;
};

}  // namespace normalize
