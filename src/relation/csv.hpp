// CSV import/export — the "FD input handling" of the Metanome framework,
// reimplemented self-contained: RFC-4180-style quoting, configurable
// delimiter, header handling, and a NULL token.
#pragma once

#include <string>

#include "common/result.hpp"
#include "relation/relation_data.hpp"

namespace normalize {

/// Options controlling CSV parsing and serialization.
struct CsvOptions {
  char delimiter = ',';
  char quote = '"';
  bool has_header = true;
  /// Unquoted cells equal to this token become NULL; empty unquoted cells
  /// become NULL too when `empty_is_null` is set.
  std::string null_token = "";
  bool empty_is_null = true;
};

class CsvReader {
 public:
  explicit CsvReader(CsvOptions options = {}) : options_(options) {}

  /// Parses CSV text into a relation. Attribute ids are assigned 0..n-1 in
  /// column order; generated names "column0".. are used without a header.
  Result<RelationData> ReadString(const std::string& content,
                                  const std::string& relation_name) const;

  /// Reads and parses a CSV file.
  Result<RelationData> ReadFile(const std::string& path,
                                const std::string& relation_name = "") const;

 private:
  CsvOptions options_;
};

class CsvWriter {
 public:
  explicit CsvWriter(CsvOptions options = {}) : options_(options) {}

  /// Serializes the relation (with header iff options.has_header).
  std::string WriteString(const RelationData& data) const;

  /// Writes the relation to a file.
  Status WriteFile(const RelationData& data, const std::string& path) const;

 private:
  CsvOptions options_;
};

}  // namespace normalize
