// Schema (de)serialization in a small line-based text format, so normalized
// schemas — with their key and foreign-key constraints — can be saved,
// diffed, and reloaded (e.g. by normalize_cli or a follow-up monitoring
// run):
//
//   # normalize schema v1
//   attributes: First, Last, Postcode, City, Mayor
//   relation: address
//     attrs: First, Last, Postcode
//     pk: First, Last
//     fk: Postcode -> R2_Postcode
//   relation: R2_Postcode
//     attrs: Postcode, City, Mayor
//     pk: Postcode
#pragma once

#include <string>

#include "common/result.hpp"
#include "relation/schema.hpp"

namespace normalize {

/// Serializes the schema (attribute names, relations, PKs, FKs).
std::string WriteSchemaToString(const Schema& schema);

/// Parses the format produced by WriteSchemaToString. Unknown attribute or
/// relation names, missing sections, and malformed lines are errors.
Result<Schema> ReadSchemaFromString(const std::string& text);

/// File variants.
Status WriteSchemaFile(const Schema& schema, const std::string& path);
Result<Schema> ReadSchemaFile(const std::string& path);

}  // namespace normalize
