// Schema model: relations over *global* attribute ids with primary-key and
// foreign-key constraints. The normalizer incrementally rewrites a Schema —
// decompositions add relations and constraints (paper §3, component 6).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/attribute_set.hpp"

namespace normalize {

/// A foreign-key constraint: `attributes` of the owning relation reference
/// the primary key of `target_relation` (index into Schema::relations()).
struct ForeignKey {
  AttributeSet attributes;
  int target_relation = -1;

  bool operator==(const ForeignKey& other) const {
    return attributes == other.attributes &&
           target_relation == other.target_relation;
  }
};

/// One relation of the evolving schema.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, AttributeSet attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const AttributeSet& attributes() const { return attributes_; }
  void set_attributes(AttributeSet attrs) { attributes_ = std::move(attrs); }

  bool has_primary_key() const { return primary_key_.has_value(); }
  const AttributeSet& primary_key() const { return *primary_key_; }
  void set_primary_key(AttributeSet key) { primary_key_ = std::move(key); }
  void clear_primary_key() { primary_key_.reset(); }

  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }
  std::vector<ForeignKey>* mutable_foreign_keys() { return &foreign_keys_; }
  void AddForeignKey(ForeignKey fk) { foreign_keys_.push_back(std::move(fk)); }

 private:
  std::string name_;
  AttributeSet attributes_;
  std::optional<AttributeSet> primary_key_;
  std::vector<ForeignKey> foreign_keys_;
};

/// The whole evolving schema: global attribute names plus the current set of
/// relations. Relation indices are stable (relations are never removed, only
/// replaced in place or appended) so ForeignKey::target_relation stays valid.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attribute_names)
      : attribute_names_(std::move(attribute_names)) {}

  int num_attributes() const {
    return static_cast<int>(attribute_names_.size());
  }
  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }
  const std::string& attribute_name(AttributeId a) const {
    return attribute_names_[static_cast<size_t>(a)];
  }

  const std::vector<RelationSchema>& relations() const { return relations_; }
  std::vector<RelationSchema>* mutable_relations() { return &relations_; }
  const RelationSchema& relation(int i) const {
    return relations_[static_cast<size_t>(i)];
  }
  RelationSchema* mutable_relation(int i) {
    return &relations_[static_cast<size_t>(i)];
  }

  /// Appends a relation and returns its index.
  int AddRelation(RelationSchema rel) {
    relations_.push_back(std::move(rel));
    return static_cast<int>(relations_.size()) - 1;
  }

  /// Pretty-prints all relations with keys underlined in SQL-comment style:
  ///   R2(Postcode*, City, Mayor)  [* = primary key]
  /// plus one "FK: R1.{Postcode} -> R2" line per foreign key.
  std::string ToString() const;

 private:
  std::vector<std::string> attribute_names_;
  std::vector<RelationSchema> relations_;
};

}  // namespace normalize
