#include "relation/schema_io.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/string_utils.hpp"

namespace normalize {

namespace {

std::string NameList(const AttributeSet& set, const Schema& schema) {
  std::string out;
  for (AttributeId a : set) {
    if (!out.empty()) out += ", ";
    out += schema.attribute_name(a);
  }
  return out;
}

}  // namespace

std::string WriteSchemaToString(const Schema& schema) {
  std::ostringstream os;
  os << "# normalize schema v1\n";
  os << "attributes: " << JoinStrings(schema.attribute_names(), ", ") << "\n";
  for (const RelationSchema& rel : schema.relations()) {
    os << "relation: " << rel.name() << "\n";
    os << "  attrs: " << NameList(rel.attributes(), schema) << "\n";
    if (rel.has_primary_key()) {
      os << "  pk: " << NameList(rel.primary_key(), schema) << "\n";
    }
    for (const ForeignKey& fk : rel.foreign_keys()) {
      os << "  fk: " << NameList(fk.attributes, schema) << " -> "
         << (fk.target_relation >= 0 &&
                     fk.target_relation <
                         static_cast<int>(schema.relations().size())
                 ? schema.relation(fk.target_relation).name()
                 : "?")
         << "\n";
    }
  }
  return os.str();
}

Result<Schema> ReadSchemaFromString(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;

  std::vector<std::string> attribute_names;
  std::unordered_map<std::string, AttributeId> attr_index;
  Schema schema;
  bool have_attributes = false;
  int current_relation = -1;
  // FK targets are resolved after all relations are known.
  struct PendingFk {
    int relation;
    AttributeSet attrs;
    std::string target;
    size_t line;
  };
  std::vector<PendingFk> pending_fks;

  auto parse_attr_set = [&](std::string_view list,
                            size_t at_line) -> Result<AttributeSet> {
    AttributeSet set(static_cast<int>(attribute_names.size()));
    for (const std::string& token : SplitString(std::string(list), ',')) {
      std::string name = Trim(token);
      if (name.empty()) continue;
      auto it = attr_index.find(name);
      if (it == attr_index.end()) {
        return Status::InvalidArgument("unknown attribute '" + name +
                                       "' on line " + std::to_string(at_line));
      }
      set.Set(it->second);
    }
    return set;
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    size_t colon = trimmed.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("malformed line " +
                                     std::to_string(line_no) + ": " + trimmed);
    }
    std::string key = Trim(trimmed.substr(0, colon));
    std::string value = Trim(trimmed.substr(colon + 1));

    if (key == "attributes") {
      for (const std::string& token : SplitString(value, ',')) {
        std::string name = Trim(token);
        attr_index.emplace(
            name, static_cast<AttributeId>(attribute_names.size()));
        attribute_names.push_back(name);
      }
      schema = Schema(attribute_names);
      have_attributes = true;
    } else if (key == "relation") {
      if (!have_attributes) {
        return Status::InvalidArgument("'relation' before 'attributes'");
      }
      current_relation = schema.AddRelation(
          RelationSchema(value, AttributeSet(schema.num_attributes())));
    } else if (key == "attrs" || key == "pk" || key == "fk") {
      if (current_relation < 0) {
        return Status::InvalidArgument("'" + key + "' outside a relation");
      }
      if (key == "fk") {
        size_t arrow = value.find("->");
        if (arrow == std::string::npos) {
          return Status::InvalidArgument("fk without target on line " +
                                         std::to_string(line_no));
        }
        auto attrs = parse_attr_set(value.substr(0, arrow), line_no);
        if (!attrs.ok()) return attrs.status();
        pending_fks.push_back({current_relation, *attrs,
                               Trim(value.substr(arrow + 2)), line_no});
      } else {
        auto attrs = parse_attr_set(value, line_no);
        if (!attrs.ok()) return attrs.status();
        if (key == "attrs") {
          schema.mutable_relation(current_relation)->set_attributes(*attrs);
        } else {
          schema.mutable_relation(current_relation)->set_primary_key(*attrs);
        }
      }
    } else {
      return Status::InvalidArgument("unknown key '" + key + "' on line " +
                                     std::to_string(line_no));
    }
  }
  if (!have_attributes) {
    return Status::InvalidArgument("missing 'attributes' header");
  }

  std::unordered_map<std::string, int> relation_index;
  for (size_t i = 0; i < schema.relations().size(); ++i) {
    relation_index.emplace(schema.relation(static_cast<int>(i)).name(),
                           static_cast<int>(i));
  }
  for (PendingFk& fk : pending_fks) {
    auto it = relation_index.find(fk.target);
    if (it == relation_index.end()) {
      return Status::InvalidArgument("unknown fk target '" + fk.target +
                                     "' on line " + std::to_string(fk.line));
    }
    schema.mutable_relation(fk.relation)
        ->AddForeignKey(ForeignKey{std::move(fk.attrs), it->second});
  }
  return schema;
}

Status WriteSchemaFile(const Schema& schema, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << WriteSchemaToString(schema);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Schema> ReadSchemaFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadSchemaFromString(buffer.str());
}

}  // namespace normalize
