#include "relation/csv.hpp"

#include <fstream>
#include <sstream>

namespace normalize {

Result<std::vector<CsvCell>> ParseCsvRecord(std::string_view s, size_t* pos,
                                            const CsvOptions& opt) {
  std::vector<CsvCell> cells;
  CsvCell cell;
  bool in_quotes = false;
  bool cell_started_quoted = false;
  size_t i = *pos;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (in_quotes) {
      if (c == opt.quote) {
        if (i + 1 < s.size() && s[i + 1] == opt.quote) {
          cell.text.push_back(opt.quote);
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.text.push_back(c);
      }
      continue;
    }
    if (c == opt.quote && cell.text.empty() && !cell_started_quoted) {
      in_quotes = true;
      cell_started_quoted = true;
      cell.quoted = true;
      continue;
    }
    if (c == opt.delimiter) {
      cells.push_back(std::move(cell));
      cell = CsvCell{};
      cell_started_quoted = false;
      continue;
    }
    if (c == '\n' || c == '\r') {
      // End of record; consume \r\n pairs.
      if (c == '\r' && i + 1 < s.size() && s[i + 1] == '\n') ++i;
      ++i;
      cells.push_back(std::move(cell));
      *pos = i;
      return cells;
    }
    cell.text.push_back(c);
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted cell at end of input");
  }
  cells.push_back(std::move(cell));
  *pos = i;
  return cells;
}

bool IsBlankCsvRecord(const std::vector<CsvCell>& record) {
  return record.size() == 1 && record[0].text.empty() && !record[0].quoted;
}

void CsvRecordToRow(const std::vector<CsvCell>& record,
                    const CsvOptions& options, std::vector<std::string>* row,
                    std::vector<bool>* is_null) {
  row->clear();
  is_null->clear();
  row->reserve(record.size());
  is_null->reserve(record.size());
  for (const CsvCell& c : record) {
    bool null_cell =
        !c.quoted &&
        ((options.empty_is_null && c.text.empty()) ||
         (!options.null_token.empty() && c.text == options.null_token));
    is_null->push_back(null_cell);
    row->push_back(c.text);
  }
}

Result<RelationData> CsvReader::ReadString(
    const std::string& content, const std::string& relation_name) const {
  size_t pos = 0;
  std::vector<std::string> names;
  if (options_.has_header) {
    if (pos >= content.size()) {
      return Status::InvalidArgument("empty CSV input but header expected");
    }
    auto header = ParseCsvRecord(content, &pos, options_);
    if (!header.ok()) return header.status();
    for (const CsvCell& c : *header) names.push_back(c.text);
  }

  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<bool>> null_masks;
  while (pos < content.size()) {
    auto record = ParseCsvRecord(content, &pos, options_);
    if (!record.ok()) return record.status();
    // Skip blank lines — except in single-column relations, where an empty
    // unquoted line legitimately encodes a NULL cell (round-trip fidelity).
    if (IsBlankCsvRecord(*record) && names.size() != 1) continue;
    if (names.empty()) {
      for (size_t i = 0; i < record->size(); ++i) {
        names.push_back("column" + std::to_string(i));
      }
    }
    if (record->size() != names.size()) {
      return Status::InvalidArgument(
          "row " + std::to_string(rows.size() + 1) + " has " +
          std::to_string(record->size()) + " cells, expected " +
          std::to_string(names.size()));
    }
    std::vector<std::string> row;
    std::vector<bool> nulls;
    CsvRecordToRow(*record, options_, &row, &nulls);
    rows.push_back(std::move(row));
    null_masks.push_back(std::move(nulls));
  }

  std::vector<AttributeId> ids(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    ids[i] = static_cast<AttributeId>(i);
  }
  RelationData data(relation_name.empty() ? "relation" : relation_name,
                    std::move(ids), names);
  for (size_t r = 0; r < rows.size(); ++r) {
    data.AppendRow(rows[r], null_masks[r]);
  }
  return data;
}

std::string RelationNameFromPath(const std::string& path) {
  size_t slash = path.find_last_of("/\\");
  std::string name = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return name;
}

Result<RelationData> CsvReader::ReadFile(
    const std::string& path, const std::string& relation_name) const {
  FileByteSource file(path);
  std::string name =
      relation_name.empty() ? RelationNameFromPath(path) : relation_name;
  return ReadSource(&file, name);
}

Result<RelationData> CsvReader::ReadSource(
    ByteSource* source, const std::string& relation_name) const {
  std::string content;
  char buf[1 << 16];
  while (true) {
    Result<size_t> got = source->Read(buf, sizeof(buf));
    if (!got.ok()) return got.status();
    if (*got == 0) break;
    content.append(buf, *got);
  }
  return ReadString(content, relation_name);
}

std::string CsvWriter::WriteString(const RelationData& data) const {
  std::ostringstream os;
  auto emit_cell = [&](std::string_view text, bool is_null) {
    if (is_null) {
      os << options_.null_token;
      return;
    }
    bool needs_quotes =
        text.find(options_.delimiter) != std::string_view::npos ||
        text.find(options_.quote) != std::string_view::npos ||
        text.find('\n') != std::string_view::npos ||
        text.find('\r') != std::string_view::npos ||
        (options_.empty_is_null && text.empty()) ||
        (!options_.null_token.empty() && text == options_.null_token);
    if (!needs_quotes) {
      os << text;
      return;
    }
    os << options_.quote;
    for (char c : text) {
      if (c == options_.quote) os << options_.quote;
      os << c;
    }
    os << options_.quote;
  };

  if (options_.has_header) {
    for (int c = 0; c < data.num_columns(); ++c) {
      if (c) os << options_.delimiter;
      emit_cell(data.column(c).name(), false);
    }
    os << "\n";
  }
  for (size_t r = 0; r < data.num_rows(); ++r) {
    for (int c = 0; c < data.num_columns(); ++c) {
      if (c) os << options_.delimiter;
      const Column& col = data.column(c);
      emit_cell(col.ValueAt(r, ""), col.IsNull(r));
    }
    os << "\n";
  }
  return os.str();
}

Status CsvWriter::WriteFile(const RelationData& data,
                            const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open file for writing: " + path);
  out << WriteString(data);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace normalize
