#include "relation/operations.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace normalize {

namespace {

// A projected row as (value, is_null) pairs, hashable for dedup/joins.
struct RowKey {
  std::vector<std::string> values;
  std::vector<bool> nulls;

  bool operator==(const RowKey& other) const {
    return values == other.values && nulls == other.nulls;
  }
};

struct RowKeyHash {
  size_t operator()(const RowKey& k) const {
    size_t h = 1469598103934665603ull;
    for (size_t i = 0; i < k.values.size(); ++i) {
      if (k.nulls[i]) {
        h = h * 1099511628211ull + 0x9e37;
      } else {
        for (unsigned char c : k.values[i]) {
          h ^= c;
          h *= 1099511628211ull;
        }
        h = h * 1099511628211ull + 1;
      }
    }
    return h;
  }
};

RowKey ExtractRow(const RelationData& data, size_t row,
                  const std::vector<int>& col_indices) {
  RowKey key;
  key.values.reserve(col_indices.size());
  key.nulls.reserve(col_indices.size());
  for (int ci : col_indices) {
    const Column& col = data.column(ci);
    key.nulls.push_back(col.IsNull(row));
    key.values.emplace_back(col.ValueAt(row, ""));
  }
  return key;
}

}  // namespace

RelationData Project(const RelationData& input, const AttributeSet& attrs,
                     bool distinct, std::string result_name) {
  std::vector<AttributeId> ids;
  std::vector<std::string> names;
  std::vector<int> col_indices;
  for (AttributeId a : attrs) {
    int ci = input.ColumnIndexOf(a);
    assert(ci >= 0 && "projection attribute missing from input");
    ids.push_back(a);
    names.push_back(input.column(ci).name());
    col_indices.push_back(ci);
  }
  if (result_name.empty()) result_name = input.name() + "_proj";
  RelationData out(std::move(result_name), std::move(ids), std::move(names));
  out.set_universe_size(input.universe_size());

  std::unordered_set<RowKey, RowKeyHash> seen;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    RowKey key = ExtractRow(input, r, col_indices);
    if (distinct) {
      if (!seen.insert(key).second) continue;
    }
    out.AppendRow(key.values, key.nulls);
  }
  return out;
}

std::vector<RelationData> ProjectShardsDistinct(
    const std::vector<RelationData>& shards, const AttributeSet& attrs,
    std::string result_name, size_t* transient_bytes) {
  assert(!shards.empty() && "cannot project an empty shard vector");
  const RelationData& first = shards.front();
  std::vector<AttributeId> ids;
  std::vector<std::string> names;
  std::vector<int> col_indices;
  for (AttributeId a : attrs) {
    int ci = first.ColumnIndexOf(a);
    assert(ci >= 0 && "projection attribute missing from input");
    ids.push_back(a);
    names.push_back(first.column(ci).name());
    col_indices.push_back(ci);
  }
  if (result_name.empty()) result_name = first.name() + "_proj";

  // Dedup on input-dictionary code tuples. The NULL sentinel is itself a
  // dictionary code, so a code tuple determines the (value, NULL) tuple that
  // Project's string-based dedup keys on — and vice versa.
  struct CodeTupleHash {
    size_t operator()(const std::vector<ValueId>& codes) const {
      uint64_t h = 1469598103934665603ull;
      for (ValueId c : codes) {
        h ^= static_cast<uint64_t>(static_cast<uint32_t>(c)) +
             0x9e3779b97f4a7c15ull;
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };
  std::unordered_set<std::vector<ValueId>, CodeTupleHash> seen;

  std::vector<RelationData> out;
  out.reserve(shards.size());
  std::vector<ValueId> codes(col_indices.size());
  std::vector<std::string> values(col_indices.size());
  std::vector<bool> nulls(col_indices.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    const RelationData& shard = shards[s];
    RelationData proj = s == 0
                            ? RelationData(result_name, ids, names)
                            : RelationData::EmptyLike(out.front(), result_name);
    if (s == 0) proj.set_universe_size(first.universe_size());
    for (size_t r = 0; r < shard.num_rows(); ++r) {
      for (size_t i = 0; i < col_indices.size(); ++i) {
        codes[i] = shard.column(col_indices[i]).code(r);
      }
      if (!seen.insert(codes).second) continue;
      // Surviving rows re-intern by string in global first-occurrence order,
      // exactly reproducing Project's fresh output dictionaries.
      for (size_t i = 0; i < col_indices.size(); ++i) {
        const Column& col = shard.column(col_indices[i]);
        nulls[i] = col.IsNull(r);
        std::string_view v = col.ValueAt(r, "");
        values[i].assign(v.data(), v.size());
      }
      proj.AppendRow(values, nulls);
    }
    out.push_back(std::move(proj));
  }
  if (transient_bytes != nullptr) {
    *transient_bytes = seen.size() * col_indices.size() * sizeof(ValueId);
  }
  return out;
}

RelationData NaturalJoin(const RelationData& left, const RelationData& right,
                         std::string result_name) {
  // Determine shared global attributes; they appear once in the output.
  std::vector<int> left_shared, right_shared;
  std::vector<int> right_extra;  // right columns not in left
  for (int rc = 0; rc < right.num_columns(); ++rc) {
    int lc = left.ColumnIndexOf(right.attribute_ids()[static_cast<size_t>(rc)]);
    if (lc >= 0) {
      left_shared.push_back(lc);
      right_shared.push_back(rc);
    } else {
      right_extra.push_back(rc);
    }
  }

  std::vector<AttributeId> ids = left.attribute_ids();
  std::vector<std::string> names;
  for (int c = 0; c < left.num_columns(); ++c) {
    names.push_back(left.column(c).name());
  }
  for (int rc : right_extra) {
    ids.push_back(right.attribute_ids()[static_cast<size_t>(rc)]);
    names.push_back(right.column(rc).name());
  }
  if (result_name.empty()) result_name = left.name() + "_join_" + right.name();
  RelationData out(std::move(result_name), std::move(ids), std::move(names));
  out.set_universe_size(std::max(left.universe_size(), right.universe_size()));

  // Hash the right side on the shared attributes. Rows with NULL in any join
  // key never match (SQL semantics).
  std::unordered_map<RowKey, std::vector<size_t>, RowKeyHash> right_index;
  for (size_t r = 0; r < right.num_rows(); ++r) {
    RowKey key = ExtractRow(right, r, right_shared);
    if (std::find(key.nulls.begin(), key.nulls.end(), true) != key.nulls.end())
      continue;
    right_index[std::move(key)].push_back(r);
  }

  bool cross_product = left_shared.empty();
  for (size_t lr = 0; lr < left.num_rows(); ++lr) {
    RowKey key = ExtractRow(left, lr, left_shared);
    const std::vector<size_t>* matches = nullptr;
    std::vector<size_t> all_rows;
    if (cross_product) {
      all_rows.resize(right.num_rows());
      for (size_t i = 0; i < right.num_rows(); ++i) all_rows[i] = i;
      matches = &all_rows;
    } else {
      if (std::find(key.nulls.begin(), key.nulls.end(), true) !=
          key.nulls.end()) {
        continue;
      }
      auto it = right_index.find(key);
      if (it == right_index.end()) continue;
      matches = &it->second;
    }
    for (size_t rr : *matches) {
      std::vector<std::string> cells;
      std::vector<bool> nulls;
      cells.reserve(static_cast<size_t>(out.num_columns()));
      nulls.reserve(static_cast<size_t>(out.num_columns()));
      for (int c = 0; c < left.num_columns(); ++c) {
        nulls.push_back(left.column(c).IsNull(lr));
        cells.emplace_back(left.column(c).ValueAt(lr, ""));
      }
      for (int rc : right_extra) {
        nulls.push_back(right.column(rc).IsNull(rr));
        cells.emplace_back(right.column(rc).ValueAt(rr, ""));
      }
      out.AppendRow(cells, nulls);
    }
  }
  return out;
}

RelationData JoinAll(const std::vector<RelationData>& relations,
                     std::string result_name) {
  assert(!relations.empty());
  std::vector<bool> used(relations.size(), false);
  RelationData result = relations[0];
  used[0] = true;
  size_t remaining = relations.size() - 1;
  while (remaining > 0) {
    // Prefer a relation that shares an attribute with the accumulated join.
    int next = -1;
    for (size_t i = 0; i < relations.size(); ++i) {
      if (used[i]) continue;
      bool shares = false;
      for (AttributeId a : relations[i].attribute_ids()) {
        if (result.ColumnIndexOf(a) >= 0) shares = true;
      }
      if (shares) {
        next = static_cast<int>(i);
        break;
      }
    }
    if (next < 0) {
      // Disconnected component: fall back to the first unused relation
      // (cross product, the only correct semantics left).
      for (size_t i = 0; i < relations.size() && next < 0; ++i) {
        if (!used[i]) next = static_cast<int>(i);
      }
    }
    result = NaturalJoin(result, relations[static_cast<size_t>(next)]);
    used[static_cast<size_t>(next)] = true;
    --remaining;
  }
  result.set_name(std::move(result_name));
  return result;
}

bool InstancesEqual(const RelationData& a, const RelationData& b) {
  if (a.num_rows() != b.num_rows()) return false;
  if (a.num_columns() != b.num_columns()) return false;
  // Map b's columns to a's by global attribute id.
  std::vector<int> b_cols;
  for (AttributeId id : a.attribute_ids()) {
    int bc = b.ColumnIndexOf(id);
    if (bc < 0) return false;
    b_cols.push_back(bc);
  }
  std::vector<int> a_cols(static_cast<size_t>(a.num_columns()));
  for (int i = 0; i < a.num_columns(); ++i) a_cols[static_cast<size_t>(i)] = i;

  std::unordered_map<RowKey, int64_t, RowKeyHash> bag;
  for (size_t r = 0; r < a.num_rows(); ++r) bag[ExtractRow(a, r, a_cols)]++;
  for (size_t r = 0; r < b.num_rows(); ++r) {
    auto it = bag.find(ExtractRow(b, r, b_cols));
    if (it == bag.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

bool FdHolds(const RelationData& data, const AttributeSet& lhs,
             AttributeId rhs_attr) {
  std::vector<int> lhs_cols;
  for (AttributeId a : lhs) {
    int ci = data.ColumnIndexOf(a);
    assert(ci >= 0);
    lhs_cols.push_back(ci);
  }
  int rhs_col = data.ColumnIndexOf(rhs_attr);
  assert(rhs_col >= 0);

  // Group rows by their lhs code tuple; all rows of a group must share the
  // rhs code. NULLs compare equal because they share the column's null code.
  struct CodeVecHash {
    size_t operator()(const std::vector<ValueId>& v) const {
      size_t h = 1469598103934665603ull;
      for (ValueId x : v) {
        h ^= static_cast<size_t>(x) + 0x9e3779b97f4a7c15ull;
        h *= 1099511628211ull;
      }
      return h;
    }
  };
  std::unordered_map<std::vector<ValueId>, ValueId, CodeVecHash> groups;
  std::vector<ValueId> key(lhs_cols.size());
  for (size_t r = 0; r < data.num_rows(); ++r) {
    for (size_t i = 0; i < lhs_cols.size(); ++i) {
      key[i] = data.column(lhs_cols[i]).code(r);
    }
    ValueId rhs_code = data.column(rhs_col).code(r);
    auto [it, inserted] = groups.emplace(key, rhs_code);
    if (!inserted && it->second != rhs_code) return false;
  }
  return true;
}

bool IsUnique(const RelationData& data, const AttributeSet& attrs) {
  std::vector<int> cols;
  for (AttributeId a : attrs) {
    int ci = data.ColumnIndexOf(a);
    assert(ci >= 0);
    cols.push_back(ci);
  }
  struct CodeVecHash {
    size_t operator()(const std::vector<ValueId>& v) const {
      size_t h = 1469598103934665603ull;
      for (ValueId x : v) {
        h ^= static_cast<size_t>(x) + 0x9e3779b97f4a7c15ull;
        h *= 1099511628211ull;
      }
      return h;
    }
  };
  std::unordered_set<std::vector<ValueId>, CodeVecHash> seen;
  std::vector<ValueId> key(cols.size());
  for (size_t r = 0; r < data.num_rows(); ++r) {
    for (size_t i = 0; i < cols.size(); ++i) {
      key[i] = data.column(cols[i]).code(r);
    }
    if (!seen.insert(key).second) return false;
  }
  return true;
}

std::vector<std::string> RowValues(const RelationData& data, size_t row,
                                   const std::string& null_token) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(data.num_columns()));
  for (int c = 0; c < data.num_columns(); ++c) {
    out.emplace_back(data.column(c).ValueAt(row, null_token));
  }
  return out;
}

}  // namespace normalize
