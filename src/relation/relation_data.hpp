// Dictionary-encoded columnar storage for relational instances. Values are
// stored as per-column integer codes; NULL (⊥) is a distinguished code so
// that NULLs compare equal during FD profiling (Metanome's semantics) while
// remaining identifiable for Algorithm 4's "⊥ ∈ lhs" check.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/attribute_set.hpp"
#include "common/result.hpp"

namespace normalize {

/// Per-column dictionary code of a cell value.
using ValueId = int32_t;

/// The value dictionary of one attribute: interned strings with dense codes,
/// NULL as a distinguished code. Normally owned by a single Column; the
/// sharded ingest path (src/shard/) shares one dictionary across the shard
/// columns of the same attribute so value codes agree across shards.
/// Concurrency contract (phase discipline, not locks — see
/// common/thread_annotations.hpp): interning is single-writer (ingest is
/// serial); concurrent readers are safe once interning has stopped.
class ValueDictionary {
 public:
  /// Interns a value; returns its code. Equal strings get equal codes.
  ValueId Intern(std::string_view value);
  /// Interns the NULL sentinel (idempotent) and returns its code.
  ValueId InternNull();

  /// The code representing NULL, or -1 if NULL was never interned.
  ValueId null_code() const { return null_code_; }
  bool has_null() const { return null_code_ >= 0; }

  /// Number of distinct values (NULL counts as one value if present).
  size_t size() const { return values_.size(); }
  /// The string for a code (must not be the NULL code).
  const std::string& value(ValueId code) const {
    return values_[static_cast<size_t>(code)];
  }
  /// Length in characters of the longest non-NULL value.
  size_t max_value_length() const { return max_value_length_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, ValueId> index_;
  ValueId null_code_ = -1;
  size_t max_value_length_ = 0;
};

/// One dictionary-encoded column.
class Column {
 public:
  explicit Column(std::string name)
      : name_(std::move(name)), dict_(std::make_shared<ValueDictionary>()) {}
  /// Creates a column that interns into an existing (shared) dictionary.
  Column(std::string name, std::shared_ptr<ValueDictionary> dictionary)
      : name_(std::move(name)), dict_(std::move(dictionary)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return codes_.size(); }

  /// Appends a value; returns its code. Equal strings get equal codes (also
  /// across every column sharing this column's dictionary).
  ValueId Append(std::string_view value);
  /// Appends a NULL cell.
  ValueId AppendNull();
  /// Appends a cell by pre-interned code (must be a valid code of this
  /// column's dictionary, or its NULL code). The shared-dictionary fast
  /// path: no string lookup.
  void AppendCode(ValueId code) { codes_.push_back(code); }

  ValueId code(size_t row) const { return codes_[row]; }
  const std::vector<ValueId>& codes() const { return codes_; }

  /// True iff the cell at `row` is NULL.
  bool IsNull(size_t row) const { return codes_[row] == dict_->null_code(); }
  /// True iff the dictionary carries a NULL code, i.e. some cell of this
  /// column — or of a column sharing its dictionary — is NULL.
  bool has_null() const { return dict_->has_null(); }
  /// The code representing NULL, or -1 if the dictionary has no NULLs.
  ValueId null_code() const { return dict_->null_code(); }

  /// The string of the cell at `row`; NULL renders as `null_token`.
  std::string_view ValueAt(size_t row, std::string_view null_token = "") const;
  /// The dictionary string for a code (must not be the NULL code).
  const std::string& DictionaryValue(ValueId code) const {
    return dict_->value(code);
  }

  /// Number of distinct values in the dictionary (NULL counts as one value
  /// if present; for shared dictionaries this spans all sharing columns).
  size_t DistinctCount() const { return dict_->size(); }
  /// Length in characters of the longest non-NULL value.
  size_t MaxValueLength() const { return dict_->max_value_length(); }

  /// This column's dictionary, for sharing with sibling shard columns.
  const std::shared_ptr<ValueDictionary>& dictionary() const { return dict_; }

 private:
  std::string name_;
  std::vector<ValueId> codes_;
  std::shared_ptr<ValueDictionary> dict_;
};

/// A relational instance over a subset of the global attributes. Column i of
/// this relation stores the data of global attribute `attribute_ids()[i]`.
class RelationData {
 public:
  RelationData() = default;
  /// Creates an empty relation whose columns are the given global attributes.
  RelationData(std::string name, std::vector<AttributeId> attribute_ids,
               std::vector<std::string> attribute_names);

  /// Creates an empty relation with the same attributes, names, and universe
  /// as `like`, whose columns *share* `like`'s value dictionaries — value
  /// codes agree between the two relations. The row-range-shard constructor.
  static RelationData EmptyLike(const RelationData& like, std::string name);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// Capacity of the global attribute universe this relation's ids live in.
  /// Defaults to max(attribute_ids)+1; decomposition propagates the original
  /// relation's universe so AttributeSets stay interoperable.
  int universe_size() const { return universe_size_; }
  void set_universe_size(int n) { universe_size_ = n; }

  const std::vector<AttributeId>& attribute_ids() const {
    return attribute_ids_;
  }
  /// The set form of attribute_ids(), sized to universe_size().
  AttributeSet AttributesAsSet() const {
    return AttributesAsSet(universe_size_);
  }
  /// The set form of attribute_ids(), sized to `universe_capacity`.
  AttributeSet AttributesAsSet(int universe_capacity) const;

  /// Index of global attribute `a` within this relation, or -1.
  int ColumnIndexOf(AttributeId a) const;

  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  /// Column for a global attribute id; requires the attribute to be present.
  const Column& ColumnFor(AttributeId a) const;

  /// Appends a row; `cells[i]` may be `std::nullopt`-like via the
  /// `kNullMarker` sentinel string view semantics: use AppendRow with a
  /// parallel null mask instead when binary-safe NULLs are needed.
  void AppendRow(const std::vector<std::string>& cells);
  /// Appends a row with explicit NULL positions.
  void AppendRow(const std::vector<std::string>& cells,
                 const std::vector<bool>& is_null);
  /// Appends a row of pre-interned dictionary codes (codes[i] must be valid
  /// in column i's dictionary). Used to slice/concatenate relations that
  /// share dictionaries without re-interning strings.
  void AppendRowCodes(const std::vector<ValueId>& codes);

  /// Column names in relation order.
  std::vector<std::string> ColumnNames() const;

  /// Renders the first `max_rows` rows as an aligned text table.
  std::string ToString(size_t max_rows = 20) const;

  /// The number of non-NULL cells plus NULL cells, i.e. rows*columns. The
  /// paper reports dataset "size in values" after normalization.
  size_t TotalValueCount() const { return num_rows_ * columns_.size(); }

 private:
  std::string name_;
  std::vector<AttributeId> attribute_ids_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
  int universe_size_ = 0;
};

}  // namespace normalize
