// Dictionary-encoded columnar storage for relational instances. Values are
// stored as per-column integer codes; NULL (⊥) is a distinguished code so
// that NULLs compare equal during FD profiling (Metanome's semantics) while
// remaining identifiable for Algorithm 4's "⊥ ∈ lhs" check.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/attribute_set.hpp"
#include "common/result.hpp"

namespace normalize {

/// Per-column dictionary code of a cell value.
using ValueId = int32_t;

/// One dictionary-encoded column.
class Column {
 public:
  explicit Column(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return codes_.size(); }

  /// Appends a value; returns its code. Equal strings get equal codes.
  ValueId Append(std::string_view value);
  /// Appends a NULL cell.
  ValueId AppendNull();

  ValueId code(size_t row) const { return codes_[row]; }
  const std::vector<ValueId>& codes() const { return codes_; }

  /// True iff the cell at `row` is NULL.
  bool IsNull(size_t row) const { return codes_[row] == null_code_; }
  /// True iff any cell of this column is NULL.
  bool has_null() const { return null_code_ >= 0; }
  /// The code representing NULL, or -1 if the column has no NULLs.
  ValueId null_code() const { return null_code_; }

  /// The string of the cell at `row`; NULL renders as `null_token`.
  std::string_view ValueAt(size_t row, std::string_view null_token = "") const;
  /// The dictionary string for a code (must not be the NULL code).
  const std::string& DictionaryValue(ValueId code) const {
    return dictionary_[static_cast<size_t>(code)];
  }

  /// Number of distinct values (NULL counts as one value if present).
  size_t DistinctCount() const { return dictionary_.size(); }
  /// Length in characters of the longest non-NULL value.
  size_t MaxValueLength() const { return max_value_length_; }

 private:
  std::string name_;
  std::vector<ValueId> codes_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, ValueId> dictionary_index_;
  ValueId null_code_ = -1;
  size_t max_value_length_ = 0;
};

/// A relational instance over a subset of the global attributes. Column i of
/// this relation stores the data of global attribute `attribute_ids()[i]`.
class RelationData {
 public:
  RelationData() = default;
  /// Creates an empty relation whose columns are the given global attributes.
  RelationData(std::string name, std::vector<AttributeId> attribute_ids,
               std::vector<std::string> attribute_names);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// Capacity of the global attribute universe this relation's ids live in.
  /// Defaults to max(attribute_ids)+1; decomposition propagates the original
  /// relation's universe so AttributeSets stay interoperable.
  int universe_size() const { return universe_size_; }
  void set_universe_size(int n) { universe_size_ = n; }

  const std::vector<AttributeId>& attribute_ids() const { return attribute_ids_; }
  /// The set form of attribute_ids(), sized to universe_size().
  AttributeSet AttributesAsSet() const { return AttributesAsSet(universe_size_); }
  /// The set form of attribute_ids(), sized to `universe_capacity`.
  AttributeSet AttributesAsSet(int universe_capacity) const;

  /// Index of global attribute `a` within this relation, or -1.
  int ColumnIndexOf(AttributeId a) const;

  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  /// Column for a global attribute id; requires the attribute to be present.
  const Column& ColumnFor(AttributeId a) const;

  /// Appends a row; `cells[i]` may be `std::nullopt`-like via the
  /// `kNullMarker` sentinel string view semantics: use AppendRow with a
  /// parallel null mask instead when binary-safe NULLs are needed.
  void AppendRow(const std::vector<std::string>& cells);
  /// Appends a row with explicit NULL positions.
  void AppendRow(const std::vector<std::string>& cells,
                 const std::vector<bool>& is_null);

  /// Column names in relation order.
  std::vector<std::string> ColumnNames() const;

  /// Renders the first `max_rows` rows as an aligned text table.
  std::string ToString(size_t max_rows = 20) const;

  /// The number of non-NULL cells plus NULL cells, i.e. rows*columns. The
  /// paper reports dataset "size in values" after normalization.
  size_t TotalValueCount() const { return num_rows_ * columns_.size(); }

 private:
  std::string name_;
  std::vector<AttributeId> attribute_ids_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
  int universe_size_ = 0;
};

}  // namespace normalize
