#include "relation/relation_data.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/string_utils.hpp"

namespace normalize {

ValueId ValueDictionary::Intern(std::string_view value) {
  auto it = index_.find(std::string(value));
  if (it != index_.end()) return it->second;
  ValueId code = static_cast<ValueId>(values_.size());
  values_.emplace_back(value);
  index_.emplace(values_.back(), code);
  max_value_length_ = std::max(max_value_length_, value.size());
  return code;
}

ValueId ValueDictionary::InternNull() {
  if (null_code_ < 0) {
    // NULL occupies a dictionary slot so codes stay dense, but the slot's
    // string is never exposed through ValueAt.
    null_code_ = static_cast<ValueId>(values_.size());
    values_.emplace_back("\x00<NULL>");
  }
  return null_code_;
}

ValueId Column::Append(std::string_view value) {
  ValueId code = dict_->Intern(value);
  codes_.push_back(code);
  return code;
}

ValueId Column::AppendNull() {
  ValueId code = dict_->InternNull();
  codes_.push_back(code);
  return code;
}

std::string_view Column::ValueAt(size_t row,
                                 std::string_view null_token) const {
  ValueId code = codes_[row];
  if (code == dict_->null_code()) return null_token;
  return dict_->value(code);
}

RelationData::RelationData(std::string name,
                           std::vector<AttributeId> attribute_ids,
                           std::vector<std::string> attribute_names)
    : name_(std::move(name)), attribute_ids_(std::move(attribute_ids)) {
  assert(attribute_ids_.size() == attribute_names.size());
  columns_.reserve(attribute_names.size());
  for (auto& n : attribute_names) columns_.emplace_back(std::move(n));
  for (AttributeId a : attribute_ids_) {
    universe_size_ = std::max(universe_size_, a + 1);
  }
}

RelationData RelationData::EmptyLike(const RelationData& like,
                                     std::string name) {
  RelationData out;
  out.name_ = std::move(name);
  out.attribute_ids_ = like.attribute_ids_;
  out.universe_size_ = like.universe_size_;
  out.columns_.reserve(like.columns_.size());
  for (const Column& c : like.columns_) {
    out.columns_.emplace_back(c.name(), c.dictionary());
  }
  return out;
}

AttributeSet RelationData::AttributesAsSet(int universe_capacity) const {
  AttributeSet s(universe_capacity);
  for (AttributeId a : attribute_ids_) s.Set(a);
  return s;
}

int RelationData::ColumnIndexOf(AttributeId a) const {
  for (size_t i = 0; i < attribute_ids_.size(); ++i) {
    if (attribute_ids_[i] == a) return static_cast<int>(i);
  }
  return -1;
}

const Column& RelationData::ColumnFor(AttributeId a) const {
  int idx = ColumnIndexOf(a);
  assert(idx >= 0 && "attribute not present in relation");
  return columns_[static_cast<size_t>(idx)];
}

void RelationData::AppendRow(const std::vector<std::string>& cells) {
  assert(cells.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) columns_[i].Append(cells[i]);
  ++num_rows_;
}

void RelationData::AppendRow(const std::vector<std::string>& cells,
                             const std::vector<bool>& is_null) {
  assert(cells.size() == columns_.size() && is_null.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (is_null[i]) {
      columns_[i].AppendNull();
    } else {
      columns_[i].Append(cells[i]);
    }
  }
  ++num_rows_;
}

void RelationData::AppendRowCodes(const std::vector<ValueId>& codes) {
  assert(codes.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) columns_[i].AppendCode(codes[i]);
  ++num_rows_;
}

std::vector<std::string> RelationData::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& c : columns_) names.push_back(c.name());
  return names;
}

std::string RelationData::ToString(size_t max_rows) const {
  std::vector<size_t> widths(columns_.size());
  size_t rows = std::min(num_rows_, max_rows);
  for (size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].name().size();
    for (size_t r = 0; r < rows; ++r) {
      widths[i] = std::max(widths[i], columns_[i].ValueAt(r, "NULL").size());
    }
  }
  std::ostringstream os;
  os << name_ << " (" << num_rows_ << " rows)\n";
  for (size_t i = 0; i < columns_.size(); ++i) {
    os << (i ? " | " : "") << PadRight(columns_[i].name(), widths[i]);
  }
  os << "\n";
  for (size_t r = 0; r < rows; ++r) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      os << (i ? " | " : "")
         << PadRight(columns_[i].ValueAt(r, "NULL"), widths[i]);
    }
    os << "\n";
  }
  if (rows < num_rows_) os << "... (" << (num_rows_ - rows) << " more rows)\n";
  return os.str();
}

}  // namespace normalize
