#include "relation/schema.hpp"

#include <sstream>

namespace normalize {

std::string Schema::ToString() const {
  std::ostringstream os;
  for (size_t r = 0; r < relations_.size(); ++r) {
    const RelationSchema& rel = relations_[r];
    os << rel.name() << "(";
    bool first = true;
    for (AttributeId a : rel.attributes()) {
      if (!first) os << ", ";
      os << attribute_name(a);
      if (rel.has_primary_key() && rel.primary_key().Test(a)) os << "*";
      first = false;
    }
    os << ")\n";
    for (const ForeignKey& fk : rel.foreign_keys()) {
      os << "  FK: " << rel.name() << "."
         << fk.attributes.ToString(attribute_names_) << " -> "
         << (fk.target_relation >= 0 &&
                     fk.target_relation < static_cast<int>(relations_.size())
                 ? relations_[static_cast<size_t>(fk.target_relation)].name()
                 : "?")
         << "\n";
    }
  }
  return os.str();
}

}  // namespace normalize
