// DFD (Abedjan, Schulze, Naumann; CIKM 2014) — the second discovery
// algorithm the paper names for component (1). Per RHS attribute, DFD walks
// the lattice of LHS candidates: from a dependency it descends towards
// minimal dependencies, from a non-dependency it ascends towards maximal
// non-dependencies, pruning everything implied by the borders found so far.
// When a walk exhausts, new seeds are the minimal hitting sets of the
// complements of the maximal non-dependencies — the frontier of the
// unexplored region — which guarantees completeness.
#pragma once

#include "discovery/fd_discovery.hpp"

namespace normalize {

class Dfd : public FdDiscovery {
 public:
  explicit Dfd(FdDiscoveryOptions options = {}) : FdDiscovery(options) {}

  std::string name() const override { return "Dfd"; }
  Result<FdSet> Discover(const RelationData& data) override;
};

}  // namespace normalize
