#include "discovery/dfd.hpp"

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "discovery/discovery_util.hpp"
#include "fd/hitting_set.hpp"
#include "fd/set_trie.hpp"
#include "pli/pli.hpp"

namespace normalize {

namespace {

/// Lattice exploration state for one RHS attribute.
class RhsLattice {
 public:
  RhsLattice(const RelationData& data, const PliCache& cache,
             AttributeId rhs_col, int max_lhs, Rng* rng,
             const RunContext* ctx)
      : data_(&data),
        cache_(&cache),
        rhs_codes_(&data.column(rhs_col).codes()),
        rhs_col_(rhs_col),
        max_lhs_(max_lhs),
        rng_(rng),
        ctx_(ctx),
        num_cols_(data.num_columns()) {}

  /// Runs the walk-and-reseed loop; fills `out` with all minimal dependency
  /// LHSs (local column space). On interruption returns kCancelled /
  /// kDeadlineExceeded with `out` untouched — a half-walked lattice holds
  /// unverified candidates, so the caller must drop this RHS entirely.
  Status FindMinimalDependencies(std::vector<AttributeSet>* out) {
    // Initial seeds: the singletons.
    std::vector<AttributeSet> seeds;
    for (AttributeId c = 0; c < num_cols_; ++c) {
      if (c == rhs_col_) continue;
      AttributeSet s(num_cols_);
      s.Set(c);
      seeds.push_back(std::move(s));
    }
    while (!seeds.empty()) {
      for (const AttributeSet& seed : seeds) {
        if (!Unclassified(seed)) continue;
        NORMALIZE_RETURN_IF_ERROR(Walk(seed));
      }
      seeds = NextSeeds();
    }
    *out = minimal_deps_;
    return Status::OK();
  }

 private:
  enum class NodeClass { kDependency, kNonDependency };

  bool Unclassified(const AttributeSet& x) {
    if (min_dep_trie_.ContainsSubsetOf(x)) return false;
    if (max_nondep_trie_.ContainsSupersetOf(x)) return false;
    return !memo_.count(x);
  }

  NodeClass Classify(const AttributeSet& x) {
    if (min_dep_trie_.ContainsSubsetOf(x)) return NodeClass::kDependency;
    if (max_nondep_trie_.ContainsSupersetOf(x)) {
      return NodeClass::kNonDependency;
    }
    auto it = memo_.find(x);
    if (it != memo_.end()) {
      return it->second ? NodeClass::kDependency : NodeClass::kNonDependency;
    }
    bool valid = cache_->BuildPli(x.ToVector()).Refines(*rhs_codes_);
    memo_.emplace(x, valid);
    return valid ? NodeClass::kDependency : NodeClass::kNonDependency;
  }

  Status Walk(const AttributeSet& seed) {
    std::vector<AttributeSet> stack = {seed};
    while (!stack.empty()) {
      // One check per node visit: each visit costs at most one on-demand
      // PLI refinement, so cancellation latency is bounded by it.
      NORMALIZE_RETURN_IF_ERROR(CheckRunContext(ctx_));
      AttributeSet x = stack.back();
      if (Classify(x) == NodeClass::kDependency) {
        // Descend towards a minimal dependency.
        std::vector<AttributeSet> untested;
        bool all_children_nondep = true;
        for (AttributeId a : x) {
          AttributeSet child = x;
          child.Reset(a);
          if (child.Empty()) continue;  // {} -> A handled by the caller
          if (Unclassified(child)) {
            untested.push_back(std::move(child));
            all_children_nondep = false;
          } else if (Classify(child) == NodeClass::kDependency) {
            all_children_nondep = false;
          }
        }
        if (!untested.empty()) {
          stack.push_back(rng_->Pick(untested));
          continue;
        }
        if (all_children_nondep || x.Count() == 1) {
          // Every proper subset is inside some (non-dep) child: x minimal.
          if (!min_dep_trie_.ContainsSubsetOf(x)) {
            min_dep_trie_.Insert(x);
            minimal_deps_.push_back(x);
          }
        }
        stack.pop_back();
      } else {
        // Ascend towards a maximal non-dependency.
        std::vector<AttributeSet> untested;
        bool all_parents_dep = true;
        bool at_cap = x.Count() >= max_lhs_;
        if (!at_cap) {
          for (AttributeId b = 0; b < num_cols_; ++b) {
            if (b == rhs_col_ || x.Test(b)) continue;
            AttributeSet parent = x;
            parent.Set(b);
            if (Unclassified(parent)) {
              untested.push_back(std::move(parent));
              all_parents_dep = false;
            } else if (Classify(parent) == NodeClass::kNonDependency) {
              all_parents_dep = false;
            }
          }
        }
        if (!untested.empty()) {
          stack.push_back(rng_->Pick(untested));
          continue;
        }
        if (all_parents_dep || at_cap) {
          // Maximal within the (possibly capped) lattice.
          if (!max_nondep_trie_.ContainsSupersetOf(x)) {
            max_nondep_trie_.Insert(x);
            max_nondeps_.push_back(x);
          }
        }
        stack.pop_back();
      }
    }
    return Status::OK();
  }

  /// New seeds: minimal transversals of the complements of the maximal
  /// non-dependencies (a node escapes all non-dep downsets iff it is not a
  /// subset of any of them, i.e. hits every complement), filtered to the
  /// still-unclassified ones.
  std::vector<AttributeSet> NextSeeds() {
    AttributeSet universe = AttributeSet::Full(num_cols_);
    universe.Reset(rhs_col_);
    std::vector<AttributeSet> complements;
    complements.reserve(max_nondeps_.size());
    for (const AttributeSet& n : max_nondeps_) {
      complements.push_back(universe.Difference(n));
    }
    std::vector<AttributeSet> seeds;
    for (AttributeSet& h : MinimalHittingSets(complements, num_cols_)) {
      if (h.Count() <= max_lhs_ && Unclassified(h)) {
        seeds.push_back(std::move(h));
      }
    }
    return seeds;
  }

  const RelationData* data_;
  const PliCache* cache_;
  const std::vector<ValueId>* rhs_codes_;
  AttributeId rhs_col_;
  int max_lhs_;
  Rng* rng_;
  const RunContext* ctx_;
  int num_cols_;

  std::unordered_map<AttributeSet, bool> memo_;
  SetTrie min_dep_trie_;
  SetTrie max_nondep_trie_;
  std::vector<AttributeSet> minimal_deps_;
  std::vector<AttributeSet> max_nondeps_;
};

}  // namespace

Result<FdSet> Dfd::Discover(const RelationData& data) {
  completion_ = Status::OK();
  phase_metrics_.Clear();
  ScopedDiscoveryObservation observe(this, "dfd");
  int n = data.num_columns();
  size_t rows = data.num_rows();
  std::vector<Fd> output;  // unary, local space
  if (n == 0) return RemapToGlobal(output, data);

  // threads == 1 keeps everything on the calling thread; an externally owned
  // pool is preferred over spinning up a per-call one (same contract as
  // HyFd).
  int threads = ResolveThreadCount(options_.threads);
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool = options_.pool;
    if (pool == nullptr) {
      pool_storage.emplace(threads);
      pool = &*pool_storage;
      if (options_.context != nullptr) {
        pool_storage->SetCancellation(options_.context->cancel);
      }
    }
  }

  Stopwatch watch;
  PliCache cache(data, pool);
  phase_metrics_.Record("pli_build", watch.ElapsedSeconds(),
                        static_cast<uint64_t>(n));
  int max_lhs = options_.max_lhs_size > 0
                    ? std::min(options_.max_lhs_size, n - 1)
                    : n - 1;

  // One lattice per RHS attribute, walked independently on the pool: the
  // walks only read the immutable data and the (construction-frozen) PLI
  // cache, and each writes a disjoint result slot. Every RHS gets its own
  // deterministic Rng stream, so a lattice's walk — and therefore its
  // classification work — is identical at every thread count; the discovered
  // minimal dependencies are exact regardless (DFD is complete), so the FD
  // set is bit-identical to the serial path either way.
  std::vector<char> trivial(static_cast<size_t>(n), 0);
  for (AttributeId a = 0; a < n; ++a) {
    // {} -> A holds iff the column is constant (or the relation has < 2
    // rows); then no larger LHS is minimal for A.
    if (rows < 2 || data.column(a).DistinctCount() <= 1) {
      trivial[static_cast<size_t>(a)] = 1;
    }
  }
  std::vector<std::vector<AttributeSet>> per_rhs(static_cast<size_t>(n));
  std::vector<Status> statuses(static_cast<size_t>(n), Status::OK());
  const RunContext* ctx = options_.context;
  watch.Restart();
  Status dispatch = ParallelFor(pool, static_cast<size_t>(n), [&,
                                                               ctx](size_t s) {
    AttributeId a = static_cast<AttributeId>(s);
    if (trivial[s] || n == 1) return;
    if (ctx != nullptr && ctx->SoftInterrupted()) {
      statuses[s] = Status::Cancelled("lattice walk not started");
      return;
    }
    Rng rng(4242 + 0x9e3779b9ull * static_cast<uint64_t>(a));
    RhsLattice lattice(data, cache, a, max_lhs, &rng, ctx);
    statuses[s] = lattice.FindMinimalDependencies(&per_rhs[s]);
  });
  phase_metrics_.Record("lattice_walks", watch.ElapsedSeconds(),
                        static_cast<uint64_t>(n));

  // Sound partial result: a fully walked lattice's dependencies are exactly
  // the minimal FDs of its RHS, so completed RHS attributes are emitted and
  // interrupted ones contribute nothing.
  Status interrupted = CheckContext();
  if (interrupted.ok() && !dispatch.ok()) interrupted = dispatch;
  for (AttributeId a = 0; a < n; ++a) {
    size_t s = static_cast<size_t>(a);
    if (trivial[s]) {
      AttributeSet rhs(n);
      rhs.Set(a);
      output.emplace_back(AttributeSet(n), rhs);
      continue;
    }
    if (!statuses[s].ok()) {
      if (!IsInterruption(statuses[s].code())) return statuses[s];
      if (interrupted.ok()) interrupted = statuses[s];
      continue;
    }
    AttributeSet rhs(n);
    rhs.Set(a);
    for (const AttributeSet& lhs : per_rhs[s]) {
      output.emplace_back(lhs, rhs);
    }
  }
  if (!interrupted.ok()) completion_ = std::move(interrupted);
  return RemapToGlobal(output, data);
}

}  // namespace normalize
