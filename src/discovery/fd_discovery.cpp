#include "discovery/fd_discovery.hpp"

#include "common/string_utils.hpp"
#include "discovery/dfd.hpp"
#include "discovery/fdep.hpp"
#include "discovery/hyfd.hpp"
#include "discovery/naive_fd.hpp"
#include "discovery/tane.hpp"

namespace normalize {

std::unique_ptr<FdDiscovery> MakeFdDiscovery(const std::string& name,
                                             FdDiscoveryOptions options) {
  std::string key = ToLower(name);
  if (key == "naive") return std::make_unique<NaiveFdDiscovery>(options);
  if (key == "tane") return std::make_unique<Tane>(options);
  if (key == "dfd") return std::make_unique<Dfd>(options);
  if (key == "fdep") return std::make_unique<Fdep>(options);
  if (key == "hyfd") return std::make_unique<HyFd>(options);
  return nullptr;
}

}  // namespace normalize
