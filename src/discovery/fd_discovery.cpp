#include "discovery/fd_discovery.hpp"

#include "common/string_utils.hpp"
#include "discovery/dfd.hpp"
#include "discovery/fdep.hpp"
#include "discovery/hyfd.hpp"
#include "discovery/naive_fd.hpp"
#include "discovery/tane.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace normalize {

ScopedDiscoveryObservation::ScopedDiscoveryObservation(
    const FdDiscovery* algo, std::string_view component)
    : algo_(algo), component_(component) {
  const RunContext* context = algo_->options().context;
  if (context != nullptr && context->tracer != nullptr) {
    span_ = std::make_unique<ScopedSpan>(
        context->tracer, "discover/" + component_, context->span);
  }
}

ScopedDiscoveryObservation::~ScopedDiscoveryObservation() {
  MetricsRegistry* registry = algo_->options().metrics;
  if (registry != nullptr) {
    RecordPhaseMetrics(registry, component_, algo_->phase_metrics());
    std::string labels = "component=" + component_;
    registry->GetCounter("discovery_runs_total", labels)->Increment();
    if (!algo_->completion_status().ok()) {
      registry->GetCounter("discovery_interrupted_total", labels)->Increment();
    }
  }
  span_.reset();  // close the span after the phase fold, for tidy nesting
}

std::unique_ptr<FdDiscovery> MakeFdDiscovery(const std::string& name,
                                             FdDiscoveryOptions options) {
  std::string key = ToLower(name);
  if (key == "naive") return std::make_unique<NaiveFdDiscovery>(options);
  if (key == "tane") return std::make_unique<Tane>(options);
  if (key == "dfd") return std::make_unique<Dfd>(options);
  if (key == "fdep") return std::make_unique<Fdep>(options);
  if (key == "hyfd") return std::make_unique<HyFd>(options);
  return nullptr;
}

}  // namespace normalize
