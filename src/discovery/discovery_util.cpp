#include "discovery/discovery_util.hpp"

#include <unordered_map>

namespace normalize {

namespace {

struct CodeVecHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    size_t h = 1469598103934665603ull;
    for (ValueId x : v) {
      h ^= static_cast<size_t>(x) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

std::optional<std::pair<RowId, RowId>> ValidateFdCandidate(
    const RelationData& data, const PliCache& cache,
    const std::vector<AttributeId>& lhs_attrs, AttributeId rhs_attr) {
  size_t rows = data.num_rows();
  const std::vector<ValueId>& rhs_codes = data.column(rhs_attr).codes();
  if (lhs_attrs.empty()) {
    // {} -> A holds iff column A is constant.
    for (size_t r = 1; r < rows; ++r) {
      if (rhs_codes[r] != rhs_codes[0]) {
        return std::make_pair(static_cast<RowId>(0), static_cast<RowId>(r));
      }
    }
    return std::nullopt;
  }
  if (lhs_attrs.size() == 1) {
    return cache.ColumnPli(lhs_attrs[0]).FindViolation(rhs_codes);
  }
  // Pivot on the most selective LHS column; within its clusters, group rows
  // by the remaining LHS codes and compare RHS codes.
  int pivot = lhs_attrs[0];
  for (AttributeId b : lhs_attrs) {
    if (cache.ColumnPli(b).ClusteredRowCount() <
        cache.ColumnPli(pivot).ClusteredRowCount()) {
      pivot = b;
    }
  }
  std::vector<AttributeId> others;
  for (AttributeId b : lhs_attrs) {
    if (b != pivot) others.push_back(b);
  }
  std::unordered_map<std::vector<ValueId>, RowId, CodeVecHash> reps;
  std::vector<ValueId> key(others.size());
  for (const auto& cluster : cache.ColumnPli(pivot).clusters()) {
    reps.clear();
    for (RowId r : cluster) {
      for (size_t k = 0; k < others.size(); ++k) {
        key[k] = data.column(others[k]).code(r);
      }
      auto [it, inserted] = reps.emplace(key, r);
      if (!inserted && rhs_codes[it->second] != rhs_codes[r]) {
        return std::make_pair(it->second, r);
      }
    }
  }
  return std::nullopt;
}

void MinimizeCover(FdTree* tree) {
  for (const Fd& fd : tree->CollectAllFds()) {
    for (AttributeId a : fd.rhs) {
      auto gens = tree->GetFdAndGeneralizations(fd.lhs, a);
      for (const AttributeSet& gen : gens) {
        if (gen != fd.lhs) {
          // A proper generalization exists; this FD is not minimal.
          tree->RemoveFd(fd.lhs, a);
          break;
        }
      }
    }
  }
}

FdSet RemapToGlobal(const std::vector<Fd>& local_fds,
                    const RelationData& data) {
  int capacity = data.universe_size();
  const std::vector<AttributeId>& ids = data.attribute_ids();
  FdSet out;
  for (const Fd& fd : local_fds) {
    AttributeSet lhs(capacity), rhs(capacity);
    for (AttributeId local : fd.lhs) lhs.Set(ids[static_cast<size_t>(local)]);
    for (AttributeId local : fd.rhs) rhs.Set(ids[static_cast<size_t>(local)]);
    out.Add(Fd(std::move(lhs), std::move(rhs)));
  }
  out.Aggregate();
  return out;
}

AttributeSet AgreeSetOf(const RelationData& data, RowId r1, RowId r2) {
  int n = data.num_columns();
  AttributeSet s(n);
  for (int c = 0; c < n; ++c) {
    if (data.column(c).code(r1) == data.column(c).code(r2)) s.Set(c);
  }
  return s;
}

AttributeSet AgreeSetOf(const RelationData& a, RowId r1, const RelationData& b,
                        RowId r2) {
  int n = a.num_columns();
  AttributeSet s(n);
  for (int c = 0; c < n; ++c) {
    if (a.column(c).code(r1) == b.column(c).code(r2)) s.Set(c);
  }
  return s;
}

FdTree BuildLocalFdTree(const FdSet& fds, const RelationData& data) {
  FdTree tree(data.num_columns());
  for (const Fd& fd : fds) {
    AttributeSet lhs(data.num_columns());
    for (AttributeId global : fd.lhs) {
      lhs.Set(data.ColumnIndexOf(global));
    }
    for (AttributeId global : fd.rhs) {
      tree.AddFd(lhs, data.ColumnIndexOf(global));
    }
  }
  return tree;
}

}  // namespace normalize
