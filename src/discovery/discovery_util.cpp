#include "discovery/discovery_util.hpp"

namespace normalize {

void MinimizeCover(FdTree* tree) {
  for (const Fd& fd : tree->CollectAllFds()) {
    for (AttributeId a : fd.rhs) {
      auto gens = tree->GetFdAndGeneralizations(fd.lhs, a);
      for (const AttributeSet& gen : gens) {
        if (gen != fd.lhs) {
          // A proper generalization exists; this FD is not minimal.
          tree->RemoveFd(fd.lhs, a);
          break;
        }
      }
    }
  }
}

FdSet RemapToGlobal(const std::vector<Fd>& local_fds,
                    const RelationData& data) {
  int capacity = data.universe_size();
  const std::vector<AttributeId>& ids = data.attribute_ids();
  FdSet out;
  for (const Fd& fd : local_fds) {
    AttributeSet lhs(capacity), rhs(capacity);
    for (AttributeId local : fd.lhs) lhs.Set(ids[static_cast<size_t>(local)]);
    for (AttributeId local : fd.rhs) rhs.Set(ids[static_cast<size_t>(local)]);
    out.Add(Fd(std::move(lhs), std::move(rhs)));
  }
  out.Aggregate();
  return out;
}

AttributeSet AgreeSetOf(const RelationData& data, RowId r1, RowId r2) {
  int n = data.num_columns();
  AttributeSet s(n);
  for (int c = 0; c < n; ++c) {
    if (data.column(c).code(r1) == data.column(c).code(r2)) s.Set(c);
  }
  return s;
}

}  // namespace normalize
