#include "discovery/ucc.hpp"

#include <algorithm>
#include <unordered_map>

#include "fd/set_trie.hpp"
#include "pli/pli.hpp"

namespace normalize {

namespace {

struct Node {
  AttributeSet x;  // local column indices
  Pli pli;
};

}  // namespace

std::vector<AttributeSet> DiscoverMinimalUccs(const RelationData& data,
                                              UccDiscoveryOptions options) {
  int n = data.num_columns();
  std::vector<AttributeSet> result_local;
  if (n == 0) return {};

  // Candidate columns (optionally excluding nullable ones).
  std::vector<int> pool;
  for (int c = 0; c < n; ++c) {
    if (options.exclude_nullable_columns && data.column(c).has_null()) continue;
    pool.push_back(c);
  }

  PliCache cache(data);
  SetTrie found;  // minimal uniques so far (local space)

  // Level 1.
  std::vector<Node> level;
  for (int c : pool) {
    Node node;
    node.x = AttributeSet(n);
    node.x.Set(c);
    node.pli = cache.ColumnPli(c);
    if (node.pli.IsUnique()) {
      found.Insert(node.x);
      result_local.push_back(node.x);
    } else {
      level.push_back(std::move(node));
    }
  }

  int max_size = options.max_size > 0 ? options.max_size
                                      : static_cast<int>(pool.size());
  for (int l = 1; l < max_size && !level.empty(); ++l) {
    // Prefix join of non-unique nodes; prune supersets of found uniques.
    std::sort(level.begin(), level.end(), [](const Node& a, const Node& b) {
      return a.x.ToVector() < b.x.ToVector();
    });
    std::unordered_map<AttributeSet, const Node*> index;
    for (const Node& e : level) index.emplace(e.x, &e);

    std::vector<Node> next;
    for (size_t i = 0; i < level.size(); ++i) {
      std::vector<AttributeId> xi = level[i].x.ToVector();
      for (size_t j = i + 1; j < level.size(); ++j) {
        std::vector<AttributeId> xj = level[j].x.ToVector();
        if (!std::equal(xi.begin(), xi.end() - 1, xj.begin(), xj.end() - 1)) {
          break;
        }
        AttributeSet z = level[i].x.Union(level[j].x);
        if (found.ContainsSubsetOf(z)) continue;  // superset of a unique
        // Apriori: all l-subsets must be non-unique level members.
        bool all_present = true;
        for (AttributeId a : z) {
          AttributeSet sub = z;
          sub.Reset(a);
          if (!index.count(sub)) {
            all_present = false;
            break;
          }
        }
        if (!all_present) continue;
        Node node;
        node.x = z;
        node.pli = level[i].pli.Intersect(level[j].pli.AsProbeVector());
        if (node.pli.IsUnique()) {
          found.Insert(node.x);
          result_local.push_back(node.x);
        } else {
          next.push_back(std::move(node));
        }
      }
    }
    level = std::move(next);
  }

  // Remap to global attribute ids and order by (size, lex).
  int capacity = data.universe_size();
  std::vector<AttributeSet> result;
  result.reserve(result_local.size());
  for (const AttributeSet& local : result_local) {
    AttributeSet global(capacity);
    for (AttributeId c : local) {
      global.Set(data.attribute_ids()[static_cast<size_t>(c)]);
    }
    result.push_back(std::move(global));
  }
  std::sort(result.begin(), result.end(),
            [](const AttributeSet& a, const AttributeSet& b) {
              if (a.Count() != b.Count()) return a.Count() < b.Count();
              return a.ToVector() < b.ToVector();
            });
  return result;
}

}  // namespace normalize
