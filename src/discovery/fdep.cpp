#include "discovery/fdep.hpp"

#include <unordered_set>

#include "discovery/discovery_util.hpp"
#include "discovery/induction.hpp"
#include "fd/fd_tree.hpp"
#include "pli/pli.hpp"

namespace normalize {

Result<FdSet> Fdep::Discover(const RelationData& data) {
  completion_ = Status::OK();
  int n = data.num_columns();
  size_t rows = data.num_rows();

  // FDEP has no sound intermediate state: the positive-cover tree is an
  // over-approximation until every agree set has been applied, so an
  // interrupted run returns the empty (trivially sound) partial cover.
  auto interrupted_result = [&](Status why) -> Result<FdSet> {
    completion_ = std::move(why);
    return RemapToGlobal({}, data);
  };

  // Negative cover: the distinct agree sets over all record pairs. Instead
  // of all O(rows^2) pairs we only compare pairs that agree on at least one
  // attribute — pairs from single-column PLI clusters — because a pair with
  // an empty agree set only witnesses non-FDs with empty LHS evidence, which
  // the empty agree set itself covers; we add it once if any pair of rows
  // exists at all.
  std::unordered_set<AttributeSet> agree_sets;
  if (rows >= 2) {
    PliCache cache(data);
    std::vector<const Column*> cols;
    cols.reserve(static_cast<size_t>(n));
    for (int c = 0; c < n; ++c) cols.push_back(&data.column(c));

    auto agree_set_of = [&](RowId r1, RowId r2) {
      AttributeSet s(n);
      for (int c = 0; c < n; ++c) {
        if (cols[static_cast<size_t>(c)]->code(r1) ==
            cols[static_cast<size_t>(c)]->code(r2)) {
          s.Set(c);
        }
      }
      return s;
    };

    // Pairs agreeing on >= 1 attribute are exactly the pairs inside some
    // single-column PLI cluster. Pairs agreeing nowhere contribute the empty
    // agree set; such pairs can exist only if no column is constant (a
    // constant column makes every pair agree somewhere), and when no column
    // is constant the empty agree set is sound evidence regardless (every
    // {} -> A is then genuinely false), so we insert it exactly in that case.
    bool any_constant_column = false;
    for (int c = 0; c < n; ++c) {
      if (data.column(c).DistinctCount() <= 1) any_constant_column = true;
    }
    if (!any_constant_column) agree_sets.insert(AttributeSet(n));
    for (int c = 0; c < n; ++c) {
      for (const auto& cluster : cache.ColumnPli(c).clusters()) {
        Status check = CheckContext();
        if (!check.ok()) return interrupted_result(std::move(check));
        for (size_t i = 0; i < cluster.size(); ++i) {
          for (size_t j = i + 1; j < cluster.size(); ++j) {
            AttributeSet ag = agree_set_of(cluster[i], cluster[j]);
            // Only record the agree set at its first (smallest) agreeing
            // column to avoid rediscovering it in every cluster it spans.
            if (ag.First() == c) agree_sets.insert(std::move(ag));
          }
        }
      }
    }
  }

  // Positive cover: start from {} -> A for every attribute and specialize
  // with each piece of negative evidence.
  FdTree tree(n);
  AttributeSet empty(n);
  for (AttributeId a = 0; a < n; ++a) tree.AddFd(empty, a);
  size_t inductions = 0;
  for (const AttributeSet& ag : agree_sets) {
    if ((inductions++ & 255) == 0) {
      Status check = CheckContext();
      if (!check.ok()) return interrupted_result(std::move(check));
    }
    InduceFromAgreeSet(&tree, ag, options_.max_lhs_size);
  }

  MinimizeCover(&tree);
  return RemapToGlobal(tree.CollectAllFds(), data);
}

}  // namespace normalize
