#include "discovery/fdep.hpp"

#include <algorithm>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "discovery/discovery_util.hpp"
#include "discovery/induction.hpp"
#include "fd/fd_tree.hpp"
#include "pli/pli.hpp"

namespace normalize {

Result<FdSet> Fdep::Discover(const RelationData& data) {
  completion_ = Status::OK();
  phase_metrics_.Clear();
  ScopedDiscoveryObservation observe(this, "fdep");
  int n = data.num_columns();
  size_t rows = data.num_rows();
  if (n == 0) return FdSet{};

  // threads == 1 keeps everything on the calling thread; an externally owned
  // pool is preferred over spinning up a per-call one (same contract as
  // HyFd).
  int threads = ResolveThreadCount(options_.threads);
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool = options_.pool;
    if (pool == nullptr) {
      pool_storage.emplace(threads);
      pool = &*pool_storage;
      if (options_.context != nullptr) {
        pool_storage->SetCancellation(options_.context->cancel);
      }
    }
  }
  const RunContext* ctx = options_.context;

  // The negative cover is an over-approximation until every record pair has
  // been compared, so an interrupted collection returns the empty (trivially
  // sound) partial cover.
  auto interrupted_result = [&](Status why) -> Result<FdSet> {
    completion_ = std::move(why);
    return RemapToGlobal({}, data);
  };

  // --- Negative cover: the distinct agree sets over all record pairs ---
  // Instead of all O(rows^2) pairs we only compare pairs that agree on at
  // least one attribute — pairs from single-column PLI clusters — because a
  // pair with an empty agree set only witnesses non-FDs with empty LHS
  // evidence, which the empty agree set itself covers; we add it once if any
  // pair of rows exists at all.
  //
  // The per-column cluster scans are independent, so they run on the pool
  // (each agree set is recorded only at its first agreeing column, which
  // makes the per-column outputs disjoint up to duplicates); the coordinator
  // merges them in column order, which reproduces the serial insertion
  // sequence exactly.
  std::unordered_set<AttributeSet> agree_sets;
  Stopwatch watch;
  if (rows >= 2) {
    PliCache cache(data, pool);
    std::vector<const Column*> cols;
    cols.reserve(static_cast<size_t>(n));
    for (int c = 0; c < n; ++c) cols.push_back(&data.column(c));

    auto agree_set_of = [&](RowId r1, RowId r2) {
      AttributeSet s(n);
      for (int c = 0; c < n; ++c) {
        if (cols[static_cast<size_t>(c)]->code(r1) ==
            cols[static_cast<size_t>(c)]->code(r2)) {
          s.Set(c);
        }
      }
      return s;
    };

    // Pairs agreeing on >= 1 attribute are exactly the pairs inside some
    // single-column PLI cluster. Pairs agreeing nowhere contribute the empty
    // agree set; such pairs can exist only if no column is constant (a
    // constant column makes every pair agree somewhere), and when no column
    // is constant the empty agree set is sound evidence regardless (every
    // {} -> A is then genuinely false), so we insert it exactly in that case.
    bool any_constant_column = false;
    for (int c = 0; c < n; ++c) {
      if (data.column(c).DistinctCount() <= 1) any_constant_column = true;
    }
    if (!any_constant_column) agree_sets.insert(AttributeSet(n));
    std::vector<std::vector<AttributeSet>> local(static_cast<size_t>(n));
    std::vector<Status> statuses(static_cast<size_t>(n), Status::OK());
    Status dispatch =
        ParallelFor(pool, static_cast<size_t>(n), [&, ctx](size_t c) {
          std::unordered_set<AttributeSet> column_seen;
          for (const auto& cluster :
               cache.ColumnPli(static_cast<int>(c)).clusters()) {
            Status check = CheckRunContext(ctx);
            if (!check.ok()) {
              statuses[c] = std::move(check);
              return;
            }
            for (size_t i = 0; i < cluster.size(); ++i) {
              for (size_t j = i + 1; j < cluster.size(); ++j) {
                AttributeSet ag = agree_set_of(cluster[i], cluster[j]);
                // Only record the agree set at its first (smallest) agreeing
                // column to avoid rediscovering it in every cluster it spans.
                if (ag.First() == static_cast<int>(c) &&
                    column_seen.insert(ag).second) {
                  local[c].push_back(std::move(ag));
                }
              }
            }
          }
        });
    Status interrupted = CheckContext();
    if (interrupted.ok() && !dispatch.ok()) interrupted = dispatch;
    for (Status& st : statuses) {
      if (!interrupted.ok()) break;
      if (!st.ok()) interrupted = std::move(st);
    }
    if (!interrupted.ok()) return interrupted_result(std::move(interrupted));
    for (size_t c = 0; c < local.size(); ++c) {
      for (AttributeSet& ag : local[c]) {
        agree_sets.insert(std::move(ag));
      }
    }
  }
  phase_metrics_.Record("negative_cover", watch.ElapsedSeconds(),
                        agree_sets.size());

  // --- Inversion: negative cover -> positive cover ---
  // The positive cover per RHS attribute is independent of every other RHS:
  // starting from {} -> A, each agree set not containing A specializes the
  // tree for A alone. So the inversion fans out one cover tree per RHS on
  // the pool — the same total specialization work as the serial single-tree
  // loop, partitioned exactly along the axis InduceFromAgreeSet iterates.
  // The evidence list is canonically sorted, so every tree sees the same
  // deterministic sequence at every thread count.
  watch.Restart();
  std::vector<AttributeSet> evidence(agree_sets.begin(), agree_sets.end());
  std::sort(evidence.begin(), evidence.end());
  std::vector<FdTree> trees;
  trees.reserve(static_cast<size_t>(n));
  for (int a = 0; a < n; ++a) trees.emplace_back(n);
  std::vector<Status> statuses(static_cast<size_t>(n), Status::OK());
  Status dispatch =
      ParallelFor(pool, static_cast<size_t>(n), [&, ctx](size_t s) {
        AttributeId a = static_cast<AttributeId>(s);
        FdTree& tree = trees[s];
        tree.AddFd(AttributeSet(n), a);
        size_t inductions = 0;
        for (const AttributeSet& ag : evidence) {
          if ((inductions++ & 255) == 0) {
            Status check = CheckRunContext(ctx);
            if (!check.ok()) {
              statuses[s] = std::move(check);
              return;
            }
          }
          if (!ag.Test(a)) {
            SpecializeCover(&tree, ag, a, options_.max_lhs_size);
          }
        }
        MinimizeCover(&tree);
      });

  // A fully inverted RHS tree holds exactly the minimal FDs of that RHS
  // (its negative cover is complete), so completed RHS attributes form a
  // sound partial cover; interrupted ones contribute nothing.
  Status interrupted = CheckContext();
  if (interrupted.ok() && !dispatch.ok()) interrupted = dispatch;
  std::vector<Fd> output;
  for (int a = 0; a < n; ++a) {
    size_t s = static_cast<size_t>(a);
    if (!statuses[s].ok()) {
      if (!IsInterruption(statuses[s].code())) return statuses[s];
      if (interrupted.ok()) interrupted = statuses[s];
      continue;
    }
    for (Fd& fd : trees[s].CollectAllFds()) {
      output.push_back(std::move(fd));
    }
  }
  phase_metrics_.Record("inversion", watch.ElapsedSeconds(), evidence.size());
  if (!interrupted.ok()) completion_ = std::move(interrupted);
  return RemapToGlobal(output, data);
}

}  // namespace normalize
