// Brute-force minimal-FD discovery: level-wise subset enumeration with a
// row-hashing validity oracle. Exponential in the number of attributes — the
// reference oracle for cross-validating Tane/Fdep/HyFd in tests, usable up
// to ~15 attributes.
#pragma once

#include "discovery/fd_discovery.hpp"

namespace normalize {

class NaiveFdDiscovery : public FdDiscovery {
 public:
  explicit NaiveFdDiscovery(FdDiscoveryOptions options = {})
      : FdDiscovery(options) {}

  std::string name() const override { return "Naive"; }
  Result<FdSet> Discover(const RelationData& data) override;
};

}  // namespace normalize
