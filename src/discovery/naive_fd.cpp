#include "discovery/naive_fd.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "fd/set_trie.hpp"
#include "relation/operations.hpp"

namespace normalize {

namespace {

// Invokes fn for every k-subset of pool (as an AttributeSet of `capacity`).
void ForEachSubsetOfSize(const std::vector<AttributeId>& pool, int k,
                         int capacity,
                         const std::function<void(const AttributeSet&)>& fn) {
  std::vector<int> idx(static_cast<size_t>(k));
  AttributeSet current(capacity);
  std::function<void(int, int)> rec = [&](int start, int depth) {
    if (depth == k) {
      fn(current);
      return;
    }
    for (int i = start; i <= static_cast<int>(pool.size()) - (k - depth); ++i) {
      current.Set(pool[static_cast<size_t>(i)]);
      rec(i + 1, depth + 1);
      current.Reset(pool[static_cast<size_t>(i)]);
    }
  };
  rec(0, 0);
}

}  // namespace

Result<FdSet> NaiveFdDiscovery::Discover(const RelationData& data) {
  ScopedDiscoveryObservation observe(this, "naive");
  int n = data.num_columns();
  if (n > 24) {
    return Status::InvalidArgument(
        "NaiveFdDiscovery is exponential; refuse to run on " +
        std::to_string(n) + " attributes (max 24)");
  }
  // Columns are identified by their global attribute ids so that the result
  // composes with schema-level set algebra.
  int capacity = data.universe_size();

  FdSet result;
  completion_ = Status::OK();
  // Every added FD is individually verified against the data and minimal by
  // the level-order scan (any smaller valid LHS was found at a lower level
  // and inserted into the trie first), so the result so far is always a
  // sound partial cover when the run is interrupted.
  Status interrupted;
  size_t probes = 0;
  int max_lhs = options_.max_lhs_size > 0 ? options_.max_lhs_size : n - 1;
  for (int rhs_col = 0; rhs_col < n; ++rhs_col) {
    AttributeId rhs_attr = data.attribute_ids()[static_cast<size_t>(rhs_col)];
    std::vector<AttributeId> pool;
    for (int c = 0; c < n; ++c) {
      if (c != rhs_col) {
        pool.push_back(data.attribute_ids()[static_cast<size_t>(c)]);
      }
    }
    SetTrie found;  // minimal LHSs discovered for this RHS
    for (int level = 0;
         level <= std::min<int>(max_lhs, static_cast<int>(pool.size()));
         ++level) {
      ForEachSubsetOfSize(pool, level, capacity, [&](const AttributeSet& lhs) {
        if (!interrupted.ok()) return;  // drain the remaining enumeration
        if ((probes++ & 255) == 0) {
          interrupted = CheckContext();
          if (!interrupted.ok()) return;
        }
        if (found.ContainsSubsetOf(lhs)) return;  // not minimal
        if (FdHolds(data, lhs, rhs_attr)) {
          found.Insert(lhs);
          AttributeSet rhs(capacity);
          rhs.Set(rhs_attr);
          result.Add(Fd(lhs, rhs));
        }
      });
      if (!interrupted.ok()) break;
    }
    if (!interrupted.ok()) break;
  }
  completion_ = interrupted;
  result.Aggregate();
  return result;
}

}  // namespace normalize
