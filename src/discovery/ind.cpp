#include "discovery/ind.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace normalize {

std::string Ind::ToString(const std::vector<RelationData>& relations) const {
  auto col_name = [&](int rel, int col) {
    return relations[static_cast<size_t>(rel)].name() + "." +
           relations[static_cast<size_t>(rel)].column(col).name();
  };
  return col_name(dependent_relation, dependent_column) + " <= " +
         col_name(referenced_relation, referenced_column);
}

std::vector<Ind> DiscoverUnaryInds(const std::vector<RelationData>& relations,
                                   IndDiscoveryOptions options) {
  // Distinct non-NULL value sets per column, plus a global inverted index
  // value -> columns containing it. Column ids are (relation, column) pairs
  // flattened into one running index.
  struct ColumnRef {
    int relation;
    int column;
  };
  std::vector<ColumnRef> columns;
  std::vector<std::unordered_set<std::string>> value_sets;
  for (size_t r = 0; r < relations.size(); ++r) {
    const RelationData& rel = relations[r];
    for (int c = 0; c < rel.num_columns(); ++c) {
      columns.push_back({static_cast<int>(r), c});
      std::unordered_set<std::string> values;
      const Column& col = rel.column(c);
      for (size_t row = 0; row < rel.num_rows(); ++row) {
        if (!col.IsNull(row)) values.emplace(col.ValueAt(row));
      }
      value_sets.push_back(std::move(values));
    }
  }

  // Candidate pruning with the inverted index: dep <= ref is possible only
  // if ref contains every dep value; start from the candidate set of columns
  // containing the first value and intersect on.
  std::unordered_map<std::string, std::vector<int>> inverted;
  for (size_t i = 0; i < columns.size(); ++i) {
    for (const std::string& v : value_sets[i]) {
      inverted[v].push_back(static_cast<int>(i));
    }
  }

  std::vector<Ind> result;
  for (size_t dep = 0; dep < columns.size(); ++dep) {
    if (value_sets[dep].empty() && !options.include_empty_columns) continue;
    std::vector<int> candidates;
    bool first = true;
    for (const std::string& v : value_sets[dep]) {
      const std::vector<int>& holders = inverted[v];
      if (first) {
        candidates = holders;
        first = false;
      } else {
        std::vector<int> kept;
        std::set_intersection(candidates.begin(), candidates.end(),
                              holders.begin(), holders.end(),
                              std::back_inserter(kept));
        candidates = std::move(kept);
      }
      if (candidates.empty()) break;
    }
    if (first) {
      // Empty dependent column: included in every column.
      for (size_t ref = 0; ref < columns.size(); ++ref) {
        candidates.push_back(static_cast<int>(ref));
      }
    }
    for (int ref : candidates) {
      if (static_cast<size_t>(ref) == dep && !options.include_self) continue;
      result.push_back(Ind{columns[dep].relation, columns[dep].column,
                           columns[static_cast<size_t>(ref)].relation,
                           columns[static_cast<size_t>(ref)].column});
    }
  }
  return result;
}

namespace {

// Longest common substring length (quadratic DP; column names are short).
size_t LongestCommonSubstring(const std::string& a, const std::string& b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<size_t> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  size_t best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
        best = std::max(best, cur[j]);
      } else {
        cur[j] = 0;
      }
    }
    std::swap(prev, cur);
  }
  return best;
}

}  // namespace

std::string IndScore::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "total=%.3f (uniq=%.3f, coverage=%.3f, name=%.3f)", total,
                referenced_uniqueness, coverage, name_similarity);
  return buf;
}

IndScore ScoreIndAsForeignKey(const Ind& ind,
                              const std::vector<RelationData>& relations) {
  const RelationData& dep_rel =
      relations[static_cast<size_t>(ind.dependent_relation)];
  const RelationData& ref_rel =
      relations[static_cast<size_t>(ind.referenced_relation)];
  const Column& dep = dep_rel.column(ind.dependent_column);
  const Column& ref = ref_rel.column(ind.referenced_column);

  IndScore score;
  size_t ref_rows = ref.size();
  size_t ref_distinct = ref.DistinctCount() - (ref.has_null() ? 1 : 0);
  size_t dep_distinct = dep.DistinctCount() - (dep.has_null() ? 1 : 0);
  score.referenced_uniqueness =
      ref_rows == 0 ? 0.0
                    : static_cast<double>(ref_distinct) /
                          static_cast<double>(ref_rows);
  score.coverage = ref_distinct == 0
                       ? 0.0
                       : std::min(1.0, static_cast<double>(dep_distinct) /
                                           static_cast<double>(ref_distinct));
  size_t lcs = LongestCommonSubstring(dep.name(), ref.name());
  size_t max_len = std::max(dep.name().size(), ref.name().size());
  score.name_similarity =
      max_len == 0 ? 0.0 : static_cast<double>(lcs) / max_len;
  score.total =
      (score.referenced_uniqueness + score.coverage + score.name_similarity) /
      3.0;
  return score;
}

}  // namespace normalize
