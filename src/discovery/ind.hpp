// Unary inclusion dependency (IND) discovery and foreign-key scoring. The
// paper derives foreign keys from decomposition, but its related work
// (Rostin et al. [20]) selects foreign keys from INDs; this module provides
// that complementary, data-driven view: discover which columns are included
// in which others across a set of relations, then score the IND candidates
// for being plausible foreign keys. Used in the evaluation to cross-check
// the FK structure Normalize emits.
#pragma once

#include <string>
#include <vector>

#include "relation/relation_data.hpp"

namespace normalize {

/// A unary inclusion dependency: every non-NULL value of the dependent
/// column appears in the referenced column.
struct Ind {
  int dependent_relation = -1;   // index into the input vector
  int dependent_column = -1;     // relation-local column index
  int referenced_relation = -1;
  int referenced_column = -1;

  std::string ToString(const std::vector<RelationData>& relations) const;
};

struct IndDiscoveryOptions {
  /// Skip dependent columns whose value set is empty (vacuously included in
  /// everything) unless this is set.
  bool include_empty_columns = false;
  /// Skip trivial self-INDs (same relation and column).
  bool include_self = false;
};

/// Discovers all unary INDs among the columns of `relations` (NULLs on the
/// dependent side are ignored, SQL-style). O(total values) via a global
/// value index.
std::vector<Ind> DiscoverUnaryInds(const std::vector<RelationData>& relations,
                                   IndDiscoveryOptions options = {});

/// Feature score in [0, 1] for an IND being a real foreign key, following
/// the spirit of the paper's §7 features and [20]: the referenced column
/// should be unique (a key), the dependent side should cover a good part of
/// the referenced values, and the column names should be similar.
struct IndScore {
  double referenced_uniqueness = 0;  // distinct(ref) / rows(ref)
  double coverage = 0;               // distinct(dep values) / distinct(ref)
  double name_similarity = 0;        // longest common substring ratio
  double total = 0;                  // mean

  std::string ToString() const;
};

IndScore ScoreIndAsForeignKey(const Ind& ind,
                              const std::vector<RelationData>& relations);

}  // namespace normalize
