#include "discovery/tane.hpp"

#include <algorithm>
#include <unordered_map>

#include "discovery/discovery_util.hpp"
#include "pli/pli.hpp"

namespace normalize {

namespace {

struct LevelEntry {
  AttributeSet x;      // the lattice node (local column indices)
  Pli pli;             // stripped partition of x
  AttributeSet cplus;  // RHS+ candidate set C+(x)
  bool pruned = false;
};

}  // namespace

Result<FdSet> Tane::Discover(const RelationData& data) {
  int n = data.num_columns();
  size_t rows = data.num_rows();
  std::vector<Fd> output;  // unary FDs in local space
  if (n == 0) return RemapToGlobal(output, data);

  AttributeSet all_attrs = AttributeSet::Full(n);
  int max_level = n;
  if (options_.max_lhs_size > 0) {
    max_level = std::min(max_level, options_.max_lhs_size + 1);
  }

  auto emit = [&](const AttributeSet& lhs, AttributeId a) {
    AttributeSet rhs(n);
    rhs.Set(a);
    output.emplace_back(lhs, rhs);
  };

  PliCache cache(data);
  size_t empty_error = rows >= 2 ? rows - 1 : 0;  // e(∅)

  // Previous level's errors and C+ sets, keyed by attribute set. Seeded with
  // the empty set: C+(∅) = R.
  std::unordered_map<AttributeSet, size_t> prev_error;
  std::unordered_map<AttributeSet, AttributeSet> prev_cplus;
  prev_error.emplace(AttributeSet(n), empty_error);
  prev_cplus.emplace(AttributeSet(n), all_attrs);

  // Level 1: all single attributes.
  std::vector<LevelEntry> level;
  for (AttributeId a = 0; a < n; ++a) {
    LevelEntry e;
    e.x = AttributeSet(n);
    e.x.Set(a);
    e.pli = cache.ColumnPli(a);
    e.cplus = AttributeSet(n);
    level.push_back(std::move(e));
  }

  for (int l = 1; l <= max_level && !level.empty(); ++l) {
    // --- COMPUTE_DEPENDENCIES ---
    std::unordered_map<AttributeSet, size_t> cur_error;
    for (LevelEntry& e : level) {
      // C+(X) = ∩_{A∈X} C+(X \ {A})
      e.cplus = all_attrs;
      for (AttributeId a : e.x) {
        AttributeSet sub = e.x;
        sub.Reset(a);
        auto it = prev_cplus.find(sub);
        if (it == prev_cplus.end()) {
          e.cplus.Clear();
          break;
        }
        e.cplus.IntersectWith(it->second);
      }
      cur_error.emplace(e.x, e.pli.Error());
    }
    for (LevelEntry& e : level) {
      size_t ex = cur_error[e.x];
      AttributeSet candidates = e.x.Intersect(e.cplus);
      for (AttributeId a : candidates) {
        AttributeSet lhs = e.x;
        lhs.Reset(a);
        auto it = prev_error.find(lhs);
        if (it == prev_error.end()) continue;
        if (it->second == ex) {
          // X\{A} -> A is a valid minimal FD.
          emit(lhs, a);
          // C+(X) -= {A}; C+(X) -= (R \ X)  — i.e. keep only X \ {A}.
          e.cplus.Reset(a);
          e.cplus.IntersectWith(e.x);
        }
      }
    }

    // --- PRUNE ---
    for (LevelEntry& e : level) {
      if (e.cplus.Empty()) {
        e.pruned = true;
        continue;
      }
      if (e.pli.IsUnique()) {
        // X is a (super)key: emit X -> A for every RHS+ candidate outside X
        // for which X is a *minimal* LHS, then prune the node. The textbook
        // C+-intersection test is incomplete here because the probe sets
        // X ∪ {A} \ {B} may have been pruned at earlier levels (their C+ is
        // unavailable even though X -> A is minimal), so we test minimality
        // directly: X -> A is minimal iff no X \ {B} -> A is valid, checked
        // via on-demand PLI refinement. Key nodes are rare, which keeps
        // these extra intersections cheap.
        AttributeSet outside = e.cplus.Difference(e.x);
        for (AttributeId a : outside) {
          const std::vector<ValueId>& rhs_codes =
              data.column(a).codes();
          bool minimal = true;
          for (AttributeId b : e.x) {
            std::vector<int> sub_cols;
            for (AttributeId c : e.x) {
              if (c != b) sub_cols.push_back(c);
            }
            if (cache.BuildPli(sub_cols).Refines(rhs_codes)) {
              minimal = false;
              break;
            }
          }
          if (minimal) emit(e.x, a);
        }
        e.pruned = true;
      }
    }
    std::vector<LevelEntry> survivors;
    for (LevelEntry& e : level) {
      if (!e.pruned) survivors.push_back(std::move(e));
    }

    // --- GENERATE_NEXT_LEVEL (prefix join) ---
    std::sort(survivors.begin(), survivors.end(),
              [](const LevelEntry& a, const LevelEntry& b) {
                return a.x.ToVector() < b.x.ToVector();
              });
    std::unordered_map<AttributeSet, const LevelEntry*> survivor_index;
    for (const LevelEntry& e : survivors) survivor_index.emplace(e.x, &e);

    std::vector<LevelEntry> next;
    for (size_t i = 0; i < survivors.size(); ++i) {
      std::vector<AttributeId> xi = survivors[i].x.ToVector();
      for (size_t j = i + 1; j < survivors.size(); ++j) {
        std::vector<AttributeId> xj = survivors[j].x.ToVector();
        // Joinable iff the first l-1 attributes coincide.
        bool prefix_equal =
            std::equal(xi.begin(), xi.end() - 1, xj.begin(), xj.end() - 1);
        if (!prefix_equal) break;  // sorted order: later js differ earlier
        AttributeSet z = survivors[i].x.Union(survivors[j].x);
        // All l-subsets of z must be unpruned level members.
        bool all_present = true;
        for (AttributeId a : z) {
          AttributeSet sub = z;
          sub.Reset(a);
          if (!survivor_index.count(sub)) {
            all_present = false;
            break;
          }
        }
        if (!all_present) continue;
        LevelEntry e;
        e.x = z;
        e.pli = survivors[i].pli.Intersect(survivors[j].pli.AsProbeVector());
        e.cplus = AttributeSet(n);
        next.push_back(std::move(e));
      }
    }

    // Roll the level forward.
    prev_error.clear();
    prev_cplus.clear();
    for (const LevelEntry& e : survivors) {
      prev_cplus.emplace(e.x, e.cplus);
    }
    for (auto& [x, err] : cur_error) prev_error.emplace(x, err);
    level = std::move(next);
  }

  if (options_.max_lhs_size > 0) {
    std::vector<Fd> filtered;
    for (Fd& fd : output) {
      if (fd.lhs.Count() <= options_.max_lhs_size) filtered.push_back(std::move(fd));
    }
    output = std::move(filtered);
  }
  return RemapToGlobal(output, data);
}

}  // namespace normalize
