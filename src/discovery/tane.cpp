#include "discovery/tane.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "discovery/discovery_util.hpp"
#include "pli/pli.hpp"

namespace normalize {

namespace {

struct LevelEntry {
  AttributeSet x;      // the lattice node (local column indices)
  Pli pli;             // stripped partition of x
  AttributeSet cplus;  // RHS+ candidate set C+(x)
  bool pruned = false;
};

}  // namespace

Result<FdSet> Tane::Discover(const RelationData& data) {
  phase_metrics_.Clear();
  completion_ = Status::OK();
  ScopedDiscoveryObservation observe(this, "tane");
  int n = data.num_columns();
  size_t rows = data.num_rows();
  std::vector<Fd> output;  // unary FDs in local space
  if (n == 0) return RemapToGlobal(output, data);

  // Emission is final: an FD emitted at level l depends only on fully
  // processed lower levels (validity via stripped-partition errors,
  // minimality via C+ / direct refinement checks), and later levels never
  // retract it. On interruption the output so far is therefore a sound
  // subset of the full minimal cover.
  auto finalize = [&](Status why) -> Result<FdSet> {
    completion_ = std::move(why);
    if (options_.max_lhs_size > 0) {
      std::vector<Fd> filtered;
      for (Fd& fd : output) {
        if (fd.lhs.Count() <= options_.max_lhs_size) {
          filtered.push_back(std::move(fd));
        }
      }
      output = std::move(filtered);
    }
    return RemapToGlobal(output, data);
  };

  AttributeSet all_attrs = AttributeSet::Full(n);
  int max_level = n;
  if (options_.max_lhs_size > 0) {
    max_level = std::min(max_level, options_.max_lhs_size + 1);
  }

  auto emit = [&](const AttributeSet& lhs, AttributeId a) {
    AttributeSet rhs(n);
    rhs.Set(a);
    output.emplace_back(lhs, rhs);
  };

  // All parallel sections write per-entry slots and emit results in entry
  // order afterwards, so the output FD list is identical for every thread
  // count (threads == 1 keeps everything on the calling thread).
  int threads = ResolveThreadCount(options_.threads);
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool = options_.pool;  // prefer the externally owned pool
    if (pool == nullptr) {
      pool_storage.emplace(threads);
      pool = &*pool_storage;
      if (options_.context != nullptr) {
        pool_storage->SetCancellation(options_.context->cancel);
      }
    }
  }
  const RunContext* ctx = options_.context;

  Stopwatch phase_watch;
  PliCache cache(data, pool);
  phase_metrics_.Record("pli_build", phase_watch.ElapsedSeconds(),
                        static_cast<uint64_t>(n));
  size_t empty_error = rows >= 2 ? rows - 1 : 0;  // e(∅)

  // Previous level's errors and C+ sets, keyed by attribute set. Seeded with
  // the empty set: C+(∅) = R.
  std::unordered_map<AttributeSet, size_t> prev_error;
  std::unordered_map<AttributeSet, AttributeSet> prev_cplus;
  prev_error.emplace(AttributeSet(n), empty_error);
  prev_cplus.emplace(AttributeSet(n), all_attrs);

  // Level 1: all single attributes.
  std::vector<LevelEntry> level;
  for (AttributeId a = 0; a < n; ++a) {
    LevelEntry e;
    e.x = AttributeSet(n);
    e.x.Set(a);
    e.pli = cache.ColumnPli(a);
    e.cplus = AttributeSet(n);
    level.push_back(std::move(e));
  }

  for (int l = 1; l <= max_level && !level.empty(); ++l) {
    Status interrupted = CheckContext();
    if (!interrupted.ok()) return finalize(std::move(interrupted));

    // --- COMPUTE_DEPENDENCIES ---
    // Per-entry C+ and error computations only read the previous level's
    // immutable maps and write their own entry.
    phase_watch.Restart();
    std::vector<size_t> errors(level.size());
    Status dispatch = ParallelFor(pool, level.size(), [&, ctx](size_t i) {
      if (ctx != nullptr && ctx->SoftInterrupted()) return;
      LevelEntry& e = level[i];
      // C+(X) = ∩_{A∈X} C+(X \ {A})
      e.cplus = all_attrs;
      for (AttributeId a : e.x) {
        AttributeSet sub = e.x;
        sub.Reset(a);
        auto it = prev_cplus.find(sub);
        if (it == prev_cplus.end()) {
          e.cplus.Clear();
          break;
        }
        e.cplus.IntersectWith(it->second);
      }
      errors[i] = e.pli.Error();
    });
    // Skipped workers leave zeroed error slots that would read as valid
    // FDs — bail before the serial emit trusts them.
    interrupted = CheckContext();
    if (interrupted.ok() && !dispatch.ok()) interrupted = dispatch;
    if (!interrupted.ok()) return finalize(std::move(interrupted));
    std::unordered_map<AttributeSet, size_t> cur_error;
    for (size_t i = 0; i < level.size(); ++i) {
      cur_error.emplace(level[i].x, errors[i]);
    }
    for (LevelEntry& e : level) {
      size_t ex = cur_error[e.x];
      AttributeSet candidates = e.x.Intersect(e.cplus);
      for (AttributeId a : candidates) {
        AttributeSet lhs = e.x;
        lhs.Reset(a);
        auto it = prev_error.find(lhs);
        if (it == prev_error.end()) continue;
        if (it->second == ex) {
          // X\{A} -> A is a valid minimal FD.
          emit(lhs, a);
          // C+(X) -= {A}; C+(X) -= (R \ X)  — i.e. keep only X \ {A}.
          e.cplus.Reset(a);
          e.cplus.IntersectWith(e.x);
        }
      }
    }
    double deps_s = phase_watch.ElapsedSeconds();
    phase_metrics_.Record("compute_deps", deps_s, level.size());
    // Level l emits FDs with LHS size l-1; the per-level record feeds the
    // adaptive degradation picker.
    phase_metrics_.Record("compute_deps_L" + std::to_string(l - 1), deps_s,
                          level.size());

    // --- PRUNE ---
    // Key-node minimality checks rebuild subset PLIs on demand, which makes
    // them the expensive part of this phase; each entry's checks are
    // independent, so they run per-entry in parallel and the FDs are
    // emitted serially afterwards in entry order.
    phase_watch.Restart();
    std::vector<std::vector<std::pair<AttributeSet, AttributeId>>> key_fds(
        level.size());
    dispatch = ParallelFor(pool, level.size(), [&, ctx](size_t i) {
      if (ctx != nullptr && ctx->SoftInterrupted()) return;
      LevelEntry& e = level[i];
      if (e.cplus.Empty()) {
        e.pruned = true;
        return;
      }
      if (e.pli.IsUnique()) {
        // X is a (super)key: emit X -> A for every RHS+ candidate outside X
        // for which X is a *minimal* LHS, then prune the node. The textbook
        // C+-intersection test is incomplete here because the probe sets
        // X ∪ {A} \ {B} may have been pruned at earlier levels (their C+ is
        // unavailable even though X -> A is minimal), so we test minimality
        // directly: X -> A is minimal iff no X \ {B} -> A is valid, checked
        // via on-demand PLI refinement. Key nodes are rare, which keeps
        // these extra intersections cheap.
        AttributeSet outside = e.cplus.Difference(e.x);
        for (AttributeId a : outside) {
          const std::vector<ValueId>& rhs_codes =
              data.column(a).codes();
          bool minimal = true;
          for (AttributeId b : e.x) {
            std::vector<int> sub_cols;
            for (AttributeId c : e.x) {
              if (c != b) sub_cols.push_back(c);
            }
            if (cache.BuildPli(sub_cols).Refines(rhs_codes)) {
              minimal = false;
              break;
            }
          }
          if (minimal) key_fds[i].emplace_back(e.x, a);
        }
        e.pruned = true;
      }
    });
    // A skipped key-node check yields an empty (not wrong) slot, but the
    // unprocessed entries also missed their pruning pass — stop here rather
    // than generate a next level from half-pruned survivors.
    interrupted = CheckContext();
    if (interrupted.ok() && !dispatch.ok()) interrupted = dispatch;
    if (!interrupted.ok()) return finalize(std::move(interrupted));
    for (const auto& per_entry : key_fds) {
      for (const auto& [lhs, a] : per_entry) emit(lhs, a);
    }
    std::vector<LevelEntry> survivors;
    for (LevelEntry& e : level) {
      if (!e.pruned) survivors.push_back(std::move(e));
    }
    phase_metrics_.Record("prune", phase_watch.ElapsedSeconds(),
                          survivors.size());

    // --- GENERATE_NEXT_LEVEL (prefix join) ---
    // Join pairs are collected serially (cheap bitset work); the PLI
    // intersections — the level's dominant cost — run as one batch.
    phase_watch.Restart();
    std::sort(survivors.begin(), survivors.end(),
              [](const LevelEntry& a, const LevelEntry& b) {
                return a.x.ToVector() < b.x.ToVector();
              });
    std::unordered_map<AttributeSet, const LevelEntry*> survivor_index;
    for (const LevelEntry& e : survivors) survivor_index.emplace(e.x, &e);

    std::vector<LevelEntry> next;
    std::vector<std::pair<const Pli*, const Pli*>> join_pairs;
    for (size_t i = 0; i < survivors.size(); ++i) {
      std::vector<AttributeId> xi = survivors[i].x.ToVector();
      for (size_t j = i + 1; j < survivors.size(); ++j) {
        std::vector<AttributeId> xj = survivors[j].x.ToVector();
        // Joinable iff the first l-1 attributes coincide.
        bool prefix_equal =
            std::equal(xi.begin(), xi.end() - 1, xj.begin(), xj.end() - 1);
        if (!prefix_equal) break;  // sorted order: later js differ earlier
        AttributeSet z = survivors[i].x.Union(survivors[j].x);
        // All l-subsets of z must be unpruned level members.
        bool all_present = true;
        for (AttributeId a : z) {
          AttributeSet sub = z;
          sub.Reset(a);
          if (!survivor_index.count(sub)) {
            all_present = false;
            break;
          }
        }
        if (!all_present) continue;
        LevelEntry e;
        e.x = z;
        e.cplus = AttributeSet(n);
        next.push_back(std::move(e));
        join_pairs.emplace_back(&survivors[i].pli, &survivors[j].pli);
      }
    }
    std::vector<Pli> intersections = IntersectAll(join_pairs, pool);
    for (size_t k = 0; k < next.size(); ++k) {
      next[k].pli = std::move(intersections[k]);
    }
    phase_metrics_.Record("generate_next", phase_watch.ElapsedSeconds(),
                          next.size());

    // Roll the level forward.
    prev_error.clear();
    prev_cplus.clear();
    for (const LevelEntry& e : survivors) {
      prev_cplus.emplace(e.x, e.cplus);
    }
    for (auto& [x, err] : cur_error) prev_error.emplace(x, err);
    level = std::move(next);
  }

  return finalize(Status::OK());
}

}  // namespace normalize
