#include "discovery/hyfd.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "discovery/discovery_util.hpp"
#include "discovery/induction.hpp"
#include "fd/fd_tree.hpp"
#include "pli/pli.hpp"

namespace normalize {

namespace {

// The sampler walks each column's PLI clusters with a growing neighbor
// window. Cluster rows are pre-sorted by their full records so that adjacent
// rows are similar and yield large agree sets (HyFD's "focused sampling").
//
// Rounds are parallel: each column's comparison window is independent of
// every other column's, so the per-column scans run on the pool and the
// coordinator merges their agree sets in column order afterwards. That merge
// order is exactly the serial sweep order, so the negative cover — and with
// it the induced candidate tree and the final FD set — is bit-identical at
// every thread count.
class Sampler {
 public:
  Sampler(const RelationData& data, const PliCache& cache, ThreadPool* pool)
      : data_(&data), pool_(pool) {
    int n = data.num_columns();
    sorted_clusters_.resize(static_cast<size_t>(n));
    windows_.assign(static_cast<size_t>(n), 0);
    // Each column's cluster list sorts independently; the comparator only
    // reads the immutable relation data. A cancelled dispatch leaves some
    // clusters unsorted, which only degrades sampling efficiency — any row
    // pair is valid agree-set evidence — and the discovery loop re-polls
    // the RunContext right after sampling, so the status can be dropped.
    (void)ParallelFor(pool, static_cast<size_t>(n), [this, &data, &cache,
                                                     n](size_t c) {
      sorted_clusters_[c] = cache.ColumnPli(static_cast<int>(c)).clusters();
      for (auto& cluster : sorted_clusters_[c]) {
        std::sort(cluster.begin(), cluster.end(), [&](RowId a, RowId b) {
          for (int k = 0; k < n; ++k) {
            ValueId ca = data.column(k).code(a);
            ValueId cb = data.column(k).code(b);
            if (ca != cb) return ca < cb;
          }
          return a < b;
        });
      }
    });
  }

  bool Exhausted() const {
    for (size_t c = 0; c < sorted_clusters_.size(); ++c) {
      if (windows_[c] + 1 < MaxClusterSize(c)) return false;
    }
    return true;
  }

  /// Grows every column's window by one and emits the agree sets of the new
  /// comparisons. Returns the number of comparisons performed. The scans run
  /// on the pool, one task per active column; results merge in column order
  /// (see the class comment), so `fresh` is identical at every thread count.
  size_t Round(std::unordered_set<AttributeSet>* seen,
               std::vector<AttributeSet>* fresh) {
    std::vector<size_t> active;
    for (size_t c = 0; c < sorted_clusters_.size(); ++c) {
      if (windows_[c] + 1 >= MaxClusterSize(c)) continue;
      ++windows_[c];
      active.push_back(c);
    }
    // Workers write disjoint slots; everything they read is immutable during
    // the round. Local first-occurrence dedup keeps each column's list in
    // serial scan order; the column-ordered merge below re-checks against
    // the global dedup set, so cross-column duplicates resolve exactly as a
    // serial sweep would. A cancelled dispatch merges whatever columns
    // finished — every agree set is sound evidence regardless — and the
    // discovery loop re-polls the RunContext right after sampling.
    std::vector<std::vector<AttributeSet>> local(active.size());
    std::vector<size_t> local_comparisons(active.size(), 0);
    // A cancelled sweep is not an error here: partial columns still merge
    // below, and the discovery loop re-polls the RunContext right after.
    (void)ParallelFor(pool_, active.size(), [this, &active, &local,
                                             &local_comparisons](size_t i) {
      size_t c = active[i];
      size_t w = windows_[c];
      std::unordered_set<AttributeSet> column_seen;
      for (const auto& cluster : sorted_clusters_[c]) {
        if (cluster.size() <= w) continue;
        for (size_t j = 0; j + w < cluster.size(); ++j) {
          ++local_comparisons[i];
          AttributeSet ag = AgreeSetOf(*data_, cluster[j], cluster[j + w]);
          if (column_seen.insert(ag).second) local[i].push_back(std::move(ag));
        }
      }
    });
    size_t comparisons = 0;
    for (size_t i = 0; i < active.size(); ++i) {
      comparisons += local_comparisons[i];
      for (AttributeSet& ag : local[i]) {
        if (seen->insert(ag).second) fresh->push_back(std::move(ag));
      }
    }
    return comparisons;
  }

 private:
  size_t MaxClusterSize(size_t c) const {
    size_t m = 1;
    for (const auto& cluster : sorted_clusters_[c]) {
      m = std::max(m, cluster.size());
    }
    return m;
  }

  const RelationData* data_;
  ThreadPool* pool_;
  std::vector<std::vector<std::vector<RowId>>> sorted_clusters_;
  std::vector<size_t> windows_;
};

}  // namespace

Result<FdSet> HyFd::Discover(const RelationData& data) {
  stats_ = Stats{};
  phase_metrics_.Clear();
  completion_ = Status::OK();
  ScopedDiscoveryObservation observe(this, "hyfd");
  evidence_.clear();
  cache_.reset();
  int n = data.num_columns();
  size_t rows = data.num_rows();
  if (n == 0) return FdSet{};

  FdTree tree(n);
  AttributeSet empty(n);
  for (AttributeId a = 0; a < n; ++a) tree.AddFd(empty, a);
  if (rows < 2) {
    // Every FD holds vacuously; the minimal cover is {} -> A for all A.
    return RemapToGlobal(tree.CollectAllFds(), data);
  }

  // threads == 1 keeps everything on the calling thread (pool == nullptr
  // routes every ParallelFor serially and validation takes the legacy path).
  // An externally owned pool (options_.pool) is preferred over spinning up
  // a per-call one.
  int threads = ResolveThreadCount(options_.threads);
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  if (threads > 1) {
    pool = options_.pool;
    if (pool == nullptr) {
      pool_storage.emplace(threads);
      pool = &*pool_storage;
      if (options_.context != nullptr) {
        pool_storage->SetCancellation(options_.context->cancel);
      }
    }
  }

  std::unordered_set<AttributeSet> seen_agree_sets;

  // Partial-result bookkeeping: a validation level is "complete" once its
  // while-loop exits normally. On interruption, tree FDs whose LHS size is
  // at most the last complete level have survived full validation and are
  // exactly the minimal FDs of those sizes — real agree-set evidence never
  // discharges a valid FD, specialization only pushes candidates to higher
  // levels, and a candidate X -> A only enters the tree once every proper
  // subset of X has been refuted by evidence (so X -> A is minimal on the
  // data, not just minimal-so-far). The filtered cover is therefore a sound
  // subset of the full minimal cover.
  // Canonical (sorted) evidence snapshot for ExportEvidence() — taken on
  // every exit path so checkpoints always see the final negative cover.
  auto export_evidence = [&]() {
    evidence_.assign(seen_agree_sets.begin(), seen_agree_sets.end());
    std::sort(evidence_.begin(), evidence_.end());
  };

  int last_complete_level = -1;
  auto partial_result = [&](FdTree* cover, Status why) -> Result<FdSet> {
    completion_ = std::move(why);
    stats_.distinct_agree_sets = seen_agree_sets.size();
    export_evidence();
    std::vector<Fd> kept;
    if (last_complete_level >= 0) {
      MinimizeCover(cover);
      for (Fd& fd : cover->CollectAllFds()) {
        if (static_cast<int>(fd.lhs.Count()) <= last_complete_level) {
          kept.push_back(std::move(fd));
        }
      }
    }
    return RemapToGlobal(kept, data);
  };

  Status interrupted = CheckContext();
  if (!interrupted.ok()) return partial_result(&tree, std::move(interrupted));

  Stopwatch phase_watch;
  // The cache is shared (shared_pli_cache()) so the merge driver and
  // checkpoints can reuse it after Discover() returns.
  auto cache_shared = std::make_shared<PliCache>(data, pool);
  const PliCache& cache = *cache_shared;
  cache_ = cache_shared;
  phase_metrics_.Record("pli_build", phase_watch.ElapsedSeconds(),
                        static_cast<uint64_t>(n));
  interrupted = CheckContext();
  if (!interrupted.ok()) return partial_result(&tree, std::move(interrupted));
  phase_watch.Restart();
  Sampler sampler(data, cache, pool);
  phase_metrics_.Record("sampler_init", phase_watch.ElapsedSeconds());

  // Resume path: re-induce checkpointed evidence before any sampling. The
  // negative cover fully determines the candidate tree, so this restores
  // the interrupted run's state without re-validating what it had refuted.
  if (!imported_evidence_.empty()) {
    phase_watch.Restart();
    size_t imported = 0;
    for (const AttributeSet& ag : imported_evidence_) {
      if (ag.capacity() != n) continue;  // stale evidence for another schema
      if (seen_agree_sets.insert(ag).second) {
        InduceFromAgreeSet(&tree, ag, options_.max_lhs_size);
        ++imported;
      }
    }
    imported_evidence_.clear();
    phase_metrics_.Record("evidence_import", phase_watch.ElapsedSeconds(),
                          imported);
  }

  auto run_sampling = [&]() {
    if (stats_.sampling_rounds >= config_.max_sampling_rounds ||
        sampler.Exhausted()) {
      return;
    }
    Stopwatch watch;
    std::vector<AttributeSet> fresh;
    size_t comparisons = sampler.Round(&seen_agree_sets, &fresh);
    stats_.sampled_comparisons += comparisons;
    ++stats_.sampling_rounds;
    if (static_cast<int>(fresh.size()) > config_.max_inductions_per_round) {
      std::partial_sort(fresh.begin(),
                        fresh.begin() + config_.max_inductions_per_round,
                        fresh.end(),
                        [](const AttributeSet& a, const AttributeSet& b) {
                          return a.Count() > b.Count();
                        });
      fresh.resize(static_cast<size_t>(config_.max_inductions_per_round));
    }
    phase_metrics_.Record("sampling", watch.ElapsedSeconds(), comparisons);
    watch.Restart();
    for (const AttributeSet& ag : fresh) {
      InduceFromAgreeSet(&tree, ag, options_.max_lhs_size);
    }
    phase_metrics_.Record("induction", watch.ElapsedSeconds(), fresh.size());
  };

  for (int i = 0; i < config_.initial_sampling_rounds; ++i) run_sampling();

  // --- Level-wise validation ---
  int max_level = n - 1;
  if (options_.max_lhs_size > 0) {
    max_level = std::min(max_level, options_.max_lhs_size);
  }

  for (int level = 0; level <= max_level; ++level) {
    bool level_done = false;
    while (!level_done) {
      interrupted = CheckContext();
      if (!interrupted.ok()) {
        return partial_result(&tree, std::move(interrupted));
      }
      std::vector<Fd> candidates = tree.GetLevel(level);
      size_t checked = 0, invalid = 0;
      std::vector<AttributeSet> evidence;
      Stopwatch validation_watch;

      if (pool == nullptr) {
        // Serial sweep: violations specialize the cover immediately, so
        // later candidates of the same sweep may already be gone (the
        // ContainsFd re-check).
        for (const Fd& fd : candidates) {
          std::vector<AttributeId> lhs_attrs = fd.lhs.ToVector();
          for (AttributeId a : fd.rhs) {
            if (!tree.ContainsFd(fd.lhs, a)) continue;
            interrupted = CheckContext();
            if (!interrupted.ok()) {
              // Mid-sweep: this level is incomplete, but every prior level
              // was validated in full — the partial filter keeps those.
              return partial_result(&tree, std::move(interrupted));
            }
            ++checked;
            std::optional<std::pair<RowId, RowId>> violation =
                ValidateFdCandidate(data, cache, lhs_attrs, a);
            if (violation) {
              ++invalid;
              AttributeSet ag =
                  AgreeSetOf(data, violation->first, violation->second);
              if (seen_agree_sets.insert(ag).second) evidence.push_back(ag);
              // Even previously-seen evidence must be (re)applied: this
              // candidate was added after the original induction.
              SpecializeCover(&tree, ag, a, options_.max_lhs_size);
            }
          }
        }
      } else {
        // Parallel sweep: snapshot the candidate units, validate them
        // concurrently against the immutable data/PLIs (the tree is not
        // touched), then apply the violations serially in snapshot order.
        // Validation is complete, so the extra work of checking candidates
        // a serial sweep would have specialized away cannot change the
        // result — only the stats counters.
        struct Unit {
          size_t candidate;
          AttributeId rhs;
        };
        std::vector<std::vector<AttributeId>> lhs_vecs(candidates.size());
        std::vector<Unit> units;
        for (size_t c = 0; c < candidates.size(); ++c) {
          const Fd& fd = candidates[c];
          lhs_vecs[c] = fd.lhs.ToVector();
          for (AttributeId a : fd.rhs) {
            if (!tree.ContainsFd(fd.lhs, a)) continue;
            units.push_back(Unit{c, a});
          }
        }
        // Agree set of the violating row pair, per violated unit. Workers
        // write disjoint slots; all other state they touch is read-only.
        std::vector<std::optional<AttributeSet>> violations(units.size());
        const RunContext* ctx = options_.context;
        Status dispatch = pool->ParallelFor(units.size(), [&, ctx](size_t u) {
          if (ctx != nullptr && ctx->SoftInterrupted()) return;
          const Unit& unit = units[u];
          std::optional<std::pair<RowId, RowId>> violation =
              ValidateFdCandidate(data, cache, lhs_vecs[unit.candidate],
                                  unit.rhs);
          if (violation) {
            violations[u] =
                AgreeSetOf(data, violation->first, violation->second);
          }
        });
        // An interrupted sweep leaves unset slots that merely *look* valid;
        // bail before the merge would treat them as confirmation.
        interrupted = CheckContext();
        if (interrupted.ok() && !dispatch.ok()) interrupted = dispatch;
        if (!interrupted.ok()) {
          return partial_result(&tree, std::move(interrupted));
        }
        checked = units.size();
        // Deterministic merge: snapshot order is the serial sweep order.
        for (size_t u = 0; u < units.size(); ++u) {
          if (!violations[u]) continue;
          ++invalid;
          const AttributeSet& ag = *violations[u];
          if (seen_agree_sets.insert(ag).second) evidence.push_back(ag);
          SpecializeCover(&tree, ag, units[u].rhs, options_.max_lhs_size);
        }
      }
      stats_.validated_candidates += checked;
      stats_.invalid_candidates += invalid;
      double validation_s = validation_watch.ElapsedSeconds();
      phase_metrics_.Record("validation", validation_s, checked);
      // Per-level record: the adaptive degradation picker reads these to
      // find the deepest level that fits the time budget.
      phase_metrics_.Record("validation_L" + std::to_string(level),
                            validation_s, checked);
      Stopwatch induction_watch;
      for (const AttributeSet& ag : evidence) {
        InduceFromAgreeSet(&tree, ag, options_.max_lhs_size);
      }
      phase_metrics_.Record("induction", induction_watch.ElapsedSeconds(),
                            evidence.size());

      double ratio = checked == 0 ? 0.0
                                  : static_cast<double>(invalid) /
                                        static_cast<double>(checked);
      if (ratio > config_.switch_to_sampling_threshold &&
          !sampler.Exhausted() &&
          stats_.sampling_rounds < config_.max_sampling_rounds) {
        // Many candidates are wrong: evidence is cheap to harvest in bulk,
        // so sample once more and re-validate this level.
        run_sampling();
      } else {
        level_done = true;
      }
    }
    last_complete_level = level;
  }

  MinimizeCover(&tree);
  stats_.distinct_agree_sets = seen_agree_sets.size();
  export_evidence();
  return RemapToGlobal(tree.CollectAllFds(), data);
}

}  // namespace normalize
