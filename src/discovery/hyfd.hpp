// HyFd (Papenbrock & Naumann, SIGMOD 2016): the hybrid FD discovery
// algorithm the paper's pipeline uses. Alternates between
//   (a) sampling: comparing likely-similar record pairs (neighbors inside
//       PLI clusters) to harvest agree sets cheaply (negative cover),
//   (b) induction: specializing the positive cover with that evidence, and
//   (c) validation: checking the remaining candidates level-wise against the
//       data via PLIs, feeding violations back as new evidence.
// Validation alone is complete, so the result is the exact set of minimal
// FDs; sampling only accelerates convergence.
#pragma once

#include "discovery/fd_discovery.hpp"

namespace normalize {

/// Tuning knobs for the hybrid strategy.
struct HyFdConfig {
  /// Initial sampling rounds before the first validation sweep.
  int initial_sampling_rounds = 2;
  /// If more than this fraction of a level's candidates is invalid,
  /// validation switches back to sampling for one round.
  double switch_to_sampling_threshold = 0.2;
  /// Hard cap on total sampling rounds (a round grows every column's
  /// comparison window by one).
  int max_sampling_rounds = 64;
  /// Cap on agree sets inducted per sampling round, preferring the largest
  /// (most subsuming) sets. Induction is an accelerator only — validation
  /// guarantees exactness — so skipping low-value evidence trades a few
  /// extra validation violations for much cheaper rounds on sparse, wide
  /// tables whose rows share huge agree sets.
  int max_inductions_per_round = 2000;
};

class HyFd : public FdDiscovery {
 public:
  explicit HyFd(FdDiscoveryOptions options = {}, HyFdConfig config = {})
      : FdDiscovery(options), config_(config) {}

  std::string name() const override { return "HyFd"; }
  Result<FdSet> Discover(const RelationData& data) override;

  std::vector<AttributeSet> ExportEvidence() const override {
    return evidence_;
  }
  void ImportEvidence(std::vector<AttributeSet> evidence) override {
    imported_evidence_ = std::move(evidence);
  }
  std::shared_ptr<const PliCache> shared_pli_cache() const override {
    return cache_;
  }

  /// Statistics of the last run (for the evaluation harness).
  struct Stats {
    int sampling_rounds = 0;
    size_t sampled_comparisons = 0;
    size_t distinct_agree_sets = 0;
    size_t validated_candidates = 0;
    size_t invalid_candidates = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  HyFdConfig config_;
  Stats stats_;
  /// Sorted agree sets of the last run (see ExportEvidence).
  std::vector<AttributeSet> evidence_;
  /// Evidence to re-induce at the start of the next run (consumed once).
  std::vector<AttributeSet> imported_evidence_;
  /// The last run's PLI cache, kept alive for shared_pli_cache().
  std::shared_ptr<const PliCache> cache_;
};

}  // namespace normalize
