// FDEP-style discovery: compute the negative cover (agree sets of all record
// pairs), then invert it into the positive cover of minimal FDs. Quadratic
// in the number of records but insensitive to attribute count — the method of
// choice for wide, short tables (e.g. the paper's Amalgam1: 87 x 50).
#pragma once

#include "discovery/fd_discovery.hpp"

namespace normalize {

class Fdep : public FdDiscovery {
 public:
  explicit Fdep(FdDiscoveryOptions options = {}) : FdDiscovery(options) {}

  std::string name() const override { return "Fdep"; }
  Result<FdSet> Discover(const RelationData& data) override;
};

}  // namespace normalize
