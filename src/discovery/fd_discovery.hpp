// FD discovery interface — component (1) of the paper's pipeline. All
// implementations return the *complete set of minimal, syntactically valid*
// FDs of an instance (optionally LHS-size-pruned, §4.3), which the optimized
// closure algorithm's correctness depends on (Lemma 1).
//
// NULL semantics: NULL compares equal to NULL (the dictionary gives NULL a
// regular code), matching the Metanome profiling semantics the paper uses.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/run_context.hpp"
#include "common/stopwatch.hpp"
#include "fd/fd.hpp"
#include "relation/relation_data.hpp"

namespace normalize {

class MetricsRegistry;
class PliCache;
class ScopedSpan;
class ThreadPool;

/// Options shared by all discovery algorithms.
struct FdDiscoveryOptions {
  /// Maximum LHS size; FDs with larger LHSs are not reported. <= 0 means
  /// unlimited. This is the paper's memory-pruning rule: the pruned result
  /// still admits a correct closure for all remaining FDs.
  int max_lhs_size = -1;
  /// Worker threads for the parallel discovery phases (PLI building, HyFD
  /// candidate validation, Tane level expansion): <= 0 selects the hardware
  /// concurrency; 1 runs the exact legacy serial code path. The discovered
  /// FD set is identical for every value — parallelism only changes wall
  /// time. Algorithms without parallel phases ignore the knob.
  int threads = 0;
  /// Externally owned pool (not owned by the algorithm). When set and
  /// `threads` resolves above 1, the parallel phases run on this pool
  /// instead of a per-Discover() pool — the Normalizer passes its
  /// process-wide pool here so repeated calls do not churn threads. The
  /// pool's worker count then takes precedence over `threads`; `threads ==
  /// 1` still forces the exact serial path.
  ThreadPool* pool = nullptr;
  /// Robustness context (not owned; may be null = no limits). Algorithms
  /// poll it cooperatively at loop boundaries: on cancellation or deadline
  /// expiry Discover() stops early, returns a *sound* partial cover (every
  /// emitted FD is a verified-minimal member of the full result), and
  /// reports the interruption via completion_status().
  const RunContext* context = nullptr;
  /// Observability registry (obs/metrics.hpp; not owned, may be null =
  /// instrumentation disabled). Backends keep filling PhaseMetrics as
  /// before; a ScopedDiscoveryObservation at the top of Discover() folds
  /// those phases into the registry when the run unwinds, so the registry
  /// observes at the edges without changing the phase_metrics() API.
  MetricsRegistry* metrics = nullptr;
};

/// Abstract FD discovery algorithm.
class FdDiscovery {
 public:
  virtual ~FdDiscovery() = default;

  /// Name for reports ("HyFD", "Tane", ...).
  virtual std::string name() const = 0;

  /// Discovers all minimal FDs of `data` (subject to options().max_lhs_size).
  /// The result is aggregated: one entry per LHS, RHS a set.
  virtual Result<FdSet> Discover(const RelationData& data) = 0;

  const FdDiscoveryOptions& options() const { return options_; }

  /// Per-phase wall times and counters of the last Discover() call (empty
  /// for algorithms that do not record them).
  const PhaseMetrics& phase_metrics() const { return phase_metrics_; }

  /// OK if the last Discover() ran to completion; kCancelled or
  /// kDeadlineExceeded when it was interrupted and the returned FdSet is a
  /// sound partial cover (a subset of the full minimal cover).
  const Status& completion_status() const { return completion_; }

  /// Agree-set evidence (negative-cover witnesses, in the relation's local
  /// column space) accumulated by the last Discover() call, in canonical
  /// sorted order. The evidence fully determines the candidate tree the run
  /// had reached, so checkpoints persist it and a resumed run imports it.
  /// Empty for algorithms that do not track evidence.
  virtual std::vector<AttributeSet> ExportEvidence() const { return {}; }

  /// Pre-seeds the next Discover() call with previously exported evidence:
  /// the run re-induces it before sampling, skipping the row comparisons and
  /// validation violations that originally produced it. A no-op for
  /// algorithms without evidence tracking; evidence whose capacity does not
  /// match the next input is ignored.
  virtual void ImportEvidence(std::vector<AttributeSet> evidence) {
    (void)evidence;
  }

  /// The single-column PLI cache the last Discover() call built over its
  /// input, shared so downstream consumers (merge validation, checkpoints)
  /// reuse it instead of rebuilding. Null for algorithms that do not expose
  /// one; valid only while the discovered relation is alive.
  virtual std::shared_ptr<const PliCache> shared_pli_cache() const {
    return nullptr;
  }

 protected:
  explicit FdDiscovery(FdDiscoveryOptions options) : options_(options) {}

  /// Null-safe interruption probe for the discovery loops.
  Status CheckContext() const { return CheckRunContext(options_.context); }

  FdDiscoveryOptions options_;
  PhaseMetrics phase_metrics_;
  Status completion_;
};

/// RAII edge adapter each backend places at the top of its Discover() body.
/// While alive it is a trace span named `discover/<component>`, parented
/// under the RunContext's span when the context carries a tracer; when the
/// scope unwinds (every return path, success or interruption) it folds the
/// algorithm's PhaseMetrics into options().metrics and counts the run. Both
/// the registry and the tracer may be null — the adapter then costs two
/// branches.
class ScopedDiscoveryObservation {
 public:
  ScopedDiscoveryObservation(const FdDiscovery* algo,
                             std::string_view component);
  ~ScopedDiscoveryObservation();

  ScopedDiscoveryObservation(const ScopedDiscoveryObservation&) = delete;
  ScopedDiscoveryObservation& operator=(const ScopedDiscoveryObservation&) =
      delete;

 private:
  const FdDiscovery* algo_;
  std::string component_;
  std::unique_ptr<ScopedSpan> span_;
};

/// Factory for the algorithms by name ("naive", "tane", "dfd", "fdep",
/// "hyfd").
std::unique_ptr<FdDiscovery> MakeFdDiscovery(const std::string& name,
                                             FdDiscoveryOptions options = {});

}  // namespace normalize
