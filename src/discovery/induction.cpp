#include "discovery/induction.hpp"

namespace normalize {

int SpecializeCover(FdTree* tree, const AttributeSet& agree_set,
                    AttributeId rhs_attr, int max_lhs_size) {
  std::vector<AttributeSet> generalizations =
      tree->GetFdAndGeneralizations(agree_set, rhs_attr);
  int n = tree->num_attributes();
  for (const AttributeSet& lhs : generalizations) {
    tree->RemoveFd(lhs, rhs_attr);
    // Every valid specialization must add an attribute on which the
    // violating pair disagrees (an attribute outside the agree set).
    for (AttributeId b = 0; b < n; ++b) {
      if (agree_set.Test(b) || b == rhs_attr || lhs.Test(b)) continue;
      AttributeSet specialized = lhs;
      specialized.Set(b);
      if (max_lhs_size > 0 && specialized.Count() > max_lhs_size) continue;
      if (!tree->ContainsFdOrGeneralization(specialized, rhs_attr)) {
        tree->AddFd(specialized, rhs_attr);
      }
    }
  }
  return static_cast<int>(generalizations.size());
}

void InduceFromAgreeSet(FdTree* tree, const AttributeSet& agree_set,
                        int max_lhs_size) {
  int n = tree->num_attributes();
  for (AttributeId a = 0; a < n; ++a) {
    if (agree_set.Test(a)) continue;
    SpecializeCover(tree, agree_set, a, max_lhs_size);
  }
}

}  // namespace normalize
