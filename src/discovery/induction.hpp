// Negative-cover induction shared by Fdep and HyFd: given evidence that some
// agree set does NOT determine an attribute, specialize the positive cover so
// it stays a cover of all FDs consistent with the evidence seen so far.
#pragma once

#include "common/attribute_set.hpp"
#include "fd/fd_tree.hpp"

namespace normalize {

/// Incorporates the non-FD (`agree_set` does not determine `rhs_attr`) into
/// the positive cover `tree`: every stored generalization Y ⊆ agree_set with
/// Y -> rhs_attr is removed and specialized with each attribute outside
/// agree_set ∪ {rhs_attr}. Specializations longer than `max_lhs_size`
/// (if > 0) are dropped, implementing the paper's LHS-size pruning.
/// Returns the number of FDs removed from the cover.
int SpecializeCover(FdTree* tree, const AttributeSet& agree_set,
                    AttributeId rhs_attr, int max_lhs_size);

/// Applies SpecializeCover for every attribute NOT in the agree set, i.e.
/// processes one violating record pair's full evidence.
void InduceFromAgreeSet(FdTree* tree, const AttributeSet& agree_set,
                        int max_lhs_size);

}  // namespace normalize
