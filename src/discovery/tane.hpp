// Tane (Huhtala et al., 1999): level-wise lattice traversal with stripped
// partitions and RHS-candidate (C+) pruning. One of the two discovery
// algorithms the paper names for component (1).
#pragma once

#include "discovery/fd_discovery.hpp"

namespace normalize {

class Tane : public FdDiscovery {
 public:
  explicit Tane(FdDiscoveryOptions options = {}) : FdDiscovery(options) {}

  std::string name() const override { return "Tane"; }
  Result<FdSet> Discover(const RelationData& data) override;
};

}  // namespace normalize
