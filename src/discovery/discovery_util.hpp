// Helpers shared by the discovery algorithms.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "fd/fd.hpp"
#include "fd/fd_tree.hpp"
#include "pli/pli.hpp"
#include "relation/relation_data.hpp"

namespace normalize {

/// Removes every stored FD that has a proper generalization in the tree,
/// leaving an antichain of minimal FDs per RHS attribute.
void MinimizeCover(FdTree* tree);

/// Checks lhs_attrs -> rhs_attr (local column indices) against the data and
/// returns one violating row pair (rows agreeing on the LHS but disagreeing
/// on rhs_attr), or nullopt if the FD holds. Pure read-only function of
/// immutable inputs — safe to run for many candidates concurrently. HyFD's
/// validation primitive, shared with the sharded merge-and-validate driver.
std::optional<std::pair<RowId, RowId>> ValidateFdCandidate(
    const RelationData& data, const PliCache& cache,
    const std::vector<AttributeId>& lhs_attrs, AttributeId rhs_attr);

/// Translates FDs expressed over local column indices (0..num_columns-1)
/// into the relation's global attribute-id space (capacity =
/// data.universe_size()) and aggregates them per LHS.
FdSet RemapToGlobal(const std::vector<Fd>& local_fds, const RelationData& data);

/// The agree set of two rows: all columns on which they share codes
/// (local column-index space).
AttributeSet AgreeSetOf(const RelationData& data, RowId r1, RowId r2);

/// Cross-relation agree set: all columns on which row r1 of `a` and row r2
/// of `b` share codes. Only meaningful when the two relations' columns share
/// value dictionaries (the sharded ingest guarantee) — codes then encode the
/// same strings on both sides.
AttributeSet AgreeSetOf(const RelationData& a, RowId r1, const RelationData& b,
                        RowId r2);

/// Rebuilds an FD cover tree (local column-index space) from a discovered
/// FD set expressed over global attribute ids, inverting RemapToGlobal.
FdTree BuildLocalFdTree(const FdSet& fds, const RelationData& data);

}  // namespace normalize
