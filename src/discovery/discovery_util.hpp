// Helpers shared by the discovery algorithms.
#pragma once

#include <vector>

#include "fd/fd.hpp"
#include "fd/fd_tree.hpp"
#include "pli/pli.hpp"
#include "relation/relation_data.hpp"

namespace normalize {

/// Removes every stored FD that has a proper generalization in the tree,
/// leaving an antichain of minimal FDs per RHS attribute.
void MinimizeCover(FdTree* tree);

/// Translates FDs expressed over local column indices (0..num_columns-1)
/// into the relation's global attribute-id space (capacity =
/// data.universe_size()) and aggregates them per LHS.
FdSet RemapToGlobal(const std::vector<Fd>& local_fds, const RelationData& data);

/// The agree set of two rows: all columns on which they share codes
/// (local column-index space).
AttributeSet AgreeSetOf(const RelationData& data, RowId r1, RowId r2);

}  // namespace normalize
