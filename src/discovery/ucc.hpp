// Minimal unique column combination (UCC) discovery in the spirit of DUCC
// (Heise et al., 2013), which the paper uses for the final primary-key
// selection (component 7): relations that never received a key during
// decomposition need their full set of candidate keys.
//
// This implementation is level-wise (Apriori) with PLI intersection and
// superset pruning — the decomposed relations it runs on are small, which is
// exactly the paper's argument for why this step is cheap at that stage.
#pragma once

#include <vector>

#include "common/attribute_set.hpp"
#include "common/result.hpp"
#include "relation/relation_data.hpp"

namespace normalize {

struct UccDiscoveryOptions {
  /// Maximum UCC size to search; <= 0 means unlimited.
  int max_size = -1;
  /// Columns that contain NULLs cannot participate (SQL keys forbid NULL).
  bool exclude_nullable_columns = true;
};

/// Discovers all minimal unique column combinations of `data`, expressed in
/// global attribute ids. Result sets are sorted by size, then lexicographic.
std::vector<AttributeSet> DiscoverMinimalUccs(const RelationData& data,
                                              UccDiscoveryOptions options = {});

}  // namespace normalize
