// BCNF violation detection — component (4), paper §6 Algorithm 4. An FD
// X -> Y violates BCNF iff X is neither a key nor a superkey, tested by a
// subset search in a prefix tree of the derived keys. FDs whose LHS columns
// contain NULLs are skipped (the LHS would become a primary key, and SQL
// forbids NULLs in keys), and FDs whose decomposition would break the
// current primary-key or a foreign-key constraint are filtered.
#pragma once

#include <vector>

#include "common/attribute_set.hpp"
#include "fd/fd.hpp"
#include "relation/schema.hpp"

namespace normalize {

/// The normal form the detector enforces. BCNF is the paper's default; 3NF
/// additionally drops violating FDs whose decomposition would split the LHS
/// of some other FD (dependency preservation, §6 last paragraph); 2NF only
/// reports *partial* dependencies — non-prime attributes depending on a
/// proper subset of a key (the weakest target, for illustration of the
/// paper's "one could set up other normalization criteria in this
/// component").
enum class NormalForm {
  kBcnf,
  kThirdNf,
  kSecondNf,
};

/// Finds all constraint-preserving BCNF-violating FDs of one relation.
///
/// `fds` must be the extended FDs projected to the relation,
/// `keys` the derived keys of the relation,
/// `nullable_attrs` the attributes that contain at least one NULL value,
/// `relation` supplies the current primary key and foreign keys.
///
/// Returned FDs may have their RHS reduced (primary-key attributes are
/// removed so decomposition cannot break the key, Alg. 4 line 11).
std::vector<Fd> DetectViolatingFds(const FdSet& fds,
                                   const std::vector<AttributeSet>& keys,
                                   const RelationSchema& relation,
                                   const AttributeSet& nullable_attrs,
                                   NormalForm normal_form = NormalForm::kBcnf);

}  // namespace normalize
