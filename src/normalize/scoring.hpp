// Constraint selection features — component (5)/(7), paper §7. Keys and
// violating FDs are scored for being "good" (semantically likely) primary-
// key / foreign-key constraints; candidates are then ranked so that an
// expert (or the automatic mode) picks from the top.
#pragma once

#include <string>
#include <vector>

#include "common/attribute_set.hpp"
#include "fd/fd.hpp"
#include "relation/relation_data.hpp"

namespace normalize {

/// Feature breakdown for a primary-key candidate (paper §7.1).
struct KeyScore {
  double length = 0;    // 1/|X| — short keys are likelier real keys
  double value = 0;     // 1/max(1, maxlen(X)-7) — key values are short
  double position = 0;  // keys sit left, without gaps
  double total = 0;     // mean of the features

  std::string ToString() const;
};

/// Feature breakdown for a violating-FD candidate (paper §7.2).
struct FdScore {
  double length = 0;       // short LHS, long RHS
  double value = 0;        // LHS becomes a primary key: short values
  double position = 0;     // coherent LHS / RHS attribute blocks
  double duplication = 0;  // many duplicates on both sides (Bloom-estimated)
  double total = 0;        // mean of the features

  std::string ToString() const;
};

/// A ranked key candidate.
struct ScoredKey {
  AttributeSet key;
  KeyScore score;
};

/// A ranked violating-FD candidate.
struct ScoredFd {
  Fd fd;
  FdScore score;
};

/// Scores key and violating-FD candidates against one relation instance.
/// Value and duplication features read the data; the distinct-value counts
/// they need are estimated with Bloom filters (§7.2, feature 4).
class ConstraintScorer {
 public:
  explicit ConstraintScorer(const RelationData& data);
  /// Scores against a sharded instance: `shards` must be non-empty row-range
  /// shards sharing one schema and one set of value dictionaries (the
  /// sharded-ingest invariant), in concatenation order. Every feature —
  /// including the Bloom estimates, which hash dictionary codes — equals the
  /// concatenated relation's feature, without materializing it.
  explicit ConstraintScorer(std::vector<const RelationData*> shards);

  KeyScore ScoreKey(const AttributeSet& key) const;
  FdScore ScoreFd(const Fd& violating_fd) const;

  /// Scores and sorts candidates descending by total score (stable: equal
  /// scores keep candidate order).
  std::vector<ScoredKey> RankKeys(const std::vector<AttributeSet>& keys) const;
  std::vector<ScoredFd> RankFds(const std::vector<Fd>& fds) const;

 private:
  double LengthScoreKey(const AttributeSet& x) const;
  double ValueScore(const AttributeSet& x) const;
  double PositionScoreKey(const AttributeSet& x) const;
  double LengthScoreFd(const Fd& fd) const;
  double PositionScoreFd(const Fd& fd) const;
  double DuplicationScore(const Fd& fd) const;

  /// Longest concatenated value (in characters) of the attribute set over
  /// all rows — the paper's max(X).
  size_t MaxConcatenatedLength(const AttributeSet& x) const;
  /// Bloom-filter estimate of the distinct count of the value combinations.
  double EstimateDistinct(const AttributeSet& x) const;
  /// Position (index) of attribute a in the relation's column order.
  int PositionOf(AttributeId a) const;
  /// The relation schema (ids, names, column order): shard 0 carries it for
  /// every shard.
  const RelationData& schema() const { return *shards_.front(); }

  std::vector<const RelationData*> shards_;
  size_t total_rows_ = 0;
};

}  // namespace normalize
