// The user-in-the-loop interface — the paper's (semi-)automatic mode. The
// normalizer presents ranked candidates; an Advisor picks one (or declines,
// which ends normalization of the current relation, §3 component 5).
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "normalize/scoring.hpp"
#include "relation/schema.hpp"

namespace normalize {

/// Decision interface consulted at each selection point.
class Advisor {
 public:
  virtual ~Advisor() = default;

  /// Picks a violating FD from the ranked candidates (best first). Returns
  /// the index of the chosen candidate, or -1 to stop normalizing this
  /// relation (all remaining candidates judged semantically wrong).
  virtual int ChooseViolatingFd(const Schema& schema,
                                int relation_index,
                                const std::vector<ScoredFd>& ranked) = 0;

  /// Picks a primary key from the ranked candidates, or -1 to leave the
  /// relation without a primary key.
  virtual int ChoosePrimaryKey(const Schema& schema,
                               int relation_index,
                               const std::vector<ScoredKey>& ranked) = 0;

  /// After a violating FD was chosen, the paper (§7.2, last paragraph) lets
  /// the user remove individual RHS attributes that other violating FDs also
  /// cover, so a later decomposition can claim them instead. `shared_rhs`
  /// is the subset of `chosen.rhs` that appears in some other candidate's
  /// RHS; the returned set (⊆ shared_rhs) is removed from the split. The
  /// default — and the automatic mode — removes nothing.
  virtual AttributeSet TrimSplitRhs(const Schema& schema, int relation_index,
                                    const Fd& chosen,
                                    const AttributeSet& shared_rhs) {
    (void)schema;
    (void)relation_index;
    (void)chosen;
    return AttributeSet(shared_rhs.capacity());
  }
};

/// The paper's automatic mode: always take the top-ranked candidate.
class AutoAdvisor : public Advisor {
 public:
  int ChooseViolatingFd(const Schema&, int,
                        const std::vector<ScoredFd>& ranked) override {
    return ranked.empty() ? -1 : 0;
  }
  int ChoosePrimaryKey(const Schema&, int,
                       const std::vector<ScoredKey>& ranked) override {
    return ranked.empty() ? -1 : 0;
  }
};

/// Replays a fixed sequence of decisions; used to test supervised runs and
/// to script demo sessions. When the script is exhausted, falls back to the
/// automatic choice (index 0).
class ScriptedAdvisor : public Advisor {
 public:
  /// Each entry is the index to return at the next decision point (FD and
  /// key decisions share one queue, in call order). -1 declines.
  explicit ScriptedAdvisor(std::vector<int> decisions)
      : decisions_(decisions.begin(), decisions.end()) {}

  int ChooseViolatingFd(const Schema&, int,
                        const std::vector<ScoredFd>& ranked) override {
    return Next(static_cast<int>(ranked.size()));
  }
  int ChoosePrimaryKey(const Schema&, int,
                       const std::vector<ScoredKey>& ranked) override {
    return Next(static_cast<int>(ranked.size()));
  }

 private:
  int Next(int num_candidates) {
    if (num_candidates == 0) return -1;
    if (decisions_.empty()) return 0;
    int d = decisions_.front();
    decisions_.pop_front();
    if (d >= num_candidates) d = 0;
    return d;
  }

  std::deque<int> decisions_;
};

}  // namespace normalize
