#include "normalize/scoring.hpp"

#include <algorithm>
#include <cstdio>

#include "common/bloom_filter.hpp"

namespace normalize {

namespace {

std::string FormatScore(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string KeyScore::ToString() const {
  return "total=" + FormatScore(total) + " (length=" + FormatScore(length) +
         ", value=" + FormatScore(value) +
         ", position=" + FormatScore(position) +
         ")";
}

std::string FdScore::ToString() const {
  return "total=" + FormatScore(total) + " (length=" + FormatScore(length) +
         ", value=" + FormatScore(value) +
         ", position=" + FormatScore(position) +
         ", duplication=" + FormatScore(duplication) + ")";
}

ConstraintScorer::ConstraintScorer(const RelationData& data)
    : ConstraintScorer(std::vector<const RelationData*>{&data}) {}

ConstraintScorer::ConstraintScorer(std::vector<const RelationData*> shards)
    : shards_(std::move(shards)) {
  for (const RelationData* shard : shards_) total_rows_ += shard->num_rows();
}

int ConstraintScorer::PositionOf(AttributeId a) const {
  return schema().ColumnIndexOf(a);
}

size_t ConstraintScorer::MaxConcatenatedLength(const AttributeSet& x) const {
  std::vector<int> cols;
  for (AttributeId a : x) {
    int ci = PositionOf(a);
    if (ci >= 0) cols.push_back(ci);
  }
  size_t max_len = 0;
  for (const RelationData* shard : shards_) {
    for (size_t r = 0; r < shard->num_rows(); ++r) {
      size_t len = 0;
      for (int ci : cols) len += shard->column(ci).ValueAt(r, "").size();
      max_len = std::max(max_len, len);
    }
  }
  return max_len;
}

double ConstraintScorer::EstimateDistinct(const AttributeSet& x) const {
  std::vector<int> cols;
  for (AttributeId a : x) {
    int ci = PositionOf(a);
    if (ci >= 0) cols.push_back(ci);
  }
  if (cols.empty() || total_rows_ == 0) return 0.0;
  // The Bloom filter is sized by the total row count and fed codes from the
  // shared dictionaries, so the estimate is shard-layout independent.
  if (cols.size() == 1) {
    // A single column's distinct count is known from the dictionary, but we
    // still use the Bloom estimate to match the paper's method (and tests
    // verify the estimate against this exact count).
    BloomFilter bloom(total_rows_);
    for (const RelationData* shard : shards_) {
      const Column& col = shard->column(cols[0]);
      for (size_t r = 0; r < shard->num_rows(); ++r) {
        bloom.InsertHash(
            static_cast<uint64_t>(col.code(r)) * 0x9e3779b97f4a7c15ull + 1);
      }
    }
    return std::min(bloom.EstimateCardinality(),
                    static_cast<double>(total_rows_));
  }
  BloomFilter bloom(total_rows_);
  for (const RelationData* shard : shards_) {
    for (size_t r = 0; r < shard->num_rows(); ++r) {
      uint64_t h = 1469598103934665603ull;
      for (int ci : cols) {
        h ^= static_cast<uint64_t>(shard->column(ci).code(r)) +
             0x9e3779b97f4a7c15ull;
        h *= 1099511628211ull;
      }
      bloom.InsertHash(h);
    }
  }
  return std::min(bloom.EstimateCardinality(),
                  static_cast<double>(total_rows_));
}

double ConstraintScorer::LengthScoreKey(const AttributeSet& x) const {
  int n = x.Count();
  return n == 0 ? 0.0 : 1.0 / n;
}

double ConstraintScorer::ValueScore(const AttributeSet& x) const {
  // 1 / max(1, |max(X)| - 7): keys with values up to 8 characters score 1.
  double len = static_cast<double>(MaxConcatenatedLength(x));
  return 1.0 / std::max(1.0, len - 7.0);
}

double ConstraintScorer::PositionScoreKey(const AttributeSet& x) const {
  // left(X): non-key attributes left of the first key attribute;
  // between(X): non-key attributes between first and last key attribute.
  std::vector<int> positions;
  for (AttributeId a : x) {
    int p = PositionOf(a);
    if (p >= 0) positions.push_back(p);
  }
  if (positions.empty()) return 0.0;
  std::sort(positions.begin(), positions.end());
  int left = positions.front();
  int span = positions.back() - positions.front() + 1;
  int between = span - static_cast<int>(positions.size());
  return 0.5 * (1.0 / (left + 1) + 1.0 / (between + 1));
}

KeyScore ConstraintScorer::ScoreKey(const AttributeSet& key) const {
  KeyScore s;
  s.length = LengthScoreKey(key);
  s.value = ValueScore(key);
  s.position = PositionScoreKey(key);
  s.total = (s.length + s.value + s.position) / 3.0;
  return s;
}

double ConstraintScorer::LengthScoreFd(const Fd& fd) const {
  // 1/2 (1/|X| + |Y|/(|R|-2)): short LHS (it becomes a key) and long RHS
  // (large split-off relations raise confidence and effectiveness). |R|-2 is
  // the maximum possible RHS size, so the second term normalizes to [0,1].
  int x = fd.lhs.Count();
  int y = fd.rhs.Count();
  int r = schema().num_columns();
  double lhs_score = x == 0 ? 0.0 : 1.0 / x;
  double rhs_score = r <= 2 ? 1.0 : static_cast<double>(y) / (r - 2);
  return 0.5 * (lhs_score + std::min(1.0, rhs_score));
}

double ConstraintScorer::PositionScoreFd(const Fd& fd) const {
  auto between_of = [&](const AttributeSet& set) {
    std::vector<int> positions;
    for (AttributeId a : set) {
      int p = PositionOf(a);
      if (p >= 0) positions.push_back(p);
    }
    if (positions.empty()) return 0;
    std::sort(positions.begin(), positions.end());
    int span = positions.back() - positions.front() + 1;
    return span - static_cast<int>(positions.size());
  };
  return 0.5 *
         (1.0 / (between_of(fd.lhs) + 1) + 1.0 / (between_of(fd.rhs) + 1));
}

double ConstraintScorer::DuplicationScore(const Fd& fd) const {
  // 1/2 (2 - uniques(X)/values(X) - uniques(Y)/values(Y)): the more
  // duplication on both sides, the more redundancy the split removes — and
  // many LHS duplicates without a violation indicate semantic correctness.
  double rows = static_cast<double>(total_rows_);
  if (rows == 0) return 0.0;
  double ux = EstimateDistinct(fd.lhs) / rows;
  double uy = EstimateDistinct(fd.rhs) / rows;
  return 0.5 * (2.0 - std::min(1.0, ux) - std::min(1.0, uy));
}

FdScore ConstraintScorer::ScoreFd(const Fd& fd) const {
  FdScore s;
  s.length = LengthScoreFd(fd);
  s.value = ValueScore(fd.lhs);
  s.position = PositionScoreFd(fd);
  s.duplication = DuplicationScore(fd);
  s.total = (s.length + s.value + s.position + s.duplication) / 4.0;
  return s;
}

std::vector<ScoredKey> ConstraintScorer::RankKeys(
    const std::vector<AttributeSet>& keys) const {
  std::vector<ScoredKey> ranked;
  ranked.reserve(keys.size());
  for (const AttributeSet& key : keys) ranked.push_back({key, ScoreKey(key)});
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const ScoredKey& a, const ScoredKey& b) {
                     return a.score.total > b.score.total;
                   });
  return ranked;
}

std::vector<ScoredFd> ConstraintScorer::RankFds(
    const std::vector<Fd>& fds) const {
  std::vector<ScoredFd> ranked;
  ranked.reserve(fds.size());
  for (const Fd& fd : fds) ranked.push_back({fd, ScoreFd(fd)});
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const ScoredFd& a, const ScoredFd& b) {
                     return a.score.total > b.score.total;
                   });
  return ranked;
}

}  // namespace normalize
