#include "normalize/constraint_monitor.hpp"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "relation/operations.hpp"

namespace normalize {

namespace {

struct CodeVecHash {
  size_t operator()(const std::vector<ValueId>& v) const {
    size_t h = 1469598103934665603ull;
    for (ValueId x : v) {
      h ^= static_cast<size_t>(x) + 0x9e3779b97f4a7c15ull;
      h *= 1099511628211ull;
    }
    return h;
  }
};

struct StringVecHash {
  size_t operator()(const std::vector<std::string>& v) const {
    size_t h = 1469598103934665603ull;
    for (const std::string& s : v) {
      for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
      }
      h = h * 1099511628211ull + 17;
    }
    return h;
  }
};

std::vector<int> ColumnsOf(const RelationData& data, const AttributeSet& set) {
  std::vector<int> cols;
  for (AttributeId a : set) {
    int ci = data.ColumnIndexOf(a);
    if (ci >= 0) cols.push_back(ci);
  }
  return cols;
}

}  // namespace

std::string ConstraintViolation::ToString(const Schema& schema) const {
  std::ostringstream os;
  const std::string& rel_name =
      relation >= 0 && relation < static_cast<int>(schema.relations().size())
          ? schema.relation(relation).name()
          : "?";
  switch (kind) {
    case Kind::kPrimaryKeyDuplicate:
      os << rel_name << ": duplicate primary key "
         << attributes.ToString(schema.attribute_names());
      break;
    case Kind::kPrimaryKeyNull:
      os << rel_name << ": NULL in primary key "
         << attributes.ToString(schema.attribute_names());
      break;
    case Kind::kForeignKeyOrphan:
      os << rel_name << ": orphaned foreign key "
         << attributes.ToString(schema.attribute_names());
      break;
    case Kind::kFdViolation:
      os << rel_name << ": FD " << attributes.ToString(schema.attribute_names())
         << " -> " << fd_rhs.ToString(schema.attribute_names())
         << " no longer holds";
      break;
  }
  os << " (rows";
  for (size_t r : rows) os << " " << r;
  os << ")";
  return os.str();
}

std::vector<ConstraintViolation> CheckSchemaConstraints(
    const Schema& schema, const std::vector<RelationData>& relations) {
  std::vector<ConstraintViolation> violations;

  for (size_t i = 0; i < schema.relations().size() && i < relations.size();
       ++i) {
    const RelationSchema& rel = schema.relation(static_cast<int>(i));
    const RelationData& data = relations[i];

    // --- primary key: NULL-freeness and uniqueness with witnesses ---
    if (rel.has_primary_key() && !rel.primary_key().Empty()) {
      std::vector<int> pk_cols = ColumnsOf(data, rel.primary_key());
      std::unordered_map<std::vector<ValueId>, size_t, CodeVecHash> seen;
      for (size_t r = 0; r < data.num_rows(); ++r) {
        bool has_null = false;
        std::vector<ValueId> key(pk_cols.size());
        for (size_t k = 0; k < pk_cols.size(); ++k) {
          const Column& col = data.column(pk_cols[k]);
          if (col.IsNull(r)) has_null = true;
          key[k] = col.code(r);
        }
        if (has_null) {
          violations.push_back({ConstraintViolation::Kind::kPrimaryKeyNull,
                                static_cast<int>(i), rel.primary_key(),
                                AttributeSet(rel.primary_key().capacity()),
                                {r}});
          continue;
        }
        auto [it, inserted] = seen.emplace(std::move(key), r);
        if (!inserted) {
          violations.push_back({ConstraintViolation::Kind::kPrimaryKeyDuplicate,
                                static_cast<int>(i), rel.primary_key(),
                                AttributeSet(rel.primary_key().capacity()),
                                {it->second, r}});
        }
      }
    }

    // --- foreign keys: every non-NULL FK value combination must exist in
    // the referenced relation (compared by value: codes are per-column) ---
    for (const ForeignKey& fk : rel.foreign_keys()) {
      if (fk.target_relation < 0 ||
          fk.target_relation >= static_cast<int>(relations.size())) {
        continue;
      }
      const RelationData& target =
          relations[static_cast<size_t>(fk.target_relation)];
      std::vector<int> src_cols = ColumnsOf(data, fk.attributes);
      std::vector<int> dst_cols = ColumnsOf(target, fk.attributes);
      if (src_cols.size() != dst_cols.size()) continue;

      std::unordered_set<std::vector<std::string>, StringVecHash> present;
      for (size_t r = 0; r < target.num_rows(); ++r) {
        std::vector<std::string> key;
        key.reserve(dst_cols.size());
        bool has_null = false;
        for (int c : dst_cols) {
          if (target.column(c).IsNull(r)) has_null = true;
          key.emplace_back(target.column(c).ValueAt(r, ""));
        }
        if (!has_null) present.insert(std::move(key));
      }
      for (size_t r = 0; r < data.num_rows(); ++r) {
        std::vector<std::string> key;
        key.reserve(src_cols.size());
        bool has_null = false;
        for (int c : src_cols) {
          if (data.column(c).IsNull(r)) has_null = true;  // SQL: NULL FK ok
          key.emplace_back(data.column(c).ValueAt(r, ""));
        }
        if (has_null) continue;
        if (!present.count(key)) {
          violations.push_back({ConstraintViolation::Kind::kForeignKeyOrphan,
                                static_cast<int>(i), fk.attributes,
                                AttributeSet(fk.attributes.capacity()),
                                {r}});
        }
      }
    }
  }
  return violations;
}

std::vector<ConstraintViolation> CheckFds(const Schema& schema,
                                          int relation_index,
                                          const RelationData& data,
                                          const FdSet& fds) {
  (void)schema;
  std::vector<ConstraintViolation> violations;
  AttributeSet rel_attrs = data.AttributesAsSet();
  for (const Fd& fd : fds) {
    if (!fd.lhs.IsSubsetOf(rel_attrs)) continue;
    AttributeSet rhs = fd.rhs.Intersect(rel_attrs);
    if (rhs.Empty()) continue;

    std::vector<int> lhs_cols = ColumnsOf(data, fd.lhs);
    std::unordered_map<std::vector<ValueId>, size_t, CodeVecHash> reps;
    AttributeSet violated(rel_attrs.capacity());
    std::vector<size_t> witness;
    std::vector<ValueId> key(lhs_cols.size());
    for (size_t r = 0; r < data.num_rows() && witness.empty(); ++r) {
      for (size_t k = 0; k < lhs_cols.size(); ++k) {
        key[k] = data.column(lhs_cols[k]).code(r);
      }
      auto [it, inserted] = reps.emplace(key, r);
      if (inserted) continue;
      for (AttributeId a : rhs) {
        int ci = data.ColumnIndexOf(a);
        if (data.column(ci).code(it->second) != data.column(ci).code(r)) {
          violated.Set(a);
        }
      }
      if (!violated.Empty()) witness = {it->second, r};
    }
    if (!violated.Empty()) {
      violations.push_back({ConstraintViolation::Kind::kFdViolation,
                            relation_index, fd.lhs, violated, witness});
    }
  }
  return violations;
}

}  // namespace normalize
