// SQL DDL export: renders a normalized schema as CREATE TABLE statements
// with PRIMARY KEY and FOREIGN KEY constraints — what a user deploying the
// normalization result to an RDBMS needs. Types are inferred from the data
// (INTEGER / DOUBLE PRECISION / VARCHAR(n)); NOT NULL is emitted for
// columns without NULLs.
#pragma once

#include <string>
#include <vector>

#include "relation/relation_data.hpp"
#include "relation/schema.hpp"

namespace normalize {

struct SqlExportOptions {
  /// Dialect knob: quote identifiers with double quotes.
  bool quote_identifiers = false;
  /// Emit NOT NULL for NULL-free columns.
  bool emit_not_null = true;
};

/// Infers a SQL column type from the observed values of a column.
std::string InferSqlType(const Column& column);

/// Renders CREATE TABLE statements for all relations of `schema`, reading
/// column types and NULLability from the parallel `relations` instances.
/// Tables are emitted in dependency order (referenced tables first) so the
/// script runs against a foreign-key-enforcing database.
std::string ExportSqlDdl(const Schema& schema,
                         const std::vector<RelationData>& relations,
                         SqlExportOptions options = {});

}  // namespace normalize
