#include "normalize/violation_detection.hpp"

#include "fd/set_trie.hpp"

namespace normalize {

std::vector<Fd> DetectViolatingFds(const FdSet& fds,
                                   const std::vector<AttributeSet>& keys,
                                   const RelationSchema& relation,
                                   const AttributeSet& nullable_attrs,
                                   NormalForm normal_form) {
  SetTrie key_trie;
  for (const AttributeSet& key : keys) key_trie.Insert(key);

  std::vector<Fd> violating;
  for (const Fd& fd : fds) {
    // An empty LHS (constant columns) cannot become a primary key — SQL has
    // no zero-attribute keys. Constant attributes instead ride along in the
    // extended RHS of whichever FD is split first.
    if (fd.lhs.Empty()) continue;
    // (Alg. 4, line 6) LHSs with NULL values cannot become primary keys.
    if (fd.lhs.Intersects(nullable_attrs)) continue;
    // (line 8) X is a key or superkey -> no BCNF violation.
    if (key_trie.ContainsSubsetOf(fd.lhs)) continue;

    Fd candidate = fd;
    // (line 11) Never move primary-key attributes out of the relation.
    if (relation.has_primary_key()) {
      candidate.rhs.DifferenceWith(relation.primary_key());
      if (candidate.rhs.Empty()) continue;
    }
    // (line 12) Every foreign key must survive in one of the two new
    // relations R1 = R \ rhs (∪ lhs) or R2 = lhs ∪ rhs. A foreign key that
    // loses attributes to R2 while not fitting inside R2 breaks.
    bool breaks_fk = false;
    AttributeSet r2 = candidate.lhs.Union(candidate.rhs);
    for (const ForeignKey& fk : relation.foreign_keys()) {
      if (fk.attributes.Intersects(candidate.rhs) &&
          !fk.attributes.IsSubsetOf(r2)) {
        breaks_fk = true;
        break;
      }
    }
    if (breaks_fk) continue;

    violating.push_back(std::move(candidate));
  }

  if (normal_form == NormalForm::kSecondNf) {
    // Keep only partial dependencies: LHS a proper subset of some key,
    // RHS restricted to non-prime attributes.
    AttributeSet prime(nullable_attrs.capacity());
    for (const AttributeSet& key : keys) prime.UnionWith(key);
    std::vector<Fd> partial;
    for (Fd v : violating) {
      bool inside_a_key = false;
      for (const AttributeSet& key : keys) {
        if (v.lhs.IsProperSubsetOf(key)) inside_a_key = true;
      }
      if (!inside_a_key) continue;
      v.rhs.DifferenceWith(prime);
      if (v.rhs.Empty()) continue;
      partial.push_back(std::move(v));
    }
    return partial;
  }
  if (normal_form == NormalForm::kThirdNf) {
    // Keep only dependency-preserving options: a violating FD whose R2 would
    // split the LHS of some other FD of the relation is discarded.
    std::vector<Fd> preserved;
    for (const Fd& v : violating) {
      AttributeSet r2 = v.lhs.Union(v.rhs);
      bool splits_other_lhs = false;
      for (const Fd& other : fds) {
        if (other.lhs == v.lhs) continue;
        // After decomposition, `other`'s LHS must fit entirely in R1 or R2.
        AttributeSet r1_loss = other.lhs.Intersect(v.rhs);
        if (!r1_loss.Empty() && !other.lhs.IsSubsetOf(r2)) {
          splits_other_lhs = true;
          break;
        }
      }
      if (!splits_other_lhs) preserved.push_back(v);
    }
    return preserved;
  }
  return violating;
}

}  // namespace normalize
