// Schema decomposition — component (6). Splitting relation R on a violating
// FD X -> Y yields R1 = R \ Y (keeping X, which becomes a foreign key) and
// R2 = X ∪ Y with primary key X. The natural join R1 ⋈ R2 reproduces R
// exactly (lossless decomposition; verified by the property tests).
#pragma once

#include <string>
#include <vector>

#include "common/attribute_set.hpp"
#include "fd/fd.hpp"
#include "relation/relation_data.hpp"
#include "relation/schema.hpp"

namespace normalize {

/// The instance-level result of one decomposition step.
struct Decomposition {
  RelationData r1;  // remainder: R \ Y (contains X)
  RelationData r2;  // split-off: X ∪ Y, duplicates removed, key X
};

/// Splits the instance `data` on the violating FD. `r2_name` names the new
/// relation; R1 keeps the original name.
Decomposition DecomposeData(const RelationData& data, const Fd& violating_fd,
                            const std::string& r2_name);

/// The instance-level result of one out-of-core decomposition step: R1 and
/// R2 as shard vectors (shard i of each output projects input shard i).
struct ShardedDecomposition {
  std::vector<RelationData> r1;
  std::vector<RelationData> r2;
};

/// Sharded DecomposeData: splits a dictionary-sharing shard vector without
/// concatenating it (relation/operations.hpp, ProjectShardsDistinct).
/// Concatenating each output equals DecomposeData on the concatenated input
/// bit-for-bit. `transient_bytes`, when non-null, receives the larger of the
/// two projections' cross-shard dedup footprints — the step's transient
/// working memory.
ShardedDecomposition DecomposeDataShards(
    const std::vector<RelationData>& shards, const Fd& violating_fd,
    const std::string& r2_name, size_t* transient_bytes = nullptr);

/// Applies one decomposition to the schema: relation `relation_index` is
/// replaced in place by R1 (its index — and thus all foreign keys pointing
/// at it — stays valid); R2 is appended with primary key X; R1 receives a
/// foreign key X -> R2; existing foreign keys that moved entirely into R2
/// are transferred. Returns the index of the new R2 relation.
int DecomposeSchema(Schema* schema, int relation_index, const Fd& violating_fd,
                    const std::string& r2_name);

}  // namespace normalize
