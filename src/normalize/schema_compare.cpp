#include "normalize/schema_compare.hpp"

#include <sstream>

namespace normalize {

RecoveryReport CompareToGold(const Schema& gold, const Schema& output,
                             const AttributeSet& ignored) {
  RecoveryReport report;
  double jaccard_sum = 0.0;
  for (const RelationSchema& g : gold.relations()) {
    RelationMatch match;
    match.gold_name = g.name();
    AttributeSet g_attrs = g.attributes().Difference(ignored);
    for (size_t i = 0; i < output.relations().size(); ++i) {
      const RelationSchema& o = output.relation(static_cast<int>(i));
      AttributeSet o_attrs = o.attributes().Difference(ignored);
      int inter = g_attrs.Intersect(o_attrs).Count();
      int uni = g_attrs.Union(o_attrs).Count();
      double j = uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
      if (j > match.jaccard) {
        match.jaccard = j;
        match.best_output = static_cast<int>(i);
      }
    }
    if (match.best_output >= 0) {
      const RelationSchema& o = output.relation(match.best_output);
      match.exact = o.attributes().Difference(ignored) == g_attrs;
      if (g.has_primary_key() && o.has_primary_key()) {
        match.key_recovered = g.primary_key() == o.primary_key();
      }
    }
    jaccard_sum += match.jaccard;
    report.exact_count += match.exact ? 1 : 0;
    report.key_count += match.key_recovered ? 1 : 0;
    report.matches.push_back(std::move(match));
  }
  if (!gold.relations().empty()) {
    report.average_jaccard = jaccard_sum / gold.relations().size();
  }
  return report;
}

std::string RecoveryReport::ToString(const Schema& gold,
                                     const Schema& output) const {
  (void)gold;
  std::ostringstream os;
  for (const RelationMatch& m : matches) {
    os << "  " << m.gold_name << " -> ";
    if (m.best_output < 0) {
      os << "(no match)";
    } else {
      os << output.relation(m.best_output).name();
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  jaccard=%.2f%s%s", m.jaccard,
                  m.exact ? " [exact]" : "",
                  m.key_recovered ? " [key]" : "");
    os << buf << "\n";
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "  avg jaccard=%.2f, exact=%d/%zu, keys=%d/%zu\n",
                average_jaccard, exact_count, matches.size(), key_count,
                matches.size());
  os << buf;
  return os.str();
}

}  // namespace normalize
