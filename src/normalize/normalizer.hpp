// Normalize — the paper's end-to-end algorithm (Figure 1). Orchestrates:
//   (1) FD discovery            -> discovery/
//   (2) closure calculation     -> closure/
//   (3) key derivation          -> key_derivation
//   (4) violating-FD detection  -> violation_detection
//   (5) violating-FD selection  -> scoring + Advisor
//   (6) schema decomposition    -> decomposition
//   (7) primary-key selection   -> scoring + Advisor (+ UCC discovery)
// Steps (3)-(6) loop until no relation violates the target normal form.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audit/audit_report.hpp"
#include "common/result.hpp"
#include "common/run_context.hpp"
#include "common/stopwatch.hpp"
#include "discovery/fd_discovery.hpp"
#include "fd/fd.hpp"
#include "normalize/advisor.hpp"
#include "normalize/violation_detection.hpp"
#include "persist/checkpoint_options.hpp"
#include "relation/csv.hpp"
#include "relation/relation_data.hpp"
#include "relation/schema.hpp"
#include "shard/shard_options.hpp"

namespace normalize {

class ThreadPool;

struct NormalizerOptions {
  /// FD discovery algorithm: "hyfd" (default), "tane", "fdep", "naive".
  std::string discovery_algorithm = "hyfd";
  FdDiscoveryOptions discovery;
  /// Closure algorithm: "optimized" (default), "improved", "naive".
  std::string closure_algorithm = "optimized";
  /// Threads for the closure FD loop (1 = serial).
  int closure_threads = 1;
  /// Target normal form (BCNF by default).
  NormalForm normal_form = NormalForm::kBcnf;
  /// Run component (7): assign primary keys to key-less relations.
  bool select_primary_keys = true;
  /// Safety bound on the number of decomposition steps.
  int max_decompositions = 100000;
  /// Sharded / out-of-core pipeline (src/shard/): shard_rows > 0 makes
  /// Normalize() run partitioned FD discovery over row-range shards of the
  /// input, and NormalizeCsvFile() stream its input under
  /// shard.memory_budget_bytes. The discovered FD set — and hence the
  /// normalization result — is identical to the unsharded run.
  ShardOptions shard;
  /// Robustness context threaded through every stage (not owned; null = no
  /// limits). Cancellation aborts the run with kCancelled. A deadline makes
  /// it degrade instead of fail: discovery keeps its sound partial cover
  /// (or reruns bounded, see degrade_on_deadline), later stages run to
  /// completion on what discovery produced, and NormalizationStats records
  /// the interruption and everything that was skipped.
  const RunContext* context = nullptr;
  /// Retry schedule for transient (kUnavailable) shard-ingest I/O errors in
  /// NormalizeCsvFile().
  RetryPolicy ingest_retry;
  /// When full FD discovery exceeds the deadline, rerun it once with
  /// max_lhs_size bounded to this value — the paper's memory-pruning rule
  /// doubling as a time-pruning rule. 0 disables the fallback (the partial
  /// cover of the interrupted run is used instead). The degraded pass runs
  /// without a deadline but stays cancellable.
  int degraded_max_lhs = 2;
  bool degrade_on_deadline = true;
  /// Pick the degraded max_lhs_size from the interrupted run's per-level
  /// phase timings (PickDegradedMaxLhs) instead of the degraded_max_lhs
  /// constant. Falls back to the constant when the interrupted run produced
  /// no usable per-level records (e.g. it died in sampling).
  bool adaptive_degradation = true;
  /// Persistent pipeline state (src/persist/): with a checkpoint directory
  /// set, NormalizeCsvFile() and Normalize() persist each completed stage
  /// (ingest shards, per-shard covers + PLIs, merge frontier, final cover),
  /// and an interrupted run returns its interruption instead of degrading —
  /// rerunning with `checkpoint.resume` continues from the last completed
  /// stage and produces the schema an uninterrupted run would have.
  CheckpointOptions checkpoint;
  /// Run the correctness auditor (audit/decomposition_auditor.hpp) on the
  /// finished result: chase-based lossless-join proof, instance rejoin,
  /// normal-form compliance of every output relation, and cover soundness.
  /// The report lands in NormalizationResult::audit; a failed audit never
  /// fails the run (callers decide — the CLI maps it to a nonzero exit).
  bool audit = false;
  AuditOptions audit_options;
};

/// Per-component wall-clock times and counters (the paper's Table 3 rows).
struct NormalizationStats {
  size_t num_fds = 0;       // minimal (unary) FDs discovered
  size_t num_fd_keys = 0;   // keys derivable from the extended FDs ("FD-Keys")
  double avg_rhs_before = 0.0;  // aggregated-FD RHS size before closure
  double avg_rhs_after = 0.0;   // ... and after (§8.2 reports this growth)

  double fd_discovery_s = 0.0;
  double closure_s = 0.0;
  double key_derivation_first_s = 0.0;       // first call (Table 3 semantics)
  double violation_detection_first_s = 0.0;  // first call
  double key_derivation_total_s = 0.0;
  double violation_detection_total_s = 0.0;
  double total_s = 0.0;

  int decompositions = 0;

  /// Fine-grained phase breakdown: the discovery algorithm's internal
  /// phases (prefixed "discovery/") plus the pipeline components above.
  /// Rendered by normalize/report and the benchmarks.
  PhaseMetrics phases;

  /// OK for a complete run; kDeadlineExceeded when the deadline forced the
  /// pipeline to degrade or skip work (`skipped` lists what). A cancelled
  /// run returns an error instead of a result, so kCancelled never appears
  /// here.
  Status completion;
  /// Transient shard-ingest read failures that were retried successfully.
  size_t ingest_retries = 0;
  /// FD discovery was rerun with a bounded max_lhs_size after the full run
  /// exceeded the deadline.
  bool degraded_discovery = false;
  /// The adaptively chosen bound of that rerun (PickDegradedMaxLhs); 0 when
  /// the constant NormalizerOptions::degraded_max_lhs was used instead.
  int adaptive_degraded_max_lhs = 0;
  /// Human-readable notes on everything the deadline forced the run to
  /// skip or curtail, in pipeline order.
  std::vector<std::string> skipped;

  /// Peak size of the streaming ingest text buffer (NormalizeCsvFile; stays
  /// within ShardOptions::memory_budget_bytes).
  size_t peak_ingest_buffer_bytes = 0;
  /// Peak transient working memory of one out-of-core decomposition step —
  /// the cross-shard dedup set of ProjectShardsDistinct, released after each
  /// step. Like the ingest buffer, this is the number the memory budget
  /// governs; the dictionary-encoded shards themselves are not counted
  /// (matching the sharded-ingest budget semantics).
  size_t peak_projection_buffer_bytes = 0;
  /// Per-shard PLI sets served from a checkpoint (or the discovery handoff)
  /// instead of being rebuilt.
  size_t plis_reused = 0;
  /// This run resumed from a checkpoint directory; `resumed_stages` lists
  /// the stages that were loaded instead of recomputed, in pipeline order.
  bool resumed = false;
  std::vector<std::string> resumed_stages;
};

/// Picks the LHS-size bound for the degraded discovery rerun from the
/// interrupted run's per-level phase records — "validation_L<k>" (HyFD),
/// "merge_validation_L<k>" (sharded merge), "compute_deps_L<k>" (TANE),
/// with or without the "discovery/" prefix, where k is the LHS size.
/// Returns the largest bound whose cumulative per-level time still fits in
/// half the deadline budget (the rest pays for sampling, induction, and the
/// stages after discovery); 0 when no record supports even level 1 — the
/// caller then falls back to the NormalizerOptions::degraded_max_lhs
/// constant.
int PickDegradedMaxLhs(const PhaseMetrics& discovery_phases,
                       double budget_seconds);

/// One decision taken during normalization — the audit trail of the
/// (semi-)automatic process, whether the advisor was a human or the
/// top-ranked default.
struct DecisionRecord {
  enum class Kind {
    kSplit,             // a violating FD was chosen for decomposition
    kSplitDeclined,     // the advisor rejected all split candidates
    kPrimaryKey,        // a primary key was assigned in component (7)
    kPrimaryKeyDeclined
  };

  Kind kind;
  std::string relation;     // relation name at decision time
  Fd chosen_fd;             // kSplit only
  AttributeSet chosen_key;  // kPrimaryKey only
  double score = 0.0;       // total score of the chosen candidate
  int rank = 0;             // position picked in the ranking (0 = top)
  int num_candidates = 0;

  std::string ToString(const std::vector<std::string>& attribute_names) const;
};

/// The normalized schema with its per-relation instances (parallel vectors:
/// relations[i] is the data of schema.relation(i)).
struct NormalizationResult {
  Schema schema;
  std::vector<RelationData> relations;
  FdSet extended_fds;  // the global closure, for inspection/reports
  /// The minimal cover exactly as discovery produced it, before closure
  /// extension. The auditor's minimality/completeness checks need this form
  /// (extended RHSs are intentionally not per-attribute LHS-minimal).
  FdSet discovered_fds;
  NormalizationStats stats;
  std::vector<DecisionRecord> decisions;  // audit trail, in order
  /// Present iff NormalizerOptions::audit was set.
  std::optional<AuditReport> audit;
};

/// The end-to-end normalization algorithm.
class Normalizer {
 public:
  /// `advisor` == nullptr selects the fully automatic mode (AutoAdvisor).
  explicit Normalizer(NormalizerOptions options = {},
                      Advisor* advisor = nullptr);

  ~Normalizer();

  /// Normalizes a single relational instance into the target normal form.
  Result<NormalizationResult> Normalize(const RelationData& input);

  /// Components (2)-(7) on a pre-discovered minimal cover of `input` —
  /// the re-normalization path of the incremental engine (src/live/): a
  /// DeltaFdMaintainer keeps the cover exact under churn, and every
  /// published epoch can be turned into a fresh normalized schema without
  /// re-running discovery. `cover` must be the complete set of minimal FDs
  /// of `input` in global attribute space (a CoverSnapshot::cover or any
  /// Discover() result); the output is then identical to Normalize(input)
  /// under the same options, minus the discovery time.
  Result<NormalizationResult> RenormalizeWithCover(const RelationData& input,
                                                   FdSet cover);

  /// Convenience: normalizes several independent instances.
  Result<std::vector<NormalizationResult>> NormalizeAll(
      const std::vector<RelationData>& inputs);

  /// Streams a CSV file through the sharded ingest (text buffer bounded by
  /// options.shard.memory_budget_bytes), discovers FDs per shard with
  /// merge-and-validate, and normalizes. With shard_rows == 0 this is
  /// equivalent to CsvReader::ReadFile + Normalize.
  Result<NormalizationResult> NormalizeCsvFile(
      const std::string& path, const CsvOptions& csv_options = {});

 private:
  /// The lazily created process-wide pool shared by discovery, closure, and
  /// sharded discovery — repeated Normalize() calls reuse one set of worker
  /// threads. Returns nullptr when every thread knob resolves to serial.
  ThreadPool* SharedPool();

  /// Records component-(1) statistics common to all discovery paths.
  void RecordDiscoveryStats(NormalizationStats* stats, const FdSet& fds,
                            double seconds,
                            const PhaseMetrics& discovery_phases);

  /// The deadline-degradation ladder after discovery. `completion` is the
  /// discovery run's completion status; `rerun` re-executes discovery with
  /// degraded options and reports its completion through the out-param.
  /// Returns kCancelled to abort the run; otherwise OK, with `fds`/`stats`
  /// updated to the cover the pipeline should continue on.
  Status ApplyDiscoveryDegradation(
      Status completion, FdSet* fds, NormalizationStats* stats,
      const std::function<Result<FdSet>(const FdDiscoveryOptions&, Status*)>&
          rerun);

  /// Components (2)-(7) on pre-discovered FDs; discovery statistics must
  /// already be recorded in result.stats. `input_shards` is the instance as
  /// dictionary-sharing row-range shards (a single shard = the in-memory
  /// path); with several shards the decomposition loop stays out-of-core
  /// (ProjectShardsDistinct), and relations are only concatenated for the
  /// final result — the output is bit-identical either way. `ctx` (may be
  /// null) is polled at stage boundaries: kCancelled aborts, a deadline
  /// curtails the decomposition loop / primary-key selection with notes in
  /// stats.skipped.
  Result<NormalizationResult> FinishNormalization(
      const std::string& input_name, std::vector<RelationData> input_shards,
      FdSet fds, NormalizationResult result, const Stopwatch& total_watch,
      const RunContext* ctx);

  NormalizerOptions options_;
  AutoAdvisor auto_advisor_;
  Advisor* advisor_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace normalize
