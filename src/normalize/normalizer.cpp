#include "normalize/normalizer.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>

#include "audit/decomposition_auditor.hpp"
#include "closure/closure.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "discovery/ucc.hpp"
#include "normalize/decomposition.hpp"
#include "normalize/key_derivation.hpp"
#include "normalize/scoring.hpp"
#include "shard/sharded_csv.hpp"
#include "shard/sharded_discovery.hpp"

namespace normalize {

std::string DecisionRecord::ToString(
    const std::vector<std::string>& attribute_names) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " (score %.3f, rank %d of %d)", score, rank,
                num_candidates);
  switch (kind) {
    case Kind::kSplit:
      return relation + ": split on " + chosen_fd.ToString(attribute_names) +
             buf;
    case Kind::kSplitDeclined:
      return relation + ": all " + std::to_string(num_candidates) +
             " split candidates declined";
    case Kind::kPrimaryKey:
      return relation + ": primary key " +
             chosen_key.ToString(attribute_names) + buf;
    case Kind::kPrimaryKeyDeclined:
      return relation + ": left without a primary key (" +
             std::to_string(num_candidates) + " candidates declined)";
  }
  return relation;
}

Normalizer::Normalizer(NormalizerOptions options, Advisor* advisor)
    : options_(std::move(options)),
      advisor_(advisor != nullptr ? advisor : &auto_advisor_) {}

Normalizer::~Normalizer() = default;

ThreadPool* Normalizer::SharedPool() {
  int want = std::max({ResolveThreadCount(options_.discovery.threads),
                       ResolveThreadCount(options_.closure_threads),
                       ResolveThreadCount(options_.shard.threads)});
  if (want <= 1) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(want);
  if (options_.context != nullptr) {
    // Cancelling the run makes the shared pool reject new tasks fast.
    pool_->SetCancellation(options_.context->cancel);
  }
  return pool_.get();
}

void Normalizer::RecordDiscoveryStats(NormalizationStats* stats,
                                      const FdSet& fds, double seconds,
                                      const PhaseMetrics& discovery_phases) {
  stats->fd_discovery_s = seconds;
  stats->num_fds = fds.CountUnaryFds();
  stats->avg_rhs_before = fds.AverageRhsSize();
  stats->phases.Record("fd_discovery", seconds, stats->num_fds);
  stats->phases.MergeFrom(discovery_phases, "discovery/");
}

Result<NormalizationResult> Normalizer::Normalize(const RelationData& input) {
  Stopwatch total_watch;
  NormalizationResult result;
  const RunContext* ctx = options_.context;

  // --- (1) FD discovery ---
  // One attempt with the given options; completion reports interruptions.
  auto run_discovery = [&](const FdDiscoveryOptions& opts,
                           Status* completion) -> Result<FdSet> {
    Stopwatch watch;
    if (options_.shard.shard_rows > 0) {
      ShardedDiscovery discovery(options_.discovery_algorithm, opts,
                                 options_.shard);
      auto fds_result = discovery.Discover(input);
      if (!fds_result.ok()) return fds_result.status();
      *completion = discovery.completion_status();
      RecordDiscoveryStats(&result.stats, *fds_result, watch.ElapsedSeconds(),
                           discovery.phase_metrics());
      return std::move(fds_result).value();
    }
    std::unique_ptr<FdDiscovery> discovery =
        MakeFdDiscovery(options_.discovery_algorithm, opts);
    if (discovery == nullptr) {
      return Status::InvalidArgument("unknown discovery algorithm: " +
                                     options_.discovery_algorithm);
    }
    auto fds_result = discovery->Discover(input);
    if (!fds_result.ok()) return fds_result.status();
    *completion = discovery->completion_status();
    RecordDiscoveryStats(&result.stats, *fds_result, watch.ElapsedSeconds(),
                         discovery->phase_metrics());
    return std::move(fds_result).value();
  };

  FdDiscoveryOptions discovery_options = options_.discovery;
  discovery_options.pool = SharedPool();
  if (discovery_options.context == nullptr) discovery_options.context = ctx;

  Status completion;
  auto fds_result = run_discovery(discovery_options, &completion);
  if (!fds_result.ok()) return fds_result.status();
  FdSet fds = std::move(fds_result).value();
  NORMALIZE_RETURN_IF_ERROR(ApplyDiscoveryDegradation(
      std::move(completion), &fds, &result.stats, run_discovery));

  // Once the deadline has tripped, finishing under it would skip every
  // remaining stage — run them to completion on what discovery produced,
  // but stay cancellable.
  RunContext fallback_ctx;
  const RunContext* finish_ctx = ctx;
  if (!result.stats.completion.ok() && ctx != nullptr) {
    fallback_ctx.cancel = ctx->cancel;
    finish_ctx = &fallback_ctx;
  }
  return FinishNormalization(input, std::move(fds), std::move(result),
                             total_watch, finish_ctx);
}

Status Normalizer::ApplyDiscoveryDegradation(
    Status completion, FdSet* fds, NormalizationStats* stats,
    const std::function<Result<FdSet>(const FdDiscoveryOptions&, Status*)>&
        rerun) {
  if (completion.ok()) return Status::OK();
  if (completion.code() == StatusCode::kCancelled) return completion;

  // Deadline exceeded: try the bounded rerun first — the paper's LHS-size
  // pruning (§4.3) reused as a time bound. Skip it when the original run
  // was already at least as bounded (the rerun would redo the same work).
  int bound = options_.degraded_max_lhs;
  bool already_bounded = options_.discovery.max_lhs_size > 0 &&
                         options_.discovery.max_lhs_size <= bound;
  if (options_.degrade_on_deadline && bound > 0 && !already_bounded) {
    // The rerun keeps the cancel token but drops the (already expired)
    // deadline and the fault injector (whose latched interruption would
    // fire again immediately).
    RunContext degraded_ctx;
    if (options_.context != nullptr) {
      degraded_ctx.cancel = options_.context->cancel;
    }
    FdDiscoveryOptions degraded = options_.discovery;
    degraded.pool = SharedPool();
    degraded.max_lhs_size = bound;
    degraded.context = &degraded_ctx;
    Status degraded_completion;
    Result<FdSet> degraded_fds = rerun(degraded, &degraded_completion);
    if (!degraded_fds.ok()) return degraded_fds.status();
    if (degraded_completion.ok()) {
      *fds = std::move(degraded_fds).value();
      stats->degraded_discovery = true;
      stats->completion = std::move(completion);
      stats->skipped.push_back(
          "fd_discovery: deadline exceeded; rerun with max_lhs_size=" +
          std::to_string(bound) +
          " (FDs with larger LHSs are not explored)");
      return Status::OK();
    }
    // Without a deadline the rerun can only be interrupted by cancellation.
    if (degraded_completion.code() == StatusCode::kCancelled) {
      return degraded_completion;
    }
    completion = std::move(degraded_completion);
  }

  // Continue on the interrupted run's sound partial cover.
  stats->completion = std::move(completion);
  stats->skipped.push_back(
      "fd_discovery: deadline exceeded; continuing with the sound partial "
      "cover (" +
      std::to_string(fds->size()) + " aggregated FDs)");
  return Status::OK();
}

Result<NormalizationResult> Normalizer::NormalizeCsvFile(
    const std::string& path, const CsvOptions& csv_options) {
  Stopwatch total_watch;
  NormalizationResult result;
  const RunContext* ctx = options_.context;

  Stopwatch watch;
  ShardedCsvReader reader(csv_options, options_.shard, ctx);
  size_t ingest_retries = 0;
  auto ingest_result =
      reader.ReadFileWithRetry(path, options_.ingest_retry, &ingest_retries);
  if (!ingest_result.ok()) return ingest_result.status();
  ShardedRelation sharded = std::move(ingest_result).value();
  result.stats.ingest_retries = ingest_retries;
  result.stats.phases.Record("shard_ingest", watch.ElapsedSeconds(),
                             sharded.total_rows);

  auto run_discovery = [&](const FdDiscoveryOptions& opts,
                           Status* completion) -> Result<FdSet> {
    Stopwatch discovery_watch;
    ShardedDiscovery discovery(options_.discovery_algorithm, opts,
                               options_.shard);
    auto fds_result = discovery.Discover(sharded.shards);
    if (!fds_result.ok()) return fds_result.status();
    *completion = discovery.completion_status();
    RecordDiscoveryStats(&result.stats, *fds_result,
                         discovery_watch.ElapsedSeconds(),
                         discovery.phase_metrics());
    return std::move(fds_result).value();
  };

  FdDiscoveryOptions discovery_options = options_.discovery;
  discovery_options.pool = SharedPool();
  if (discovery_options.context == nullptr) discovery_options.context = ctx;

  Status completion;
  auto fds_result = run_discovery(discovery_options, &completion);
  if (!fds_result.ok()) return fds_result.status();
  FdSet fds = std::move(fds_result).value();
  NORMALIZE_RETURN_IF_ERROR(ApplyDiscoveryDegradation(
      std::move(completion), &fds, &result.stats, run_discovery));

  RunContext fallback_ctx;
  const RunContext* finish_ctx = ctx;
  if (!result.stats.completion.ok() && ctx != nullptr) {
    fallback_ctx.cancel = ctx->cancel;
    finish_ctx = &fallback_ctx;
  }

  // Decomposition works on the stitched relation: same dictionaries, so this
  // costs one code vector per column, not a string re-parse.
  RelationData input = sharded.Concatenate(sharded.name);
  return FinishNormalization(input, std::move(fds), std::move(result),
                             total_watch, finish_ctx);
}

Result<NormalizationResult> Normalizer::FinishNormalization(
    const RelationData& input, FdSet fds, NormalizationResult result,
    const Stopwatch& total_watch, const RunContext* ctx) {
  NormalizationStats& stats = result.stats;
  Stopwatch watch;
  // Keep the pre-closure minimal cover: the auditor's minimality and
  // completeness checks are only meaningful on this form.
  result.discovered_fds = fds;

  // --- (2) closure calculation ---
  std::unique_ptr<ClosureAlgorithm> closure = MakeClosure(
      options_.closure_algorithm,
      ClosureOptions{options_.closure_threads, SharedPool(), ctx});
  if (closure == nullptr) {
    return Status::InvalidArgument("unknown closure algorithm: " +
                                   options_.closure_algorithm);
  }
  AttributeSet all_attrs = input.AttributesAsSet();
  watch.Restart();
  Status closure_status = closure->Extend(&fds, all_attrs);
  if (!closure_status.ok()) {
    if (closure_status.code() == StatusCode::kCancelled ||
        !IsInterruption(closure_status.code())) {
      return closure_status;
    }
    // An interrupted Extend leaves a valid (merely under-extended) FD set:
    // RHS growth is monotone, so every derivation made so far stands.
    stats.completion = closure_status;
    stats.skipped.push_back(
        "closure: deadline exceeded; FDs extended only partially");
  }
  stats.closure_s = watch.ElapsedSeconds();
  stats.avg_rhs_after = fds.AverageRhsSize();
  stats.phases.Record("closure", stats.closure_s, fds.size());

  // --- schema setup ---
  int universe = input.universe_size();
  std::vector<std::string> names(static_cast<size_t>(universe));
  for (int c = 0; c < input.num_columns(); ++c) {
    names[static_cast<size_t>(input.attribute_ids()[static_cast<size_t>(c)])] =
        input.column(c).name();
  }
  result.schema = Schema(std::move(names));
  result.schema.AddRelation(RelationSchema(input.name(), all_attrs));
  result.relations.push_back(input);

  // Attributes with NULLs (their FDs cannot yield primary keys, Alg. 4).
  AttributeSet nullable(universe);
  for (int c = 0; c < input.num_columns(); ++c) {
    if (input.column(c).has_null()) {
      nullable.Set(input.attribute_ids()[static_cast<size_t>(c)]);
    }
  }

  // --- (3)-(6) decomposition loop ---
  bool first_key_derivation = true;
  bool first_violation_detection = true;
  int split_counter = 1;
  std::deque<int> worklist;
  worklist.push_back(0);
  while (!worklist.empty()) {
    Status interrupted = CheckRunContext(ctx);
    if (!interrupted.ok()) {
      if (interrupted.code() == StatusCode::kCancelled) return interrupted;
      // Deadline: the schema produced so far is a correct (if unfinished)
      // decomposition — every split preserved the instance losslessly.
      stats.completion = interrupted;
      stats.skipped.push_back(
          "decomposition: deadline exceeded with " +
          std::to_string(worklist.size() + 1) +
          " relations left to check; schema may retain normal-form "
          "violations");
      break;
    }
    int rel_index = worklist.front();
    worklist.pop_front();
    const RelationSchema& rel = result.schema.relation(rel_index);
    const AttributeSet& attrs = rel.attributes();

    // (3) key derivation on the FDs projected into this relation.
    watch.Restart();
    FdSet projected = ProjectFds(fds, attrs);
    std::vector<AttributeSet> keys = DeriveKeys(projected, attrs);
    if (options_.normal_form == NormalForm::kSecondNf) {
      // 2NF judges *partial* dependencies against candidate keys, and not
      // every key is FD-derivable (paper §5's join-key example) — augment
      // with the instance's minimal uniques.
      for (AttributeSet& ucc : DiscoverMinimalUccs(
               result.relations[static_cast<size_t>(rel_index)])) {
        if (std::find(keys.begin(), keys.end(), ucc) == keys.end()) {
          keys.push_back(std::move(ucc));
        }
      }
    }
    double key_time = watch.ElapsedSeconds();
    stats.key_derivation_total_s += key_time;
    if (first_key_derivation) {
      stats.key_derivation_first_s = key_time;
      stats.num_fd_keys = keys.size();
      first_key_derivation = false;
    }

    // (4) violating-FD identification.
    watch.Restart();
    std::vector<Fd> violations = DetectViolatingFds(
        projected, keys, rel, nullable, options_.normal_form);
    double violation_time = watch.ElapsedSeconds();
    stats.violation_detection_total_s += violation_time;
    if (first_violation_detection) {
      stats.violation_detection_first_s = violation_time;
      first_violation_detection = false;
    }
    if (violations.empty()) continue;

    // (5) violating-FD selection.
    ConstraintScorer scorer(result.relations[static_cast<size_t>(rel_index)]);
    std::vector<ScoredFd> ranked = scorer.RankFds(violations);
    int choice = advisor_->ChooseViolatingFd(result.schema, rel_index, ranked);
    if (choice < 0 || choice >= static_cast<int>(ranked.size())) {
      DecisionRecord record;
      record.kind = DecisionRecord::Kind::kSplitDeclined;
      record.relation = rel.name();
      record.num_candidates = static_cast<int>(ranked.size());
      result.decisions.push_back(std::move(record));
      continue;
    }
    Fd chosen = ranked[static_cast<size_t>(choice)].fd;
    // §7.2 (last paragraph): RHS attributes that other violating FDs also
    // cover may be removed by the user so a later split claims them.
    AttributeSet shared_rhs(chosen.rhs.capacity());
    for (size_t i = 0; i < ranked.size(); ++i) {
      if (i == static_cast<size_t>(choice)) continue;
      shared_rhs.UnionWith(ranked[i].fd.rhs.Intersect(chosen.rhs));
    }
    if (!shared_rhs.Empty()) {
      AttributeSet removed = advisor_->TrimSplitRhs(result.schema, rel_index,
                                                    chosen, shared_rhs);
      removed.IntersectWith(shared_rhs);
      AttributeSet trimmed = chosen.rhs.Difference(removed);
      // Never let the user empty the split entirely.
      if (!trimmed.Empty()) chosen.rhs = trimmed;
    }
    {
      DecisionRecord record;
      record.kind = DecisionRecord::Kind::kSplit;
      record.relation = rel.name();
      record.chosen_fd = chosen;
      record.score = ranked[static_cast<size_t>(choice)].score.total;
      record.rank = choice;
      record.num_candidates = static_cast<int>(ranked.size());
      result.decisions.push_back(std::move(record));
    }

    // (6) decomposition.
    if (stats.decompositions >= options_.max_decompositions) {
      return Status::Internal("decomposition limit exceeded");
    }
    ++stats.decompositions;
    std::string r2_name =
        "R" + std::to_string(++split_counter) + "_" +
        result.schema.attribute_name(chosen.lhs.First());
    Decomposition decomposition = DecomposeData(
        result.relations[static_cast<size_t>(rel_index)], chosen, r2_name);
    int r2_index =
        DecomposeSchema(&result.schema, rel_index, chosen, r2_name);
    result.relations[static_cast<size_t>(rel_index)] =
        std::move(decomposition.r1);
    result.relations.push_back(std::move(decomposition.r2));

    // New keys may have appeared in both parts — re-enter the loop at (3).
    worklist.push_back(rel_index);
    worklist.push_back(r2_index);
  }

  // --- (7) primary-key selection ---
  Status key_interrupted =
      options_.select_primary_keys ? CheckRunContext(ctx) : Status::OK();
  if (!key_interrupted.ok() &&
      key_interrupted.code() == StatusCode::kCancelled) {
    return key_interrupted;
  }
  if (options_.select_primary_keys && !key_interrupted.ok()) {
    stats.completion = key_interrupted;
    stats.skipped.push_back(
        "primary_key_selection: deadline exceeded; key-less relations left "
        "without primary keys");
  } else if (options_.select_primary_keys) {
    for (size_t i = 0; i < result.relations.size(); ++i) {
      RelationSchema* rel = result.schema.mutable_relation(static_cast<int>(i));
      if (rel->has_primary_key()) continue;
      const RelationData& data = result.relations[i];

      // Keys derivable from the FDs, minus those with NULLable attributes.
      FdSet projected = ProjectFds(fds, rel->attributes());
      std::vector<AttributeSet> keys = DeriveKeys(projected, rel->attributes());
      std::vector<AttributeSet> candidates;
      for (const AttributeSet& key : keys) {
        if (!key.Intersects(nullable)) candidates.push_back(key);
      }
      if (candidates.empty()) {
        // Fall back to full key discovery (DUCC-style); the relation is
        // small at this stage, which keeps this NP-hard step cheap (§5).
        candidates = DiscoverMinimalUccs(data);
      }
      if (candidates.empty()) continue;

      ConstraintScorer scorer(data);
      std::vector<ScoredKey> ranked = scorer.RankKeys(candidates);
      int choice =
          advisor_->ChoosePrimaryKey(result.schema, static_cast<int>(i), ranked);
      DecisionRecord record;
      record.relation = rel->name();
      record.num_candidates = static_cast<int>(ranked.size());
      if (choice >= 0 && choice < static_cast<int>(ranked.size())) {
        rel->set_primary_key(ranked[static_cast<size_t>(choice)].key);
        record.kind = DecisionRecord::Kind::kPrimaryKey;
        record.chosen_key = ranked[static_cast<size_t>(choice)].key;
        record.score = ranked[static_cast<size_t>(choice)].score.total;
        record.rank = choice;
      } else {
        record.kind = DecisionRecord::Kind::kPrimaryKeyDeclined;
      }
      result.decisions.push_back(std::move(record));
    }
  }

  result.extended_fds = std::move(fds);

  // --- correctness audit (opt-in; read-only, never fails the run) ---
  if (options_.audit) {
    watch.Restart();
    DecompositionAuditor auditor(options_.audit_options);
    result.audit = auditor.Audit(input, result, options_.normal_form,
                                 options_.discovery.max_lhs_size);
    stats.phases.Record("audit", watch.ElapsedSeconds(),
                        result.audit->issues.size());
  }

  stats.total_s = total_watch.ElapsedSeconds();
  stats.phases.Record("key_derivation", stats.key_derivation_total_s);
  stats.phases.Record("violation_detection", stats.violation_detection_total_s);
  return result;
}

Result<std::vector<NormalizationResult>> Normalizer::NormalizeAll(
    const std::vector<RelationData>& inputs) {
  std::vector<NormalizationResult> results;
  results.reserve(inputs.size());
  for (const RelationData& input : inputs) {
    auto r = Normalize(input);
    if (!r.ok()) return r.status();
    results.push_back(std::move(r).value());
  }
  return results;
}

}  // namespace normalize
