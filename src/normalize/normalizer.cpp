#include "normalize/normalizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <optional>

#include <filesystem>

#include "audit/decomposition_auditor.hpp"
#include "closure/closure.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "discovery/ucc.hpp"
#include "persist/checkpoint.hpp"
#include "normalize/decomposition.hpp"
#include "normalize/key_derivation.hpp"
#include "normalize/scoring.hpp"
#include "shard/shard_relation.hpp"
#include "shard/sharded_csv.hpp"
#include "shard/sharded_discovery.hpp"

namespace normalize {

namespace {

/// The error a checkpointed run returns when an interruption ends it: the
/// interruption itself, annotated with where the state went and how to
/// continue. Degrading instead would finish with a *different* schema than
/// the checkpoint promises to resume to.
Status CheckpointedInterruption(const Status& why, const std::string& dir) {
  return Status(why.code(),
                why.message() + "; pipeline state checkpointed to " + dir +
                    " (rerun with --checkpoint-dir=" + dir +
                    " --resume to continue)");
}

}  // namespace

std::string DecisionRecord::ToString(
    const std::vector<std::string>& attribute_names) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " (score %.3f, rank %d of %d)", score, rank,
                num_candidates);
  switch (kind) {
    case Kind::kSplit:
      return relation + ": split on " + chosen_fd.ToString(attribute_names) +
             buf;
    case Kind::kSplitDeclined:
      return relation + ": all " + std::to_string(num_candidates) +
             " split candidates declined";
    case Kind::kPrimaryKey:
      return relation + ": primary key " +
             chosen_key.ToString(attribute_names) + buf;
    case Kind::kPrimaryKeyDeclined:
      return relation + ": left without a primary key (" +
             std::to_string(num_candidates) + " candidates declined)";
  }
  return relation;
}

Normalizer::Normalizer(NormalizerOptions options, Advisor* advisor)
    : options_(std::move(options)),
      advisor_(advisor != nullptr ? advisor : &auto_advisor_) {}

Normalizer::~Normalizer() = default;

ThreadPool* Normalizer::SharedPool() {
  int want = std::max({ResolveThreadCount(options_.discovery.threads),
                       ResolveThreadCount(options_.closure_threads),
                       ResolveThreadCount(options_.shard.threads)});
  if (want <= 1) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(want);
  if (options_.context != nullptr) {
    // Cancelling the run makes the shared pool reject new tasks fast.
    pool_->SetCancellation(options_.context->cancel);
  }
  return pool_.get();
}

void Normalizer::RecordDiscoveryStats(NormalizationStats* stats,
                                      const FdSet& fds, double seconds,
                                      const PhaseMetrics& discovery_phases) {
  stats->fd_discovery_s = seconds;
  stats->num_fds = fds.CountUnaryFds();
  stats->avg_rhs_before = fds.AverageRhsSize();
  stats->phases.Record("fd_discovery", seconds, stats->num_fds);
  stats->phases.MergeFrom(discovery_phases, "discovery/");
}

Result<NormalizationResult> Normalizer::Normalize(const RelationData& input) {
  Stopwatch total_watch;
  NormalizationResult result;
  const RunContext* ctx = options_.context;

  // With sharding requested, one slicing drives both partitioned discovery
  // and the out-of-core decomposition — same result, bounded transient
  // memory (FinishNormalization).
  std::vector<RelationData> input_shards;
  if (options_.shard.shard_rows > 0) {
    input_shards = SliceIntoShards(input, options_.shard.shard_rows);
  } else {
    input_shards.push_back(input);
  }

  // Checkpointing mirrors NormalizeCsvFile, minus the ingest stage (the
  // input is already in memory; the fingerprint still pins its identity).
  std::optional<CheckpointManager> checkpoint;
  RunContext hook_ctx;
  if (options_.checkpoint.enabled()) {
    CheckpointFingerprint fp;
    fp.source = input.name();
    fp.source_size = input.num_rows();
    fp.backend = options_.discovery_algorithm;
    fp.max_lhs_size = options_.discovery.max_lhs_size;
    fp.shard_rows = options_.shard.shard_rows;
    fp.columns = input.num_columns();
    checkpoint.emplace(options_.checkpoint, fp);
    if (ctx != nullptr) {
      hook_ctx = *ctx;
      hook_ctx.checkpoint_hook = &*checkpoint;
      ctx = &hook_ctx;
    }
  }

  // --- (1) FD discovery ---
  FdSet fds;
  bool cover_loaded = false;
  if (checkpoint.has_value() && options_.checkpoint.resume) {
    auto cover = checkpoint->LoadCover();
    if (cover.ok()) {
      fds = std::move(cover).value();
      cover_loaded = true;
      result.stats.resumed = true;
      result.stats.resumed_stages.push_back("cover");
      RecordDiscoveryStats(&result.stats, fds, 0.0, PhaseMetrics());
    } else if (cover.status().code() != StatusCode::kNotFound) {
      return cover.status();
    }
  }
  if (!cover_loaded) {
    // Resume state: the sharded merge path restores covers/PLIs/frontier;
    // the plain backend path re-imports agree-set evidence (the negative
    // cover, which fully determines the positive cover).
    DiscoveryResumeState resume_state;
    std::vector<AttributeSet> resume_evidence;
    if (checkpoint.has_value() && options_.checkpoint.resume) {
      if (options_.shard.shard_rows > 0) {
        auto loaded = checkpoint->LoadDiscoveryResume(input_shards.size());
        if (!loaded.ok()) return loaded.status();
        resume_state = std::move(loaded).value();
        if (!resume_state.shard_covers.empty()) {
          result.stats.resumed = true;
          result.stats.resumed_stages.push_back("shard_covers");
        }
        if (resume_state.has_frontier) {
          result.stats.resumed = true;
          result.stats.resumed_stages.push_back("merge_frontier");
        }
      } else {
        auto loaded = checkpoint->LoadEvidence();
        if (loaded.ok()) {
          resume_evidence = std::move(loaded).value();
          if (!resume_evidence.empty()) {
            result.stats.resumed = true;
            result.stats.resumed_stages.push_back("evidence");
          }
        } else if (loaded.status().code() != StatusCode::kNotFound) {
          return loaded.status();
        }
      }
    }

    // One attempt with the given options; completion reports interruptions.
    auto run_discovery = [&](const FdDiscoveryOptions& opts,
                             Status* completion) -> Result<FdSet> {
      Stopwatch watch;
      if (options_.shard.shard_rows > 0) {
        ShardedDiscovery discovery(options_.discovery_algorithm, opts,
                                   options_.shard);
        if (checkpoint.has_value()) {
          discovery.SetCheckpointSink(&*checkpoint);
          discovery.SetResumeState(std::move(resume_state));
          resume_state = DiscoveryResumeState{};
        }
        auto fds_result = discovery.Discover(input_shards);
        if (!fds_result.ok()) return fds_result.status();
        *completion = discovery.completion_status();
        result.stats.plis_reused += discovery.stats().plis_reused;
        RecordDiscoveryStats(&result.stats, *fds_result, watch.ElapsedSeconds(),
                             discovery.phase_metrics());
        return std::move(fds_result).value();
      }
      std::unique_ptr<FdDiscovery> discovery =
          MakeFdDiscovery(options_.discovery_algorithm, opts);
      if (discovery == nullptr) {
        return Status::InvalidArgument("unknown discovery algorithm: " +
                                       options_.discovery_algorithm);
      }
      if (!resume_evidence.empty()) {
        discovery->ImportEvidence(std::move(resume_evidence));
        resume_evidence.clear();
      }
      auto fds_result = discovery->Discover(input);
      if (!fds_result.ok()) return fds_result.status();
      *completion = discovery->completion_status();
      if (checkpoint.has_value() && !completion->ok()) {
        NORMALIZE_RETURN_IF_ERROR(
            checkpoint->SaveEvidence(discovery->ExportEvidence()));
      }
      RecordDiscoveryStats(&result.stats, *fds_result, watch.ElapsedSeconds(),
                           discovery->phase_metrics());
      return std::move(fds_result).value();
    };

    FdDiscoveryOptions discovery_options = options_.discovery;
    discovery_options.pool = SharedPool();
    if (discovery_options.context == nullptr) discovery_options.context = ctx;

    Status completion;
    auto fds_result = run_discovery(discovery_options, &completion);
    if (!fds_result.ok()) return fds_result.status();
    fds = std::move(fds_result).value();
    if (checkpoint.has_value()) {
      // A checkpointed run never degrades — degrading would finish with a
      // different schema than the checkpoint promises a resume will reach.
      if (!completion.ok()) {
        checkpoint->OnInterruption(completion);
        return CheckpointedInterruption(completion, options_.checkpoint.dir);
      }
      NORMALIZE_RETURN_IF_ERROR(checkpoint->SaveCover(fds));
    } else {
      NORMALIZE_RETURN_IF_ERROR(ApplyDiscoveryDegradation(
          std::move(completion), &fds, &result.stats, run_discovery));
    }
  }

  // Once the deadline has tripped, finishing under it would skip every
  // remaining stage — run them to completion on what discovery produced,
  // but stay cancellable.
  RunContext fallback_ctx;
  const RunContext* finish_ctx = ctx;
  if (!result.stats.completion.ok() && ctx != nullptr) {
    fallback_ctx.cancel = ctx->cancel;
    finish_ctx = &fallback_ctx;
  }
  return FinishNormalization(input.name(), std::move(input_shards),
                             std::move(fds), std::move(result), total_watch,
                             finish_ctx);
}

int PickDegradedMaxLhs(const PhaseMetrics& discovery_phases,
                       double budget_seconds) {
  if (!(budget_seconds > 0) || !std::isfinite(budget_seconds)) return 0;
  // Accumulate per-LHS-size times across the "*_L<k>" records (they may
  // carry the "discovery/" prefix after the stats merge).
  std::map<int, double> level_seconds;
  for (const PhaseMetrics::Phase& phase : discovery_phases.phases()) {
    size_t pos = phase.name.rfind("_L");
    if (pos == std::string::npos) continue;
    std::string digits = phase.name.substr(pos + 2);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    int level = std::atoi(digits.c_str());
    if (level <= 0) continue;  // an LHS-size bound of 0 is meaningless
    level_seconds[level] += phase.seconds;
  }
  // Half the budget re-pays the levels the interrupted run already timed;
  // the other half is headroom for sampling, induction, and the stages
  // after discovery.
  double budget = 0.5 * budget_seconds;
  double cumulative = 0.0;
  int pick = 0;
  for (const auto& entry : level_seconds) {
    cumulative += entry.second;
    if (cumulative > budget) break;
    pick = entry.first;
  }
  return pick;
}

Status Normalizer::ApplyDiscoveryDegradation(
    Status completion, FdSet* fds, NormalizationStats* stats,
    const std::function<Result<FdSet>(const FdDiscoveryOptions&, Status*)>&
        rerun) {
  if (completion.ok()) return Status::OK();
  if (completion.code() == StatusCode::kCancelled) return completion;

  // Deadline exceeded: try the bounded rerun first — the paper's LHS-size
  // pruning (§4.3) reused as a time bound. The bound comes from the
  // interrupted run's own per-level timings when they support a choice, and
  // from the degraded_max_lhs constant otherwise. Skip the rerun when the
  // original run was already at least as bounded (it would redo the same
  // work).
  int bound = options_.degraded_max_lhs;
  if (options_.adaptive_degradation && options_.context != nullptr) {
    int adaptive = PickDegradedMaxLhs(
        stats->phases, options_.context->deadline.budget_seconds());
    if (adaptive > 0) {
      bound = adaptive;
      stats->adaptive_degraded_max_lhs = adaptive;
    }
  }
  bool already_bounded = options_.discovery.max_lhs_size > 0 &&
                         options_.discovery.max_lhs_size <= bound;
  if (options_.degrade_on_deadline && bound > 0 && !already_bounded) {
    // The rerun keeps the cancel token but drops the (already expired)
    // deadline and the fault injector (whose latched interruption would
    // fire again immediately).
    RunContext degraded_ctx;
    if (options_.context != nullptr) {
      degraded_ctx.cancel = options_.context->cancel;
    }
    FdDiscoveryOptions degraded = options_.discovery;
    degraded.pool = SharedPool();
    degraded.max_lhs_size = bound;
    degraded.context = &degraded_ctx;
    Status degraded_completion;
    Result<FdSet> degraded_fds = rerun(degraded, &degraded_completion);
    if (!degraded_fds.ok()) return degraded_fds.status();
    if (degraded_completion.ok()) {
      *fds = std::move(degraded_fds).value();
      stats->degraded_discovery = true;
      stats->completion = std::move(completion);
      stats->skipped.push_back(
          "fd_discovery: deadline exceeded; rerun with max_lhs_size=" +
          std::to_string(bound) +
          (stats->adaptive_degraded_max_lhs > 0 ? " (adaptive)" : "") +
          " (FDs with larger LHSs are not explored)");
      return Status::OK();
    }
    // Without a deadline the rerun can only be interrupted by cancellation.
    if (degraded_completion.code() == StatusCode::kCancelled) {
      return degraded_completion;
    }
    completion = std::move(degraded_completion);
  }

  // Continue on the interrupted run's sound partial cover.
  stats->completion = std::move(completion);
  stats->skipped.push_back(
      "fd_discovery: deadline exceeded; continuing with the sound partial "
      "cover (" +
      std::to_string(fds->size()) + " aggregated FDs)");
  return Status::OK();
}

Result<NormalizationResult> Normalizer::RenormalizeWithCover(
    const RelationData& input, FdSet cover) {
  Stopwatch total_watch;
  NormalizationResult result;
  // Same slicing as Normalize(): with sharding configured the decomposition
  // loop stays out-of-core; the result is bit-identical either way.
  std::vector<RelationData> input_shards;
  if (options_.shard.shard_rows > 0) {
    input_shards = SliceIntoShards(input, options_.shard.shard_rows);
  } else {
    input_shards.push_back(input);
  }
  // Discovery already happened (incrementally); its cost is reported as 0
  // here — bench_churn charges maintenance per batch instead.
  RecordDiscoveryStats(&result.stats, cover, 0.0, PhaseMetrics());
  return FinishNormalization(input.name(), std::move(input_shards),
                             std::move(cover), std::move(result), total_watch,
                             options_.context);
}

Result<NormalizationResult> Normalizer::NormalizeCsvFile(
    const std::string& path, const CsvOptions& csv_options) {
  Stopwatch total_watch;
  NormalizationResult result;
  const RunContext* ctx = options_.context;

  // Checkpointing: one manager per run, keyed by a fingerprint of the input
  // file and the run configuration. Installed as the context's checkpoint
  // hook so stages flush interruption notes before unwinding.
  std::optional<CheckpointManager> checkpoint;
  RunContext hook_ctx;
  if (options_.checkpoint.enabled()) {
    CheckpointFingerprint fp;
    fp.source = path;
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(path, ec);
    fp.source_size = ec ? 0 : size;
    fp.backend = options_.discovery_algorithm;
    fp.max_lhs_size = options_.discovery.max_lhs_size;
    fp.shard_rows = options_.shard.shard_rows;
    fp.columns = 0;  // unknown before ingest; constant for CSV fingerprints
    checkpoint.emplace(options_.checkpoint, fp);
    if (ctx != nullptr) {
      hook_ctx = *ctx;
      hook_ctx.checkpoint_hook = &*checkpoint;
      ctx = &hook_ctx;
    }
  }

  Stopwatch watch;
  ShardedRelation sharded;
  bool ingest_loaded = false;
  if (checkpoint.has_value() && options_.checkpoint.resume) {
    auto loaded = checkpoint->LoadIngest();
    if (loaded.ok()) {
      sharded = std::move(loaded).value();
      ingest_loaded = true;
      result.stats.resumed = true;
      result.stats.resumed_stages.push_back("ingest");
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }
  if (!ingest_loaded) {
    ShardedCsvReader reader(csv_options, options_.shard, ctx);
    size_t ingest_retries = 0;
    auto ingest_result =
        reader.ReadFileWithRetry(path, options_.ingest_retry, &ingest_retries);
    if (!ingest_result.ok()) return ingest_result.status();
    sharded = std::move(ingest_result).value();
    result.stats.ingest_retries = ingest_retries;
    if (checkpoint.has_value()) {
      NORMALIZE_RETURN_IF_ERROR(checkpoint->SaveIngest(sharded));
    }
  }
  result.stats.peak_ingest_buffer_bytes = sharded.peak_ingest_buffer_bytes;
  result.stats.phases.Record("shard_ingest", watch.ElapsedSeconds(),
                             sharded.total_rows);

  // A checkpointed final cover supersedes discovery: the minimal cover is
  // unique, and the decomposition is deterministic given cover + input.
  FdSet fds;
  bool cover_loaded = false;
  if (checkpoint.has_value() && options_.checkpoint.resume) {
    auto cover = checkpoint->LoadCover();
    if (cover.ok()) {
      fds = std::move(cover).value();
      cover_loaded = true;
      result.stats.resumed = true;
      result.stats.resumed_stages.push_back("cover");
      RecordDiscoveryStats(&result.stats, fds, 0.0, PhaseMetrics());
    } else if (cover.status().code() != StatusCode::kNotFound) {
      return cover.status();
    }
  }
  if (!cover_loaded) {
    DiscoveryResumeState resume_state;
    if (checkpoint.has_value() && options_.checkpoint.resume) {
      auto loaded = checkpoint->LoadDiscoveryResume(sharded.shards.size());
      if (!loaded.ok()) return loaded.status();
      resume_state = std::move(loaded).value();
      if (!resume_state.shard_covers.empty()) {
        result.stats.resumed = true;
        result.stats.resumed_stages.push_back("shard_covers");
      }
      if (resume_state.has_frontier) {
        result.stats.resumed = true;
        result.stats.resumed_stages.push_back("merge_frontier");
      }
    }

    auto run_discovery = [&](const FdDiscoveryOptions& opts,
                             Status* completion) -> Result<FdSet> {
      Stopwatch discovery_watch;
      ShardedDiscovery discovery(options_.discovery_algorithm, opts,
                                 options_.shard);
      if (checkpoint.has_value()) {
        discovery.SetCheckpointSink(&*checkpoint);
        discovery.SetResumeState(std::move(resume_state));
        resume_state = DiscoveryResumeState{};
      }
      auto fds_result = discovery.Discover(sharded.shards);
      if (!fds_result.ok()) return fds_result.status();
      *completion = discovery.completion_status();
      result.stats.plis_reused += discovery.stats().plis_reused;
      RecordDiscoveryStats(&result.stats, *fds_result,
                           discovery_watch.ElapsedSeconds(),
                           discovery.phase_metrics());
      return std::move(fds_result).value();
    };

    FdDiscoveryOptions discovery_options = options_.discovery;
    discovery_options.pool = SharedPool();
    if (discovery_options.context == nullptr) discovery_options.context = ctx;

    Status completion;
    auto fds_result = run_discovery(discovery_options, &completion);
    if (!fds_result.ok()) return fds_result.status();
    fds = std::move(fds_result).value();
    if (checkpoint.has_value()) {
      // A checkpointed run never degrades — degrading would finish with a
      // different schema than the checkpoint promises a resume will reach.
      if (!completion.ok()) {
        checkpoint->OnInterruption(completion);
        return CheckpointedInterruption(completion, options_.checkpoint.dir);
      }
      NORMALIZE_RETURN_IF_ERROR(checkpoint->SaveCover(fds));
    } else {
      NORMALIZE_RETURN_IF_ERROR(ApplyDiscoveryDegradation(
          std::move(completion), &fds, &result.stats, run_discovery));
    }
  }

  RunContext fallback_ctx;
  const RunContext* finish_ctx = ctx;
  if (!result.stats.completion.ok() && ctx != nullptr) {
    fallback_ctx.cancel = ctx->cancel;
    finish_ctx = &fallback_ctx;
  }

  // Decomposition works directly on the ingest shards — the input is never
  // stitched into one relation; only the final result's instances are.
  return FinishNormalization(sharded.name, std::move(sharded.shards),
                             std::move(fds), std::move(result), total_watch,
                             finish_ctx);
}

Result<NormalizationResult> Normalizer::FinishNormalization(
    const std::string& input_name, std::vector<RelationData> input_shards,
    FdSet fds, NormalizationResult result, const Stopwatch& total_watch,
    const RunContext* ctx) {
  NormalizationStats& stats = result.stats;
  Stopwatch watch;
  if (input_shards.empty()) {
    input_shards.emplace_back(input_name, std::vector<AttributeId>{},
                              std::vector<std::string>{});
  }
  // The auditor compares against the original instance, which the
  // decomposition loop consumes — materialize it up front (the audit is an
  // opt-in diagnostic, deliberately not out-of-core).
  std::optional<RelationData> audit_input;
  if (options_.audit) {
    audit_input = input_shards.size() == 1
                      ? input_shards.front()
                      : ConcatenateShards(input_shards, input_name);
    audit_input->set_name(input_name);
  }
  // Per-relation working sets: working[i] holds schema relation i as
  // dictionary-sharing row-range shards (exactly one on the in-memory
  // path). `proto` is only valid until the loop starts replacing working
  // sets — everything schema-shaped is derived from it before that.
  std::vector<std::vector<RelationData>> working;
  working.push_back(std::move(input_shards));
  const RelationData& proto = working.front().front();
  // Keep the pre-closure minimal cover: the auditor's minimality and
  // completeness checks are only meaningful on this form.
  result.discovered_fds = fds;

  // --- (2) closure calculation ---
  std::unique_ptr<ClosureAlgorithm> closure = MakeClosure(
      options_.closure_algorithm,
      ClosureOptions{options_.closure_threads, SharedPool(), ctx});
  if (closure == nullptr) {
    return Status::InvalidArgument("unknown closure algorithm: " +
                                   options_.closure_algorithm);
  }
  AttributeSet all_attrs = proto.AttributesAsSet();
  watch.Restart();
  Status closure_status = closure->Extend(&fds, all_attrs);
  if (!closure_status.ok()) {
    if (closure_status.code() == StatusCode::kCancelled ||
        !IsInterruption(closure_status.code())) {
      return closure_status;
    }
    // An interrupted Extend leaves a valid (merely under-extended) FD set:
    // RHS growth is monotone, so every derivation made so far stands.
    stats.completion = closure_status;
    stats.skipped.push_back(
        "closure: deadline exceeded; FDs extended only partially");
  }
  stats.closure_s = watch.ElapsedSeconds();
  stats.avg_rhs_after = fds.AverageRhsSize();
  stats.phases.Record("closure", stats.closure_s, fds.size());

  // --- schema setup ---
  int universe = proto.universe_size();
  std::vector<std::string> names(static_cast<size_t>(universe));
  for (int c = 0; c < proto.num_columns(); ++c) {
    names[static_cast<size_t>(proto.attribute_ids()[static_cast<size_t>(c)])] =
        proto.column(c).name();
  }
  result.schema = Schema(std::move(names));
  result.schema.AddRelation(RelationSchema(input_name, all_attrs));

  // Attributes with NULLs (their FDs cannot yield primary keys, Alg. 4).
  // Column::has_null reads the dictionary, which all shards share, so the
  // first shard answers for the whole instance.
  AttributeSet nullable(universe);
  for (int c = 0; c < proto.num_columns(); ++c) {
    if (proto.column(c).has_null()) {
      nullable.Set(proto.attribute_ids()[static_cast<size_t>(c)]);
    }
  }

  // --- (3)-(6) decomposition loop ---
  bool first_key_derivation = true;
  bool first_violation_detection = true;
  int split_counter = 1;
  std::deque<int> worklist;
  worklist.push_back(0);
  while (!worklist.empty()) {
    Status interrupted = CheckRunContext(ctx);
    if (!interrupted.ok()) {
      if (interrupted.code() == StatusCode::kCancelled) return interrupted;
      // Deadline: the schema produced so far is a correct (if unfinished)
      // decomposition — every split preserved the instance losslessly.
      stats.completion = interrupted;
      stats.skipped.push_back(
          "decomposition: deadline exceeded with " +
          std::to_string(worklist.size() + 1) +
          " relations left to check; schema may retain normal-form "
          "violations");
      break;
    }
    int rel_index = worklist.front();
    worklist.pop_front();
    const RelationSchema& rel = result.schema.relation(rel_index);
    const AttributeSet& attrs = rel.attributes();

    // (3) key derivation on the FDs projected into this relation.
    watch.Restart();
    FdSet projected = ProjectFds(fds, attrs);
    std::vector<AttributeSet> keys = DeriveKeys(projected, attrs);
    if (options_.normal_form == NormalForm::kSecondNf) {
      // 2NF judges *partial* dependencies against candidate keys, and not
      // every key is FD-derivable (paper §5's join-key example) — augment
      // with the instance's minimal uniques (UCC discovery needs the
      // relation in one piece, so this path stitches the working set).
      std::optional<RelationData> stitched;
      const std::vector<RelationData>& w =
          working[static_cast<size_t>(rel_index)];
      const RelationData& instance =
          w.size() == 1 ? w.front()
                        : stitched.emplace(ConcatenateShards(w, rel.name()));
      for (AttributeSet& ucc : DiscoverMinimalUccs(instance)) {
        if (std::find(keys.begin(), keys.end(), ucc) == keys.end()) {
          keys.push_back(std::move(ucc));
        }
      }
    }
    double key_time = watch.ElapsedSeconds();
    stats.key_derivation_total_s += key_time;
    if (first_key_derivation) {
      stats.key_derivation_first_s = key_time;
      stats.num_fd_keys = keys.size();
      first_key_derivation = false;
    }

    // (4) violating-FD identification.
    watch.Restart();
    std::vector<Fd> violations = DetectViolatingFds(
        projected, keys, rel, nullable, options_.normal_form);
    double violation_time = watch.ElapsedSeconds();
    stats.violation_detection_total_s += violation_time;
    if (first_violation_detection) {
      stats.violation_detection_first_s = violation_time;
      first_violation_detection = false;
    }
    if (violations.empty()) continue;

    // (5) violating-FD selection. The scorer reads the working set in shard
    // form; its features equal the concatenated relation's features.
    std::vector<const RelationData*> scorer_shards;
    scorer_shards.reserve(working[static_cast<size_t>(rel_index)].size());
    for (const RelationData& shard : working[static_cast<size_t>(rel_index)]) {
      scorer_shards.push_back(&shard);
    }
    ConstraintScorer scorer(std::move(scorer_shards));
    std::vector<ScoredFd> ranked = scorer.RankFds(violations);
    int choice = advisor_->ChooseViolatingFd(result.schema, rel_index, ranked);
    if (choice < 0 || choice >= static_cast<int>(ranked.size())) {
      DecisionRecord record;
      record.kind = DecisionRecord::Kind::kSplitDeclined;
      record.relation = rel.name();
      record.num_candidates = static_cast<int>(ranked.size());
      result.decisions.push_back(std::move(record));
      continue;
    }
    Fd chosen = ranked[static_cast<size_t>(choice)].fd;
    // §7.2 (last paragraph): RHS attributes that other violating FDs also
    // cover may be removed by the user so a later split claims them.
    AttributeSet shared_rhs(chosen.rhs.capacity());
    for (size_t i = 0; i < ranked.size(); ++i) {
      if (i == static_cast<size_t>(choice)) continue;
      shared_rhs.UnionWith(ranked[i].fd.rhs.Intersect(chosen.rhs));
    }
    if (!shared_rhs.Empty()) {
      AttributeSet removed = advisor_->TrimSplitRhs(result.schema, rel_index,
                                                    chosen, shared_rhs);
      removed.IntersectWith(shared_rhs);
      AttributeSet trimmed = chosen.rhs.Difference(removed);
      // Never let the user empty the split entirely.
      if (!trimmed.Empty()) chosen.rhs = trimmed;
    }
    {
      DecisionRecord record;
      record.kind = DecisionRecord::Kind::kSplit;
      record.relation = rel.name();
      record.chosen_fd = chosen;
      record.score = ranked[static_cast<size_t>(choice)].score.total;
      record.rank = choice;
      record.num_candidates = static_cast<int>(ranked.size());
      result.decisions.push_back(std::move(record));
    }

    // (6) decomposition.
    if (stats.decompositions >= options_.max_decompositions) {
      return Status::Internal("decomposition limit exceeded");
    }
    ++stats.decompositions;
    std::string r2_name =
        "R" + std::to_string(++split_counter) + "_" +
        result.schema.attribute_name(chosen.lhs.First());
    std::vector<RelationData> r1_shards;
    std::vector<RelationData> r2_shards;
    {
      const std::vector<RelationData>& parent =
          working[static_cast<size_t>(rel_index)];
      if (parent.size() == 1) {
        Decomposition decomposition =
            DecomposeData(parent.front(), chosen, r2_name);
        r1_shards.push_back(std::move(decomposition.r1));
        r2_shards.push_back(std::move(decomposition.r2));
      } else {
        // Out-of-core: project shard by shard with cross-shard dedup. Only
        // the dedup set is transient working memory — that peak is what the
        // memory budget governs.
        size_t transient_bytes = 0;
        ShardedDecomposition decomposition =
            DecomposeDataShards(parent, chosen, r2_name, &transient_bytes);
        stats.peak_projection_buffer_bytes =
            std::max(stats.peak_projection_buffer_bytes, transient_bytes);
        r1_shards = std::move(decomposition.r1);
        r2_shards = std::move(decomposition.r2);
      }
    }
    int r2_index =
        DecomposeSchema(&result.schema, rel_index, chosen, r2_name);
    working[static_cast<size_t>(rel_index)] = std::move(r1_shards);
    working.push_back(std::move(r2_shards));

    // New keys may have appeared in both parts — re-enter the loop at (3).
    worklist.push_back(rel_index);
    worklist.push_back(r2_index);
  }

  // Materialize the final instances (the projections' transient working
  // memory is already released; stitching shares dictionaries, so this
  // copies code vectors, not strings).
  result.relations.reserve(working.size());
  for (size_t i = 0; i < working.size(); ++i) {
    const std::string& rel_name =
        result.schema.relation(static_cast<int>(i)).name();
    if (working[i].size() == 1) {
      result.relations.push_back(std::move(working[i].front()));
      result.relations.back().set_name(rel_name);
    } else {
      result.relations.push_back(ConcatenateShards(working[i], rel_name));
    }
  }
  working.clear();

  // --- (7) primary-key selection ---
  Status key_interrupted =
      options_.select_primary_keys ? CheckRunContext(ctx) : Status::OK();
  if (!key_interrupted.ok() &&
      key_interrupted.code() == StatusCode::kCancelled) {
    return key_interrupted;
  }
  if (options_.select_primary_keys && !key_interrupted.ok()) {
    stats.completion = key_interrupted;
    stats.skipped.push_back(
        "primary_key_selection: deadline exceeded; key-less relations left "
        "without primary keys");
  } else if (options_.select_primary_keys) {
    for (size_t i = 0; i < result.relations.size(); ++i) {
      RelationSchema* rel = result.schema.mutable_relation(static_cast<int>(i));
      if (rel->has_primary_key()) continue;
      const RelationData& data = result.relations[i];

      // Keys derivable from the FDs, minus those with NULLable attributes.
      FdSet projected = ProjectFds(fds, rel->attributes());
      std::vector<AttributeSet> keys = DeriveKeys(projected, rel->attributes());
      std::vector<AttributeSet> candidates;
      for (const AttributeSet& key : keys) {
        if (!key.Intersects(nullable)) candidates.push_back(key);
      }
      if (candidates.empty()) {
        // Fall back to full key discovery (DUCC-style); the relation is
        // small at this stage, which keeps this NP-hard step cheap (§5).
        candidates = DiscoverMinimalUccs(data);
      }
      if (candidates.empty()) continue;

      ConstraintScorer scorer(data);
      std::vector<ScoredKey> ranked = scorer.RankKeys(candidates);
      int choice = advisor_->ChoosePrimaryKey(result.schema,
                                              static_cast<int>(i), ranked);
      DecisionRecord record;
      record.relation = rel->name();
      record.num_candidates = static_cast<int>(ranked.size());
      if (choice >= 0 && choice < static_cast<int>(ranked.size())) {
        rel->set_primary_key(ranked[static_cast<size_t>(choice)].key);
        record.kind = DecisionRecord::Kind::kPrimaryKey;
        record.chosen_key = ranked[static_cast<size_t>(choice)].key;
        record.score = ranked[static_cast<size_t>(choice)].score.total;
        record.rank = choice;
      } else {
        record.kind = DecisionRecord::Kind::kPrimaryKeyDeclined;
      }
      result.decisions.push_back(std::move(record));
    }
  }

  result.extended_fds = std::move(fds);

  // --- correctness audit (opt-in; read-only, never fails the run) ---
  if (options_.audit) {
    watch.Restart();
    DecompositionAuditor auditor(options_.audit_options);
    result.audit = auditor.Audit(*audit_input, result, options_.normal_form,
                                 options_.discovery.max_lhs_size);
    stats.phases.Record("audit", watch.ElapsedSeconds(),
                        result.audit->issues.size());
  }

  stats.total_s = total_watch.ElapsedSeconds();
  stats.phases.Record("key_derivation", stats.key_derivation_total_s);
  stats.phases.Record("violation_detection", stats.violation_detection_total_s);
  return result;
}

Result<std::vector<NormalizationResult>> Normalizer::NormalizeAll(
    const std::vector<RelationData>& inputs) {
  std::vector<NormalizationResult> results;
  results.reserve(inputs.size());
  for (const RelationData& input : inputs) {
    auto r = Normalize(input);
    if (!r.ok()) return r.status();
    results.push_back(std::move(r).value());
  }
  return results;
}

}  // namespace normalize
