// 4NF refinement: after BCNF normalization, split relations that still embed
// non-FD multi-valued dependencies (paper §6's sketched extension). A
// relation is in 4NF iff every nontrivial MVD X ->> Y has a superkey LHS;
// each violating MVD X ->> Y|Z enables the lossless split
// R -> R1(X ∪ Y), R2(X ∪ Z).
#pragma once

#include <string>
#include <vector>

#include "mvd/mvd.hpp"
#include "normalize/normalizer.hpp"
#include "relation/schema.hpp"

namespace normalize {

struct FourNfOptions {
  MvdSearchOptions search;
  /// Safety bound on the number of MVD splits.
  int max_decompositions = 1000;
};

/// One performed MVD split, for reporting.
struct MvdSplit {
  std::string relation;  // name of the relation that was split
  Mvd mvd;
  std::string r2_name;
};

/// Refines a BCNF normalization result towards 4NF in place: repeatedly
/// finds a verified, constraint-preserving violating MVD in some relation
/// and splits it. Keys for the superkey test are discovered from the data
/// (minimal UCCs). Returns the splits performed.
///
/// Constraint preservation mirrors Algorithm 4: an MVD is skipped when the
/// relation's primary key or one of its foreign keys would end up spanning
/// both parts. A foreign key X -> R2 is registered when the split anchor X
/// turns out to be unique in one of the parts.
std::vector<MvdSplit> RefineTo4Nf(Schema* schema,
                                  std::vector<RelationData>* relations,
                                  FourNfOptions options = {});

/// Convenience overload operating on a NormalizationResult.
std::vector<MvdSplit> RefineTo4Nf(NormalizationResult* result,
                                  FourNfOptions options = {});

}  // namespace normalize
