// Constraint monitoring for evolving data — the paper's closing research
// question ("how normalization processes should handle dynamic data and
// errors in the data"). A normalized schema's constraints were chosen from
// one instance; when the data changes, some of them (especially the
// accidental FDs the paper warns about) stop holding. The monitor re-checks
// a schema's primary keys, foreign keys, and a set of FDs against updated
// instances and reports every violation with witness rows.
#pragma once

#include <string>
#include <vector>

#include "common/attribute_set.hpp"
#include "fd/fd.hpp"
#include "relation/relation_data.hpp"
#include "relation/schema.hpp"

namespace normalize {

/// One detected constraint violation.
struct ConstraintViolation {
  enum class Kind {
    kPrimaryKeyDuplicate,   // two rows share the primary key values
    kPrimaryKeyNull,        // a primary-key column contains NULL
    kForeignKeyOrphan,      // an FK value combination has no referenced row
    kFdViolation,           // an FD of the design no longer holds
  };

  Kind kind;
  int relation = -1;        // index into the schema
  AttributeSet attributes;  // the constraint's attribute set (LHS for FDs)
  AttributeSet fd_rhs;      // violated RHS attributes (FD violations only)
  /// Witness rows in the violating relation (two for duplicates/FDs, one
  /// for orphans/NULLs).
  std::vector<size_t> rows;

  std::string ToString(const Schema& schema) const;
};

/// Re-validates the schema's primary keys and foreign keys against the given
/// instances (parallel to schema.relations()).
std::vector<ConstraintViolation> CheckSchemaConstraints(
    const Schema& schema, const std::vector<RelationData>& relations);

/// Re-validates design FDs against one relation instance: every FD whose
/// attributes lie inside the relation is checked; violated RHS attributes
/// are reported with a witness row pair.
std::vector<ConstraintViolation> CheckFds(const Schema& schema,
                                          int relation_index,
                                          const RelationData& data,
                                          const FdSet& fds);

}  // namespace normalize
