#include "normalize/sql_export.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace normalize {

namespace {

bool LooksLikeInteger(std::string_view s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  if (s.size() - i > 18) return false;  // avoid overflow territory
  // Leading zeros mark codes (postcodes, ids), not numbers: "01069" must
  // stay textual or the zero is lost.
  if (s.size() - i > 1 && s[i] == '0') return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDecimal(std::string_view s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  bool digits = false, dot = false;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digits = true;
    } else if (c == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digits && dot;
}

}  // namespace

std::string InferSqlType(const Column& column) {
  bool all_integer = true;
  bool all_numeric = true;
  size_t max_len = 1;
  size_t non_null = 0;
  for (size_t r = 0; r < column.size(); ++r) {
    if (column.IsNull(r)) continue;
    ++non_null;
    std::string_view v = column.ValueAt(r);
    max_len = std::max(max_len, v.size());
    if (!LooksLikeInteger(v)) all_integer = false;
    if (!LooksLikeInteger(v) && !LooksLikeDecimal(v)) all_numeric = false;
  }
  if (non_null == 0) return "VARCHAR(1)";
  if (all_integer) return "INTEGER";
  if (all_numeric) return "DOUBLE PRECISION";
  return "VARCHAR(" + std::to_string(max_len) + ")";
}

std::string ExportSqlDdl(const Schema& schema,
                         const std::vector<RelationData>& relations,
                         SqlExportOptions options) {
  auto quote = [&](const std::string& name) {
    return options.quote_identifiers ? "\"" + name + "\"" : name;
  };
  auto attr_list = [&](const AttributeSet& attrs) {
    std::string out;
    for (AttributeId a : attrs) {
      if (!out.empty()) out += ", ";
      out += quote(schema.attribute_name(a));
    }
    return out;
  };

  // Topological order: referenced tables before referencing ones (the FK
  // graph of a decomposition is acyclic).
  size_t n = schema.relations().size();
  std::vector<int> order;
  std::vector<bool> emitted(n, false);
  bool progress = true;
  while (order.size() < n && progress) {
    progress = false;
    for (size_t i = 0; i < n; ++i) {
      if (emitted[i]) continue;
      bool deps_ready = true;
      for (const ForeignKey& fk :
           schema.relation(static_cast<int>(i)).foreign_keys()) {
        if (fk.target_relation >= 0 &&
            !emitted[static_cast<size_t>(fk.target_relation)]) {
          deps_ready = false;
        }
      }
      if (deps_ready) {
        order.push_back(static_cast<int>(i));
        emitted[i] = true;
        progress = true;
      }
    }
  }
  // Cycle fallback (cannot happen for decomposition output, but stay total).
  for (size_t i = 0; i < n; ++i) {
    if (!emitted[i]) order.push_back(static_cast<int>(i));
  }

  std::ostringstream os;
  for (int idx : order) {
    const RelationSchema& rel = schema.relation(idx);
    const RelationData& data = relations[static_cast<size_t>(idx)];
    os << "CREATE TABLE " << quote(rel.name()) << " (\n";
    bool first = true;
    for (AttributeId a : rel.attributes()) {
      if (!first) os << ",\n";
      first = false;
      int col = data.ColumnIndexOf(a);
      const Column& column = data.column(col);
      os << "  " << quote(schema.attribute_name(a)) << " "
         << InferSqlType(column);
      if (options.emit_not_null && !column.has_null()) os << " NOT NULL";
    }
    if (rel.has_primary_key() && !rel.primary_key().Empty()) {
      os << ",\n  PRIMARY KEY (" << attr_list(rel.primary_key()) << ")";
    }
    for (const ForeignKey& fk : rel.foreign_keys()) {
      if (fk.target_relation < 0) continue;
      const RelationSchema& target = schema.relation(fk.target_relation);
      os << ",\n  FOREIGN KEY (" << attr_list(fk.attributes) << ") REFERENCES "
         << quote(target.name()) << " (" << attr_list(fk.attributes) << ")";
    }
    os << "\n);\n\n";
  }
  return os.str();
}

}  // namespace normalize
