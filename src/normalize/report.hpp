// Human-readable normalization report: one markdown document combining the
// run's statistics (the paper's Table 3 measurements for this input), the
// decision audit log, the resulting schema with constraints, and the
// size-reduction summary. Emitted by normalize_cli --report.
#pragma once

#include <string>

#include "normalize/normalizer.hpp"

namespace normalize {

struct ReportOptions {
  /// Include the CREATE TABLE DDL section.
  bool include_sql = true;
  /// Include per-relation row/value counts.
  bool include_sizes = true;
  /// Include the per-phase breakdown (discovery sub-phases + pipeline
  /// components) when the stats carry one.
  bool include_phases = true;
  /// Original input size in values (0 = unknown; omits the reduction line).
  size_t input_value_count = 0;
};

/// Renders the result as markdown.
std::string RenderReport(const NormalizationResult& result,
                         ReportOptions options = {});

}  // namespace normalize
