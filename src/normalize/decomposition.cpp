#include "normalize/decomposition.hpp"

#include <algorithm>

#include "relation/operations.hpp"

namespace normalize {

Decomposition DecomposeData(const RelationData& data, const Fd& violating_fd,
                            const std::string& r2_name) {
  AttributeSet all = data.AttributesAsSet();
  AttributeSet r2_attrs = violating_fd.lhs.Union(violating_fd.rhs);
  AttributeSet r1_attrs = all.Difference(violating_fd.rhs);

  Decomposition result{
      // R1 keeps one row per original row. Deduplication is a no-op when
      // the input is duplicate-free (two rows collapsing in R1 agree on X
      // and hence, by X -> Y, on Y too — so they were full duplicates).
      Project(data, r1_attrs, /*distinct=*/true, data.name()),
      Project(data, r2_attrs, /*distinct=*/true, r2_name),
  };
  return result;
}

ShardedDecomposition DecomposeDataShards(
    const std::vector<RelationData>& shards, const Fd& violating_fd,
    const std::string& r2_name, size_t* transient_bytes) {
  const RelationData& first = shards.front();
  AttributeSet all = first.AttributesAsSet();
  AttributeSet r2_attrs = violating_fd.lhs.Union(violating_fd.rhs);
  AttributeSet r1_attrs = all.Difference(violating_fd.rhs);

  size_t r1_bytes = 0;
  size_t r2_bytes = 0;
  ShardedDecomposition result{
      ProjectShardsDistinct(shards, r1_attrs, first.name(), &r1_bytes),
      ProjectShardsDistinct(shards, r2_attrs, r2_name, &r2_bytes),
  };
  if (transient_bytes != nullptr) {
    *transient_bytes = std::max(r1_bytes, r2_bytes);
  }
  return result;
}

int DecomposeSchema(Schema* schema, int relation_index, const Fd& violating_fd,
                    const std::string& r2_name) {
  RelationSchema* parent = schema->mutable_relation(relation_index);
  AttributeSet r2_attrs = violating_fd.lhs.Union(violating_fd.rhs);
  AttributeSet r1_attrs = parent->attributes().Difference(violating_fd.rhs);

  // Build R2 with primary key X.
  RelationSchema r2(r2_name, r2_attrs);
  r2.set_primary_key(violating_fd.lhs);

  // Distribute the parent's foreign keys: keys fully inside R2 move there;
  // all others stay with R1 (Algorithm 4 guaranteed they fit).
  std::vector<ForeignKey> r1_fks, r2_fks;
  for (const ForeignKey& fk : parent->foreign_keys()) {
    if (fk.attributes.IsSubsetOf(r1_attrs)) {
      r1_fks.push_back(fk);
    } else {
      r2_fks.push_back(fk);
    }
  }

  // Shrink the parent into R1 (index preserved: inbound FKs stay valid
  // because the primary key never loses attributes, Alg. 4 line 11).
  parent->set_attributes(r1_attrs);
  *parent->mutable_foreign_keys() = std::move(r1_fks);

  *r2.mutable_foreign_keys() = std::move(r2_fks);
  int r2_index = schema->AddRelation(std::move(r2));

  // R1 references R2 via X.
  schema->mutable_relation(relation_index)
      ->AddForeignKey(ForeignKey{violating_fd.lhs, r2_index});
  return r2_index;
}

}  // namespace normalize
