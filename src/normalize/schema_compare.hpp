// Schema recovery metrics for the effectiveness evaluation (paper §8.3):
// the paper compares the normalized schema against the original (gold)
// schema of the de-normalized dataset. We quantify that comparison: per gold
// relation, the best-matching output relation by attribute-set Jaccard
// similarity, plus exact-recovery and key-correctness counts.
#pragma once

#include <string>
#include <vector>

#include "common/attribute_set.hpp"
#include "relation/schema.hpp"

namespace normalize {

/// Recovery of one gold relation.
struct RelationMatch {
  std::string gold_name;
  int best_output = -1;    // index into the output schema, -1 if none
  double jaccard = 0.0;    // |gold ∩ out| / |gold ∪ out| over attributes
  bool exact = false;      // attribute sets identical (after `ignored`)
  bool key_recovered = false;  // output PK equals the gold PK
};

/// Aggregate recovery report.
struct RecoveryReport {
  std::vector<RelationMatch> matches;
  double average_jaccard = 0.0;
  int exact_count = 0;
  int key_count = 0;

  /// One line per gold relation: name, best match, similarity, flags.
  std::string ToString(const Schema& gold, const Schema& output) const;
};

/// Compares an output schema against the gold schema. Attributes in
/// `ignored` are removed from both sides before comparing (e.g. a constant
/// column like TPC-H's o_shippriority, whose placement is undefined under
/// data-driven normalization).
RecoveryReport CompareToGold(const Schema& gold, const Schema& output,
                             const AttributeSet& ignored);

}  // namespace normalize
