#include "normalize/report.hpp"

#include <sstream>

#include "common/string_utils.hpp"
#include "normalize/sql_export.hpp"

namespace normalize {

std::string RenderReport(const NormalizationResult& result,
                         ReportOptions options) {
  const NormalizationStats& stats = result.stats;
  std::ostringstream os;
  os << "# Normalization report\n\n";

  os << "## Pipeline statistics\n\n";
  os << "| step | result |\n|---|---|\n";
  os << "| minimal FDs discovered | "
     << FormatCount(static_cast<int64_t>(stats.num_fds)) << " |\n";
  os << "| FD discovery | " << FormatDuration(stats.fd_discovery_s) << " |\n";
  os << "| closure calculation | " << FormatDuration(stats.closure_s)
     << " (avg RHS " << stats.avg_rhs_before << " -> " << stats.avg_rhs_after
     << ") |\n";
  os << "| FD-derived keys | "
     << FormatCount(static_cast<int64_t>(stats.num_fd_keys)) << " |\n";
  os << "| key derivation (first call / total) | "
     << FormatDuration(stats.key_derivation_first_s) << " / "
     << FormatDuration(stats.key_derivation_total_s) << " |\n";
  os << "| violation detection (first call / total) | "
     << FormatDuration(stats.violation_detection_first_s) << " / "
     << FormatDuration(stats.violation_detection_total_s) << " |\n";
  os << "| decompositions | " << stats.decompositions << " |\n";
  os << "| total | " << FormatDuration(stats.total_s) << " |\n\n";

  if (options.include_phases && !stats.phases.empty()) {
    os << "## Phase breakdown\n\n";
    os << "| phase | wall time | items |\n|---|---|---|\n";
    for (const PhaseMetrics::Phase& phase : stats.phases.phases()) {
      os << "| " << phase.name << " | " << FormatDuration(phase.seconds)
         << " | ";
      if (phase.count > 0) {
        os << FormatCount(static_cast<int64_t>(phase.count));
      } else {
        os << "-";
      }
      os << " |\n";
    }
    os << "\n";
  }

  os << "## Decisions\n\n";
  if (result.decisions.empty()) {
    os << "(none — the input was already in normal form)\n";
  }
  for (const DecisionRecord& d : result.decisions) {
    os << "* " << d.ToString(result.schema.attribute_names()) << "\n";
  }
  os << "\n## Resulting schema\n\n```\n"
     << result.schema.ToString() << "```\n";

  if (options.include_sizes) {
    os << "\n## Relation sizes\n\n"
       << "| relation | rows | values |\n|---|---|---|\n";
    size_t total = 0;
    for (size_t i = 0; i < result.relations.size(); ++i) {
      const RelationData& rel = result.relations[i];
      total += rel.TotalValueCount();
      os << "| " << rel.name() << " | "
         << FormatCount(static_cast<int64_t>(rel.num_rows())) << " | "
         << FormatCount(static_cast<int64_t>(rel.TotalValueCount())) << " |\n";
    }
    os << "| **total** | | "
       << FormatCount(static_cast<int64_t>(total)) << " |\n";
    if (options.input_value_count > 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.0f%%",
                    100.0 * static_cast<double>(total) /
                        static_cast<double>(options.input_value_count));
      os << "\nSize: "
         << FormatCount(static_cast<int64_t>(options.input_value_count))
         << " values -> " << FormatCount(static_cast<int64_t>(total))
         << " values (" << buf << " of the input)\n";
    }
  }

  if (options.include_sql) {
    os << "\n## SQL DDL\n\n```sql\n"
       << ExportSqlDdl(result.schema, result.relations) << "```\n";
  }
  return os.str();
}

}  // namespace normalize
