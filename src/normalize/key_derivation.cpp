#include "normalize/key_derivation.hpp"

#include <set>

namespace normalize {

std::vector<AttributeSet> DeriveKeys(const FdSet& extended_fds,
                                     const AttributeSet& relation_attrs) {
  std::set<AttributeSet> keys;
  for (const Fd& fd : extended_fds) {
    if (!fd.lhs.IsSubsetOf(relation_attrs)) continue;
    AttributeSet determined = fd.lhs.Union(fd.rhs);
    determined.IntersectWith(relation_attrs);
    if (determined == relation_attrs) keys.insert(fd.lhs);
  }
  return std::vector<AttributeSet>(keys.begin(), keys.end());
}

FdSet ProjectFds(const FdSet& extended_fds,
                 const AttributeSet& relation_attrs) {
  FdSet out;
  for (const Fd& fd : extended_fds) {
    if (!fd.lhs.IsSubsetOf(relation_attrs)) continue;
    AttributeSet rhs = fd.rhs.Intersect(relation_attrs);
    if (rhs.Empty()) continue;
    out.Add(Fd(fd.lhs, std::move(rhs)));
  }
  return out;
}

}  // namespace normalize
