// Key derivation — component (3), paper §5. A key is the LHS of any extended
// FD X -> Y with X ∪ Y = R. Not every minimal key of R is derivable this
// way (the paper's Professor/Teaches/Class example), but Lemma 2 proves the
// derivable keys are exactly the ones BCNF violation checking needs.
#pragma once

#include <vector>

#include "common/attribute_set.hpp"
#include "fd/fd.hpp"

namespace normalize {

/// Derives keys of the relation `relation_attrs` from `extended_fds` (which
/// must be transitively closed). Only FDs whose LHS lies inside the relation
/// count. Returns deduplicated keys; because the FDs are minimal, the result
/// is automatically an antichain (no key contains another).
std::vector<AttributeSet> DeriveKeys(const FdSet& extended_fds,
                                     const AttributeSet& relation_attrs);

/// Restricts extended FDs to a sub-relation (paper Lemma 3): keeps FDs with
/// LHS inside `relation_attrs`, intersects the RHS with the relation, and
/// drops FDs whose RHS becomes empty. Projection preserves minimality,
/// completeness, and full extension of the cover within the sub-relation.
FdSet ProjectFds(const FdSet& extended_fds, const AttributeSet& relation_attrs);

}  // namespace normalize
