#include "normalize/fourth_nf.hpp"

#include <deque>

#include "discovery/ucc.hpp"
#include "relation/operations.hpp"

namespace normalize {

namespace {

/// Checks whether splitting `rel` on `mvd` keeps the primary key and all
/// foreign keys inside one of the two parts. When `pk_droppable` (an
/// all-attribute key no other relation references), the primary key does not
/// constrain the split: each part is all-key again after the distinct
/// projection.
bool PreservesConstraints(const RelationSchema& rel, const Mvd& mvd,
                          bool pk_droppable) {
  AttributeSet r1 = mvd.lhs.Union(mvd.rhs);
  AttributeSet r2 = rel.attributes().Difference(mvd.rhs);
  auto fits = [&](const AttributeSet& s) {
    return s.IsSubsetOf(r1) || s.IsSubsetOf(r2);
  };
  if (rel.has_primary_key() && !pk_droppable && !fits(rel.primary_key())) {
    return false;
  }
  for (const ForeignKey& fk : rel.foreign_keys()) {
    if (!fits(fk.attributes)) return false;
  }
  return true;
}

/// True iff some other relation's foreign key targets `rel_index`.
bool HasInboundForeignKey(const Schema& schema, int rel_index) {
  for (const RelationSchema& other : schema.relations()) {
    for (const ForeignKey& fk : other.foreign_keys()) {
      if (fk.target_relation == rel_index) return true;
    }
  }
  return false;
}

}  // namespace

std::vector<MvdSplit> RefineTo4Nf(Schema* schema,
                                  std::vector<RelationData>* relations,
                                  FourNfOptions options) {
  std::vector<MvdSplit> splits;
  std::deque<int> worklist;
  for (size_t i = 0; i < relations->size(); ++i) {
    worklist.push_back(static_cast<int>(i));
  }
  int split_counter = 0;

  while (!worklist.empty()) {
    int rel_index = worklist.front();
    worklist.pop_front();
    RelationSchema* rel = schema->mutable_relation(rel_index);
    RelationData& data = (*relations)[static_cast<size_t>(rel_index)];
    if (data.num_columns() < 3) continue;  // no nontrivial split possible

    // Superkey evidence: the data's minimal uniques (NULLable columns
    // allowed — uniqueness is an instance fact here, not a PK proposal).
    UccDiscoveryOptions ucc_options;
    ucc_options.exclude_nullable_columns = false;
    std::vector<AttributeSet> keys = DiscoverMinimalUccs(data, ucc_options);

    std::vector<Mvd> violations =
        FindViolatingMvds(data, keys, options.search);
    bool pk_droppable = rel->has_primary_key() &&
                        rel->primary_key() == rel->attributes() &&
                        !HasInboundForeignKey(*schema, rel_index);
    const Mvd* chosen = nullptr;
    for (const Mvd& mvd : violations) {
      if (PreservesConstraints(*rel, mvd, pk_droppable)) {
        chosen = &mvd;
        break;
      }
    }
    if (chosen == nullptr) continue;
    if (static_cast<int>(splits.size()) >= options.max_decompositions) break;
    if (pk_droppable) rel->clear_primary_key();

    AttributeSet r1_attrs = chosen->lhs.Union(chosen->rhs);
    AttributeSet r2_attrs = rel->attributes().Difference(chosen->rhs);
    std::string r2_name = rel->name() + "_m" + std::to_string(++split_counter);
    splits.push_back(MvdSplit{rel->name(), *chosen, r2_name});

    RelationData r1_data =
        Project(data, r1_attrs, /*distinct=*/true, rel->name());
    RelationData r2_data = Project(data, r2_attrs, /*distinct=*/true, r2_name);

    // Schema update: the parent shrinks to R1 (keeping its index); R2 is
    // appended. Constraints move to whichever side fully contains them
    // (PreservesConstraints guaranteed one exists).
    RelationSchema r2(r2_name, r2_attrs);
    std::vector<ForeignKey> r1_fks, r2_fks;
    for (ForeignKey& fk : *rel->mutable_foreign_keys()) {
      if (fk.attributes.IsSubsetOf(r1_attrs)) {
        r1_fks.push_back(std::move(fk));
      } else {
        r2_fks.push_back(std::move(fk));
      }
    }
    if (rel->has_primary_key() && !rel->primary_key().IsSubsetOf(r1_attrs)) {
      r2.set_primary_key(rel->primary_key());
      rel->clear_primary_key();
    }
    rel->set_attributes(r1_attrs);
    *rel->mutable_foreign_keys() = std::move(r1_fks);
    *r2.mutable_foreign_keys() = std::move(r2_fks);
    int r2_index = schema->AddRelation(std::move(r2));

    // The split anchor X is the shared join attribute set; register it as a
    // foreign key where it is actually a key of the other part.
    if (IsUnique(r2_data, chosen->lhs)) {
      if (!schema->relation(r2_index).has_primary_key()) {
        schema->mutable_relation(r2_index)->set_primary_key(chosen->lhs);
      }
      if (schema->relation(r2_index).primary_key() == chosen->lhs) {
        schema->mutable_relation(rel_index)->AddForeignKey(
            ForeignKey{chosen->lhs, r2_index});
      }
    } else if (IsUnique(r1_data, chosen->lhs)) {
      if (!schema->relation(rel_index).has_primary_key()) {
        schema->mutable_relation(rel_index)->set_primary_key(chosen->lhs);
      }
      if (schema->relation(rel_index).primary_key() == chosen->lhs) {
        schema->mutable_relation(r2_index)->AddForeignKey(
            ForeignKey{chosen->lhs, rel_index});
      }
    }

    // Distinct projection makes each part duplicate-free, so a part without
    // any inherited or anchor key is at least all-key.
    if (!schema->relation(rel_index).has_primary_key()) {
      schema->mutable_relation(rel_index)->set_primary_key(r1_attrs);
    }
    if (!schema->relation(r2_index).has_primary_key()) {
      schema->mutable_relation(r2_index)->set_primary_key(r2_attrs);
    }

    (*relations)[static_cast<size_t>(rel_index)] = std::move(r1_data);
    relations->push_back(std::move(r2_data));
    worklist.push_back(rel_index);
    worklist.push_back(r2_index);
  }
  return splits;
}

std::vector<MvdSplit> RefineTo4Nf(NormalizationResult* result,
                                  FourNfOptions options) {
  return RefineTo4Nf(&result->schema, &result->relations, options);
}

}  // namespace normalize
