#include "service/service_core.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <system_error>
#include <utility>

#include "normalize/normalizer.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshotter.hpp"
#include "obs/span.hpp"
#include "persist/checkpoint_options.hpp"

namespace normalize {

namespace {

constexpr const char* kWalFile = "/wal.log";

/// Bit-identical cover comparison: same unary FDs, same order after the
/// canonical sort both sides went through (RemapToGlobal aggregates+sorts).
bool SameCover(const FdSet& a, const FdSet& b) {
  std::vector<Fd> ua = a.ToUnary();
  std::vector<Fd> ub = b.ToUnary();
  if (ua.size() != ub.size()) return false;
  for (size_t i = 0; i < ua.size(); ++i) {
    if (!(ua[i].lhs == ub[i].lhs) || ua[i].rhs != ub[i].rhs) return false;
  }
  return true;
}

CheckpointFingerprint ServiceFingerprint(const RelationData& seed,
                                         const ServiceCoreOptions& options) {
  CheckpointFingerprint fp;
  fp.source = "service:" + seed.name();
  fp.source_size = seed.num_rows();
  fp.backend = "live-service";
  fp.max_lhs_size = options.max_lhs_size;
  fp.shard_rows = 0;
  fp.columns = seed.num_columns();
  return fp;
}

}  // namespace

ServiceCore::ServiceCore(ServiceCoreOptions options,
                         CheckpointFingerprint fingerprint)
    : options_(std::move(options)),
      checkpoint_(CheckpointOptions{options_.dir, /*resume=*/true},
                  std::move(fingerprint)) {
  metrics_ = options_.metrics;
  if (metrics_ == nullptr) {
    // No external registry: the counters still live in a (private) registry
    // because stats() and MetricsText() are defined over instruments — one
    // source of truth regardless of how the core was opened.
    own_registry_ = std::make_unique<MetricsRegistry>();
    metrics_ = own_registry_.get();
  }
  tracer_ = options_.tracer;
  constexpr std::string_view kLabels = "component=service";
  batches_accepted_counter_ =
      metrics_->GetCounter("service_batches_accepted_total", kLabels);
  duplicates_ignored_counter_ =
      metrics_->GetCounter("service_duplicates_ignored_total", kLabels);
  rejected_invalid_counter_ =
      metrics_->GetCounter("service_rejected_invalid_total", kLabels);
  backpressure_counter_ =
      metrics_->GetCounter("service_backpressure_rejections_total", kLabels);
  shed_reads_counter_ =
      metrics_->GetCounter("service_shed_reads_total", kLabels);
  wal_appends_counter_ =
      metrics_->GetCounter("service_wal_appends_total", kLabels);
  checkpoints_counter_ =
      metrics_->GetCounter("service_checkpoints_total", kLabels);
  checkpoint_failures_counter_ =
      metrics_->GetCounter("service_checkpoint_failures_total", kLabels);
  wal_bytes_gauge_ = metrics_->GetGauge("service_wal_bytes", kLabels);
  queue_depth_gauge_ = metrics_->GetGauge("service_queue_depth", kLabels);
  queue_peak_gauge_ = metrics_->GetGauge("service_queue_peak", kLabels);
  last_applied_seq_gauge_ =
      metrics_->GetGauge("service_last_applied_seq", kLabels);
  wal_append_seconds_hist_ =
      metrics_->GetHistogram("service_wal_append_seconds", {}, kLabels);
  batch_process_seconds_hist_ =
      metrics_->GetHistogram("service_batch_process_seconds", {}, kLabels);
  checkpoint_seconds_hist_ =
      metrics_->GetHistogram("service_checkpoint_seconds", {}, kLabels);
  recovery_seconds_hist_ =
      metrics_->GetHistogram("service_recovery_seconds", {}, kLabels);
  MetricsSnapshotterOptions snap_options;
  snap_options.interval_ms = options_.metrics_snapshot_interval_ms;
  snapshotter_ = std::make_unique<MetricsSnapshotter>(metrics_, snap_options);
}

Result<std::unique_ptr<ServiceCore>> ServiceCore::Open(
    const RelationData& seed, ServiceCoreOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("service data directory must be set");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be positive");
  }
  CheckpointFingerprint fingerprint = ServiceFingerprint(seed, options);
  std::unique_ptr<ServiceCore> core(
      new ServiceCore(std::move(options), std::move(fingerprint)));
  core->column_names_ = seed.ColumnNames();
  NORMALIZE_RETURN_IF_ERROR(core->Recover(seed));
  {
    MutexLock lock(core->mu_);
    core->PublishWriterStats();
  }
  if (core->options_.metrics_snapshot_interval_ms > 0) {
    core->snapshotter_->Start();
  }
  core->writer_ = std::thread(&ServiceCore::WriterLoop, core.get());
  return core;
}

ServiceCore::~ServiceCore() {
  {
    MutexLock lock(mu_);
    abort_ = true;
    work_cv_.notify_all();
    space_cv_.notify_all();
  }
  if (writer_.joinable()) writer_.join();
}

Status ServiceCore::Recover(const RelationData& seed) {
  ScopedSpan recover_span(tracer_, "recover");
  LatencyTimer recovery_timer(recovery_seconds_hist_);
  FdSet checkpointed_cover;
  bool have_checkpoint = false;
  Result<LiveServiceState> loaded = checkpoint_.LoadLiveState();
  if (loaded.ok()) {
    std::vector<char> mask(loaded->live_mask.begin(),
                           loaded->live_mask.end());
    relation_ = std::make_unique<LiveRelation>(loaded->log, mask);
    last_applied_seq_ = loaded->last_applied_seq;
    base_batches_applied_ = loaded->batches_applied;
    checkpointed_cover = std::move(loaded->cover);
    have_checkpoint = true;
  } else if (loaded.status().code() == StatusCode::kNotFound) {
    relation_ = std::make_unique<LiveRelation>(seed);
  } else {
    return loaded.status();
  }

  // Replay the WAL tail through the exact production apply path. Records
  // covered by the checkpoint (the crash window between "live.snap written"
  // and "log truncated") are skipped by sequence number; a torn tail was
  // already dropped by the reader and is only accounted for.
  NORMALIZE_ASSIGN_OR_RETURN(WalReplay replay,
                             ReadWalFile(options_.dir + kWalFile));
  uint64_t replayed = 0;
  for (const WalRecord& record : replay.records) {
    if (record.seq != 0 && record.seq <= last_applied_seq_) continue;
    NORMALIZE_ASSIGN_OR_RETURN(LiveBatch batch,
                               DecodeLiveBatch(record.payload));
    Result<BatchDelta> applied = relation_->Apply(batch);
    if (!applied.ok()) {
      // Only validated batches are logged, so a record that fails to apply
      // means the log and the store disagree — corruption, not a crash.
      return Status::DataLoss("wal record seq " +
                              std::to_string(record.seq) +
                              " does not apply to the recovered store: " +
                              applied.status().message());
    }
    if (record.seq != 0) last_applied_seq_ = record.seq;
    ++replayed;
  }

  DeltaFdMaintainerOptions mopts;
  mopts.max_lhs_size = options_.max_lhs_size;
  mopts.threads = options_.threads;
  // The maintainer's instruments and spans route only through an EXTERNAL
  // registry: with none supplied the core stays on its cheap private
  // counters and the maintainer runs uninstrumented — the "instrumentation
  // disabled" axis the bench overhead comparison measures.
  mopts.metrics = options_.metrics;
  mopts.tracer = tracer_;
  maintainer_ = std::make_unique<DeltaFdMaintainer>(relation_.get(), mopts);
  NORMALIZE_RETURN_IF_ERROR(maintainer_->Initialize());

  if (have_checkpoint && replayed == 0) {
    // No tail to replay: the rebuilt cover must reproduce the checkpointed
    // one bit for bit (the cover is a pure function of the live rows). A
    // mismatch means the image is internally inconsistent.
    if (!SameCover(maintainer_->snapshot()->cover, checkpointed_cover)) {
      return Status::DataLoss(
          "recovered cover diverges from the checkpointed cover in " +
          options_.dir);
    }
  }

  // Fold the recovered state into a fresh checkpoint *before* opening the
  // (truncating) writer: a crash in between leaves the old image + old log,
  // both still replayable.
  NORMALIZE_RETURN_IF_ERROR(CheckpointNow());
  NORMALIZE_ASSIGN_OR_RETURN(
      WalWriter writer,
      WalWriter::Open(options_.dir + kWalFile, options_.sync_wal));
  wal_.emplace(std::move(writer));

  writer_stats_.recovered_wal_records = replayed;
  writer_stats_.recovery_tail_dropped_bytes = replay.tail_dropped_bytes;
  writer_stats_.recovered_from_checkpoint = have_checkpoint;
  writer_stats_.maintainer = maintainer_->stats();
  last_applied_seq_gauge_->Set(static_cast<int64_t>(last_applied_seq_));
  return Status::OK();
}

bool ServiceCore::Enqueue(Job job, const RunContext* ctx, Status* admitted) {
  Status pre = CheckRunContext(ctx);
  if (!pre.ok()) {
    *admitted = pre;
    return false;
  }
  MutexLock lock(mu_);
  for (;;) {
    if (draining_ || abort_) {
      *admitted = Status::Unavailable("service is shutting down");
      return false;
    }
    if (queue_.size() < options_.queue_capacity) break;
    // Full queue: requests with a deadline wait for space up to it; the
    // rest are told to back off now, with a hint, so clients spread out
    // (RetryPolicy::JitteredBackoffMillis) instead of spinning.
    bool can_wait = ctx != nullptr && ctx->deadline.has_deadline() &&
                    !ctx->deadline.Expired();
    if (!can_wait) {
      if (ctx != nullptr && ctx->deadline.has_deadline()) {
        *admitted = Status::DeadlineExceeded(
            "write queue still full at the request deadline");
      } else {
        backpressure_counter_->Increment();
        *admitted = Status::ResourceExhausted(
            "write queue full (" + std::to_string(queue_.size()) + "/" +
            std::to_string(options_.queue_capacity) + " batches); retry in ~" +
            std::to_string(options_.retry_after_ms) + "ms");
      }
      return false;
    }
    lock.WaitFor(space_cv_, std::chrono::milliseconds(2));
  }
  queue_.push_back(std::move(job));
  queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
  queue_peak_gauge_->MaxWith(static_cast<int64_t>(queue_.size()));
  work_cv_.notify_one();
  return true;
}

Status ServiceCore::Apply(uint64_t seq, LiveBatch batch,
                          const RunContext* ctx) {
  Job job;
  job.kind = Job::Kind::kBatch;
  job.seq = seq;
  job.batch = std::move(batch);
  std::future<Status> ack = job.ack.get_future();
  Status admitted;
  if (!Enqueue(std::move(job), ctx, &admitted)) return admitted;
  if (ctx != nullptr && ctx->deadline.has_deadline()) {
    auto budget =
        std::chrono::duration<double>(
            std::max(ctx->deadline.RemainingSeconds(), 0.0));
    if (ack.wait_for(budget) != std::future_status::ready) {
      // The batch stays queued and may still apply; the client's resend
      // with the same seq resolves either way through dedup.
      return Status::DeadlineExceeded(
          "batch seq " + std::to_string(seq) +
          " not applied by the deadline; resend with the same seq");
    }
  }
  return ack.get();
}

std::shared_ptr<const CoverSnapshot> ServiceCore::Cover() const {
  return maintainer_->snapshot();
}

Result<RelationData> ServiceCore::Materialize(const RunContext* ctx) {
  {
    MutexLock lock(mu_);
    if (queue_.size() >= options_.shed_read_depth) {
      shed_reads_counter_->Increment();
      return Status::Unavailable(
          "advisor read shed: write backlog at " +
          std::to_string(queue_.size()) + " batches; retry in ~" +
          std::to_string(options_.retry_after_ms) + "ms");
    }
  }
  Job job;
  job.kind = Job::Kind::kMaterialize;
  std::future<Result<RelationData>> out = job.materialized.get_future();
  Status admitted;
  if (!Enqueue(std::move(job), ctx, &admitted)) return admitted;
  if (ctx != nullptr && ctx->deadline.has_deadline()) {
    auto budget =
        std::chrono::duration<double>(
            std::max(ctx->deadline.RemainingSeconds(), 0.0));
    if (out.wait_for(budget) != std::future_status::ready) {
      return Status::DeadlineExceeded("materialize not served by deadline");
    }
  }
  return out.get();
}

Result<std::string> ServiceCore::Schema(const RunContext* ctx) {
  NORMALIZE_ASSIGN_OR_RETURN(RelationData instance, Materialize(ctx));
  std::shared_ptr<const CoverSnapshot> snap = Cover();
  NormalizerOptions nopts;
  nopts.discovery.max_lhs_size = options_.max_lhs_size;
  nopts.context = ctx;
  Normalizer normalizer(nopts);
  NORMALIZE_ASSIGN_OR_RETURN(
      NormalizationResult result,
      normalizer.RenormalizeWithCover(instance, snap->cover));
  return result.schema.ToString();
}

ServiceStats ServiceCore::stats() const {
  ServiceStats out;
  {
    MutexLock lock(mu_);
    out = stats_;  // recovery facts + maintainer snapshot
  }
  // Everything countable comes from the registry instruments — the same
  // source of truth the METRICS request, bench_churn, and the exporters
  // read. The writer increments counters before acking (promise/future
  // provides the synchronizes-with), so a client that saw an ack sees its
  // batch here.
  out.batches_accepted = batches_accepted_counter_->value();
  out.duplicates_ignored = duplicates_ignored_counter_->value();
  out.rejected_invalid = rejected_invalid_counter_->value();
  out.backpressure_rejections = backpressure_counter_->value();
  out.shed_reads = shed_reads_counter_->value();
  out.wal_appends = wal_appends_counter_->value();
  out.wal_bytes =
      static_cast<uint64_t>(std::max<int64_t>(0, wal_bytes_gauge_->value()));
  out.checkpoints = checkpoints_counter_->value();
  out.checkpoint_failures = checkpoint_failures_counter_->value();
  out.last_applied_seq = static_cast<uint64_t>(
      std::max<int64_t>(0, last_applied_seq_gauge_->value()));
  out.queue_depth = static_cast<size_t>(
      std::max<int64_t>(0, queue_depth_gauge_->value()));
  out.queue_peak = static_cast<size_t>(
      std::max<int64_t>(0, queue_peak_gauge_->value()));
  return out;
}

std::string ServiceCore::MetricsText(bool as_json) const {
  // Publish-now so a scrape is never staler than the request; serving still
  // happens off the immutable published snapshot, outside every lock.
  snapshotter_->PublishNow();
  std::shared_ptr<const MetricsSnapshot> snap = snapshotter_->Latest();
  if (as_json) {
    std::vector<SpanRecord> spans;
    if (tracer_ != nullptr) spans = tracer_->Export();
    return ToMetricsJson(*snap, spans);
  }
  return ToPrometheusText(*snap);
}

Status ServiceCore::Shutdown() {
  {
    MutexLock lock(mu_);
    if (draining_) return Status::OK();  // idempotent
    draining_ = true;
    work_cv_.notify_all();
    space_cv_.notify_all();
  }
  if (writer_.joinable()) writer_.join();
  Status final_checkpoint = Status::OK();
  if (options_.checkpoint_on_shutdown) {
    final_checkpoint = CheckpointNow();
  }
  MutexLock lock(mu_);
  PublishWriterStats();
  return final_checkpoint;
}

void ServiceCore::PauseWriterForTest() {
  MutexLock lock(mu_);
  paused_ = true;
}

void ServiceCore::ResumeWriterForTest() {
  MutexLock lock(mu_);
  paused_ = false;
  work_cv_.notify_all();
}

void ServiceCore::WriterLoop() {
  for (;;) {
    Job job;
    {
      MutexLock lock(mu_);
      for (;;) {
        if (abort_) {
          while (!queue_.empty()) {
            Job& dropped = queue_.front();
            if (dropped.kind == Job::Kind::kBatch) {
              dropped.ack.set_value(
                  Status::Cancelled("service torn down before apply"));
            } else {
              dropped.materialized.set_value(
                  Status::Cancelled("service torn down before read"));
            }
            queue_.pop_front();
          }
          queue_depth_gauge_->Set(0);
          space_cv_.notify_all();
          return;
        }
        if (!paused_ && !queue_.empty()) {
          job = std::move(queue_.front());
          queue_.pop_front();
          queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
          space_cv_.notify_all();
          break;
        }
        if (draining_ && queue_.empty()) return;
        lock.Wait(work_cv_);
      }
    }

    if (job.kind == Job::Kind::kBatch) {
      Status st = ProcessBatch(job.seq, job.batch);
      {
        MutexLock lock(mu_);
        PublishWriterStats();
      }
      // Ack strictly after the stats publish so a client that saw the ack
      // also sees its batch reflected in stats().
      job.ack.set_value(std::move(st));
    } else {
      job.materialized.set_value(relation_->Materialize());
    }
  }
}

Status ServiceCore::ProcessBatch(uint64_t seq, const LiveBatch& batch) {
  // Root of this batch's span tree: the maintainer nests apply_batch →
  // probe → publish under it via the writer thread's ambient span.
  ScopedSpan batch_span(tracer_, "batch");
  LatencyTimer batch_timer(batch_process_seconds_hist_);
  if (seq != 0 && seq <= last_applied_seq_) {
    // The client's resend of an already-applied batch (reconnect after a
    // lost ack): confirm without re-applying.
    duplicates_ignored_counter_->Increment();
    return Status::OK();
  }
  Status valid = relation_->ValidateBatch(batch);
  if (!valid.ok()) {
    rejected_invalid_counter_->Increment();
    return valid;
  }
  // Durability point: once the append returns (synced when sync_wal), the
  // batch survives any crash — only then is it applied and acked.
  {
    LatencyTimer wal_timer(wal_append_seconds_hist_);
    NORMALIZE_RETURN_IF_ERROR(wal_->Append(seq, EncodeLiveBatch(batch)));
  }
  wal_appends_counter_->Increment();
  wal_bytes_gauge_->Set(static_cast<int64_t>(wal_->appended_bytes()));
  Status applied = maintainer_->ApplyBatch(batch);
  if (!applied.ok()) {
    // The record is durable but unapplied; recovery will apply it, so the
    // store heals on restart. Surface the inconsistency loudly until then.
    return Status::Internal("batch seq " + std::to_string(seq) +
                            " logged but not applied: " + applied.message());
  }
  if (seq != 0) last_applied_seq_ = seq;
  batches_accepted_counter_->Increment();
  last_applied_seq_gauge_->Set(static_cast<int64_t>(last_applied_seq_));
  writer_stats_.maintainer = maintainer_->stats();
  ++batches_since_checkpoint_;
  if (options_.checkpoint_every > 0 &&
      batches_since_checkpoint_ >= options_.checkpoint_every) {
    Status ticked = CheckpointNow();
    if (!ticked.ok()) {
      // A failed tick must not fail the batch — the WAL still covers it;
      // the next tick (or shutdown) retries the image.
      checkpoint_failures_counter_->Increment();
    }
  }
  return Status::OK();
}

Status ServiceCore::CheckpointNow() {
  ScopedSpan checkpoint_span(tracer_, "checkpoint");
  LatencyTimer checkpoint_timer(checkpoint_seconds_hist_);
  LiveServiceState state;
  state.log = relation_->data();
  state.live_mask.resize(relation_->total_rows());
  for (size_t r = 0; r < state.live_mask.size(); ++r) {
    state.live_mask[r] =
        relation_->IsLive(static_cast<RowId>(r)) ? '\x01' : '\x00';
  }
  std::shared_ptr<const CoverSnapshot> snap = maintainer_->snapshot();
  state.epoch = snap->epoch;
  state.cover = snap->cover;
  state.last_applied_seq = last_applied_seq_;
  state.batches_applied =
      base_batches_applied_ + maintainer_->stats().batches_applied;
  state.evidence = maintainer_->ExportWitnessedEvidence();
  NORMALIZE_RETURN_IF_ERROR(checkpoint_.SaveLiveState(state));
  if (wal_.has_value()) NORMALIZE_RETURN_IF_ERROR(wal_->Truncate());
  batches_since_checkpoint_ = 0;
  checkpoints_counter_->Increment();
  return Status::OK();
}

void ServiceCore::PublishWriterStats() {
  // All counters and gauges moved into the registry; the only facts left
  // under mu_ are the recovery summary (set once by Recover) and the
  // maintainer view at the last applied batch.
  stats_.recovered_wal_records = writer_stats_.recovered_wal_records;
  stats_.recovery_tail_dropped_bytes =
      writer_stats_.recovery_tail_dropped_bytes;
  stats_.recovered_from_checkpoint = writer_stats_.recovered_from_checkpoint;
  stats_.maintainer = writer_stats_.maintainer;
}

}  // namespace normalize
