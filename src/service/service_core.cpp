#include "service/service_core.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <system_error>
#include <utility>

#include "normalize/normalizer.hpp"
#include "persist/checkpoint_options.hpp"

namespace normalize {

namespace {

constexpr const char* kWalFile = "/wal.log";

/// Bit-identical cover comparison: same unary FDs, same order after the
/// canonical sort both sides went through (RemapToGlobal aggregates+sorts).
bool SameCover(const FdSet& a, const FdSet& b) {
  std::vector<Fd> ua = a.ToUnary();
  std::vector<Fd> ub = b.ToUnary();
  if (ua.size() != ub.size()) return false;
  for (size_t i = 0; i < ua.size(); ++i) {
    if (!(ua[i].lhs == ub[i].lhs) || ua[i].rhs != ub[i].rhs) return false;
  }
  return true;
}

CheckpointFingerprint ServiceFingerprint(const RelationData& seed,
                                         const ServiceCoreOptions& options) {
  CheckpointFingerprint fp;
  fp.source = "service:" + seed.name();
  fp.source_size = seed.num_rows();
  fp.backend = "live-service";
  fp.max_lhs_size = options.max_lhs_size;
  fp.shard_rows = 0;
  fp.columns = seed.num_columns();
  return fp;
}

}  // namespace

ServiceCore::ServiceCore(ServiceCoreOptions options,
                         CheckpointFingerprint fingerprint)
    : options_(std::move(options)),
      checkpoint_(CheckpointOptions{options_.dir, /*resume=*/true},
                  std::move(fingerprint)) {}

Result<std::unique_ptr<ServiceCore>> ServiceCore::Open(
    const RelationData& seed, ServiceCoreOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("service data directory must be set");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be positive");
  }
  CheckpointFingerprint fingerprint = ServiceFingerprint(seed, options);
  std::unique_ptr<ServiceCore> core(
      new ServiceCore(std::move(options), std::move(fingerprint)));
  core->column_names_ = seed.ColumnNames();
  NORMALIZE_RETURN_IF_ERROR(core->Recover(seed));
  {
    MutexLock lock(core->mu_);
    core->PublishWriterStats();
  }
  core->writer_ = std::thread(&ServiceCore::WriterLoop, core.get());
  return core;
}

ServiceCore::~ServiceCore() {
  {
    MutexLock lock(mu_);
    abort_ = true;
    work_cv_.notify_all();
    space_cv_.notify_all();
  }
  if (writer_.joinable()) writer_.join();
}

Status ServiceCore::Recover(const RelationData& seed) {
  FdSet checkpointed_cover;
  bool have_checkpoint = false;
  Result<LiveServiceState> loaded = checkpoint_.LoadLiveState();
  if (loaded.ok()) {
    std::vector<char> mask(loaded->live_mask.begin(),
                           loaded->live_mask.end());
    relation_ = std::make_unique<LiveRelation>(loaded->log, mask);
    last_applied_seq_ = loaded->last_applied_seq;
    base_batches_applied_ = loaded->batches_applied;
    checkpointed_cover = std::move(loaded->cover);
    have_checkpoint = true;
  } else if (loaded.status().code() == StatusCode::kNotFound) {
    relation_ = std::make_unique<LiveRelation>(seed);
  } else {
    return loaded.status();
  }

  // Replay the WAL tail through the exact production apply path. Records
  // covered by the checkpoint (the crash window between "live.snap written"
  // and "log truncated") are skipped by sequence number; a torn tail was
  // already dropped by the reader and is only accounted for.
  NORMALIZE_ASSIGN_OR_RETURN(WalReplay replay,
                             ReadWalFile(options_.dir + kWalFile));
  uint64_t replayed = 0;
  for (const WalRecord& record : replay.records) {
    if (record.seq != 0 && record.seq <= last_applied_seq_) continue;
    NORMALIZE_ASSIGN_OR_RETURN(LiveBatch batch,
                               DecodeLiveBatch(record.payload));
    Result<BatchDelta> applied = relation_->Apply(batch);
    if (!applied.ok()) {
      // Only validated batches are logged, so a record that fails to apply
      // means the log and the store disagree — corruption, not a crash.
      return Status::DataLoss("wal record seq " +
                              std::to_string(record.seq) +
                              " does not apply to the recovered store: " +
                              applied.status().message());
    }
    if (record.seq != 0) last_applied_seq_ = record.seq;
    ++replayed;
  }

  DeltaFdMaintainerOptions mopts;
  mopts.max_lhs_size = options_.max_lhs_size;
  mopts.threads = options_.threads;
  maintainer_ = std::make_unique<DeltaFdMaintainer>(relation_.get(), mopts);
  NORMALIZE_RETURN_IF_ERROR(maintainer_->Initialize());

  if (have_checkpoint && replayed == 0) {
    // No tail to replay: the rebuilt cover must reproduce the checkpointed
    // one bit for bit (the cover is a pure function of the live rows). A
    // mismatch means the image is internally inconsistent.
    if (!SameCover(maintainer_->snapshot()->cover, checkpointed_cover)) {
      return Status::DataLoss(
          "recovered cover diverges from the checkpointed cover in " +
          options_.dir);
    }
  }

  // Fold the recovered state into a fresh checkpoint *before* opening the
  // (truncating) writer: a crash in between leaves the old image + old log,
  // both still replayable.
  NORMALIZE_RETURN_IF_ERROR(CheckpointNow());
  NORMALIZE_ASSIGN_OR_RETURN(
      WalWriter writer,
      WalWriter::Open(options_.dir + kWalFile, options_.sync_wal));
  wal_.emplace(std::move(writer));

  writer_stats_.recovered_wal_records = replayed;
  writer_stats_.recovery_tail_dropped_bytes = replay.tail_dropped_bytes;
  writer_stats_.recovered_from_checkpoint = have_checkpoint;
  writer_stats_.last_applied_seq = last_applied_seq_;
  writer_stats_.maintainer = maintainer_->stats();
  return Status::OK();
}

bool ServiceCore::Enqueue(Job job, const RunContext* ctx, Status* admitted) {
  Status pre = CheckRunContext(ctx);
  if (!pre.ok()) {
    *admitted = pre;
    return false;
  }
  MutexLock lock(mu_);
  for (;;) {
    if (draining_ || abort_) {
      *admitted = Status::Unavailable("service is shutting down");
      return false;
    }
    if (queue_.size() < options_.queue_capacity) break;
    // Full queue: requests with a deadline wait for space up to it; the
    // rest are told to back off now, with a hint, so clients spread out
    // (RetryPolicy::JitteredBackoffMillis) instead of spinning.
    bool can_wait = ctx != nullptr && ctx->deadline.has_deadline() &&
                    !ctx->deadline.Expired();
    if (!can_wait) {
      if (ctx != nullptr && ctx->deadline.has_deadline()) {
        *admitted = Status::DeadlineExceeded(
            "write queue still full at the request deadline");
      } else {
        ++stats_.backpressure_rejections;
        *admitted = Status::ResourceExhausted(
            "write queue full (" + std::to_string(queue_.size()) + "/" +
            std::to_string(options_.queue_capacity) + " batches); retry in ~" +
            std::to_string(options_.retry_after_ms) + "ms");
      }
      return false;
    }
    lock.WaitFor(space_cv_, std::chrono::milliseconds(2));
  }
  queue_.push_back(std::move(job));
  stats_.queue_depth = queue_.size();
  stats_.queue_peak = std::max(stats_.queue_peak, queue_.size());
  work_cv_.notify_one();
  return true;
}

Status ServiceCore::Apply(uint64_t seq, LiveBatch batch,
                          const RunContext* ctx) {
  Job job;
  job.kind = Job::Kind::kBatch;
  job.seq = seq;
  job.batch = std::move(batch);
  std::future<Status> ack = job.ack.get_future();
  Status admitted;
  if (!Enqueue(std::move(job), ctx, &admitted)) return admitted;
  if (ctx != nullptr && ctx->deadline.has_deadline()) {
    auto budget =
        std::chrono::duration<double>(
            std::max(ctx->deadline.RemainingSeconds(), 0.0));
    if (ack.wait_for(budget) != std::future_status::ready) {
      // The batch stays queued and may still apply; the client's resend
      // with the same seq resolves either way through dedup.
      return Status::DeadlineExceeded(
          "batch seq " + std::to_string(seq) +
          " not applied by the deadline; resend with the same seq");
    }
  }
  return ack.get();
}

std::shared_ptr<const CoverSnapshot> ServiceCore::Cover() const {
  return maintainer_->snapshot();
}

Result<RelationData> ServiceCore::Materialize(const RunContext* ctx) {
  {
    MutexLock lock(mu_);
    if (queue_.size() >= options_.shed_read_depth) {
      ++stats_.shed_reads;
      return Status::Unavailable(
          "advisor read shed: write backlog at " +
          std::to_string(queue_.size()) + " batches; retry in ~" +
          std::to_string(options_.retry_after_ms) + "ms");
    }
  }
  Job job;
  job.kind = Job::Kind::kMaterialize;
  std::future<Result<RelationData>> out = job.materialized.get_future();
  Status admitted;
  if (!Enqueue(std::move(job), ctx, &admitted)) return admitted;
  if (ctx != nullptr && ctx->deadline.has_deadline()) {
    auto budget =
        std::chrono::duration<double>(
            std::max(ctx->deadline.RemainingSeconds(), 0.0));
    if (out.wait_for(budget) != std::future_status::ready) {
      return Status::DeadlineExceeded("materialize not served by deadline");
    }
  }
  return out.get();
}

Result<std::string> ServiceCore::Schema(const RunContext* ctx) {
  NORMALIZE_ASSIGN_OR_RETURN(RelationData instance, Materialize(ctx));
  std::shared_ptr<const CoverSnapshot> snap = Cover();
  NormalizerOptions nopts;
  nopts.discovery.max_lhs_size = options_.max_lhs_size;
  nopts.context = ctx;
  Normalizer normalizer(nopts);
  NORMALIZE_ASSIGN_OR_RETURN(
      NormalizationResult result,
      normalizer.RenormalizeWithCover(instance, snap->cover));
  return result.schema.ToString();
}

ServiceStats ServiceCore::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

Status ServiceCore::Shutdown() {
  {
    MutexLock lock(mu_);
    if (draining_) return Status::OK();  // idempotent
    draining_ = true;
    work_cv_.notify_all();
    space_cv_.notify_all();
  }
  if (writer_.joinable()) writer_.join();
  Status final_checkpoint = Status::OK();
  if (options_.checkpoint_on_shutdown) {
    final_checkpoint = CheckpointNow();
  }
  MutexLock lock(mu_);
  PublishWriterStats();
  return final_checkpoint;
}

void ServiceCore::PauseWriterForTest() {
  MutexLock lock(mu_);
  paused_ = true;
}

void ServiceCore::ResumeWriterForTest() {
  MutexLock lock(mu_);
  paused_ = false;
  work_cv_.notify_all();
}

void ServiceCore::WriterLoop() {
  for (;;) {
    Job job;
    {
      MutexLock lock(mu_);
      for (;;) {
        if (abort_) {
          while (!queue_.empty()) {
            Job& dropped = queue_.front();
            if (dropped.kind == Job::Kind::kBatch) {
              dropped.ack.set_value(
                  Status::Cancelled("service torn down before apply"));
            } else {
              dropped.materialized.set_value(
                  Status::Cancelled("service torn down before read"));
            }
            queue_.pop_front();
          }
          stats_.queue_depth = 0;
          space_cv_.notify_all();
          return;
        }
        if (!paused_ && !queue_.empty()) {
          job = std::move(queue_.front());
          queue_.pop_front();
          stats_.queue_depth = queue_.size();
          space_cv_.notify_all();
          break;
        }
        if (draining_ && queue_.empty()) return;
        lock.Wait(work_cv_);
      }
    }

    if (job.kind == Job::Kind::kBatch) {
      Status st = ProcessBatch(job.seq, job.batch);
      {
        MutexLock lock(mu_);
        PublishWriterStats();
      }
      // Ack strictly after the stats publish so a client that saw the ack
      // also sees its batch reflected in stats().
      job.ack.set_value(std::move(st));
    } else {
      job.materialized.set_value(relation_->Materialize());
    }
  }
}

Status ServiceCore::ProcessBatch(uint64_t seq, const LiveBatch& batch) {
  if (seq != 0 && seq <= last_applied_seq_) {
    // The client's resend of an already-applied batch (reconnect after a
    // lost ack): confirm without re-applying.
    ++writer_stats_.duplicates_ignored;
    return Status::OK();
  }
  Status valid = relation_->ValidateBatch(batch);
  if (!valid.ok()) {
    ++writer_stats_.rejected_invalid;
    return valid;
  }
  // Durability point: once the append returns (synced when sync_wal), the
  // batch survives any crash — only then is it applied and acked.
  NORMALIZE_RETURN_IF_ERROR(wal_->Append(seq, EncodeLiveBatch(batch)));
  ++writer_stats_.wal_appends;
  writer_stats_.wal_bytes = wal_->appended_bytes();
  Status applied = maintainer_->ApplyBatch(batch);
  if (!applied.ok()) {
    // The record is durable but unapplied; recovery will apply it, so the
    // store heals on restart. Surface the inconsistency loudly until then.
    return Status::Internal("batch seq " + std::to_string(seq) +
                            " logged but not applied: " + applied.message());
  }
  if (seq != 0) last_applied_seq_ = seq;
  ++writer_stats_.batches_accepted;
  writer_stats_.last_applied_seq = last_applied_seq_;
  writer_stats_.maintainer = maintainer_->stats();
  ++batches_since_checkpoint_;
  if (options_.checkpoint_every > 0 &&
      batches_since_checkpoint_ >= options_.checkpoint_every) {
    Status ticked = CheckpointNow();
    if (!ticked.ok()) {
      // A failed tick must not fail the batch — the WAL still covers it;
      // the next tick (or shutdown) retries the image.
      ++writer_stats_.checkpoint_failures;
    }
  }
  return Status::OK();
}

Status ServiceCore::CheckpointNow() {
  LiveServiceState state;
  state.log = relation_->data();
  state.live_mask.resize(relation_->total_rows());
  for (size_t r = 0; r < state.live_mask.size(); ++r) {
    state.live_mask[r] =
        relation_->IsLive(static_cast<RowId>(r)) ? '\x01' : '\x00';
  }
  std::shared_ptr<const CoverSnapshot> snap = maintainer_->snapshot();
  state.epoch = snap->epoch;
  state.cover = snap->cover;
  state.last_applied_seq = last_applied_seq_;
  state.batches_applied =
      base_batches_applied_ + maintainer_->stats().batches_applied;
  state.evidence = maintainer_->ExportWitnessedEvidence();
  NORMALIZE_RETURN_IF_ERROR(checkpoint_.SaveLiveState(state));
  if (wal_.has_value()) NORMALIZE_RETURN_IF_ERROR(wal_->Truncate());
  batches_since_checkpoint_ = 0;
  ++writer_stats_.checkpoints;
  return Status::OK();
}

void ServiceCore::PublishWriterStats() {
  // Caller-side counters (backpressure, sheds, queue gauges) live in
  // stats_ under mu_; everything else is writer-owned and copied over here.
  ServiceStats merged = writer_stats_;
  merged.backpressure_rejections = stats_.backpressure_rejections;
  merged.shed_reads = stats_.shed_reads;
  merged.queue_depth = stats_.queue_depth;
  merged.queue_peak = stats_.queue_peak;
  stats_ = merged;
}

}  // namespace normalize
