// ServiceCore: the durable, always-on normalization engine — everything the
// daemon (service/server.hpp) does except the socket, so the whole
// robustness surface is testable in-process. One core owns one data
// directory and one LiveRelation + DeltaFdMaintainer pair behind a
// single-writer queue:
//
//   writes   Apply(seq, batch) enqueues onto a bounded queue drained by one
//            writer thread: validate -> WAL append (+ optional fdatasync)
//            -> DeltaFdMaintainer::ApplyBatch -> ack. Acknowledged batches
//            are on disk before they are applied; rejected batches never
//            reach the log. `seq` is the client's idempotence token —
//            strictly increasing per service; a batch at or below the
//            high-water mark acks OK without re-applying, which is what
//            makes client resend-after-reconnect exactly-once. seq 0 opts
//            out (at-least-once, excluded from replay dedup).
//
//   reads    Cover()/stats() are lock-free-ish reads of the maintainer's
//            published epoch snapshot — never queued, never shed.
//            Materialize()/Schema() need store quiescence, so they ride
//            the writer queue as barrier jobs; under backlog they are shed
//            first (kUnavailable + retry hint): the degradation ladder
//            sacrifices advisor/audit reads before it delays writes.
//
//   crash    Open() recovers: load live.snap (fingerprint-verified), replay
//            the WAL tail through the exact Apply path, re-bootstrap the
//            maintainer, then write a fresh checkpoint and truncate the
//            log. The maintained cover is a pure function of the live rows
//            (PR 7's invariant), so recovery is bit-identical to an
//            uninterrupted run at every kill point; torn WAL tails drop
//            cleanly (wal.hpp). Destroying the core without Shutdown() is
//            deliberately crash-like — tests kill at arbitrary batch
//            offsets without forking.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/result.hpp"
#include "common/run_context.hpp"
#include "common/thread_annotations.hpp"
#include "live/delta_fd_maintainer.hpp"
#include "live/live_relation.hpp"
#include "persist/checkpoint.hpp"
#include "service/wal.hpp"

namespace normalize {

class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class MetricsSnapshotter;
class Tracer;

struct ServiceCoreOptions {
  /// Data directory (created if missing): wal.log + live.snap.
  std::string dir;
  /// Writer queue bound; a full queue rejects with kResourceExhausted and a
  /// retry-after hint (or waits, when the request carries a deadline).
  size_t queue_capacity = 64;
  /// Queue depth at or above which Materialize()/Schema() reads are shed
  /// with kUnavailable — the first rung of the degradation ladder.
  size_t shed_read_depth = 48;
  /// Accepted batches per checkpoint tick (live.snap rewrite + WAL
  /// truncation). 0 = checkpoint only at open and shutdown.
  uint64_t checkpoint_every = 64;
  /// Suggested client back-off, echoed with every backpressure rejection.
  double retry_after_ms = 25.0;
  /// fdatasync the WAL on every append (see WalWriter::Open).
  bool sync_wal = false;
  /// Write a final checkpoint during Shutdown() so the next open skips
  /// replay entirely.
  bool checkpoint_on_shutdown = true;
  /// Maintainer knobs, passed through.
  int max_lhs_size = -1;
  int threads = 1;
  /// Observability registry (obs/metrics.hpp; not owned, may be null). The
  /// core's own counters are ALWAYS registry instruments — with no external
  /// registry it creates a private one — so stats(), the METRICS protocol
  /// request, bench_churn, and tests all read the same source of truth.
  /// Supplying a registry additionally routes the maintainer's instruments
  /// and the WAL/checkpoint/recovery latency histograms into a registry the
  /// caller can scrape alongside other components.
  MetricsRegistry* metrics = nullptr;
  /// Trace sink (not owned, null = tracing off). The writer thread opens a
  /// per-batch span; the maintainer nests probe/publish under it, so one
  /// batch yields the tree batch → apply_batch → probe → publish.
  Tracer* tracer = nullptr;
  /// Periodic metrics snapshot publication interval (MetricsSnapshotter);
  /// <= 0 disables the background tick (MetricsText still publishes on
  /// demand).
  double metrics_snapshot_interval_ms = 1000.0;
};

/// Counters a stats read returns. Since the obs subsystem landed these are
/// assembled from the core's registry instruments (one source of truth with
/// the METRICS exporters) plus the mu_-guarded recovery facts and maintainer
/// snapshot; the struct shape is unchanged for API compatibility.
struct ServiceStats {
  uint64_t batches_accepted = 0;
  uint64_t duplicates_ignored = 0;
  uint64_t rejected_invalid = 0;
  uint64_t backpressure_rejections = 0;
  uint64_t shed_reads = 0;
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_failures = 0;
  /// Recovery facts from the last Open().
  uint64_t recovered_wal_records = 0;
  uint64_t recovery_tail_dropped_bytes = 0;
  bool recovered_from_checkpoint = false;
  uint64_t last_applied_seq = 0;
  size_t queue_depth = 0;
  size_t queue_peak = 0;
  /// Maintainer view at the last applied batch.
  DeltaFdMaintainer::Stats maintainer;
};

class ServiceCore {
 public:
  /// Opens (or recovers) a service over `seed` in options.dir and starts
  /// the writer thread. The seed must be the same instance across restarts
  /// of one directory — the checkpoint fingerprint enforces it. Errors:
  /// kDataLoss (corrupt checkpoint / undecodable WAL payload),
  /// kFailedPrecondition (directory belongs to a different run), kIoError.
  static Result<std::unique_ptr<ServiceCore>> Open(const RelationData& seed,
                                                   ServiceCoreOptions options);

  /// Crash-like teardown when Shutdown() was not called first: pending
  /// queue entries ack kCancelled, no final checkpoint is written, and
  /// whatever the WAL holds is the next Open()'s replay problem.
  ~ServiceCore();

  /// Submits one batch and blocks for its ack. `ctx` (nullable) carries the
  /// request deadline: it bounds both the wait for queue space (otherwise a
  /// full queue rejects immediately) and the wait for the ack.
  [[nodiscard]] Status Apply(uint64_t seq, LiveBatch batch,
                             const RunContext* ctx = nullptr)
      NORMALIZE_APPENDS_WAL;

  /// The latest published cover snapshot; never shed, never queued.
  std::shared_ptr<const CoverSnapshot> Cover() const;

  /// Compacted live instance via a writer-queue barrier (sheds under load).
  Result<RelationData> Materialize(const RunContext* ctx = nullptr);

  /// Normalized-schema text for the current cover: Materialize +
  /// Normalizer::RenormalizeWithCover. The advisor-class read — first to
  /// be shed.
  Result<std::string> Schema(const RunContext* ctx = nullptr);

  ServiceStats stats() const;

  /// Renders the effective registry through the snapshotter (publish-now,
  /// then serve the published snapshot) as Prometheus text or, with
  /// `as_json`, the JSON snapshot including the tracer's span records.
  /// Backs the METRICS protocol request; callable from any thread.
  std::string MetricsText(bool as_json) const;

  /// The effective registry: options.metrics, or the core's private one.
  MetricsRegistry* metrics_registry() const { return metrics_; }

  /// Column names of the served relation (immutable after Open).
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  double retry_after_ms() const { return options_.retry_after_ms; }

  /// Graceful drain: stop admitting, finish every queued batch, write the
  /// final checkpoint, join the writer. Idempotent; Apply() during and
  /// after returns kUnavailable.
  [[nodiscard]] Status Shutdown();

  /// Test hooks: freeze/unfreeze the writer loop to make queue states
  /// (backpressure, shedding) deterministic.
  void PauseWriterForTest();
  void ResumeWriterForTest();

 private:
  struct Job {
    enum class Kind { kBatch, kMaterialize } kind = Kind::kBatch;
    uint64_t seq = 0;
    LiveBatch batch;
    std::promise<Status> ack;                      // kBatch
    std::promise<Result<RelationData>> materialized;  // kMaterialize
  };

  ServiceCore(ServiceCoreOptions options, CheckpointFingerprint fingerprint);

  /// The recovery path described in the file comment; fills relation_,
  /// maintainer_, wal_, last_applied_seq_.
  Status Recover(const RelationData& seed) NORMALIZE_REPLAYS_WAL;

  void WriterLoop();
  /// One accepted batch through validate -> WAL -> apply; returns the ack.
  Status ProcessBatch(uint64_t seq, const LiveBatch& batch);
  /// live.snap rewrite + WAL truncation; called from the writer thread and
  /// from Shutdown() after the writer joined.
  Status CheckpointNow();
  /// Enqueues a job, applying backpressure policy; false on rejection (the
  /// rejection Status is returned through `admitted`).
  bool Enqueue(Job job, const RunContext* ctx, Status* admitted)
      NORMALIZE_EXCLUDES(mu_);
  /// Folds the writer-owned counters into the guarded stats_ snapshot.
  void PublishWriterStats() NORMALIZE_REQUIRES(mu_);

  ServiceCoreOptions options_;
  std::vector<std::string> column_names_;
  CheckpointManager checkpoint_;

  // Observability. metrics_ is never null after construction (own_registry_
  // backs it when no external registry was supplied); instrument pointers
  // are resolved once and updated lock-free. tracer_ may be null.
  std::unique_ptr<MetricsRegistry> own_registry_;
  MetricsRegistry* metrics_ = nullptr;
  Tracer* tracer_ = nullptr;
  std::unique_ptr<MetricsSnapshotter> snapshotter_;
  Counter* batches_accepted_counter_ = nullptr;
  Counter* duplicates_ignored_counter_ = nullptr;
  Counter* rejected_invalid_counter_ = nullptr;
  Counter* backpressure_counter_ = nullptr;
  Counter* shed_reads_counter_ = nullptr;
  Counter* wal_appends_counter_ = nullptr;
  Counter* checkpoints_counter_ = nullptr;
  Counter* checkpoint_failures_counter_ = nullptr;
  Gauge* wal_bytes_gauge_ = nullptr;
  Gauge* queue_depth_gauge_ = nullptr;
  Gauge* queue_peak_gauge_ = nullptr;
  Gauge* last_applied_seq_gauge_ = nullptr;
  Histogram* wal_append_seconds_hist_ = nullptr;
  Histogram* batch_process_seconds_hist_ = nullptr;
  Histogram* checkpoint_seconds_hist_ = nullptr;
  Histogram* recovery_seconds_hist_ = nullptr;

  // Writer-thread-owned after Open() (phase discipline like LiveRelation:
  // the writer thread is the only mutator; Open() touches them before the
  // thread starts, Shutdown() after it joins). maintainer_.snapshot() is
  // internally synchronized and safe from any thread.
  std::unique_ptr<LiveRelation> relation_;
  std::unique_ptr<DeltaFdMaintainer> maintainer_;
  std::optional<WalWriter> wal_;
  uint64_t last_applied_seq_ = 0;
  uint64_t batches_since_checkpoint_ = 0;
  uint64_t base_batches_applied_ = 0;
  /// Writer-owned working copy of the stats; PublishWriterStats() folds it
  /// into stats_ under mu_ after every job.
  ServiceStats writer_stats_;

  mutable Mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable space_cv_;
  std::deque<Job> queue_ NORMALIZE_GUARDED_BY(mu_);
  bool draining_ NORMALIZE_GUARDED_BY(mu_) = false;  // no new admissions
  bool abort_ NORMALIZE_GUARDED_BY(mu_) = false;     // stop without draining
  bool paused_ NORMALIZE_GUARDED_BY(mu_) = false;    // test hook
  ServiceStats stats_ NORMALIZE_GUARDED_BY(mu_);

  std::thread writer_;
};

}  // namespace normalize
