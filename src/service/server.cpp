#include "service/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>
#include <utility>

#include "fd/fd_io.hpp"

namespace normalize {

namespace {

std::string RenderStats(const ServiceStats& stats) {
  std::ostringstream out;
  out << "batches_accepted=" << stats.batches_accepted << "\n"
      << "duplicates_ignored=" << stats.duplicates_ignored << "\n"
      << "rejected_invalid=" << stats.rejected_invalid << "\n"
      << "backpressure_rejections=" << stats.backpressure_rejections << "\n"
      << "shed_reads=" << stats.shed_reads << "\n"
      << "wal_appends=" << stats.wal_appends << "\n"
      << "wal_bytes=" << stats.wal_bytes << "\n"
      << "checkpoints=" << stats.checkpoints << "\n"
      << "checkpoint_failures=" << stats.checkpoint_failures << "\n"
      << "recovered_wal_records=" << stats.recovered_wal_records << "\n"
      << "recovery_tail_dropped_bytes=" << stats.recovery_tail_dropped_bytes
      << "\n"
      << "recovered_from_checkpoint="
      << (stats.recovered_from_checkpoint ? 1 : 0) << "\n"
      << "last_applied_seq=" << stats.last_applied_seq << "\n"
      << "queue_depth=" << stats.queue_depth << "\n"
      << "queue_peak=" << stats.queue_peak << "\n"
      << "evidence_reseated=" << stats.maintainer.evidence_reseated << "\n"
      << "evidence_dropped=" << stats.maintainer.evidence_dropped << "\n"
      << "tree_rebuilds=" << stats.maintainer.tree_rebuilds << "\n";
  return out.str();
}

}  // namespace

ServiceServer::ServiceServer(ServiceCore* core, ServiceServerOptions options)
    : core_(core), options_(std::move(options)) {}

ServiceServer::~ServiceServer() { Stop(); }

Status ServiceServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }
  // A response written into a connection the client already abandoned must
  // surface as EPIPE, not kill the process.
  ::signal(SIGPIPE, SIG_IGN);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("socket path too long: " +
                                   options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(options_.socket_path.c_str());  // stale socket after SIGKILL
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind(" + options_.socket_path + ") failed: " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen(" + options_.socket_path + ") failed: " +
                           std::strerror(errno));
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&ServiceServer::AcceptLoop, this);
  return Status::OK();
}

void ServiceServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Closing the listener unblocks accept(); shutting down the connection
  // fds unblocks their readers at the next frame boundary, after which each
  // connection thread finishes the request it was serving and exits.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept thread has exited, so no new connections appear; snapshot
  // the containers under mu_ and run the (potentially blocking) shutdown /
  // close syscalls outside the critical section.
  std::vector<std::thread> workers;
  std::vector<int> fds;
  {
    MutexLock lock(mu_);
    fds = connection_fds_;
    workers.swap(connection_threads_);
  }
  for (int fd : fds) ::shutdown(fd, SHUT_RD);
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
  {
    MutexLock lock(mu_);
    fds = connection_fds_;
    connection_fds_.clear();
  }
  for (int fd : fds) ::close(fd);
  ::unlink(options_.socket_path.c_str());
}

void ServiceServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatal; either way stop accepting
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    MutexLock lock(mu_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back(&ServiceServer::ServeConnection, this,
                                     fd);
  }
}

void ServiceServer::ServeConnection(int fd) {
  for (;;) {
    Result<std::string> frame = ReadFrame(fd);
    if (!frame.ok()) break;  // peer closed, stop requested, or broken frame
    Result<ServiceRequest> request = DecodeServiceRequest(*frame);
    ServiceResponse response;
    bool shutdown_requested = false;
    if (!request.ok()) {
      response.code = request.status().code();
      response.message = request.status().message();
    } else {
      response = Dispatch(*request);
      shutdown_requested = request->type == ServiceRequestType::kShutdown;
    }
    if (!WriteFrame(fd, EncodeServiceResponse(response)).ok()) break;
    if (shutdown_requested) {
      if (on_shutdown_request_) on_shutdown_request_();
      break;
    }
  }
  ::shutdown(fd, SHUT_RDWR);
}

ServiceResponse ServiceServer::Dispatch(const ServiceRequest& request) {
  ServiceResponse response;
  std::shared_ptr<const CoverSnapshot> snap = core_->Cover();
  response.epoch = snap->epoch;
  response.live_rows = snap->live_rows;
  switch (request.type) {
    case ServiceRequestType::kPing:
      break;
    case ServiceRequestType::kApplyBatch: {
      RunContext ctx;
      if (request.deadline_ms > 0) {
        ctx.deadline = Deadline::AfterMillis(request.deadline_ms);
      }
      Status applied = core_->Apply(request.seq, request.batch, &ctx);
      response.code = applied.code();
      response.message = applied.message();
      std::shared_ptr<const CoverSnapshot> after = core_->Cover();
      response.epoch = after->epoch;
      response.live_rows = after->live_rows;
      break;
    }
    case ServiceRequestType::kGetCover:
      response.text = WriteFdsToString(snap->cover, core_->column_names());
      break;
    case ServiceRequestType::kGetSchema: {
      RunContext ctx;
      if (request.deadline_ms > 0) {
        ctx.deadline = Deadline::AfterMillis(request.deadline_ms);
      }
      Result<std::string> schema = core_->Schema(&ctx);
      if (schema.ok()) {
        response.text = *schema;
      } else {
        response.code = schema.status().code();
        response.message = schema.status().message();
      }
      break;
    }
    case ServiceRequestType::kGetStats:
      response.text = RenderStats(core_->stats());
      break;
    case ServiceRequestType::kGetMetrics:
      response.text = core_->MetricsText(request.metrics_json);
      break;
    case ServiceRequestType::kShutdown:
      break;  // acked OK; the hook fires after the response is written
  }
  if (response.code == StatusCode::kResourceExhausted ||
      response.code == StatusCode::kUnavailable) {
    response.retry_after_ms =
        static_cast<uint32_t>(core_->retry_after_ms());
  }
  response.last_applied_seq = core_->stats().last_applied_seq;
  return response;
}

}  // namespace normalize
