// ServiceServer: the Unix-domain-socket front of a ServiceCore. One accept
// thread plus one thread per connection, each running a read-frame /
// dispatch / write-frame loop; all actual work (queuing, backpressure,
// durability) happens inside the core, so the server layer stays a thin
// framed-RPC shim. Stop() is drain-friendly: the listener closes first, a
// request already being processed finishes and its response is written,
// then the connection threads are joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/result.hpp"
#include "common/thread_annotations.hpp"
#include "service/framing.hpp"
#include "service/service_core.hpp"

namespace normalize {

struct ServiceServerOptions {
  /// Filesystem path of the AF_UNIX socket; an existing file is unlinked at
  /// Start() (the stale-socket-after-SIGKILL case).
  std::string socket_path;
  int backlog = 16;
};

class ServiceServer {
 public:
  /// `core` is not owned and must outlive the server.
  ServiceServer(ServiceCore* core, ServiceServerOptions options);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds, listens, and starts the accept thread. The socket file exists
  /// once this returns OK — process supervisors key readiness off it.
  [[nodiscard]] Status Start();

  /// Stops accepting, completes in-flight requests, joins every thread,
  /// and removes the socket file. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Invoked (from a connection thread) after a kShutdown request has been
  /// acked — the CLI wires this to its drain-and-exit path.
  void set_on_shutdown_request(std::function<void()> hook) {
    on_shutdown_request_ = std::move(hook);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  ServiceResponse Dispatch(const ServiceRequest& request);

  ServiceCore* core_;
  ServiceServerOptions options_;
  std::function<void()> on_shutdown_request_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  Mutex mu_;
  std::vector<int> connection_fds_ NORMALIZE_GUARDED_BY(mu_);
  std::vector<std::thread> connection_threads_ NORMALIZE_GUARDED_BY(mu_);
};

}  // namespace normalize
