#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace normalize {

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<ServiceClient> ServiceClient::Connect(const std::string& socket_path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket() failed: ") +
                           std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    // ENOENT / ECONNREFUSED are the restarting-daemon cases — transient by
    // contract, so ConnectWithRetry keeps trying them.
    return Status::Unavailable("connect(" + socket_path + ") failed: " +
                               std::strerror(err));
  }
  return ServiceClient(fd);
}

Result<ServiceClient> ServiceClient::ConnectWithRetry(
    const std::string& socket_path, const RetryPolicy& policy, Rng* rng,
    Deadline give_up) {
  Status last = Status::Unavailable("no connection attempt made");
  for (int attempt = 0; attempt < std::max(policy.max_attempts, 1);
       ++attempt) {
    if (give_up.Expired()) {
      return Status::DeadlineExceeded("gave up connecting to " + socket_path +
                                      ": " + last.message());
    }
    Result<ServiceClient> connected = Connect(socket_path);
    if (connected.ok()) return connected;
    last = connected.status();
    if (!policy.IsRetryable(last)) return last;
    double delay_ms = policy.JitteredBackoffMillis(attempt, rng);
    if (give_up.has_deadline()) {
      delay_ms = std::min(delay_ms, give_up.RemainingSeconds() * 1e3);
    }
    if (delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
  }
  return last;
}

Result<ServiceResponse> ServiceClient::Call(const ServiceRequest& request) {
  NORMALIZE_RETURN_IF_ERROR(WriteFrame(fd_, EncodeServiceRequest(request)));
  NORMALIZE_ASSIGN_OR_RETURN(std::string payload, ReadFrame(fd_));
  return DecodeServiceResponse(payload);
}

Result<ServiceResponse> ServiceClient::Ping() {
  ServiceRequest request;
  request.type = ServiceRequestType::kPing;
  return Call(request);
}

Result<ServiceResponse> ServiceClient::Apply(uint64_t seq,
                                             const LiveBatch& batch,
                                             uint32_t deadline_ms) {
  ServiceRequest request;
  request.type = ServiceRequestType::kApplyBatch;
  request.seq = seq;
  request.deadline_ms = deadline_ms;
  request.batch = batch;
  return Call(request);
}

Result<ServiceResponse> ServiceClient::Cover() {
  ServiceRequest request;
  request.type = ServiceRequestType::kGetCover;
  return Call(request);
}

Result<ServiceResponse> ServiceClient::Schema(uint32_t deadline_ms) {
  ServiceRequest request;
  request.type = ServiceRequestType::kGetSchema;
  request.deadline_ms = deadline_ms;
  return Call(request);
}

Result<ServiceResponse> ServiceClient::Stats() {
  ServiceRequest request;
  request.type = ServiceRequestType::kGetStats;
  return Call(request);
}

Result<ServiceResponse> ServiceClient::Metrics(bool as_json) {
  ServiceRequest request;
  request.type = ServiceRequestType::kGetMetrics;
  request.metrics_json = as_json;
  return Call(request);
}

Result<ServiceResponse> ServiceClient::RequestShutdown() {
  ServiceRequest request;
  request.type = ServiceRequestType::kShutdown;
  return Call(request);
}

}  // namespace normalize
