// Write-ahead log of the normalization service (src/service/): every
// accepted mutation batch is appended — and optionally fsynced — *before*
// it is applied to the LiveRelation, so a crash at any point loses no
// acknowledged batch. Recovery replays checkpoint + WAL tail; the two
// invariants that make that exact:
//
//   * Only batches that passed admission validation reach the log, so
//     replay applies every record verbatim (a record that fails to apply is
//     corruption, not a rejected request).
//   * Records carry the client's sequence number; replay skips records at
//     or below the checkpoint's high-water mark, which closes the crash
//     window between "checkpoint written" and "log truncated".
//
// Framing (all integers little-endian via persist/codec):
//
//   file   := header record*
//   header := magic "NRMZWAL1" | u32 version
//   record := u32 record-magic | u64 seq | u32 len | u32 crc32(payload)
//             | payload[len]
//
// A torn tail — the crash artifact of an append cut short — is *data*, not
// an error: ReadWal() returns every intact prefix record and reports how
// many bytes it dropped. Only a file that is not a WAL at all (bad header)
// is kDataLoss. Reads go through the ByteSource seam so the fault suites
// inject truncation and short reads deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/byte_source.hpp"
#include "common/result.hpp"
#include "common/thread_annotations.hpp"
#include "live/live_relation.hpp"

namespace normalize {

/// One intact log record: an accepted batch's sequence number and encoded
/// payload (EncodeLiveBatch).
struct WalRecord {
  uint64_t seq = 0;
  std::string payload;
};

/// The result of scanning a WAL: every record of the intact prefix, plus an
/// account of the tail that was dropped (0 bytes on a clean log).
struct WalReplay {
  std::vector<WalRecord> records;
  /// Bytes past the last intact record (torn frame, failed CRC, or trailing
  /// garbage); the records they held are unrecoverable by design — they
  /// were never acknowledged.
  uint64_t tail_dropped_bytes = 0;
  bool torn_tail() const { return tail_dropped_bytes > 0; }
};

/// Appends framed records to a log file through a POSIX fd. Opening always
/// truncates to a bare header: the service reads the old log *first*,
/// folds it into a fresh checkpoint, and only then opens the writer — so
/// at writer-open time the log's contents are covered by the checkpoint by
/// construction (and any torn tail is discarded rather than appended past).
class WalWriter {
 public:
  /// Creates/truncates the log and writes the header. `sync_each_append`
  /// fdatasyncs every record (durability against machine crashes, not just
  /// process crashes) at a per-batch latency cost.
  static Result<WalWriter> Open(const std::string& path,
                                bool sync_each_append);
  ~WalWriter();

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one framed record (single write(2) call's worth of bytes,
  /// looped over partial writes) and, if configured, fdatasyncs.
  [[nodiscard]] Status Append(uint64_t seq, std::string_view payload)
      NORMALIZE_APPENDS_WAL;

  /// Truncates back to a bare header — called immediately after a
  /// checkpoint whose high-water mark covers every appended record.
  [[nodiscard]] Status Truncate() NORMALIZE_APPENDS_WAL;

  const std::string& path() const { return path_; }
  uint64_t appended_records() const { return appended_records_; }
  uint64_t appended_bytes() const { return appended_bytes_; }

 private:
  WalWriter(std::string path, int fd, bool sync_each_append)
      : path_(std::move(path)), fd_(fd), sync_(sync_each_append) {}

  std::string path_;
  int fd_ = -1;
  bool sync_ = false;
  uint64_t appended_records_ = 0;
  uint64_t appended_bytes_ = 0;
};

/// Scans a WAL stream: intact prefix records + dropped-tail accounting.
/// kDataLoss only when the stream is not a WAL (bad header on a non-empty
/// stream); an empty stream and every truncation of a valid log parse
/// cleanly.
Result<WalReplay> ReadWal(ByteSource* source);

/// ReadWal over the file at `path`; a missing file is an empty replay (the
/// fresh-start case), not an error.
Result<WalReplay> ReadWalFile(const std::string& path);

// --- batch payload codec ---------------------------------------------------

/// Encodes a LiveBatch as a WAL/wire payload (cells verbatim, update
/// targets and delete ids as row numbers).
std::string EncodeLiveBatch(const LiveBatch& batch);

/// Decodes an EncodeLiveBatch payload; kDataLoss on malformed bytes (WAL
/// payloads are CRC-protected, so this firing means a codec bug or
/// tampering, not a crash artifact).
Result<LiveBatch> DecodeLiveBatch(std::string_view payload);

}  // namespace normalize
