#include "service/framing.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "persist/codec.hpp"
#include "service/wal.hpp"

namespace normalize {

namespace {

constexpr uint32_t kFrameMagic = 0x3156534Eu;  // "NSV1" little-endian
// Frames bound one request/response; anything larger than this is a
// protocol violation, not a big message (batches are bounded by the
// admission queue long before this).
constexpr uint32_t kMaxFrameBytes = 64u << 20;

Status ReadExact(int fd, char* buf, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::read(fd, buf + off, len - off);
    if (n == 0) {
      return off == 0 ? Status::Unavailable("connection closed by peer")
                      : Status::DataLoss("connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("socket read failed: ") +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  SnapshotEncoder enc;
  enc.PutU32(kFrameMagic);
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU32(Crc32(payload));
  enc.PutRaw(payload);
  std::string frame = std::move(enc).bytes();
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("connection closed by peer");
      }
      return Status::IoError(std::string("socket write failed: ") +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> ReadFrame(int fd) {
  char header[12];
  NORMALIZE_RETURN_IF_ERROR(ReadExact(fd, header, sizeof(header)));
  SnapshotDecoder dec(std::string_view(header, sizeof(header)));
  uint32_t magic = dec.GetU32().value();
  uint32_t len = dec.GetU32().value();
  uint32_t crc = dec.GetU32().value();
  if (magic != kFrameMagic) {
    return Status::DataLoss("bad frame magic from peer");
  }
  if (len > kMaxFrameBytes) {
    return Status::DataLoss("oversized frame (" + std::to_string(len) +
                            " bytes) from peer");
  }
  std::string payload(len, '\0');
  NORMALIZE_RETURN_IF_ERROR(ReadExact(fd, payload.data(), len));
  if (Crc32(payload) != crc) {
    return Status::DataLoss("frame checksum mismatch from peer");
  }
  return payload;
}

std::string EncodeServiceRequest(const ServiceRequest& request) {
  SnapshotEncoder enc;
  enc.PutU8(static_cast<uint8_t>(request.type));
  enc.PutU64(request.seq);
  enc.PutU32(request.deadline_ms);
  if (request.type == ServiceRequestType::kApplyBatch) {
    enc.PutString(EncodeLiveBatch(request.batch));
  }
  if (request.type == ServiceRequestType::kGetMetrics) {
    enc.PutU8(request.metrics_json ? 1 : 0);
  }
  return std::move(enc).bytes();
}

Result<ServiceRequest> DecodeServiceRequest(std::string_view payload) {
  SnapshotDecoder dec(payload);
  ServiceRequest request;
  NORMALIZE_ASSIGN_OR_RETURN(uint8_t type, dec.GetU8());
  if (type < static_cast<uint8_t>(ServiceRequestType::kPing) ||
      type > static_cast<uint8_t>(ServiceRequestType::kGetMetrics)) {
    return Status::DataLoss("unknown request type " + std::to_string(type));
  }
  request.type = static_cast<ServiceRequestType>(type);
  NORMALIZE_ASSIGN_OR_RETURN(request.seq, dec.GetU64());
  NORMALIZE_ASSIGN_OR_RETURN(request.deadline_ms, dec.GetU32());
  if (request.type == ServiceRequestType::kApplyBatch) {
    NORMALIZE_ASSIGN_OR_RETURN(std::string batch, dec.GetString());
    NORMALIZE_ASSIGN_OR_RETURN(request.batch, DecodeLiveBatch(batch));
  }
  if (request.type == ServiceRequestType::kGetMetrics) {
    NORMALIZE_ASSIGN_OR_RETURN(uint8_t json, dec.GetU8());
    request.metrics_json = json != 0;
  }
  NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
  return request;
}

std::string EncodeServiceResponse(const ServiceResponse& response) {
  SnapshotEncoder enc;
  enc.PutU8(static_cast<uint8_t>(response.code));
  enc.PutString(response.message);
  enc.PutU32(response.retry_after_ms);
  enc.PutU64(response.epoch);
  enc.PutU64(response.live_rows);
  enc.PutU64(response.last_applied_seq);
  enc.PutString(response.text);
  return std::move(enc).bytes();
}

Result<ServiceResponse> DecodeServiceResponse(std::string_view payload) {
  SnapshotDecoder dec(payload);
  ServiceResponse response;
  NORMALIZE_ASSIGN_OR_RETURN(uint8_t code, dec.GetU8());
  if (code > static_cast<uint8_t>(StatusCode::kDataLoss)) {
    return Status::DataLoss("unknown status code " + std::to_string(code) +
                            " from peer");
  }
  response.code = static_cast<StatusCode>(code);
  NORMALIZE_ASSIGN_OR_RETURN(response.message, dec.GetString());
  NORMALIZE_ASSIGN_OR_RETURN(response.retry_after_ms, dec.GetU32());
  NORMALIZE_ASSIGN_OR_RETURN(response.epoch, dec.GetU64());
  NORMALIZE_ASSIGN_OR_RETURN(response.live_rows, dec.GetU64());
  NORMALIZE_ASSIGN_OR_RETURN(response.last_applied_seq, dec.GetU64());
  NORMALIZE_ASSIGN_OR_RETURN(response.text, dec.GetString());
  NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
  return response;
}

}  // namespace normalize
