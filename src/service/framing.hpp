// The service wire protocol: length-prefixed, CRC-framed request/response
// messages over a stream socket, encoded with the persist/ codec so both
// sides share one integer/string wire format with the WAL and snapshots.
//
//   frame   := u32 magic "NSV1" | u32 len | u32 crc32(payload) | payload
//   request := u8 type | u64 seq | u32 deadline_ms
//              | batch (ApplyBatch only) | u8 json (GetMetrics only)
//   response:= u8 status code | string message | u32 retry_after_ms
//              | u64 epoch | u64 live_rows | u64 last_applied_seq
//              | string text
//
// A frame that fails its CRC or magic is kDataLoss (the peer is broken —
// unlike a WAL tail there is no valid prefix to salvage); a cleanly closed
// socket at a frame boundary is kUnavailable (retry by reconnecting).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "live/live_relation.hpp"

namespace normalize {

enum class ServiceRequestType : uint8_t {
  kPing = 1,
  kApplyBatch = 2,
  kGetCover = 3,
  kGetSchema = 4,
  kGetStats = 5,
  kShutdown = 6,
  kGetMetrics = 7,
};

struct ServiceRequest {
  ServiceRequestType type = ServiceRequestType::kPing;
  /// Client idempotence token for kApplyBatch (0 = at-least-once).
  uint64_t seq = 0;
  /// Per-request deadline in milliseconds; 0 = none. Threaded into a
  /// RunContext server-side.
  uint32_t deadline_ms = 0;
  LiveBatch batch;
  /// kGetMetrics format selector: false = Prometheus text exposition,
  /// true = JSON snapshot (including span records).
  bool metrics_json = false;
};

struct ServiceResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  /// Backoff hint accompanying kResourceExhausted / shed kUnavailable.
  uint32_t retry_after_ms = 0;
  /// Cover epoch and live row count at response time.
  uint64_t epoch = 0;
  uint64_t live_rows = 0;
  /// Sequence high-water mark — lets a reconnecting client resolve an
  /// in-doubt batch without resending it.
  uint64_t last_applied_seq = 0;
  /// Payload text: the cover (GetCover), schema (GetSchema), rendered
  /// stats (GetStats), or a metrics exposition (GetMetrics).
  std::string text;

  Status ToStatus() const {
    return code == StatusCode::kOk ? Status::OK() : Status(code, message);
  }
};

std::string EncodeServiceRequest(const ServiceRequest& request);
Result<ServiceRequest> DecodeServiceRequest(std::string_view payload);
std::string EncodeServiceResponse(const ServiceResponse& response);
Result<ServiceResponse> DecodeServiceResponse(std::string_view payload);

/// Writes one frame to a connected socket fd (loops over partial writes).
[[nodiscard]] Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame. kUnavailable on EOF at a frame boundary (peer closed),
/// kDataLoss on a broken frame, kIoError on socket errors.
Result<std::string> ReadFrame(int fd);

}  // namespace normalize
