#include "service/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "persist/codec.hpp"

namespace normalize {

namespace {

constexpr char kWalMagic[8] = {'N', 'R', 'M', 'Z', 'W', 'A', 'L', '1'};
constexpr uint32_t kWalVersion = 1;
constexpr uint32_t kRecordMagic = 0xC0DEFD01u;
constexpr size_t kHeaderSize = sizeof(kWalMagic) + 4;
// record-magic + seq + len + crc
constexpr size_t kRecordHeaderSize = 4 + 8 + 4 + 4;

std::string HeaderBytes() {
  SnapshotEncoder enc;
  enc.PutRaw(std::string_view(kWalMagic, sizeof(kWalMagic)));
  enc.PutU32(kWalVersion);
  return std::move(enc).bytes();
}

Status WriteAll(int fd, std::string_view bytes, const std::string& path) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("wal write to " + path + " failed: " +
                             std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<WalWriter> WalWriter::Open(const std::string& path,
                                  bool sync_each_append) {
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open wal " + path + ": " +
                           std::strerror(errno));
  }
  WalWriter writer(path, fd, sync_each_append);
  NORMALIZE_RETURN_IF_ERROR(WriteAll(fd, HeaderBytes(), path));
  return writer;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      sync_(other.sync_),
      appended_records_(other.appended_records_),
      appended_bytes_(other.appended_bytes_) {
  other.fd_ = -1;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    sync_ = other.sync_;
    appended_records_ = other.appended_records_;
    appended_bytes_ = other.appended_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

Status WalWriter::Append(uint64_t seq, std::string_view payload) {
  SnapshotEncoder enc;
  enc.PutU32(kRecordMagic);
  enc.PutU64(seq);
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU32(Crc32(payload));
  enc.PutRaw(payload);
  std::string frame = std::move(enc).bytes();
  NORMALIZE_RETURN_IF_ERROR(WriteAll(fd_, frame, path_));
  if (sync_ && ::fdatasync(fd_) != 0) {
    return Status::IoError("wal fdatasync on " + path_ + " failed: " +
                           std::strerror(errno));
  }
  ++appended_records_;
  appended_bytes_ += frame.size();
  return Status::OK();
}

Status WalWriter::Truncate() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IoError("wal ftruncate on " + path_ + " failed: " +
                           std::strerror(errno));
  }
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return Status::IoError("wal lseek on " + path_ + " failed: " +
                           std::strerror(errno));
  }
  NORMALIZE_RETURN_IF_ERROR(WriteAll(fd_, HeaderBytes(), path_));
  if (sync_ && ::fdatasync(fd_) != 0) {
    return Status::IoError("wal fdatasync on " + path_ + " failed: " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<WalReplay> ReadWal(ByteSource* source) {
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    NORMALIZE_ASSIGN_OR_RETURN(size_t n, source->Read(buf, sizeof(buf)));
    if (n == 0) break;
    bytes.append(buf, n);
  }

  WalReplay replay;
  if (bytes.empty()) return replay;  // no file contents = no records
  if (bytes.size() < kHeaderSize) {
    // A header cut short can only be the crash artifact of the very first
    // write; there is nothing to recover but it is not corruption.
    replay.tail_dropped_bytes = bytes.size();
    return replay;
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::DataLoss(source->name() + " is not a WAL (bad magic)");
  }
  {
    SnapshotDecoder dec(
        std::string_view(bytes).substr(sizeof(kWalMagic), 4));
    NORMALIZE_ASSIGN_OR_RETURN(uint32_t version, dec.GetU32());
    if (version != kWalVersion) {
      return Status::DataLoss(source->name() + " has WAL version " +
                              std::to_string(version) + ", expected " +
                              std::to_string(kWalVersion));
    }
  }

  size_t pos = kHeaderSize;
  uint64_t last_seq = 0;
  while (pos < bytes.size()) {
    size_t remaining = bytes.size() - pos;
    // Everything from here on that does not parse as an intact record is a
    // dropped tail: a frame cut mid-write, a CRC broken by the cut landing
    // inside the payload, or bytes that never were a frame. All are the
    // same to recovery — the batches in them were never acknowledged.
    if (remaining < kRecordHeaderSize) break;
    SnapshotDecoder dec(std::string_view(bytes).substr(pos, kRecordHeaderSize));
    uint32_t magic = dec.GetU32().value();
    uint64_t seq = dec.GetU64().value();
    uint32_t len = dec.GetU32().value();
    uint32_t crc = dec.GetU32().value();
    if (magic != kRecordMagic) break;
    if (remaining - kRecordHeaderSize < len) break;
    std::string_view payload =
        std::string_view(bytes).substr(pos + kRecordHeaderSize, len);
    if (Crc32(payload) != crc) break;
    if (!replay.records.empty() && seq != 0 && seq <= last_seq) break;
    replay.records.push_back(WalRecord{seq, std::string(payload)});
    if (seq != 0) last_seq = seq;
    pos += kRecordHeaderSize + len;
  }
  replay.tail_dropped_bytes = bytes.size() - pos;
  return replay;
}

Result<WalReplay> ReadWalFile(const std::string& path) {
  if (::access(path.c_str(), F_OK) != 0) return WalReplay{};
  FileByteSource source(path);
  return ReadWal(&source);
}

Result<LiveBatch> DecodeLiveBatch(std::string_view payload) {
  SnapshotDecoder dec(payload);
  LiveBatch batch;
  NORMALIZE_ASSIGN_OR_RETURN(uint64_t inserts, dec.GetU64());
  NORMALIZE_ASSIGN_OR_RETURN(uint64_t updates, dec.GetU64());
  NORMALIZE_ASSIGN_OR_RETURN(uint64_t deletes, dec.GetU64());
  // Counts the encoder could never have produced (every element costs at
  // least one payload byte) mean this is not a batch; reserving them would
  // throw instead of reporting the corruption.
  if (inserts > payload.size() || updates > payload.size() ||
      deletes > payload.size()) {
    return Status::DataLoss("live batch counts exceed the payload size");
  }
  batch.inserts.reserve(inserts);
  for (uint64_t i = 0; i < inserts; ++i) {
    NORMALIZE_ASSIGN_OR_RETURN(uint64_t columns, dec.GetU64());
    if (columns > payload.size()) {
      return Status::DataLoss("live batch row arity exceeds the payload size");
    }
    std::vector<std::string> cells;
    cells.reserve(columns);
    for (uint64_t c = 0; c < columns; ++c) {
      NORMALIZE_ASSIGN_OR_RETURN(std::string cell, dec.GetString());
      cells.push_back(std::move(cell));
    }
    batch.inserts.push_back(std::move(cells));
  }
  batch.updates.reserve(updates);
  for (uint64_t i = 0; i < updates; ++i) {
    NORMALIZE_ASSIGN_OR_RETURN(uint64_t target, dec.GetU64());
    NORMALIZE_ASSIGN_OR_RETURN(uint64_t columns, dec.GetU64());
    if (columns > payload.size()) {
      return Status::DataLoss("live batch row arity exceeds the payload size");
    }
    std::vector<std::string> cells;
    cells.reserve(columns);
    for (uint64_t c = 0; c < columns; ++c) {
      NORMALIZE_ASSIGN_OR_RETURN(std::string cell, dec.GetString());
      cells.push_back(std::move(cell));
    }
    batch.updates.emplace_back(static_cast<RowId>(target), std::move(cells));
  }
  batch.deletes.reserve(deletes);
  for (uint64_t i = 0; i < deletes; ++i) {
    NORMALIZE_ASSIGN_OR_RETURN(uint64_t target, dec.GetU64());
    batch.deletes.push_back(static_cast<RowId>(target));
  }
  NORMALIZE_RETURN_IF_ERROR(dec.ExpectEnd());
  return batch;
}

std::string EncodeLiveBatch(const LiveBatch& batch) {
  SnapshotEncoder enc;
  enc.PutU64(batch.inserts.size());
  enc.PutU64(batch.updates.size());
  enc.PutU64(batch.deletes.size());
  // Per-row cell counts: arity errors stay visible to the server's
  // admission check instead of turning into undecodable payloads.
  for (const auto& cells : batch.inserts) {
    enc.PutU64(cells.size());
    for (const std::string& cell : cells) enc.PutString(cell);
  }
  for (const auto& [target, cells] : batch.updates) {
    enc.PutU64(target);
    enc.PutU64(cells.size());
    for (const std::string& cell : cells) enc.PutString(cell);
  }
  for (RowId target : batch.deletes) enc.PutU64(target);
  return std::move(enc).bytes();
}

}  // namespace normalize
