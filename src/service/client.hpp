// ServiceClient: a blocking framed-RPC client for the normalization
// service. One connection per client; helpers wrap the request types. The
// retry story lives here: ConnectWithRetry backs off with the jittered
// RetryPolicy schedule (so a fleet of clients re-connecting to a restarted
// daemon spreads out), and callers resolve in-doubt batches by resending
// with the same seq — the server's dedup makes the resend exactly-once.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/run_context.hpp"
#include "service/framing.hpp"

namespace normalize {

class ServiceClient {
 public:
  ~ServiceClient();
  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// One connection attempt; kUnavailable when the socket is absent or
  /// refusing (the server is down or still starting).
  static Result<ServiceClient> Connect(const std::string& socket_path);

  /// Connect with jittered exponential backoff until `policy.max_attempts`
  /// runs out or `give_up` expires — whichever first. `rng` drives the
  /// jitter (null = deterministic schedule).
  static Result<ServiceClient> ConnectWithRetry(
      const std::string& socket_path, const RetryPolicy& policy, Rng* rng,
      Deadline give_up = Deadline::Never());

  /// One round-trip. Transport errors are kUnavailable/kIoError/kDataLoss;
  /// an OK result still carries the *application* status in response.code.
  Result<ServiceResponse> Call(const ServiceRequest& request);

  Result<ServiceResponse> Ping();
  Result<ServiceResponse> Apply(uint64_t seq, const LiveBatch& batch,
                                uint32_t deadline_ms = 0);
  Result<ServiceResponse> Cover();
  Result<ServiceResponse> Schema(uint32_t deadline_ms = 0);
  Result<ServiceResponse> Stats();
  /// Scrapes the server's metrics registry: Prometheus text exposition, or
  /// with `as_json` the JSON snapshot including span records.
  Result<ServiceResponse> Metrics(bool as_json = false);
  Result<ServiceResponse> RequestShutdown();

 private:
  explicit ServiceClient(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace normalize
