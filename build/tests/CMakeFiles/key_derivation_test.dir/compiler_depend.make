# Empty compiler generated dependencies file for key_derivation_test.
# This may be replaced when dependencies are built.
