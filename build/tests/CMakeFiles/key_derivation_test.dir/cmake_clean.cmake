file(REMOVE_RECURSE
  "CMakeFiles/key_derivation_test.dir/normalize/key_derivation_test.cpp.o"
  "CMakeFiles/key_derivation_test.dir/normalize/key_derivation_test.cpp.o.d"
  "key_derivation_test"
  "key_derivation_test.pdb"
  "key_derivation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_derivation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
