file(REMOVE_RECURSE
  "CMakeFiles/string_utils_test.dir/common/string_utils_test.cpp.o"
  "CMakeFiles/string_utils_test.dir/common/string_utils_test.cpp.o.d"
  "string_utils_test"
  "string_utils_test.pdb"
  "string_utils_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_utils_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
