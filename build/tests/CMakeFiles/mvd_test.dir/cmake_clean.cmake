file(REMOVE_RECURSE
  "CMakeFiles/mvd_test.dir/mvd/mvd_test.cpp.o"
  "CMakeFiles/mvd_test.dir/mvd/mvd_test.cpp.o.d"
  "mvd_test"
  "mvd_test.pdb"
  "mvd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
