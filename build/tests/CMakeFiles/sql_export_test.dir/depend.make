# Empty dependencies file for sql_export_test.
# This may be replaced when dependencies are built.
