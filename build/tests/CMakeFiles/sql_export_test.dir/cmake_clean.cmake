file(REMOVE_RECURSE
  "CMakeFiles/sql_export_test.dir/normalize/sql_export_test.cpp.o"
  "CMakeFiles/sql_export_test.dir/normalize/sql_export_test.cpp.o.d"
  "sql_export_test"
  "sql_export_test.pdb"
  "sql_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
