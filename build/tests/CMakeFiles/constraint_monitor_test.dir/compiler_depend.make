# Empty compiler generated dependencies file for constraint_monitor_test.
# This may be replaced when dependencies are built.
