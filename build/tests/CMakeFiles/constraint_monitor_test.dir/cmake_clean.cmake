file(REMOVE_RECURSE
  "CMakeFiles/constraint_monitor_test.dir/normalize/constraint_monitor_test.cpp.o"
  "CMakeFiles/constraint_monitor_test.dir/normalize/constraint_monitor_test.cpp.o.d"
  "constraint_monitor_test"
  "constraint_monitor_test.pdb"
  "constraint_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
