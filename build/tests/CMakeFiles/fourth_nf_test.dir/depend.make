# Empty dependencies file for fourth_nf_test.
# This may be replaced when dependencies are built.
