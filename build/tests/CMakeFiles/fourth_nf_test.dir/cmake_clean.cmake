file(REMOVE_RECURSE
  "CMakeFiles/fourth_nf_test.dir/normalize/fourth_nf_test.cpp.o"
  "CMakeFiles/fourth_nf_test.dir/normalize/fourth_nf_test.cpp.o.d"
  "fourth_nf_test"
  "fourth_nf_test.pdb"
  "fourth_nf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourth_nf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
