# Empty compiler generated dependencies file for fd_io_test.
# This may be replaced when dependencies are built.
