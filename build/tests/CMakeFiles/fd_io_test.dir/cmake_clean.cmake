file(REMOVE_RECURSE
  "CMakeFiles/fd_io_test.dir/fd/fd_io_test.cpp.o"
  "CMakeFiles/fd_io_test.dir/fd/fd_io_test.cpp.o.d"
  "fd_io_test"
  "fd_io_test.pdb"
  "fd_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
