file(REMOVE_RECURSE
  "CMakeFiles/operations_test.dir/relation/operations_test.cpp.o"
  "CMakeFiles/operations_test.dir/relation/operations_test.cpp.o.d"
  "operations_test"
  "operations_test.pdb"
  "operations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
