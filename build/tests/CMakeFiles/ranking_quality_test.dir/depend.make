# Empty dependencies file for ranking_quality_test.
# This may be replaced when dependencies are built.
