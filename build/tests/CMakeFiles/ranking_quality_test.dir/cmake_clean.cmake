file(REMOVE_RECURSE
  "CMakeFiles/ranking_quality_test.dir/integration/ranking_quality_test.cpp.o"
  "CMakeFiles/ranking_quality_test.dir/integration/ranking_quality_test.cpp.o.d"
  "ranking_quality_test"
  "ranking_quality_test.pdb"
  "ranking_quality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranking_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
