file(REMOVE_RECURSE
  "CMakeFiles/violation_detection_test.dir/normalize/violation_detection_test.cpp.o"
  "CMakeFiles/violation_detection_test.dir/normalize/violation_detection_test.cpp.o.d"
  "violation_detection_test"
  "violation_detection_test.pdb"
  "violation_detection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/violation_detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
