# Empty compiler generated dependencies file for violation_detection_test.
# This may be replaced when dependencies are built.
