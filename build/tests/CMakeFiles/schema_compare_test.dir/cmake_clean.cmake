file(REMOVE_RECURSE
  "CMakeFiles/schema_compare_test.dir/normalize/schema_compare_test.cpp.o"
  "CMakeFiles/schema_compare_test.dir/normalize/schema_compare_test.cpp.o.d"
  "schema_compare_test"
  "schema_compare_test.pdb"
  "schema_compare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
