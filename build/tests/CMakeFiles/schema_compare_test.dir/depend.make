# Empty dependencies file for schema_compare_test.
# This may be replaced when dependencies are built.
