file(REMOVE_RECURSE
  "CMakeFiles/fd_tree_test.dir/fd/fd_tree_test.cpp.o"
  "CMakeFiles/fd_tree_test.dir/fd/fd_tree_test.cpp.o.d"
  "fd_tree_test"
  "fd_tree_test.pdb"
  "fd_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
