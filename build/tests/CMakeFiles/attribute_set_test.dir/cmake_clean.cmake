file(REMOVE_RECURSE
  "CMakeFiles/attribute_set_test.dir/common/attribute_set_test.cpp.o"
  "CMakeFiles/attribute_set_test.dir/common/attribute_set_test.cpp.o.d"
  "attribute_set_test"
  "attribute_set_test.pdb"
  "attribute_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
