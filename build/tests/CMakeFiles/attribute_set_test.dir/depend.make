# Empty dependencies file for attribute_set_test.
# This may be replaced when dependencies are built.
