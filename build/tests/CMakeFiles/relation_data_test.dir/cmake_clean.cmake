file(REMOVE_RECURSE
  "CMakeFiles/relation_data_test.dir/relation/relation_data_test.cpp.o"
  "CMakeFiles/relation_data_test.dir/relation/relation_data_test.cpp.o.d"
  "relation_data_test"
  "relation_data_test.pdb"
  "relation_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
