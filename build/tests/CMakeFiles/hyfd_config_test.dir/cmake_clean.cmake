file(REMOVE_RECURSE
  "CMakeFiles/hyfd_config_test.dir/discovery/hyfd_config_test.cpp.o"
  "CMakeFiles/hyfd_config_test.dir/discovery/hyfd_config_test.cpp.o.d"
  "hyfd_config_test"
  "hyfd_config_test.pdb"
  "hyfd_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyfd_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
