# Empty dependencies file for hyfd_config_test.
# This may be replaced when dependencies are built.
