# Empty dependencies file for csv_normalization.
# This may be replaced when dependencies are built.
