file(REMOVE_RECURSE
  "CMakeFiles/csv_normalization.dir/csv_normalization.cpp.o"
  "CMakeFiles/csv_normalization.dir/csv_normalization.cpp.o.d"
  "csv_normalization"
  "csv_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
