file(REMOVE_RECURSE
  "CMakeFiles/normalize_cli.dir/normalize_cli.cpp.o"
  "CMakeFiles/normalize_cli.dir/normalize_cli.cpp.o.d"
  "normalize_cli"
  "normalize_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/normalize_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
