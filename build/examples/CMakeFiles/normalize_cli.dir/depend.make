# Empty dependencies file for normalize_cli.
# This may be replaced when dependencies are built.
