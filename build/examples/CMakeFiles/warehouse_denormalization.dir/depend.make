# Empty dependencies file for warehouse_denormalization.
# This may be replaced when dependencies are built.
