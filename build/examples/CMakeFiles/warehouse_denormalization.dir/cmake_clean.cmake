file(REMOVE_RECURSE
  "CMakeFiles/warehouse_denormalization.dir/warehouse_denormalization.cpp.o"
  "CMakeFiles/warehouse_denormalization.dir/warehouse_denormalization.cpp.o.d"
  "warehouse_denormalization"
  "warehouse_denormalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_denormalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
