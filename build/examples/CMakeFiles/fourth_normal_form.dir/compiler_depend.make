# Empty compiler generated dependencies file for fourth_normal_form.
# This may be replaced when dependencies are built.
