file(REMOVE_RECURSE
  "CMakeFiles/fourth_normal_form.dir/fourth_normal_form.cpp.o"
  "CMakeFiles/fourth_normal_form.dir/fourth_normal_form.cpp.o.d"
  "fourth_normal_form"
  "fourth_normal_form.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fourth_normal_form.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
