# Empty dependencies file for bench_closure_parallel.
# This may be replaced when dependencies are built.
