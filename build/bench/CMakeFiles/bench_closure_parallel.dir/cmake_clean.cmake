file(REMOVE_RECURSE
  "CMakeFiles/bench_closure_parallel.dir/bench_closure_parallel.cpp.o"
  "CMakeFiles/bench_closure_parallel.dir/bench_closure_parallel.cpp.o.d"
  "bench_closure_parallel"
  "bench_closure_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_closure_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
