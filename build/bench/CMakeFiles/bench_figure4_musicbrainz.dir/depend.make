# Empty dependencies file for bench_figure4_musicbrainz.
# This may be replaced when dependencies are built.
