file(REMOVE_RECURSE
  "CMakeFiles/bench_figure4_musicbrainz.dir/bench_figure4_musicbrainz.cpp.o"
  "CMakeFiles/bench_figure4_musicbrainz.dir/bench_figure4_musicbrainz.cpp.o.d"
  "bench_figure4_musicbrainz"
  "bench_figure4_musicbrainz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_musicbrainz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
