file(REMOVE_RECURSE
  "CMakeFiles/bench_figure3_tpch.dir/bench_figure3_tpch.cpp.o"
  "CMakeFiles/bench_figure3_tpch.dir/bench_figure3_tpch.cpp.o.d"
  "bench_figure3_tpch"
  "bench_figure3_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
