# Empty compiler generated dependencies file for bench_figure3_tpch.
# This may be replaced when dependencies are built.
