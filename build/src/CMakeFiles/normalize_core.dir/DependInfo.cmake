
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/closure/closure.cpp" "src/CMakeFiles/normalize_core.dir/closure/closure.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/closure/closure.cpp.o.d"
  "/root/repo/src/common/attribute_set.cpp" "src/CMakeFiles/normalize_core.dir/common/attribute_set.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/common/attribute_set.cpp.o.d"
  "/root/repo/src/common/bloom_filter.cpp" "src/CMakeFiles/normalize_core.dir/common/bloom_filter.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/common/bloom_filter.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/normalize_core.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/common/status.cpp.o.d"
  "/root/repo/src/common/string_utils.cpp" "src/CMakeFiles/normalize_core.dir/common/string_utils.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/common/string_utils.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/normalize_core.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/datagen/datasets.cpp" "src/CMakeFiles/normalize_core.dir/datagen/datasets.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/datagen/datasets.cpp.o.d"
  "/root/repo/src/datagen/fd_generator.cpp" "src/CMakeFiles/normalize_core.dir/datagen/fd_generator.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/datagen/fd_generator.cpp.o.d"
  "/root/repo/src/datagen/musicbrainz_like.cpp" "src/CMakeFiles/normalize_core.dir/datagen/musicbrainz_like.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/datagen/musicbrainz_like.cpp.o.d"
  "/root/repo/src/datagen/tpch_like.cpp" "src/CMakeFiles/normalize_core.dir/datagen/tpch_like.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/datagen/tpch_like.cpp.o.d"
  "/root/repo/src/discovery/dfd.cpp" "src/CMakeFiles/normalize_core.dir/discovery/dfd.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/discovery/dfd.cpp.o.d"
  "/root/repo/src/discovery/discovery_util.cpp" "src/CMakeFiles/normalize_core.dir/discovery/discovery_util.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/discovery/discovery_util.cpp.o.d"
  "/root/repo/src/discovery/fd_discovery.cpp" "src/CMakeFiles/normalize_core.dir/discovery/fd_discovery.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/discovery/fd_discovery.cpp.o.d"
  "/root/repo/src/discovery/fdep.cpp" "src/CMakeFiles/normalize_core.dir/discovery/fdep.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/discovery/fdep.cpp.o.d"
  "/root/repo/src/discovery/hyfd.cpp" "src/CMakeFiles/normalize_core.dir/discovery/hyfd.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/discovery/hyfd.cpp.o.d"
  "/root/repo/src/discovery/ind.cpp" "src/CMakeFiles/normalize_core.dir/discovery/ind.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/discovery/ind.cpp.o.d"
  "/root/repo/src/discovery/induction.cpp" "src/CMakeFiles/normalize_core.dir/discovery/induction.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/discovery/induction.cpp.o.d"
  "/root/repo/src/discovery/naive_fd.cpp" "src/CMakeFiles/normalize_core.dir/discovery/naive_fd.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/discovery/naive_fd.cpp.o.d"
  "/root/repo/src/discovery/tane.cpp" "src/CMakeFiles/normalize_core.dir/discovery/tane.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/discovery/tane.cpp.o.d"
  "/root/repo/src/discovery/ucc.cpp" "src/CMakeFiles/normalize_core.dir/discovery/ucc.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/discovery/ucc.cpp.o.d"
  "/root/repo/src/fd/approximate.cpp" "src/CMakeFiles/normalize_core.dir/fd/approximate.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/fd/approximate.cpp.o.d"
  "/root/repo/src/fd/armstrong.cpp" "src/CMakeFiles/normalize_core.dir/fd/armstrong.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/fd/armstrong.cpp.o.d"
  "/root/repo/src/fd/fd.cpp" "src/CMakeFiles/normalize_core.dir/fd/fd.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/fd/fd.cpp.o.d"
  "/root/repo/src/fd/fd_io.cpp" "src/CMakeFiles/normalize_core.dir/fd/fd_io.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/fd/fd_io.cpp.o.d"
  "/root/repo/src/fd/fd_tree.cpp" "src/CMakeFiles/normalize_core.dir/fd/fd_tree.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/fd/fd_tree.cpp.o.d"
  "/root/repo/src/fd/hitting_set.cpp" "src/CMakeFiles/normalize_core.dir/fd/hitting_set.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/fd/hitting_set.cpp.o.d"
  "/root/repo/src/fd/set_trie.cpp" "src/CMakeFiles/normalize_core.dir/fd/set_trie.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/fd/set_trie.cpp.o.d"
  "/root/repo/src/mvd/mvd.cpp" "src/CMakeFiles/normalize_core.dir/mvd/mvd.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/mvd/mvd.cpp.o.d"
  "/root/repo/src/normalize/constraint_monitor.cpp" "src/CMakeFiles/normalize_core.dir/normalize/constraint_monitor.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/normalize/constraint_monitor.cpp.o.d"
  "/root/repo/src/normalize/decomposition.cpp" "src/CMakeFiles/normalize_core.dir/normalize/decomposition.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/normalize/decomposition.cpp.o.d"
  "/root/repo/src/normalize/fourth_nf.cpp" "src/CMakeFiles/normalize_core.dir/normalize/fourth_nf.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/normalize/fourth_nf.cpp.o.d"
  "/root/repo/src/normalize/key_derivation.cpp" "src/CMakeFiles/normalize_core.dir/normalize/key_derivation.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/normalize/key_derivation.cpp.o.d"
  "/root/repo/src/normalize/normalizer.cpp" "src/CMakeFiles/normalize_core.dir/normalize/normalizer.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/normalize/normalizer.cpp.o.d"
  "/root/repo/src/normalize/report.cpp" "src/CMakeFiles/normalize_core.dir/normalize/report.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/normalize/report.cpp.o.d"
  "/root/repo/src/normalize/schema_compare.cpp" "src/CMakeFiles/normalize_core.dir/normalize/schema_compare.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/normalize/schema_compare.cpp.o.d"
  "/root/repo/src/normalize/scoring.cpp" "src/CMakeFiles/normalize_core.dir/normalize/scoring.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/normalize/scoring.cpp.o.d"
  "/root/repo/src/normalize/sql_export.cpp" "src/CMakeFiles/normalize_core.dir/normalize/sql_export.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/normalize/sql_export.cpp.o.d"
  "/root/repo/src/normalize/violation_detection.cpp" "src/CMakeFiles/normalize_core.dir/normalize/violation_detection.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/normalize/violation_detection.cpp.o.d"
  "/root/repo/src/pli/pli.cpp" "src/CMakeFiles/normalize_core.dir/pli/pli.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/pli/pli.cpp.o.d"
  "/root/repo/src/relation/csv.cpp" "src/CMakeFiles/normalize_core.dir/relation/csv.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/relation/csv.cpp.o.d"
  "/root/repo/src/relation/operations.cpp" "src/CMakeFiles/normalize_core.dir/relation/operations.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/relation/operations.cpp.o.d"
  "/root/repo/src/relation/relation_data.cpp" "src/CMakeFiles/normalize_core.dir/relation/relation_data.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/relation/relation_data.cpp.o.d"
  "/root/repo/src/relation/schema.cpp" "src/CMakeFiles/normalize_core.dir/relation/schema.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/relation/schema.cpp.o.d"
  "/root/repo/src/relation/schema_io.cpp" "src/CMakeFiles/normalize_core.dir/relation/schema_io.cpp.o" "gcc" "src/CMakeFiles/normalize_core.dir/relation/schema_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
