# Empty compiler generated dependencies file for normalize_core.
# This may be replaced when dependencies are built.
