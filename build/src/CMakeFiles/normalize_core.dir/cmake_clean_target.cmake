file(REMOVE_RECURSE
  "libnormalize_core.a"
)
