#!/usr/bin/env python3
"""Validate metrics JSON snapshots written by the obs subsystem
(obs/export.hpp ToMetricsJson): `normalize_cli --metrics-out`,
`bench_* --metrics-out`, and the service's METRICS request all emit this
schema, and CI uploads the snapshots as artifacts — a malformed one means
an exporter regression, caught here rather than by a dashboard.

Schema (metrics_schema 1):

  Top level: metrics_schema == 1 plus the four arrays counters, gauges,
  histograms, spans (present even when empty).

  Samples: every counter/gauge carries name (non-empty str), labels (str,
  plain `k=v[,k2=v2]` form), and an integral value; counters must be
  non-negative. Histograms additionally carry bounds (strictly increasing
  positive numbers), counts with exactly len(bounds)+1 entries (the last
  is the +Inf overflow bucket), a count equal to the sum of the bucket
  counts, and a non-negative sum_seconds.

  Spans: ids are positive, strictly increasing (export order = start
  order), and unique; every parent is either 0 (a root), an earlier id in
  the file, or an id below the retained window (evicted — the tracer's
  bounded ring aged it out, consumers treat the orphan as a root);
  finished is a bool and durations are non-negative.

Optional --require NAME[@LABELS] flags assert that a specific instrument
was actually recorded (acceptance runs use this to prove the wiring: e.g.
--require service_wal_append_seconds@component=service).

Exit codes: 0 ok, 1 schema violation, 2 --require unmet. Stdlib only.
"""

import argparse
import json
import numbers
import sys

ERRORS = []
REQUIRE_ERRORS = []


def error(msg):
    ERRORS.append(msg)


def is_int(value):
    return isinstance(value, int) and not isinstance(value, bool)


def is_num(value):
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def check_sample(entry, where, signed):
    if not isinstance(entry, dict):
        error(f"{where}: not an object")
        return
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        error(f"{where}: missing or empty name")
    if not isinstance(entry.get("labels"), str):
        error(f"{where}: labels must be a string")
    value = entry.get("value")
    if not is_int(value):
        error(f"{where}: value must be integral, got {value!r}")
    elif not signed and value < 0:
        error(f"{where}: counter value is negative ({value})")


def check_histogram(entry, where):
    if not isinstance(entry, dict):
        error(f"{where}: not an object")
        return
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        error(f"{where}: missing or empty name")
    bounds = entry.get("bounds")
    counts = entry.get("counts")
    if not isinstance(bounds, list) or not all(is_num(b) for b in bounds):
        error(f"{where}: bounds must be a list of numbers")
        return
    if any(b <= 0 for b in bounds):
        error(f"{where}: bucket bounds must be positive")
    if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
        error(f"{where}: bounds not strictly increasing: {bounds}")
    if not isinstance(counts, list) or not all(is_int(c) for c in counts):
        error(f"{where}: counts must be a list of integers")
        return
    if len(counts) != len(bounds) + 1:
        error(f"{where}: {len(counts)} counts for {len(bounds)} bounds "
              f"(expected bounds+1, the last bucket is +Inf)")
    if any(c < 0 for c in counts):
        error(f"{where}: negative bucket count")
    total = entry.get("count")
    if not is_int(total):
        error(f"{where}: count must be integral")
    elif total != sum(counts):
        error(f"{where}: count {total} != sum of bucket counts "
              f"{sum(counts)}")
    sum_seconds = entry.get("sum_seconds")
    if not is_num(sum_seconds) or sum_seconds < 0:
        error(f"{where}: sum_seconds must be a non-negative number")


def check_spans(spans, path):
    previous_id = 0
    first_id = spans[0].get("id") if spans else 1
    for i, span in enumerate(spans):
        where = f"{path}: spans[{i}]"
        if not isinstance(span, dict):
            error(f"{where}: not an object")
            continue
        span_id = span.get("id")
        if not is_int(span_id) or span_id <= 0:
            error(f"{where}: id must be a positive integer")
            continue
        if span_id <= previous_id:
            error(f"{where}: ids must be strictly increasing "
                  f"({span_id} after {previous_id})")
        parent = span.get("parent")
        if not is_int(parent) or parent < 0:
            error(f"{where}: parent must be a non-negative integer")
        elif parent >= span_id:
            error(f"{where}: parent {parent} does not precede id {span_id}")
        elif parent != 0 and first_id <= parent <= previous_id:
            # In-window parents must actually be present; below the window
            # they were evicted by the tracer ring and orphaning is fine.
            if not any(s.get("id") == parent for s in spans[:i]):
                error(f"{where}: parent {parent} missing from export")
        if not isinstance(span.get("name"), str) or not span["name"]:
            error(f"{where}: missing or empty name")
        for key in ("start_seconds", "duration_seconds"):
            if not is_num(span.get(key)) or span[key] < 0:
                error(f"{where}: {key} must be a non-negative number")
        if not isinstance(span.get("finished"), bool):
            error(f"{where}: finished must be a bool")
        previous_id = span_id


def check_file(path, data, requirements):
    if data.get("metrics_schema") != 1:
        error(f"{path}: metrics_schema must be 1, "
              f"got {data.get('metrics_schema')!r}")
        return
    for key in ("counters", "gauges", "histograms", "spans"):
        if not isinstance(data.get(key), list):
            error(f"{path}: missing array '{key}'")
    if ERRORS:
        return
    for i, entry in enumerate(data["counters"]):
        check_sample(entry, f"{path}: counters[{i}]", signed=False)
    for i, entry in enumerate(data["gauges"]):
        check_sample(entry, f"{path}: gauges[{i}]", signed=True)
    for i, entry in enumerate(data["histograms"]):
        check_histogram(entry, f"{path}: histograms[{i}]")
    check_spans(data["spans"], path)

    recorded = set()
    for section in ("counters", "gauges", "histograms"):
        for entry in data[section]:
            if isinstance(entry, dict) and isinstance(entry.get("name"), str):
                recorded.add((entry["name"], entry.get("labels", "")))
                recorded.add((entry["name"], None))  # name-only match
    for spec in requirements:
        name, sep, labels = spec.partition("@")
        key = (name, labels if sep else None)
        if key not in recorded:
            REQUIRE_ERRORS.append(f"{path}: required instrument "
                                  f"'{spec}' not recorded")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="metrics JSON snapshots")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME[@LABELS]",
                        help="fail unless this instrument appears (repeat "
                        "for several; @LABELS matches exactly)")
    args = parser.parse_args()

    for path in args.files:
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            error(f"{path}: {e}")
            continue
        if not isinstance(data, dict):
            error(f"{path}: top level is not an object")
            continue
        check_file(path, data, args.require)

    for msg in ERRORS:
        print(f"schema: {msg}", file=sys.stderr)
    for msg in REQUIRE_ERRORS:
        print(f"require: {msg}", file=sys.stderr)
    if ERRORS:
        return 1
    if REQUIRE_ERRORS:
        return 2
    print(f"ok: {', '.join(args.files)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
