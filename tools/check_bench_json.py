#!/usr/bin/env python3
"""Validate BENCH_*.json files written by bench_discovery and bench_churn.

Two layers, selected by flags:

  Schema validation (always on): required top-level keys, per-algorithm
  thread sweeps that start at threads=1 / speedup~1.0 and use strictly
  increasing thread counts, a shard sweep with strictly increasing shard
  counts starting at 1, and one FD count that every sweep entry agrees on
  (the discovered FD set must be invariant across threads AND shards).
  Files with a top-level "churn" key are bench_churn records instead:
  per-configuration churn entries plus "renormalize", "service", and
  "reseat" sections, with the correctness booleans (cover_matches_oneshot,
  schema_matches, cover_matches_direct, covers_match) required to be true
  — a maintained cover diverging from one-shot discovery, or the durable
  service's cover diverging from the bare maintainer's, is a schema
  failure, not a perf regression. The reseat section must also show
  witness re-seating costing no tree rebuilds (rebuilds_with <=
  rebuilds_without).

  Perf gates (opt-in): --min-speedup FLOOR[@THREADS] fails when the hyfd
  thread sweep's speedup at THREADS (default: the largest recorded count)
  is below FLOOR; --max-shard-overhead RATIO fails when the 2-shard run
  takes more than RATIO times the single-shot baseline. CI passes a floor
  matched to the runner; on a single-core box both numbers are meaningless
  (thread rounds and shard fan-out serialize), so the gates require
  --min-hw (default 2) hardware threads recorded in the file and degrade
  to warnings below that.

Exit codes: 0 ok, 1 schema violation, 2 perf gate failure. Stdlib only.
"""

import argparse
import json
import sys

SCHEMA_ERRORS = []
GATE_ERRORS = []


def schema_error(msg):
    SCHEMA_ERRORS.append(msg)


def gate_error(msg):
    GATE_ERRORS.append(msg)


def check_entry_keys(entry, keys, where):
    for key in keys:
        if key not in entry:
            schema_error(f"{where}: missing key '{key}'")
            return False
    return True


def check_thread_sweep(results):
    """Per-algorithm: threads strictly increasing from 1, speedup sane."""
    by_algo = {}
    for i, entry in enumerate(results):
        if not check_entry_keys(
            entry, ("algorithm", "threads", "seconds", "speedup", "fds"),
            f"results[{i}]"):
            continue
        by_algo.setdefault(entry["algorithm"], []).append(entry)
    for algo, entries in by_algo.items():
        threads = [e["threads"] for e in entries]
        if threads[0] != 1:
            schema_error(f"{algo}: thread sweep must start at threads=1, "
                         f"got {threads[0]}")
        if any(b <= a for a, b in zip(threads, threads[1:])):
            schema_error(f"{algo}: thread counts not strictly increasing: "
                         f"{threads}")
        if abs(entries[0]["speedup"] - 1.0) > 1e-6:
            schema_error(f"{algo}: speedup at threads=1 must be 1.0, got "
                         f"{entries[0]['speedup']}")
        for e in entries:
            if e["seconds"] <= 0 or e["speedup"] <= 0:
                schema_error(f"{algo} threads={e['threads']}: non-positive "
                             f"seconds/speedup")
    return by_algo


def check_shard_sweep(sweep):
    shards = []
    for i, entry in enumerate(sweep):
        if not check_entry_keys(
            entry, ("algorithm", "shards", "seconds", "speedup", "fds",
                    "cross_shard_violations"),
            f"shard_sweep[{i}]"):
            continue
        shards.append(entry["shards"])
    if shards and shards[0] != 1:
        schema_error(f"shard sweep must start at shards=1, got {shards[0]}")
    if any(b <= a for a, b in zip(shards, shards[1:])):
        schema_error(f"shard counts not strictly increasing: {shards}")


def check_fds_invariant(data):
    """One FD count across every thread AND shard entry: the discovered set
    must not depend on the execution strategy."""
    counts = {e["fds"] for e in data.get("results", []) if "fds" in e}
    counts |= {e["fds"] for e in data.get("shard_sweep", []) if "fds" in e}
    if len(counts) > 1:
        schema_error(f"FD counts disagree across sweep entries: "
                     f"{sorted(counts)}")


def check_churn_file(path, data):
    """bench_churn schema: churn + renormalize + service sections,
    correctness booleans true, sane counters."""
    for key in ("benchmark", "dataset", "rows", "columns", "max_lhs",
                "hardware_concurrency", "churn", "renormalize", "service",
                "reseat"):
        if key not in data:
            schema_error(f"{path}: missing top-level key '{key}'")
    if SCHEMA_ERRORS:
        return
    if not data["churn"]:
        schema_error(f"{path}: empty churn section")
    for i, entry in enumerate(data["churn"]):
        where = f"churn[{i}]"
        if not check_entry_keys(
            entry, ("batch_size", "threads", "batches", "ops",
                    "init_seconds", "maintain_seconds", "updates_per_sec",
                    "avg_batch_ms", "full_rerun_seconds",
                    "speedup_vs_rerun", "final_fds",
                    "cover_matches_oneshot"),
            where):
            continue
        if entry["ops"] <= 0 or entry["maintain_seconds"] <= 0:
            schema_error(f"{where}: non-positive ops/maintain_seconds")
        if entry["cover_matches_oneshot"] is not True:
            schema_error(f"{where}: maintained cover diverged from "
                         f"one-shot discovery (batch_size="
                         f"{entry['batch_size']}, "
                         f"threads={entry['threads']})")
    for i, entry in enumerate(data["renormalize"]):
        where = f"renormalize[{i}]"
        if not check_entry_keys(
            entry, ("threads", "renormalize_seconds",
                    "full_normalize_seconds", "speedup", "relations",
                    "schema_matches"),
            where):
            continue
        if entry["schema_matches"] is not True:
            schema_error(f"{where}: renormalized schema diverged from the "
                         f"full pipeline (threads={entry['threads']})")
    if not data["service"]:
        schema_error(f"{path}: empty service section")
    for i, entry in enumerate(data["service"]):
        where = f"service[{i}]"
        if not check_entry_keys(
            entry, ("batch_size", "batches", "ops", "sync_wal",
                    "apply_seconds", "avg_ack_ms", "direct_avg_batch_ms",
                    "overhead_ratio", "wal_bytes", "checkpoints",
                    "cover_matches_direct"),
            where):
            continue
        if entry["ops"] <= 0 or entry["apply_seconds"] <= 0:
            schema_error(f"{where}: non-positive ops/apply_seconds")
        if entry["checkpoints"] <= 0:
            schema_error(f"{where}: the service never checkpointed")
        if entry["cover_matches_direct"] is not True:
            schema_error(f"{where}: durable-service cover diverged from "
                         f"the direct maintainer (sync_wal="
                         f"{entry['sync_wal']})")
    reseat = data["reseat"]
    if check_entry_keys(
        reseat, ("batch_size", "batches", "rebuilds_with",
                 "rebuilds_without", "evidence_reseated",
                 "maintain_seconds_with", "maintain_seconds_without",
                 "covers_match"),
        "reseat"):
        if reseat["covers_match"] is not True:
            schema_error("reseat: witness re-seating changed a cover")
        if reseat["rebuilds_with"] > reseat["rebuilds_without"]:
            schema_error(f"reseat: re-seating cost tree rebuilds "
                         f"({reseat['rebuilds_with']} > "
                         f"{reseat['rebuilds_without']})")


def apply_speedup_gate(by_algo, spec, min_hw, hw):
    floor_str, _, at = spec.partition("@")
    floor = float(floor_str)
    entries = by_algo.get("hyfd", [])
    if not entries:
        gate_error("--min-speedup: no hyfd thread sweep in file")
        return
    threads = int(at) if at else max(e["threads"] for e in entries)
    entry = next((e for e in entries if e["threads"] == threads), None)
    if entry is None:
        gate_error(f"--min-speedup: no hyfd entry at threads={threads}")
        return
    if hw < min_hw:
        print(f"warning: hardware_concurrency={hw} < {min_hw}; "
              f"speedup gate skipped (recorded speedup at threads={threads}: "
              f"{entry['speedup']:.3f})")
        return
    if entry["speedup"] < floor:
        gate_error(f"hyfd speedup at {threads} threads is "
                   f"{entry['speedup']:.3f}, below the floor {floor}")


def apply_shard_overhead_gate(sweep, ratio, min_hw, hw):
    two = next((e for e in sweep if e.get("shards") == 2), None)
    if two is None:
        gate_error("--max-shard-overhead: no 2-shard entry in shard sweep")
        return
    overhead = 1.0 / two["speedup"] if two["speedup"] > 0 else float("inf")
    if hw < min_hw:
        # Per-shard discovery fans out across cores; on a serial box the
        # shards run back to back and the overhead ratio is meaningless.
        print(f"warning: hardware_concurrency={hw} < {min_hw}; "
              f"shard overhead gate skipped (recorded 2-shard overhead: "
              f"{overhead:.2f}x)")
        return
    if overhead > ratio:
        gate_error(f"2-shard run is {overhead:.2f}x the single-shot "
                   f"baseline, above the allowed {ratio}x")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="BENCH_*.json files")
    parser.add_argument("--min-speedup", metavar="FLOOR[@THREADS]",
                        help="fail if hyfd speedup at THREADS (default: max "
                        "recorded) is below FLOOR")
    parser.add_argument("--max-shard-overhead", type=float, metavar="RATIO",
                        help="fail if the 2-shard run exceeds RATIO times "
                        "the single-shot baseline")
    parser.add_argument("--min-hw", type=int, default=2,
                        help="hardware threads the speedup gate needs; below "
                        "this it only warns (default: 2)")
    args = parser.parse_args()

    for path in args.files:
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            schema_error(f"{path}: {e}")
            continue

        if "churn" in data:
            # bench_churn record: its own schema, no thread/shard gates
            # (the churn row is report-only in CI).
            check_churn_file(path, data)
            continue

        for key in ("benchmark", "dataset", "rows", "columns", "max_lhs",
                    "hardware_concurrency", "results", "shard_sweep"):
            if key not in data:
                schema_error(f"{path}: missing top-level key '{key}'")
        if SCHEMA_ERRORS:
            continue

        by_algo = check_thread_sweep(data["results"])
        check_shard_sweep(data["shard_sweep"])
        check_fds_invariant(data)

        if args.min_speedup:
            apply_speedup_gate(by_algo, args.min_speedup, args.min_hw,
                               data["hardware_concurrency"])
        if args.max_shard_overhead:
            apply_shard_overhead_gate(data["shard_sweep"],
                                      args.max_shard_overhead, args.min_hw,
                                      data["hardware_concurrency"])

    for msg in SCHEMA_ERRORS:
        print(f"schema: {msg}", file=sys.stderr)
    for msg in GATE_ERRORS:
        print(f"gate: {msg}", file=sys.stderr)
    if SCHEMA_ERRORS:
        return 1
    if GATE_ERRORS:
        return 2
    print(f"ok: {', '.join(args.files)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
