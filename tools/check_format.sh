#!/usr/bin/env bash
# Reports clang-format drift (config: .clang-format) as a diff without
# rewriting anything. Exits 0 when clang-format is not installed so the
# script is safe to call unconditionally.
#
#   tools/check_format.sh          # report drift, exit 1 if any
#   tools/check_format.sh --fix    # rewrite files in place
set -u -o pipefail

cd "$(dirname "$0")/.."

FORMAT="${CLANG_FORMAT:-}"
if [ -z "$FORMAT" ]; then
  for candidate in clang-format clang-format-18 clang-format-17 \
                   clang-format-16 clang-format-15 clang-format-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
      FORMAT="$candidate"
      break
    fi
  done
fi
if [ -z "$FORMAT" ]; then
  echo "check_format: clang-format not installed; skipping (runs in CI)" >&2
  exit 0
fi

mapfile -t SOURCES < <(git ls-files '*.cpp' '*.hpp')
if [ "${#SOURCES[@]}" -eq 0 ]; then
  echo "check_format: no sources found" >&2
  exit 1
fi

if [ "${1:-}" = "--fix" ]; then
  "$FORMAT" -i "${SOURCES[@]}"
  exit 0
fi

DRIFT=0
for f in "${SOURCES[@]}"; do
  if ! diff -u --label "$f (tracked)" --label "$f (formatted)" \
       "$f" <("$FORMAT" "$f"); then
    DRIFT=1
  fi
done
if [ "$DRIFT" -ne 0 ]; then
  echo "check_format: drift found; run tools/check_format.sh --fix" >&2
fi
exit "$DRIFT"
