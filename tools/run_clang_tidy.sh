#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over every first-party translation
# unit, using the compile commands of a CMake build directory.
#
#   tools/run_clang_tidy.sh [build-dir]
#
# The build directory defaults to ./build and is configured on the fly when
# it lacks compile_commands.json. Exits 0 when clang-tidy is not installed
# (local GCC-only containers) so the script is safe to call unconditionally;
# CI installs clang-tidy and therefore gets the full -WarningsAsErrors gate.
set -u -o pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
      TIDY="$candidate"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: clang-tidy not installed; skipping (lint runs in CI)" >&2
  exit 0
fi

BUILD_DIR="${1:-build}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

mapfile -t SOURCES < <(git ls-files 'src/**/*.cpp' 'examples/*.cpp' \
                                    'bench/*.cpp')
if [ "${#SOURCES[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no sources found" >&2
  exit 1
fi

JOBS="$(nproc 2> /dev/null || echo 4)"
echo "run_clang_tidy: $TIDY over ${#SOURCES[@]} files ($JOBS jobs)" >&2
printf '%s\n' "${SOURCES[@]}" |
  xargs -P "$JOBS" -n 1 "$TIDY" -p "$BUILD_DIR" --quiet
STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "run_clang_tidy: findings above must be fixed (see .clang-tidy)" >&2
fi
exit "$STATUS"
