// The fd_lint analyses. Input: per-file parse results from parser.cpp,
// merged into a whole-project model (declaration annotations joined onto
// definitions, member types resolved against known classes). Output: the
// diagnostics listed in model.hpp, already filtered through
// `fdlint: allow(...)` suppression comments.
#pragma once

#include <string>
#include <vector>

#include "model.hpp"

namespace fdlint {

struct AnalysisOptions {
  /// FDL003 (wal-order) only checks functions defined in files whose path
  /// contains this substring — the durability contract is a property of the
  /// service layer, not of every consumer of LiveRelation.
  std::string wal_domain = "src/service/";
};

std::vector<Diagnostic> RunChecks(const std::vector<ParsedFile>& files,
                                  const AnalysisOptions& options);

}  // namespace fdlint
