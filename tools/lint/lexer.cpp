#include "lexer.hpp"

#include <cctype>

namespace fdlint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuation, longest first so the greedy match below is
// correct ("->*" before "->" before "-").
constexpr std::string_view kPuncts[] = {
    ">>=", "<<=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=",  "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++",  "--",  "##",
};

}  // namespace

LexedFile LexString(std::string path, std::string_view src) {
  LexedFile out;
  out.path = std::move(path);
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace since the last newline

  auto push = [&](Token::Kind kind, std::string text) {
    out.tokens.push_back(Token{kind, std::move(text), line});
    at_line_start = false;
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Preprocessor line: skip to the newline, honouring backslash
    // continuations. Nothing inside directives is analyzed.
    if (c == '#' && at_line_start) {
      while (i < src.size()) {
        if (src[i] == '\\' && i + 1 < src.size() && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      size_t start = i + 2;
      while (i < src.size() && src[i] != '\n') ++i;
      out.comments.push_back(
          Comment{line, line, std::string(src.substr(start, i - start))});
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      int start_line = line;
      size_t start = i + 2;
      i += 2;
      while (i < src.size() && !(src[i] == '*' && i + 1 < src.size() &&
                                 src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      out.comments.push_back(Comment{
          start_line, line, std::string(src.substr(start, i - start))});
      i = i + 2 <= src.size() ? i + 2 : src.size();
      continue;
    }
    if (c == '"') {
      size_t start = i;
      ++i;
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < src.size()) ++i;
        if (src[i] == '\n') ++line;  // ill-formed, but keep line counts sane
        ++i;
      }
      if (i < src.size()) ++i;
      push(Token::Kind::kString, std::string(src.substr(start, i - start)));
      continue;
    }
    if (c == '\'') {
      size_t start = i;
      ++i;
      while (i < src.size() && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < src.size()) ++i;
        ++i;
      }
      if (i < src.size()) ++i;
      push(Token::Kind::kChar, std::string(src.substr(start, i - start)));
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < src.size() && IsIdentChar(src[i])) ++i;
      std::string ident(src.substr(start, i - start));
      // Raw string literal: an encoding prefix ending in R glued to a quote
      // (R"delim( ... )delim"). Consumed as one string token.
      bool raw_prefix = ident == "R" || ident == "LR" || ident == "uR" ||
                        ident == "UR" || ident == "u8R";
      if (raw_prefix && i < src.size() && src[i] == '"') {
        size_t d = i + 1;
        while (d < src.size() && src[d] != '(') ++d;
        std::string closer = ")" + std::string(src.substr(i + 1, d - i - 1)) +
                             "\"";
        size_t end = src.find(closer, d);
        size_t stop = end == std::string_view::npos ? src.size()
                                                    : end + closer.size();
        for (size_t k = i; k < stop; ++k) {
          if (src[k] == '\n') ++line;
        }
        push(Token::Kind::kString,
             ident + std::string(src.substr(i, stop - i)));
        i = stop;
        continue;
      }
      push(Token::Kind::kIdent, std::move(ident));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t start = i;
      while (i < src.size() &&
             (IsIdentChar(src[i]) || src[i] == '.' || src[i] == '\'')) {
        // Exponent signs are part of the number (1e+5, 0x1p-3).
        if ((src[i] == 'e' || src[i] == 'E' || src[i] == 'p' ||
             src[i] == 'P') &&
            i + 1 < src.size() && (src[i + 1] == '+' || src[i + 1] == '-')) {
          i += 2;
          continue;
        }
        ++i;
      }
      push(Token::Kind::kNumber, std::string(src.substr(start, i - start)));
      continue;
    }
    bool matched = false;
    for (std::string_view p : kPuncts) {
      if (src.substr(i, p.size()) == p) {
        push(Token::Kind::kPunct, std::string(p));
        i += p.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      push(Token::Kind::kPunct, std::string(1, c));
      ++i;
    }
  }
  return out;
}

}  // namespace fdlint
