// Structural C++ parse for fd_lint: token stream -> ParsedFile (functions
// with call sites / lock scopes / annotations, classes, member types).
// Not an AST — a scope-stack walk that understands exactly the constructs
// the checks need: namespace/class nesting, function heads (including
// out-of-class definitions, ctors/dtors, operators, ctor-init lists and
// trailing annotation macros), `MutexLock` RAII scopes, lambda bodies
// (analyzed with an empty lock set: they may run without the definition
// site's locks), call expressions with their object token, `(void)` casts,
// and NORMALIZE_* annotation macros. Misparses degrade gracefully: an
// unrecognized construct is skipped, never fatal.
#pragma once

#include "lexer.hpp"
#include "model.hpp"

namespace fdlint {

ParsedFile ParseFile(const LexedFile& lexed);

}  // namespace fdlint
