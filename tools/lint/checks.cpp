#include "checks.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace fdlint {

namespace {

// Calls that block the calling thread no matter how they are spelled
// (sleep_for is always std::this_thread::sleep_for in this codebase).
const std::set<std::string>& BlockingAlways() {
  static const std::set<std::string> kSet = {
      "fsync",   "fdatasync", "sleep_for", "sleep_until",
      "usleep",  "nanosleep", "poll",      "select",
  };
  return kSet;
}

// Syscall names that collide with common method names (stream.read(...)).
// Only treated as blocking when called with no object expression — i.e.
// `::write(fd, ...)` or `write(fd, ...)`, never `buf.write(...)`.
const std::set<std::string>& BlockingSyscalls() {
  static const std::set<std::string> kSet = {
      "write", "pwrite", "read",    "pread", "send",
      "recv",  "accept", "connect", "shutdown", "close",
  };
  return kSet;
}

// Condition-variable waits. MutexLock::Wait/WaitFor release their own lock
// while blocked, so they are fine under exactly one capability; under two or
// more, the *other* lock stays held for the whole wait.
const std::set<std::string>& CvWaits() {
  static const std::set<std::string> kSet = {"Wait", "WaitFor", "wait",
                                             "wait_for", "wait_until"};
  return kSet;
}

/// Whole-project signature for one function, merged across its declaration
/// and definition (annotations usually live on the .hpp declaration).
struct Signature {
  bool returns_status = false;
  std::set<std::string> annotations;
  std::vector<std::string> requires_caps;
  const FunctionInfo* definition = nullptr;
  /// The definition directly calls a blocking syscall (outside lambdas);
  /// holds the syscall's name for diagnostics.
  std::string blocking_callee;
  int blocking_line = 0;
};

struct Project {
  std::map<std::string, Signature> sigs;          // by qualified name
  std::map<std::string, std::vector<std::string>> by_simple;
  std::set<std::string> classes;
  std::map<std::string, std::string> member_type;  // "Class::member" -> Class
  std::map<std::string, const std::map<int, std::string>*> comments;  // by file
};

bool IsBlockingCall(const CallSite& call) {
  if (BlockingAlways().count(call.callee) > 0) return true;
  return call.object.empty() && BlockingSyscalls().count(call.callee) > 0;
}

Project BuildProject(const std::vector<ParsedFile>& files) {
  Project p;
  for (const ParsedFile& f : files) {
    p.comments[f.path] = &f.comment_by_line;
    for (const std::string& c : f.classes) p.classes.insert(c);
  }
  for (const ParsedFile& f : files) {
    for (const MemberDecl& m : f.members) {
      for (const std::string& ty : m.type_idents) {
        if (p.classes.count(ty) > 0) {
          p.member_type[m.class_name + "::" + m.member] = ty;
          break;
        }
      }
    }
    for (const FunctionInfo& fn : f.functions) {
      Signature& sig = p.sigs[fn.qualified_name];
      sig.returns_status = sig.returns_status || fn.returns_status;
      sig.annotations.insert(fn.annotations.begin(), fn.annotations.end());
      for (const std::string& cap : fn.requires_caps) {
        if (std::find(sig.requires_caps.begin(), sig.requires_caps.end(),
                      cap) == sig.requires_caps.end()) {
          sig.requires_caps.push_back(cap);
        }
      }
      if (fn.is_definition) {
        sig.definition = &fn;
        for (const CallSite& c : fn.calls) {
          if (!c.in_lambda && IsBlockingCall(c) && sig.blocking_callee.empty()) {
            sig.blocking_callee = c.callee;
            sig.blocking_line = c.line;
          }
        }
      }
      std::vector<std::string>& names = p.by_simple[fn.simple_name];
      if (std::find(names.begin(), names.end(), fn.qualified_name) ==
          names.end()) {
        names.push_back(fn.qualified_name);
      }
    }
  }
  return p;
}

/// Resolves a call site to a project-function qualified name, or "" when the
/// callee is not ours (std::, gtest macros, syscalls).
std::string Resolve(const Project& p, const FunctionInfo& caller,
                    const CallSite& call) {
  auto has = [&](const std::string& q) { return p.sigs.count(q) > 0; };
  if (call.object.empty() || call.object == "this") {
    if (!caller.class_name.empty() &&
        has(caller.class_name + "::" + call.callee)) {
      return caller.class_name + "::" + call.callee;
    }
    if (call.object == "this") return "";
    if (has(call.callee)) return call.callee;  // free function
  } else {
    if (p.classes.count(call.object) > 0 &&
        has(call.object + "::" + call.callee)) {
      return call.object + "::" + call.callee;  // static / qualified call
    }
    if (!caller.class_name.empty()) {
      auto it = p.member_type.find(caller.class_name + "::" + call.object);
      if (it != p.member_type.end() &&
          has(it->second + "::" + call.callee)) {
        return it->second + "::" + call.callee;
      }
    }
  }
  // Last resort: a simple name with exactly one project definition.
  auto it = p.by_simple.find(call.callee);
  if (it != p.by_simple.end() && it->second.size() == 1) return it->second[0];
  return "";
}

/// `fdlint: allow(FDL001)` / `fdlint: allow(blocking-under-lock)` on the
/// diagnostic's line or the line above suppresses it.
bool IsSuppressed(const Project& p, const Diagnostic& d) {
  auto file_it = p.comments.find(d.file);
  if (file_it == p.comments.end()) return false;
  const std::map<int, std::string>& by_line = *file_it->second;
  for (int line : {d.line, d.line - 1}) {
    auto it = by_line.find(line);
    if (it == by_line.end()) continue;
    const std::string& text = it->second;
    size_t at = text.find("fdlint:");
    if (at == std::string::npos) continue;
    size_t open = text.find('(', at);
    size_t close = text.find(')', at);
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      continue;
    }
    std::string args = text.substr(open + 1, close - open - 1);
    std::stringstream ss(args);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      tok.erase(0, tok.find_first_not_of(" \t"));
      tok.erase(tok.find_last_not_of(" \t") + 1);
      if (tok == d.id || tok == d.check_name || tok == "*") return true;
    }
  }
  return false;
}

std::string JoinCaps(const std::vector<std::string>& caps) {
  std::string out;
  for (const std::string& c : caps) {
    if (!out.empty()) out += ", ";
    out += c;
  }
  return out;
}

// --- FDL001: blocking call while holding a lock --------------------------

void CheckBlockingUnderLock(const Project& p, std::vector<Diagnostic>* out) {
  for (const auto& [name, sig] : p.sigs) {
    if (sig.definition == nullptr) continue;
    const FunctionInfo& fn = *sig.definition;
    for (const CallSite& call : fn.calls) {
      if (call.in_lambda) continue;  // runs later, without these locks
      if (CvWaits().count(call.callee) > 0) {
        if (call.locks_held.size() >= 2) {
          out->push_back(Diagnostic{
              fn.file, call.line, "FDL001", kCheckBlockingUnderLock,
              "condition wait `" + call.callee + "` with " +
                  std::to_string(call.locks_held.size()) +
                  " locks held (" + JoinCaps(call.locks_held) +
                  "); the wait releases only its own lock — every other "
                  "lock stays held for the full wait"});
        }
        continue;
      }
      if (call.locks_held.empty()) continue;
      if (IsBlockingCall(call)) {
        out->push_back(Diagnostic{
            fn.file, call.line, "FDL001", kCheckBlockingUnderLock,
            "blocking call `" + call.callee + "` while holding " +
                JoinCaps(call.locks_held) +
                "; move the syscall outside the critical section"});
        continue;
      }
      std::string target = Resolve(p, fn, call);
      if (target.empty()) continue;
      auto it = p.sigs.find(target);
      if (it != p.sigs.end() && !it->second.blocking_callee.empty()) {
        out->push_back(Diagnostic{
            fn.file, call.line, "FDL001", kCheckBlockingUnderLock,
            "call to `" + target + "` while holding " +
                JoinCaps(call.locks_held) + "; it calls blocking `" +
                it->second.blocking_callee + "` (" + it->second.definition->file +
                ":" + std::to_string(it->second.blocking_line) + ")"});
      }
    }
  }
}

// --- FDL002: static lock-order cycles ------------------------------------

struct Edge {
  std::string file;
  int line = 0;
};

void CheckLockOrder(const Project& p, std::vector<Diagnostic>* out) {
  // capability -> capability -> first site establishing the edge.
  std::map<std::string, std::map<std::string, Edge>> graph;
  auto add_edge = [&graph](const std::string& from, const std::string& to,
                           const std::string& file, int line) {
    auto& slot = graph[from];
    if (slot.count(to) == 0) slot[to] = Edge{file, line};
  };

  for (const auto& [name, sig] : p.sigs) {
    if (sig.definition == nullptr) continue;
    const FunctionInfo& fn = *sig.definition;
    for (const LockAcquisition& acq : fn.acquisitions) {
      for (const std::string& held : acq.held_before) {
        add_edge(held, acq.capability, fn.file, acq.line);
      }
    }
    // One level through calls: holding L and calling a function that takes
    // M (fresh, not via REQUIRES) orders L before M.
    for (const CallSite& call : fn.calls) {
      if (call.in_lambda || call.locks_held.empty()) continue;
      std::string target = Resolve(p, fn, call);
      if (target.empty()) continue;
      auto it = p.sigs.find(target);
      if (it == p.sigs.end() || it->second.definition == nullptr) continue;
      for (const LockAcquisition& acq : it->second.definition->acquisitions) {
        if (!acq.held_before.empty()) continue;  // nested edge counted above
        for (const std::string& held : call.locks_held) {
          if (held == acq.capability) continue;  // self-deadlocks need the
                                                 // direct-nesting evidence
          add_edge(held, acq.capability, fn.file, call.line);
        }
      }
    }
  }

  // DFS cycle extraction with canonical-rotation dedup.
  std::set<std::vector<std::string>> reported;
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;

  std::function<void(const std::string&)> visit =
      [&](const std::string& node) {
        color[node] = 1;
        stack.push_back(node);
        for (const auto& [next, edge] : graph[node]) {
          if (color[next] == 1) {
            // Cycle: suffix of the stack from `next` to `node`.
            auto begin =
                std::find(stack.begin(), stack.end(), next);
            std::vector<std::string> cycle(begin, stack.end());
            // Self-edges get their own re-acquisition diagnostic.
            if (cycle.size() == 1) continue;
            auto min_it = std::min_element(cycle.begin(), cycle.end());
            std::rotate(cycle.begin(), min_it, cycle.end());
            if (reported.insert(cycle).second) {
              std::string path;
              for (const std::string& c : cycle) path += c + " -> ";
              path += cycle.front();
              out->push_back(Diagnostic{
                  edge.file, edge.line, "FDL002", kCheckLockOrder,
                  "lock-order cycle: " + path +
                      "; acquire these capabilities in one global order"});
            }
          } else if (color[next] == 0) {
            visit(next);
          }
        }
        stack.pop_back();
        color[node] = 2;
      };
  // Self-edges (A -> A) are immediate self-deadlocks.
  for (const auto& [node, edges] : graph) {
    auto self = edges.find(node);
    if (self != edges.end()) {
      out->push_back(Diagnostic{
          self->second.file, self->second.line, "FDL002", kCheckLockOrder,
          "re-acquisition of `" + node +
              "` while already held: guaranteed self-deadlock"});
    }
  }
  for (const auto& [node, edges] : graph) {
    if (color[node] == 0) visit(node);
  }
}

// --- FDL003: WAL append must dominate store mutation ---------------------

void CheckWalOrder(const Project& p, const AnalysisOptions& options,
                   std::vector<Diagnostic>* out) {
  for (const auto& [name, sig] : p.sigs) {
    if (sig.definition == nullptr) continue;
    const FunctionInfo& fn = *sig.definition;
    if (fn.file.find(options.wal_domain) == std::string::npos) continue;
    // Annotated functions *define* the contract's terms and are exempt:
    // MUTATES_STORE is the mutation itself, APPENDS_WAL is the append,
    // REPLAYS_WAL applies already-durable records during recovery.
    if (sig.annotations.count("MUTATES_STORE") > 0 ||
        sig.annotations.count("APPENDS_WAL") > 0 ||
        sig.annotations.count("REPLAYS_WAL") > 0) {
      continue;
    }
    for (const CallSite& call : fn.calls) {
      std::string target = Resolve(p, fn, call);
      if (target.empty()) continue;
      auto target_sig = p.sigs.find(target);
      if (target_sig == p.sigs.end() ||
          target_sig->second.annotations.count("MUTATES_STORE") == 0) {
        continue;
      }
      bool dominated = false;
      for (const CallSite& prior : fn.calls) {
        if (prior.order >= call.order) break;
        std::string prior_target = Resolve(p, fn, prior);
        if (prior_target.empty()) continue;
        auto prior_sig = p.sigs.find(prior_target);
        if (prior_sig != p.sigs.end() &&
            prior_sig->second.annotations.count("APPENDS_WAL") > 0) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        out->push_back(Diagnostic{
            fn.file, call.line, "FDL003", kCheckWalOrder,
            "store mutation `" + target +
                "` (MUTATES_STORE) is not preceded by a WAL append "
                "(APPENDS_WAL) in `" + fn.qualified_name +
                "`; durability requires append-before-apply, or annotate "
                "the function REPLAYS_WAL if it applies recovered records"});
      }
    }
  }
}

// --- FDL004 / FDL005: Status discipline ----------------------------------

void CheckStatusDiscipline(const Project& p, std::vector<Diagnostic>* out) {
  for (const auto& [name, sig] : p.sigs) {
    if (sig.definition == nullptr) continue;
    const FunctionInfo& fn = *sig.definition;
    bool no_throw_context = fn.is_destructor || fn.is_noexcept;
    for (const CallSite& call : fn.calls) {
      if (!call.is_statement) continue;
      std::string target = Resolve(p, fn, call);
      if (target.empty()) continue;
      auto target_sig = p.sigs.find(target);
      if (target_sig == p.sigs.end() || !target_sig->second.returns_status) {
        continue;
      }
      if (no_throw_context) {
        out->push_back(Diagnostic{
            fn.file, call.line, "FDL004", kCheckStatusInNoexcept,
            "`" + target + "` returns Status/Result but `" +
                fn.qualified_name +
                "` cannot propagate failure (destructor/noexcept); handle "
                "the error or suppress with `fdlint: allow(FDL004)` and a "
                "rationale"});
        continue;  // don't also fire FDL005 on the same discard
      }
      if (!call.void_cast) continue;
      bool has_comment = false;
      auto file_it = p.comments.find(fn.file);
      if (file_it != p.comments.end()) {
        has_comment = file_it->second->count(call.line) > 0 ||
                      file_it->second->count(call.line - 1) > 0;
      }
      if (!has_comment) {
        out->push_back(Diagnostic{
            fn.file, call.line, "FDL005", kCheckVoidDiscard,
            "`(void)`-discarded Status/Result from `" + target +
                "` has no adjacent rationale comment; say why the error "
                "cannot happen or does not matter here"});
      }
    }
  }
}

}  // namespace

std::vector<Diagnostic> RunChecks(const std::vector<ParsedFile>& files,
                                  const AnalysisOptions& options) {
  Project project = BuildProject(files);
  std::vector<Diagnostic> all;
  CheckBlockingUnderLock(project, &all);
  CheckLockOrder(project, &all);
  CheckWalOrder(project, options, &all);
  CheckStatusDiscipline(project, &all);

  std::vector<Diagnostic> kept;
  for (Diagnostic& d : all) {
    if (!IsSuppressed(project, d)) kept.push_back(std::move(d));
  }
  std::sort(kept.begin(), kept.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.id) <
                     std::tie(b.file, b.line, b.id);
            });
  return kept;
}

}  // namespace fdlint
