// The project model fd_lint checks operate on: per-file parse results
// (functions with their call sites, lock scopes, and annotations; classes
// and their members) plus the diagnostics vocabulary. Built by parser.cpp,
// consumed by checks.cpp.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace fdlint {

/// One call site inside a function body. `callee` is the unqualified name;
/// `object` is the last identifier of the object expression it was invoked
/// on ("relation_" for `relation_->Apply(...)`, "WalWriter" for
/// `WalWriter::Open(...)`, empty for a plain `Foo(...)` call), which the
/// checks use to resolve the callee against a class when member types are
/// known.
struct CallSite {
  std::string callee;
  std::string object;
  int line = 0;
  /// Position in the function body's statement order (token index); FDL003
  /// uses it as a conservative stand-in for "dominated by".
  size_t order = 0;
  /// Capabilities held at the call: active MutexLock scopes plus the
  /// function's REQUIRES(...) seeds, innermost last.
  std::vector<std::string> locks_held;
  /// The call's result is cast to (void).
  bool void_cast = false;
  /// The call is a whole expression statement (its result is discarded).
  bool is_statement = false;
  /// The call happens inside a lambda body defined in this function (it may
  /// run later, without the locks the definition site held).
  bool in_lambda = false;
};

/// One `MutexLock lock(expr);` acquisition.
struct LockAcquisition {
  std::string capability;  // qualified: "ServiceCore::mu_" or bare name
  int line = 0;
  size_t order = 0;
  std::vector<std::string> held_before;  // capabilities held at acquisition
};

struct FunctionInfo {
  std::string file;
  int line = 0;
  std::string class_name;      // innermost enclosing class ("" for free)
  std::string qualified_name;  // "Class::Name" or "Name"
  std::string simple_name;
  bool is_definition = false;
  bool is_destructor = false;
  bool is_noexcept = false;
  /// Return type names Status or Result by value.
  bool returns_status = false;
  /// Durability annotations: MUTATES_STORE, APPENDS_WAL, REPLAYS_WAL
  /// (macro names with the NORMALIZE_ prefix stripped).
  std::set<std::string> annotations;
  /// Qualified capabilities from NORMALIZE_REQUIRES(...).
  std::vector<std::string> requires_caps;
  std::vector<CallSite> calls;              // definitions only
  std::vector<LockAcquisition> acquisitions;  // definitions only
};

/// A class member declaration with the identifiers of its declared type
/// ("std", "unique_ptr", "LiveRelation" for
/// `std::unique_ptr<LiveRelation> relation_;`).
struct MemberDecl {
  std::string class_name;
  std::string member;
  std::vector<std::string> type_idents;
  int line = 0;
};

struct ParsedFile {
  std::string path;
  std::vector<FunctionInfo> functions;
  std::vector<std::string> classes;  // class/struct names with bodies
  std::vector<MemberDecl> members;
  /// line -> concatenated comment text on that line (suppressions,
  /// rationale adjacency).
  std::map<int, std::string> comment_by_line;
};

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string id;          // "FDL001" ... "FDL005"
  std::string check_name;  // "blocking-under-lock", ...
  std::string message;
};

inline const char* kCheckBlockingUnderLock = "blocking-under-lock";
inline const char* kCheckLockOrder = "lock-order";
inline const char* kCheckWalOrder = "wal-order";
inline const char* kCheckStatusInNoexcept = "status-in-noexcept";
inline const char* kCheckVoidDiscard = "void-discard";

}  // namespace fdlint
