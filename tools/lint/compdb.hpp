// Minimal compile_commands.json reader: extracts the "file" entry of each
// command object (resolved against "directory" when relative). fd_lint only
// needs the TU list — flags and defines are irrelevant to a token-level
// analysis — so this avoids a JSON library dependency.
#pragma once

#include <string>
#include <vector>

namespace fdlint {

/// Returns the translation-unit paths listed in the compilation database at
/// `path`, deduplicated, or an empty vector when the file cannot be read.
std::vector<std::string> ReadCompileCommands(const std::string& path);

/// The full analysis input set for a compilation database: every listed TU
/// plus the .hpp/.h files in the TUs' directories (annotations and inline
/// definitions live on header declarations, which no TU list names).
/// Sorted and deduplicated; empty when the database cannot be read.
std::vector<std::string> AnalysisInputsFromCompileCommands(
    const std::string& path);

}  // namespace fdlint
