#include "compdb.hpp"

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace fdlint {

namespace {

/// Reads a JSON string starting at src[i] == '"'; returns the unescaped
/// value and advances i past the closing quote.
std::string ReadJsonString(const std::string& src, size_t* i) {
  std::string out;
  size_t j = *i + 1;
  while (j < src.size() && src[j] != '"') {
    if (src[j] == '\\' && j + 1 < src.size()) {
      char e = src[j + 1];
      switch (e) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u': out += '?'; j += 4; break;  // \uXXXX: never in paths here
        default: out += e;
      }
      j += 2;
      continue;
    }
    out += src[j];
    ++j;
  }
  *i = j < src.size() ? j + 1 : j;
  return out;
}

}  // namespace

std::vector<std::string> ReadCompileCommands(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string src = buf.str();

  std::vector<std::string> files;
  std::set<std::string> seen;
  std::string directory;
  size_t i = 0;
  while (i < src.size()) {
    if (src[i] != '"') {
      ++i;
      continue;
    }
    std::string key = ReadJsonString(src, &i);
    // Key? Look for a following ':'.
    while (i < src.size() && (src[i] == ' ' || src[i] == '\n' ||
                              src[i] == '\t' || src[i] == '\r')) {
      ++i;
    }
    if (i >= src.size() || src[i] != ':') continue;  // was a value
    ++i;
    while (i < src.size() && (src[i] == ' ' || src[i] == '\n' ||
                              src[i] == '\t' || src[i] == '\r')) {
      ++i;
    }
    if (i >= src.size() || src[i] != '"') continue;  // non-string value
    std::string value = ReadJsonString(src, &i);
    if (key == "directory") {
      directory = value;
    } else if (key == "file") {
      std::string resolved = value;
      if (!value.empty() && value[0] != '/' && !directory.empty()) {
        resolved = directory + "/" + value;
      }
      if (seen.insert(resolved).second) files.push_back(resolved);
    }
  }
  return files;
}

std::vector<std::string> AnalysisInputsFromCompileCommands(
    const std::string& path) {
  std::vector<std::string> tus = ReadCompileCommands(path);
  if (tus.empty()) return {};
  std::set<std::string> unique(tus.begin(), tus.end());
  std::set<std::string> dirs;
  for (const std::string& tu : tus) {
    dirs.insert(std::filesystem::path(tu).parent_path().string());
  }
  for (const std::string& dir : dirs) {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      if (!entry.is_regular_file()) continue;
      std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".h") unique.insert(entry.path().string());
    }
  }
  return {unique.begin(), unique.end()};
}

}  // namespace fdlint
