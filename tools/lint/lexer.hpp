// Token stream for fd_lint (tools/lint): a minimal C++ lexer that is exact
// about the things a project-aware structural analysis needs — comments
// (with positions, for suppressions and rationale checks), string/char
// literals (so identifiers inside them are never mistaken for code), raw
// strings, and preprocessor lines (skipped wholesale, continuations
// included) — and deliberately simple about everything else. fd_lint does
// not build an AST; it reasons over this token stream plus brace/paren
// structure, which is enough to check the project's lock and durability
// discipline (see checks.hpp) without a libclang dependency.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fdlint {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

/// One comment (line or block). Block comments spanning several lines cover
/// every line in [line, end_line].
struct Comment {
  int line = 0;
  int end_line = 0;
  std::string text;
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Lexes `src` (the contents of `path`). Never fails: unterminated literals
/// are closed at end of input, unknown bytes become single-char punctuation.
LexedFile LexString(std::string path, std::string_view src);

}  // namespace fdlint
