#include "parser.hpp"

#include <algorithm>
#include <set>

namespace fdlint {

namespace {

const std::set<std::string>& CalleeKeywords() {
  static const std::set<std::string> kSet = {
      "if",       "for",         "while",      "switch",     "sizeof",
      "alignof",  "alignas",     "decltype",   "new",        "delete",
      "catch",    "throw",       "case",       "default",    "static_cast",
      "dynamic_cast",            "const_cast", "reinterpret_cast",
      "co_await", "co_return",   "co_yield",   "and",        "or",
      "not",      "xor",         "defined",    "this",       "typeid",
      "goto",     "else",        "do",         "return",     "noexcept",
      "static_assert",           "operator",
  };
  return kSet;
}

// Identifier-kind tokens that may precede a call expression without making
// it a declaration ("return Foo(...)" is a call, "Foo bar(...)" is not).
const std::set<std::string>& CallishPredecessors() {
  static const std::set<std::string> kSet = {"return", "throw",  "co_return",
                                             "co_await", "else", "do",
                                             "case"};
  return kSet;
}

bool IsAnnotationMacro(const std::string& name) {
  return name.rfind("NORMALIZE_", 0) == 0;
}

class FileParser {
 public:
  explicit FileParser(const LexedFile& lexed) : lexed_(lexed), t_(lexed.tokens) {}

  ParsedFile Run() {
    out_.path = lexed_.path;
    for (const Comment& c : lexed_.comments) {
      for (int l = c.line; l <= c.end_line; ++l) {
        std::string& slot = out_.comment_by_line[l];
        if (!slot.empty()) slot += " ";
        slot += c.text;
      }
    }
    ParseScope(0, t_.size());
    return std::move(out_);
  }

 private:
  const LexedFile& lexed_;
  const std::vector<Token>& t_;
  ParsedFile out_;
  std::vector<std::string> class_stack_;

  bool Is(size_t i, const char* text) const {
    return i < t_.size() && t_[i].text == text;
  }
  bool IsIdent(size_t i) const {
    return i < t_.size() && t_[i].kind == Token::Kind::kIdent;
  }
  int Line(size_t i) const {
    return i < t_.size() ? t_[i].line : (t_.empty() ? 0 : t_.back().line);
  }

  /// Skips a (){}[]<> group starting at `i`; returns the index after the
  /// matching closer (never <= i, never past `end`).
  size_t MatchPair(size_t i, size_t end, const char* open, const char* close) {
    int depth = 0;
    size_t j = i;
    while (j < end) {
      if (t_[j].text == open) ++depth;
      else if (t_[j].text == close) {
        --depth;
        if (depth == 0) return j + 1;
      }
      ++j;
    }
    return end;
  }
  size_t MatchParen(size_t i, size_t end) { return MatchPair(i, end, "(", ")"); }
  size_t MatchBrace(size_t i, size_t end) { return MatchPair(i, end, "{", "}"); }
  size_t MatchBracket(size_t i, size_t end) {
    return MatchPair(i, end, "[", "]");
  }

  /// Skips a template argument/parameter group starting at `<`; ">>" closes
  /// two levels.
  size_t MatchAngle(size_t i, size_t end) {
    int depth = 0;
    size_t j = i;
    while (j < end) {
      const std::string& s = t_[j].text;
      if (s == "<") ++depth;
      else if (s == ">") {
        if (--depth <= 0) return j + 1;
      } else if (s == ">>") {
        depth -= 2;
        if (depth <= 0) return j + 1;
      } else if (s == ";" || s == "{") {
        return j;  // not a template group after all
      }
      ++j;
    }
    return end;
  }

  size_t SkipToSemicolon(size_t i, size_t end) {
    size_t j = i;
    while (j < end) {
      const std::string& s = t_[j].text;
      if (s == ";") return j + 1;
      if (s == "(") { j = MatchParen(j, end); continue; }
      if (s == "{") { j = MatchBrace(j, end); continue; }
      if (s == "}") return j;  // scope end without semicolon: bail
      ++j;
    }
    return end;
  }

  // --- scope level -------------------------------------------------------

  void ParseScope(size_t begin, size_t end) {
    size_t i = begin;
    while (i < end) {
      size_t guard = i;
      const std::string& s = t_[i].text;
      if (s == ";") { ++i; }
      else if (s == "}") { ++i; }  // tolerated: unbalanced close
      else if (s == "{") { i = MatchBrace(i, end); }
      else if (s == "[") { i = MatchBracket(i, end); }  // [[attributes]]
      else if (s == "~" && IsIdent(i + 1)) {
        // In-class destructor: start the decl scan at the '~' so the name
        // walk-back sees it.
        i = DeclOrFunction(i, end);
      }
      else if (t_[i].kind == Token::Kind::kIdent) {
        if (s == "template") {
          ++i;
          if (Is(i, "<")) i = MatchAngle(i, end);
        } else if (s == "namespace") {
          i = ParseNamespace(i, end);
        } else if (s == "using" || s == "typedef" || s == "static_assert") {
          i = SkipToSemicolon(i, end);
        } else if (s == "friend") {
          i = SkipToSemicolon(i, end);
        } else if (s == "extern" && i + 2 < end &&
                   t_[i + 1].kind == Token::Kind::kString && Is(i + 2, "{")) {
          size_t close = MatchBrace(i + 2, end);
          ParseScope(i + 3, close - 1);
          i = close;
        } else if (s == "enum") {
          i = ParseEnum(i, end);
        } else if (s == "class" || s == "struct" || s == "union") {
          i = ParseClass(i, end);
        } else if (!class_stack_.empty() &&
                   (s == "public" || s == "protected" || s == "private") &&
                   Is(i + 1, ":")) {
          i += 2;
        } else {
          i = DeclOrFunction(i, end);
        }
      } else {
        ++i;
      }
      if (i <= guard) i = guard + 1;
    }
  }

  size_t ParseNamespace(size_t i, size_t end) {
    size_t j = i + 1;
    while (j < end && (IsIdent(j) || Is(j, "::"))) ++j;
    if (Is(j, "=")) return SkipToSemicolon(j, end);  // namespace alias
    if (Is(j, "{")) {
      size_t close = MatchBrace(j, end);
      ParseScope(j + 1, close - 1);
      return close;
    }
    return j + 1;
  }

  size_t ParseEnum(size_t i, size_t end) {
    size_t j = i + 1;
    while (j < end && t_[j].text != "{" && t_[j].text != ";") ++j;
    if (Is(j, "{")) j = MatchBrace(j, end);
    if (Is(j, ";")) ++j;
    return j;
  }

  size_t ParseClass(size_t i, size_t end) {
    size_t j = i + 1;
    std::string name;
    while (j < end) {
      const std::string& s = t_[j].text;
      if (t_[j].kind == Token::Kind::kIdent) {
        if (IsAnnotationMacro(s)) {
          ++j;
          if (Is(j, "(")) j = MatchParen(j, end);
          continue;
        }
        if (s == "alignas") {
          ++j;
          if (Is(j, "(")) j = MatchParen(j, end);
          continue;
        }
        if (s != "final") name = s;
        ++j;
        continue;
      }
      if (s == "[") { j = MatchBracket(j, end); continue; }
      if (s == "<") { j = MatchAngle(j, end); continue; }  // specialization
      break;
    }
    if (Is(j, ":")) {  // base clause: first '{' opens the body
      while (j < end && t_[j].text != "{" && t_[j].text != ";") {
        if (t_[j].text == "<") { j = MatchAngle(j, end); continue; }
        ++j;
      }
    }
    if (Is(j, ";") || name.empty()) return SkipToSemicolon(i, end);
    if (!Is(j, "{")) return SkipToSemicolon(i, end);
    out_.classes.push_back(name);
    size_t close = MatchBrace(j, end);
    class_stack_.push_back(name);
    ParseScope(j + 1, close - 1);
    class_stack_.pop_back();
    // Skip optional declarator list after the body ("} x;").
    return SkipToSemicolon(close, end);
  }

  // --- declarations and function heads -----------------------------------

  size_t DeclOrFunction(size_t i, size_t end) {
    size_t j = i;
    int angle = 0;
    size_t paren = t_.size();
    while (j < end) {
      const std::string& s = t_[j].text;
      if (s == "<") ++angle;
      else if (s == ">") angle = std::max(0, angle - 1);
      else if (s == ">>") angle = std::max(0, angle - 2);
      else if (s == "(" && angle == 0) {
        if (j > i && IsIdent(j - 1) && IsAnnotationMacro(t_[j - 1].text)) {
          j = MatchParen(j, end);
          continue;
        }
        paren = j;
        break;
      } else if (s == ";") {
        RecordMember(i, j);
        return j + 1;
      } else if (s == "=" && angle == 0) {
        size_t stop = SkipToSemicolon(j, end);
        RecordMember(i, j);
        return stop;
      } else if (s == "{" && angle == 0) {
        // Brace-initialized variable: `Foo x{...};`
        size_t after = MatchBrace(j, end);
        RecordMember(i, j);
        return SkipToSemicolon(after, end);
      } else if (s == "}") {
        return j;
      }
      ++j;
    }
    if (paren >= end) return end;
    return ParseFunction(i, paren, end);
  }

  /// Collects the (possibly qualified) name ending just before `paren`.
  /// Returns the index where the name starts.
  size_t FunctionName(size_t head, size_t paren, std::string* name) {
    size_t k = paren;
    // operator with symbol tokens: walk back over punctuation to "operator".
    size_t p = paren;
    int steps = 0;
    while (p > head && t_[p - 1].kind == Token::Kind::kPunct && steps < 3) {
      --p;
      ++steps;
    }
    if (p > head && Is(p - 1, "operator")) {
      std::string sym;
      for (size_t q = p; q < paren; ++q) sym += t_[q].text;
      *name = "operator" + sym;
      size_t start = p - 1;
      // Optional Class:: qualifier before "operator".
      while (start >= head + 2 && Is(start - 1, "::") && IsIdent(start - 2)) {
        *name = t_[start - 2].text + "::" + *name;
        start -= 2;
      }
      return start;
    }
    k = paren;
    std::vector<std::string> parts;
    bool tilde = false;
    while (k > head) {
      const Token& tok = t_[k - 1];
      if (tok.kind == Token::Kind::kIdent && !parts.empty() &&
          !Is(k, "::")) {
        break;  // two adjacent idents: the left one is the return type
      }
      if (tok.kind == Token::Kind::kIdent) {
        parts.insert(parts.begin(), tok.text);
        --k;
        if (k > head && Is(k - 1, "~")) {
          tilde = true;
          --k;
          break;
        }
        if (k > head && Is(k - 1, "::")) {
          --k;
          continue;
        }
        break;
      }
      break;
    }
    std::string joined;
    for (size_t q = 0; q < parts.size(); ++q) {
      if (q) joined += "::";
      joined += parts[q];
    }
    if (tilde && !joined.empty()) {
      // "~X" names the destructor of the last component.
      size_t last = joined.rfind("::");
      if (last == std::string::npos) joined = "~" + joined;
      else joined = joined.substr(0, last + 2) + "~" + joined.substr(last + 2);
    }
    *name = joined;
    return k;
  }

  size_t ParseFunction(size_t head, size_t paren, size_t end) {
    std::string name;
    size_t name_start = FunctionName(head, paren, &name);
    if (name.empty() || CalleeKeywords().count(name) > 0 ||
        IsAnnotationMacro(name)) {
      return SkipToSemicolon(paren, end);
    }

    FunctionInfo fn;
    fn.file = out_.path;
    fn.line = Line(name_start);
    // Split qualified names; keep the last two components.
    size_t sep = name.rfind("::");
    if (sep != std::string::npos) {
      std::string cls = name.substr(0, sep);
      size_t prev = cls.rfind("::");
      if (prev != std::string::npos) cls = cls.substr(prev + 2);
      fn.class_name = cls;
      fn.simple_name = name.substr(sep + 2);
      fn.qualified_name = cls + "::" + fn.simple_name;
    } else {
      fn.simple_name = name;
      if (!class_stack_.empty()) {
        fn.class_name = class_stack_.back();
        fn.qualified_name = fn.class_name + "::" + name;
      } else {
        fn.qualified_name = name;
      }
    }
    fn.is_destructor = !fn.simple_name.empty() && fn.simple_name[0] == '~';

    // Return type: the head tokens before the name, minus specifiers.
    bool saw_status = false, saw_ref_or_ptr = false;
    for (size_t q = head; q < name_start; ++q) {
      const std::string& s = t_[q].text;
      if (s == "Status" || s == "Result") saw_status = true;
      if (s == "&" || s == "*" || s == "&&") saw_ref_or_ptr = true;
    }
    fn.returns_status = saw_status && !saw_ref_or_ptr;

    size_t params_end = MatchParen(paren, end);
    size_t k = params_end;
    size_t body = t_.size();
    bool declaration_only = false;
    while (k < end) {
      size_t guard = k;
      const std::string& s = t_[k].text;
      if (s == "{") { body = k; break; }
      if (s == ";") { declaration_only = true; break; }
      if (s == "noexcept") {
        ++k;
        if (Is(k, "(")) {
          size_t close = MatchParen(k, end);
          bool literal_false = close == k + 3 && Is(k + 1, "false");
          if (!literal_false) fn.is_noexcept = true;
          k = close;
        } else {
          fn.is_noexcept = true;
        }
        continue;
      }
      if (t_[k].kind == Token::Kind::kIdent && IsAnnotationMacro(s)) {
        std::string tag = s.substr(std::string("NORMALIZE_").size());
        ++k;
        if (Is(k, "(")) {
          size_t close = MatchParen(k, end);
          if (tag == "REQUIRES") {
            // Each comma-separated argument's last identifier is a
            // capability, qualified by the function's class.
            std::string last;
            for (size_t q = k + 1; q < close; ++q) {
              if (t_[q].kind == Token::Kind::kIdent) last = t_[q].text;
              if ((Is(q, ",") || q + 1 == close) && !last.empty()) {
                fn.requires_caps.push_back(Qualify(fn.class_name, last));
                last.clear();
              }
            }
          }
          k = close;
        }
        if (tag == "MUTATES_STORE" || tag == "APPENDS_WAL" ||
            tag == "REPLAYS_WAL") {
          fn.annotations.insert(tag);
        }
        continue;
      }
      if (s == "const" || s == "override" || s == "final" || s == "mutable" ||
          s == "try" || s == "&" || s == "&&") { ++k; continue; }
      if (s == "->") {  // trailing return type
        ++k;
        while (k < end && t_[k].text != "{" && t_[k].text != ";") {
          if (t_[k].text == "<") { k = MatchAngle(k, end); continue; }
          ++k;
        }
        continue;
      }
      if (s == "[") { k = MatchBracket(k, end); continue; }
      if (s == "=") {  // = default / = delete / = 0
        return SkipToSemicolon(k, end);
      }
      if (s == ":") {  // ctor-init list
        k = SkipInitList(k + 1, end, &body);
        if (body < t_.size()) break;
        continue;
      }
      if (s == ",") {
        // `int a(1), b(2);` — paren-initialized variables, not a function.
        return SkipToSemicolon(k, end);
      }
      if (t_[k].kind == Token::Kind::kIdent) { ++k; continue; }
      ++k;
      if (k <= guard) k = guard + 1;
    }

    if (declaration_only || body >= t_.size()) {
      out_.functions.push_back(std::move(fn));
      return declaration_only ? k + 1 : end;
    }

    fn.is_definition = true;
    size_t close = MatchBrace(body, end);
    AnalyzeBody(body + 1, close - 1, &fn, fn.requires_caps);
    out_.functions.push_back(std::move(fn));
    return close;
  }

  /// Scans a ctor-init list starting after ':'. Sets *body to the opening
  /// brace of the function body when found.
  size_t SkipInitList(size_t i, size_t end, size_t* body) {
    size_t k = i;
    while (k < end) {
      size_t guard = k;
      // Initializer name: idents, ::, template args.
      while (k < end && (IsIdent(k) || Is(k, "::"))) {
        ++k;
        if (Is(k, "<")) k = MatchAngle(k, end);
      }
      if (Is(k, "(")) k = MatchParen(k, end);
      else if (Is(k, "{")) k = MatchBrace(k, end);
      if (Is(k, "...")) ++k;
      if (Is(k, ",")) { ++k; continue; }
      if (Is(k, "{")) { *body = k; return k; }
      if (k >= end) return k;
      if (k <= guard) ++k;  // tolerate the unexpected
    }
    return k;
  }

  void RecordMember(size_t begin, size_t end_tok) {
    if (class_stack_.empty()) return;
    MemberDecl m;
    m.class_name = class_stack_.back();
    m.line = Line(begin);
    std::vector<std::string> idents;
    for (size_t q = begin; q < end_tok; ++q) {
      if (t_[q].kind != Token::Kind::kIdent) continue;
      if (IsAnnotationMacro(t_[q].text)) break;  // annotations trail the name
      idents.push_back(t_[q].text);
    }
    if (idents.size() < 2) return;  // need at least a type and a name
    m.member = idents.back();
    idents.pop_back();
    m.type_idents = std::move(idents);
    out_.members.push_back(std::move(m));
  }

  static std::string Qualify(const std::string& cls, const std::string& cap) {
    return cls.empty() ? cap : cls + "::" + cap;
  }

  // --- function bodies ---------------------------------------------------

  struct ActiveLock {
    std::string capability;
    int depth;
  };

  void AnalyzeBody(size_t begin, size_t end, FunctionInfo* fn,
                   const std::vector<std::string>& base_locks,
                   bool in_lambda = false) {
    std::vector<ActiveLock> active;
    int depth = 0;
    auto held = [&]() {
      std::vector<std::string> caps = base_locks;
      for (const ActiveLock& l : active) caps.push_back(l.capability);
      return caps;
    };

    size_t i = begin;
    while (i < end) {
      size_t guard = i;
      const std::string& s = t_[i].text;
      if (s == "{") { ++depth; ++i; }
      else if (s == "}") {
        --depth;
        while (!active.empty() && active.back().depth > depth) {
          active.pop_back();
        }
        ++i;
      } else if (s == "[") {
        size_t after = TryLambda(i, end, fn);
        if (after > i) { i = after; continue; }
        ++i;
      } else if (t_[i].kind == Token::Kind::kIdent && s == "MutexLock" &&
                 IsIdent(i + 1) && Is(i + 2, "(")) {
        size_t close = MatchParen(i + 2, end);
        std::string last_ident;
        for (size_t q = i + 3; q + 1 < close; ++q) {
          if (t_[q].kind == Token::Kind::kIdent) last_ident = t_[q].text;
        }
        if (!last_ident.empty()) {
          LockAcquisition acq;
          acq.capability = Qualify(fn->class_name, last_ident);
          acq.line = Line(i);
          acq.order = i;
          acq.held_before = held();
          fn->acquisitions.push_back(acq);
          active.push_back(ActiveLock{std::move(acq.capability), depth});
          active.back().capability = Qualify(fn->class_name, last_ident);
        }
        i = close;
      } else if (t_[i].kind == Token::Kind::kIdent && Is(i + 1, "(") &&
                 CalleeKeywords().count(s) == 0) {
        if (IsAnnotationMacro(s)) {
          // NORMALIZE_RETURN_IF_ERROR(wal_->Append(...)) and friends wrap
          // real calls in their arguments: skip only the macro name so the
          // inner calls are still recorded.
          ++i;
          continue;
        }
        // `Foo bar(...)`: a declaration unless the preceding identifier is
        // a statement keyword.
        if (i > begin && IsIdent(i - 1) &&
            CallishPredecessors().count(t_[i - 1].text) == 0) {
          ++i;
          continue;
        }
        if (i > begin && Is(i - 1, "~")) { ++i; continue; }
        RecordCall(i, begin, end, fn, held(), in_lambda);
        ++i;
      } else {
        ++i;
      }
      if (i <= guard) i = guard + 1;
    }
  }

  /// If `i` (at '[') starts a lambda, analyzes its body with an empty lock
  /// set and returns the index after the body; otherwise returns `i`.
  size_t TryLambda(size_t i, size_t end, FunctionInfo* fn) {
    if (Is(i + 1, "[")) {  // [[attribute]]
      return MatchBracket(i, end);
    }
    size_t close = MatchBracket(i, end);
    size_t k = close;
    if (Is(k, "(")) k = MatchParen(k, end);
    // Optional specifiers / trailing return before the body.
    int fuse = 8;
    while (k < end && fuse-- > 0) {
      const std::string& s = t_[k].text;
      if (s == "{") {
        size_t body_close = MatchBrace(k, end);
        AnalyzeBody(k + 1, body_close - 1, fn, {}, /*in_lambda=*/true);
        return body_close;
      }
      if (s == "mutable" || s == "noexcept" || s == "constexpr" ||
          t_[k].kind == Token::Kind::kIdent || s == "->" || s == "::") {
        ++k;
        continue;
      }
      if (s == "<") { k = MatchAngle(k, end); continue; }
      break;
    }
    return i;  // not a lambda (array subscript etc.)
  }

  void RecordCall(size_t i, size_t body_begin, size_t end, FunctionInfo* fn,
                  std::vector<std::string> locks, bool in_lambda) {
    CallSite call;
    call.callee = t_[i].text;
    call.line = Line(i);
    call.order = i;
    call.locks_held = std::move(locks);
    call.in_lambda = in_lambda;

    // Object expression: walk back over the access chain.
    size_t chain_start = i;
    if (i > body_begin) {
      const std::string& prev = t_[i - 1].text;
      if (prev == "::" || prev == "->" || prev == ".") {
        if (i >= 2 && IsIdent(i - 2)) {
          call.object = t_[i - 2].text;
          chain_start = i - 2;
          // Extend through longer chains (a.b->c()); the immediate owner is
          // what resolution wants, but the chain start is needed for the
          // (void) / statement checks.
          while (chain_start >= body_begin + 2 &&
                 (Is(chain_start - 1, "::") || Is(chain_start - 1, "->") ||
                  Is(chain_start - 1, ".")) &&
                 IsIdent(chain_start - 2)) {
            chain_start -= 2;
          }
        }
      }
    }

    // (void) cast directly before the chain?
    if (chain_start >= body_begin + 3 && Is(chain_start - 1, ")") &&
        Is(chain_start - 2, "void") && Is(chain_start - 3, "(")) {
      call.void_cast = true;
      call.is_statement = true;
    } else if (chain_start == body_begin ||
               Is(chain_start - 1, ";") || Is(chain_start - 1, "{") ||
               Is(chain_start - 1, "}")) {
      // Expression statement: the full call result is discarded if the
      // token after the argument list is ';'.
      size_t after = MatchParen(i + 1, end);
      if (after < end && Is(after, ";")) call.is_statement = true;
      if (after >= end) call.is_statement = true;  // body ends with the call
    }
    fn->calls.push_back(std::move(call));
  }
};

}  // namespace

ParsedFile ParseFile(const LexedFile& lexed) {
  return FileParser(lexed).Run();
}

}  // namespace fdlint
