// fd_lint: project-aware static analysis for the normalization codebase.
//
//   fd_lint --compdb build/compile_commands.json   # analyze the whole tree
//   fd_lint [--wal-domain src/service/] file...    # analyze explicit files
//
// Checks (suppress a site with `// fdlint: allow(FDLxxx)` on the same or
// the previous line):
//   FDL001 blocking-under-lock   blocking syscall / cv-wait held under locks
//   FDL002 lock-order            cyclic Mutex acquisition order across TUs
//   FDL003 wal-order             store mutation not preceded by WAL append
//   FDL004 status-in-noexcept    discarded Status in a dtor/noexcept fn
//   FDL005 void-discard          (void)-discarded Status without rationale
//
// Exit codes: 0 clean, 1 diagnostics emitted, 2 usage or I/O error.
//
// Implementation note: fd_lint is a dependency-free token/structural
// analyzer (see parser.hpp), not a Clang AST tool, so it builds and runs on
// any host the project itself builds on — no LLVM installation required.
// The compilation database is used only as the authoritative TU list;
// headers next to the TUs are analyzed too (annotations live on .hpp
// declarations).

#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.hpp"
#include "compdb.hpp"
#include "lexer.hpp"
#include "parser.hpp"

namespace {

int Usage() {
  std::cerr << "usage: fd_lint [--compdb FILE] [--wal-domain SUBSTR] "
               "[file...]\n";
  return 2;
}

bool LoadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string compdb;
  fdlint::AnalysisOptions options;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--compdb") {
      if (++i >= argc) return Usage();
      compdb = argv[i];
    } else if (arg == "--wal-domain") {
      if (++i >= argc) return Usage();
      options.wal_domain = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (compdb.empty() && files.empty()) return Usage();

  if (!compdb.empty()) {
    std::vector<std::string> inputs =
        fdlint::AnalysisInputsFromCompileCommands(compdb);
    if (inputs.empty()) {
      std::cerr << "fd_lint: cannot read compilation database: " << compdb
                << "\n";
      return 2;
    }
    std::set<std::string> unique(files.begin(), files.end());
    unique.insert(inputs.begin(), inputs.end());
    files.assign(unique.begin(), unique.end());
  }

  std::vector<fdlint::ParsedFile> parsed;
  parsed.reserve(files.size());
  for (const std::string& path : files) {
    std::string src;
    if (!LoadFile(path, &src)) {
      std::cerr << "fd_lint: cannot read " << path << "\n";
      return 2;
    }
    parsed.push_back(fdlint::ParseFile(fdlint::LexString(path, src)));
  }

  std::vector<fdlint::Diagnostic> diags = fdlint::RunChecks(parsed, options);
  for (const fdlint::Diagnostic& d : diags) {
    std::cout << d.file << ":" << d.line << ": " << d.id << " ["
              << d.check_name << "] " << d.message << "\n";
  }
  std::cout << "fd_lint: " << parsed.size() << " files, " << diags.size()
            << " finding" << (diags.size() == 1 ? "" : "s") << "\n";
  return diags.empty() ? 0 : 1;
}
