#!/usr/bin/env bash
# Builds and runs the project-aware analyzer (tools/lint/fd_lint) over the
# whole tree, exactly as the fd-lint CI job does.
#
#   tools/run_fd_lint.sh [build-dir]
#
# Unlike clang-tidy/cppcheck, fd_lint has no external dependency — it is
# built from this repository by the normal CMake build — so this script
# never skips: it works in every container the project itself builds in.
set -eu -o pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . > /dev/null
fi
cmake --build "$BUILD_DIR" --target fd_lint -j "$(nproc 2> /dev/null || echo 4)" > /dev/null

exec "$BUILD_DIR/tools/lint/fd_lint" --compdb "$BUILD_DIR/compile_commands.json"
