#!/usr/bin/env bash
# Runs cppcheck over the first-party sources with the project suppression
# profile (tools/cppcheck-suppressions.txt).
#
#   tools/run_cppcheck.sh [build-dir]
#
# The build directory (default ./build) supplies compile_commands.json so
# cppcheck sees the real include paths and defines; it is configured on the
# fly when missing. Exits 0 when cppcheck is not installed (local containers
# without it) so the script is safe to call unconditionally; CI installs
# cppcheck and gets the full --error-exitcode gate.
set -u -o pipefail

cd "$(dirname "$0")/.."

if ! command -v cppcheck > /dev/null 2>&1; then
  echo "run_cppcheck: cppcheck not installed; skipping (runs in CI)" >&2
  exit 0
fi

BUILD_DIR="${1:-build}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

JOBS="$(nproc 2> /dev/null || echo 4)"
echo "run_cppcheck: $(cppcheck --version) ($JOBS jobs)" >&2

# --project consumes the compilation database (so TU selection and flags
# match the build exactly); gtest/benchmark TUs are first-party too and stay
# in. `missingIncludeSystem` etc. are suppressed in the profile, not here.
cppcheck \
  --project="$BUILD_DIR/compile_commands.json" \
  --enable=warning,performance,portability \
  --inline-suppr \
  --suppressions-list=tools/cppcheck-suppressions.txt \
  --error-exitcode=1 \
  --quiet \
  -j "$JOBS"
STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "run_cppcheck: findings above must be fixed or suppressed with a rationale in tools/cppcheck-suppressions.txt" >&2
else
  echo "run_cppcheck: clean" >&2
fi
exit "$STATUS"
