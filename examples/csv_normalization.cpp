// Example: normalize a CSV file into BCNF and write one CSV per resulting
// relation — the end-to-end "give me a clean schema for this export" use
// case from the paper's introduction.
//
// Usage:
//   csv_normalization [--input=<file.csv>] [--output-dir=<dir>]
//                     [--max-lhs=<n>] [--discovery=<hyfd|tane|fdep>]
//
// Without --input, a bundled denormalized product-orders export is used so
// the example runs out of the box.
#include <cstdio>
#include <iostream>
#include <string>

#include "normalize/normalizer.hpp"
#include "relation/csv.hpp"

using namespace normalize;

namespace {

// A denormalized web-shop order export: order lines with embedded customer
// and product master data (the classic normalization motivation).
const char kSampleCsv[] =
    "order_id,line,customer_id,customer_name,customer_city,product_id,"
    "product_name,category,category_tax,unit_price,quantity\n"
    "1001,1,C01,Alice,Berlin,P1,Espresso Beans,Food,7,8.99,2\n"
    "1001,2,C01,Alice,Berlin,P2,Filter Paper,Household,19,3.49,1\n"
    "1002,1,C02,Bob,Hamburg,P1,Espresso Beans,Food,7,8.99,1\n"
    "1003,1,C03,Carol,Berlin,P3,Mug,Household,19,5.99,4\n"
    "1003,2,C03,Carol,Berlin,P2,Filter Paper,Household,19,3.49,2\n"
    "1004,1,C01,Alice,Berlin,P3,Mug,Household,19,5.99,1\n"
    "1004,2,C01,Alice,Berlin,P1,Espresso Beans,Food,7,8.99,3\n"
    "1005,1,C02,Bob,Hamburg,P2,Filter Paper,Household,19,3.49,5\n";

std::string GetFlag(int argc, char** argv, const std::string& name,
                    const std::string& fallback) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input = GetFlag(argc, argv, "input", "");
  std::string output_dir = GetFlag(argc, argv, "output-dir", "");

  CsvReader reader;
  Result<RelationData> data =
      input.empty() ? reader.ReadString(kSampleCsv, "orders_export")
                    : reader.ReadFile(input);
  if (!data.ok()) {
    std::cerr << "failed to read input: " << data.status().ToString() << "\n";
    return 1;
  }
  std::cout << "input: " << data->name() << " with " << data->num_rows()
            << " rows x " << data->num_columns() << " columns ("
            << data->TotalValueCount() << " values)\n\n";

  NormalizerOptions options;
  options.discovery_algorithm = GetFlag(argc, argv, "discovery", "hyfd");
  options.discovery.max_lhs_size =
      std::atoi(GetFlag(argc, argv, "max-lhs", "3").c_str());
  Normalizer normalizer(options);
  auto result = normalizer.Normalize(*data);
  if (!result.ok()) {
    std::cerr << "normalization failed: " << result.status().ToString() << "\n";
    return 1;
  }

  std::cout << "discovered " << result->stats.num_fds << " minimal FDs, "
            << "performed " << result->stats.decompositions
            << " decompositions\n\n";
  std::cout << "=== BCNF schema ===\n" << result->schema.ToString() << "\n";

  size_t total_values = 0;
  CsvWriter writer;
  for (const RelationData& rel : result->relations) {
    total_values += rel.TotalValueCount();
    std::cout << rel.ToString(8) << "\n";
    if (!output_dir.empty()) {
      std::string path = output_dir + "/" + rel.name() + ".csv";
      Status st = writer.WriteFile(rel, path);
      if (!st.ok()) {
        std::cerr << "write failed: " << st.ToString() << "\n";
        return 1;
      }
      std::cout << "wrote " << path << "\n\n";
    }
  }
  std::printf("size: %zu values -> %zu values (%.0f%% of the original)\n",
              data->TotalValueCount(), total_values,
              100.0 * total_values / data->TotalValueCount());
  return 0;
}
