// normalize_serve — the durable normalization service CLI (src/service/).
// One binary plays every role in the kill-and-recover drill:
//
//   serve     --dir=<dir> --socket=<path> [--dataset=.. --scale=..|--input=..]
//             [--queue-capacity=<n>] [--checkpoint-every=<n>] [--sync-wal]
//             [--max-lhs=<n>] [--threads=<n>]
//             Runs the daemon: ServiceCore (WAL + checkpoints in --dir)
//             behind the Unix-socket server. SIGTERM/SIGINT (or a client
//             shutdown request) drains gracefully: in-flight batches are
//             acked, a final checkpoint is written, then the process exits.
//             SIGKILL at any point is recoverable — the next `serve` over
//             the same --dir replays checkpoint + WAL tail to the exact
//             cover an uninterrupted run would hold.
//
//   drive     --socket=<path> [--dataset=..] [--batches=<n>]
//             [--batch-size=<n>] [--mix=default|delete-heavy] [--seed=<n>]
//             [--deadline-ms=<n>] [--cover-output=<file>]
//             Streams generated update batches at the daemon with
//             client-assigned seqs 1..N. The driver survives server
//             restarts: a failed or in-doubt call reconnects (jittered
//             backoff) and resends the same seq — the server's dedup makes
//             the resend exactly-once. The stream is generated against a
//             local mirror that advances only on acks, so the batch
//             sequence is a deterministic function of (seed dataset, spec)
//             no matter how often the server dies.
//
//   cover | schema | stats   --socket=<path> [--output=<file>]
//             One read request; text to stdout or --output.
//
//   metrics   --socket=<path> [--format=prometheus|json] [--output=<file>]
//             Scrapes the daemon's metrics registry (src/obs/): Prometheus
//             text exposition by default, or the JSON snapshot (which also
//             carries the trace span records) with --format=json.
//
//   shutdown  --socket=<path>
//             Asks the daemon to drain and exit.
//
// Exit codes follow normalize_cli's contract: 0 ok, 2 config, 3 I/O or
// unreachable/corrupt, 4 deadline/cancelled, 5 resource exhausted.
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "common/rng.hpp"
#include "common/run_context.hpp"
#include "datagen/datasets.hpp"
#include "datagen/musicbrainz_like.hpp"
#include "datagen/tpch_like.hpp"
#include "datagen/update_stream.hpp"
#include "live/live_relation.hpp"
#include "relation/csv.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "service/service_core.hpp"

using namespace normalize;

namespace {

int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
    case StatusCode::kUnimplemented:
    case StatusCode::kFailedPrecondition:  // directory from a different run
      return 2;
    case StatusCode::kIoError:
    case StatusCode::kNotFound:
    case StatusCode::kUnavailable:
    case StatusCode::kDataLoss:  // corrupt checkpoint / WAL / frame
      return 3;
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
      return 4;
    case StatusCode::kResourceExhausted:
      return 5;
    default:
      return 1;
  }
}

int Fail(const Status& status) {
  std::cerr << status.ToString() << "\n";
  return ExitCodeFor(status);
}

struct Flags {
  std::string command;
  std::string socket_path, dir, input, dataset, output, cover_output, mix;
  std::string format = "prometheus";
  double scale = 1.0;
  long batches = 64;
  long batch_size = 0;       // 0 = spec default
  long queue_capacity = 64;
  long checkpoint_every = 64;
  long deadline_ms = 0;
  long max_lhs = -1;
  long threads = 1;
  long seed = 42;
  bool sync_wal = false;

  static Flags Parse(int argc, char** argv) {
    Flags f;
    if (argc >= 2 && argv[1][0] != '-') f.command = argv[1];
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      auto value = [&](const char* name) -> const char* {
        std::string prefix = std::string("--") + name + "=";
        return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                         : nullptr;
      };
      if (const char* v = value("socket")) f.socket_path = v;
      if (const char* v = value("dir")) f.dir = v;
      if (const char* v = value("input")) f.input = v;
      if (const char* v = value("dataset")) f.dataset = v;
      if (const char* v = value("output")) f.output = v;
      if (const char* v = value("cover-output")) f.cover_output = v;
      if (const char* v = value("mix")) f.mix = v;
      if (const char* v = value("format")) f.format = v;
      if (const char* v = value("scale")) f.scale = std::atof(v);
      if (const char* v = value("batches")) f.batches = std::atol(v);
      if (const char* v = value("batch-size")) f.batch_size = std::atol(v);
      if (const char* v = value("queue-capacity"))
        f.queue_capacity = std::atol(v);
      if (const char* v = value("checkpoint-every"))
        f.checkpoint_every = std::atol(v);
      if (const char* v = value("deadline-ms")) f.deadline_ms = std::atol(v);
      if (const char* v = value("max-lhs")) f.max_lhs = std::atol(v);
      if (const char* v = value("threads")) f.threads = std::atol(v);
      if (const char* v = value("seed")) f.seed = std::atol(v);
      if (arg == "--sync-wal") f.sync_wal = true;
    }
    return f;
  }
};

// The seed instance both `serve` and `drive` must agree on (the checkpoint
// fingerprint enforces the serve side; the drive side mirrors it).
Result<RelationData> LoadSeed(const Flags& flags) {
  if (!flags.dataset.empty()) {
    if (!flags.input.empty()) {
      return Status::InvalidArgument("--input and --dataset are exclusive");
    }
    if (flags.dataset == "address") return AddressExample();
    if (flags.dataset == "tpch") {
      return GenerateTpchLike(TpchScale{}.Scaled(flags.scale)).universal;
    }
    if (flags.dataset == "musicbrainz") {
      return GenerateMusicBrainzLike(MusicBrainzScale{}.Scaled(flags.scale))
          .universal;
    }
    return Status::InvalidArgument(
        "unknown --dataset (address|tpch|musicbrainz): " + flags.dataset);
  }
  if (flags.input.empty()) return AddressExample();
  return CsvReader().ReadFile(flags.input);
}

// SIGTERM/SIGINT handlers may only touch this flag; the serve loop polls.
volatile std::sig_atomic_t g_stop_requested = 0;
void HandleStopSignal(int) { g_stop_requested = 1; }

int Serve(const Flags& flags) {
  if (flags.dir.empty() || flags.socket_path.empty()) {
    std::cerr << "serve requires --dir=<dir> and --socket=<path>\n";
    return 2;
  }
  auto seed = LoadSeed(flags);
  if (!seed.ok()) return Fail(seed.status());

  ServiceCoreOptions core_options;
  core_options.dir = flags.dir;
  core_options.queue_capacity =
      static_cast<size_t>(std::max(flags.queue_capacity, 1L));
  core_options.shed_read_depth = core_options.queue_capacity * 3 / 4;
  core_options.checkpoint_every =
      static_cast<uint64_t>(std::max(flags.checkpoint_every, 0L));
  core_options.sync_wal = flags.sync_wal;
  core_options.max_lhs_size = static_cast<int>(flags.max_lhs);
  core_options.threads = static_cast<int>(flags.threads);
  // The daemon always runs fully instrumented: an external registry routes
  // the maintainer's instruments and latency histograms alongside the
  // core's counters, and the tracer records the batch → apply_batch →
  // probe → publish span trees — all scrapeable via `metrics`.
  MetricsRegistry metrics;
  Tracer tracer;
  core_options.metrics = &metrics;
  core_options.tracer = &tracer;
  auto core = ServiceCore::Open(*seed, core_options);
  if (!core.ok()) return Fail(core.status());
  const ServiceStats recovered = (*core)->stats();
  std::cerr << "normalize_serve: recovered"
            << (recovered.recovered_from_checkpoint ? " from checkpoint"
                                                    : " from seed")
            << ", replayed " << recovered.recovered_wal_records
            << " wal records (dropped "
            << recovered.recovery_tail_dropped_bytes
            << " torn tail bytes), last_applied_seq="
            << recovered.last_applied_seq << "\n";

  ServiceServer server(core->get(), ServiceServerOptions{flags.socket_path});
  server.set_on_shutdown_request([] { g_stop_requested = 1; });
  Status started = server.Start();
  if (!started.ok()) return Fail(started);
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  std::cerr << "normalize_serve: listening on " << flags.socket_path << "\n";

  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::cerr << "normalize_serve: draining\n";
  server.Stop();                        // finish in-flight requests first
  Status drained = (*core)->Shutdown();  // then drain the writer queue
  if (!drained.ok()) return Fail(drained);
  std::cerr << "normalize_serve: clean shutdown\n";
  return 0;
}

// One in-doubt-safe request: (re)connect if needed, send, and treat
// transport failures and backpressure as retryable. Batches are safe to
// resend verbatim because the seq dedups on the server.
Result<ServiceResponse> CallWithRecovery(
    const Flags& flags, Result<ServiceClient>* client,
    const ServiceRequest& request, Rng* rng) {
  RetryPolicy connect_policy;
  connect_policy.max_attempts = 200;
  connect_policy.initial_backoff_ms = 5.0;
  connect_policy.max_backoff_ms = 250.0;
  connect_policy.jitter = 0.5;
  Deadline give_up = Deadline::AfterMillis(60e3);
  Status last = Status::Unavailable("not connected");
  for (int attempt = 0; attempt < 400; ++attempt) {
    if (give_up.Expired()) break;
    if (!client->ok()) {
      *client = ServiceClient::ConnectWithRetry(flags.socket_path,
                                                connect_policy, rng, give_up);
      if (!client->ok()) {
        last = client->status();
        continue;
      }
    }
    Result<ServiceResponse> response = (*client)->Call(request);
    if (!response.ok()) {
      // Transport broke mid-call (server died): drop the connection and
      // resend the same request on a fresh one.
      last = response.status();
      *client = last;
      continue;
    }
    Status application = response->ToStatus();
    if (application.ok()) return response;
    if (application.code() == StatusCode::kResourceExhausted ||
        application.code() == StatusCode::kUnavailable) {
      // Backpressure / draining: honor the server's retry hint.
      double delay_ms =
          response->retry_after_ms > 0 ? response->retry_after_ms : 25.0;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
      last = application;
      continue;
    }
    return response;  // non-retryable application error; caller decides
  }
  return last;
}

int Drive(const Flags& flags) {
  if (flags.socket_path.empty()) {
    std::cerr << "drive requires --socket=<path>\n";
    return 2;
  }
  auto seed = LoadSeed(flags);
  if (!seed.ok()) return Fail(seed.status());

  UpdateStreamSpec spec;
  if (flags.mix == "delete-heavy") {
    spec = UpdateStreamSpec::DeleteHeavy(static_cast<uint64_t>(flags.seed));
  } else if (flags.mix.empty() || flags.mix == "default") {
    spec.seed = static_cast<uint64_t>(flags.seed);
  } else {
    std::cerr << "unknown --mix (default|delete-heavy): " << flags.mix
              << "\n";
    return 2;
  }
  if (flags.batch_size > 0) {
    spec.batch_size = static_cast<size_t>(flags.batch_size);
  }

  // The mirror advances only on acked batches, so the generated stream is
  // identical across server crashes and restarts.
  LiveRelation mirror(*seed);
  UpdateStreamGenerator generator(*seed, spec);
  Rng retry_rng(static_cast<uint64_t>(flags.seed) ^ 0x9e3779b97f4a7c15ull);
  Result<ServiceClient> client =
      ServiceClient::Connect(flags.socket_path);  // lazily retried

  uint64_t applied = 0;
  for (long i = 1; i <= flags.batches; ++i) {
    LiveBatch batch = generator.NextBatch(mirror);
    ServiceRequest request;
    request.type = ServiceRequestType::kApplyBatch;
    request.seq = static_cast<uint64_t>(i);
    request.deadline_ms = static_cast<uint32_t>(flags.deadline_ms);
    request.batch = batch;
    Result<ServiceResponse> response =
        CallWithRecovery(flags, &client, request, &retry_rng);
    if (!response.ok()) return Fail(response.status());
    Status acked = response->ToStatus();
    if (!acked.ok()) return Fail(acked);
    auto delta = mirror.Apply(batch);
    if (!delta.ok()) return Fail(delta.status());
    ++applied;
  }
  std::cerr << "normalize_serve: drove " << applied << " batches ("
            << mirror.live_rows() << " live rows in mirror)\n";

  if (!flags.cover_output.empty()) {
    ServiceRequest request;
    request.type = ServiceRequestType::kGetCover;
    Result<ServiceResponse> response =
        CallWithRecovery(flags, &client, request, &retry_rng);
    if (!response.ok()) return Fail(response.status());
    std::ofstream out(flags.cover_output);
    out << response->text;
    if (!out.good()) {
      return Fail(Status::IoError("cannot write " + flags.cover_output));
    }
    std::cerr << "normalize_serve: wrote cover (epoch " << response->epoch
              << ", " << response->live_rows << " live rows) to "
              << flags.cover_output << "\n";
  }
  return 0;
}

int ReadCommand(const Flags& flags, ServiceRequestType type) {
  if (flags.socket_path.empty()) {
    std::cerr << flags.command << " requires --socket=<path>\n";
    return 2;
  }
  auto client = ServiceClient::Connect(flags.socket_path);
  if (!client.ok()) return Fail(client.status());
  ServiceRequest request;
  request.type = type;
  request.deadline_ms = static_cast<uint32_t>(flags.deadline_ms);
  if (type == ServiceRequestType::kGetMetrics) {
    if (flags.format != "prometheus" && flags.format != "json") {
      std::cerr << "unknown --format (prometheus|json): " << flags.format
                << "\n";
      return 2;
    }
    request.metrics_json = flags.format == "json";
  }
  auto response = client->Call(request);
  if (!response.ok()) return Fail(response.status());
  Status application = response->ToStatus();
  if (!application.ok()) return Fail(application);
  if (flags.output.empty()) {
    std::cout << response->text;
  } else {
    std::ofstream out(flags.output);
    out << response->text;
    if (!out.good()) {
      return Fail(Status::IoError("cannot write " + flags.output));
    }
  }
  return 0;
}

int ShutdownCommand(const Flags& flags) {
  if (flags.socket_path.empty()) {
    std::cerr << "shutdown requires --socket=<path>\n";
    return 2;
  }
  auto client = ServiceClient::Connect(flags.socket_path);
  if (!client.ok()) return Fail(client.status());
  auto response = client->RequestShutdown();
  if (!response.ok()) return Fail(response.status());
  return ExitCodeFor(response->ToStatus());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.command == "serve") return Serve(flags);
  if (flags.command == "drive") return Drive(flags);
  if (flags.command == "cover") {
    return ReadCommand(flags, ServiceRequestType::kGetCover);
  }
  if (flags.command == "schema") {
    return ReadCommand(flags, ServiceRequestType::kGetSchema);
  }
  if (flags.command == "stats") {
    return ReadCommand(flags, ServiceRequestType::kGetStats);
  }
  if (flags.command == "metrics") {
    return ReadCommand(flags, ServiceRequestType::kGetMetrics);
  }
  if (flags.command == "shutdown") return ShutdownCommand(flags);
  std::cerr
      << "usage: normalize_serve "
         "serve|drive|cover|schema|stats|metrics|shutdown "
         "[--socket=<path>] [--dir=<dir>] ...\n"
         "(see the comment at the top of examples/normalize_serve.cpp)\n";
  return 2;
}
