// normalize_cli — a console front-end over the whole library, in the spirit
// of the paper's (console-based) research prototype. Subcommands:
//
//   discover   --input=<csv> [--algorithm=hyfd] [--max-lhs=<n>]
//              [--threads=<n>] [--fd-output=<file>]  # component (1)
//   closure    --input=<csv> --fds=<file> [--algorithm=optimized]
//              [--threads=<n>] [--fd-output=<file>]  # component (2)
//   normalize  --input=<csv> [--max-lhs=<n>] [--threads=<n>] [--3nf] [--4nf]
//              [--shard-rows=<n>] [--memory-budget=<bytes>] [--audit]
//              [--sql] [--output-dir=<dir>]          # the full pipeline
//
// --dataset=<address|tpch|musicbrainz>: run on a generated dataset instead
// of --input (--scale=<f> shrinks/grows the entity counts). --audit runs the
// correctness auditor (audit/decomposition_auditor.hpp) on the result and
// exits 6 when a fatal finding falsifies a guarantee.
//
// --threads: worker threads for the parallel phases (PLI building, HyFD
// validation, Tane levels, closure FD loop). 0 = hardware concurrency
// (default), 1 = serial. The result is identical for every value.
//
// --shard-rows: partition the input into row-range shards of this size and
// run per-shard discovery + merge-and-validate (src/shard/); with --input
// the CSV is streamed through the bounded ingest buffer
// (--memory-budget=<bytes>) instead of being loaded whole. The discovered
// FD set — and hence the schema — is identical to the unsharded run.
//
// --deadline-ms: wall-clock budget for the run. On expiry, discover prints
// the sound partial cover found so far, and normalize degrades gracefully
// (see NormalizerOptions::degrade_on_deadline); both warn on stderr.
//
// --checkpoint-dir=<dir>: persist each completed pipeline stage (ingest
// shards, per-shard covers + PLIs, merge frontier, final cover) as
// checksummed snapshots. An interrupted run exits 4 with its state flushed;
// rerunning with --resume continues from the last completed stage and
// produces the same schema an uninterrupted run would have.
// --interrupt-at-check=<n> injects a deterministic interruption at the Nth
// run-context check (fault-injection hook for testing the above).
//
// Exit codes (scriptable; one per StatusCode class):
//   0  success (possibly degraded — check stderr for warnings)
//   1  internal or unclassified error
//   2  configuration error (bad flags, unknown algorithm)
//   3  I/O error (missing/unreadable input, failed write)
//   4  deadline exceeded or cancelled before a usable result existed
//   5  resource exhausted (e.g. a record larger than the ingest budget)
//
// Without --input, the paper's address example is used, so every subcommand
// runs out of the box:  normalize_cli normalize --sql
#include <fstream>
#include <iostream>
#include <string>

#include "closure/closure.hpp"
#include "common/run_context.hpp"
#include "datagen/datasets.hpp"
#include "datagen/musicbrainz_like.hpp"
#include "datagen/tpch_like.hpp"
#include "discovery/fd_discovery.hpp"
#include "fd/fd_io.hpp"
#include "normalize/fourth_nf.hpp"
#include "normalize/normalizer.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "normalize/report.hpp"
#include "normalize/sql_export.hpp"
#include "relation/csv.hpp"
#include "relation/schema_io.hpp"

using namespace normalize;

namespace {

// Documented exit codes — one per class of StatusCode, so scripts can
// distinguish "fix your flags" from "input unreadable" from "out of time".
int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
    case StatusCode::kUnimplemented:
      return 2;
    case StatusCode::kIoError:
    case StatusCode::kNotFound:
    case StatusCode::kUnavailable:
    case StatusCode::kDataLoss:  // corrupted / truncated checkpoint file
      return 3;
    case StatusCode::kFailedPrecondition:  // checkpoint from a different run
      return 2;
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
      return 4;
    case StatusCode::kResourceExhausted:
      return 5;
    default:
      return 1;
  }
}

int Fail(const Status& status) {
  std::cerr << status.ToString() << "\n";
  return ExitCodeFor(status);
}

struct Flags {
  std::string command;
  std::string input, fds, fd_output, output_dir, algorithm, schema_output,
      report, dataset, metrics_out;
  int max_lhs = -1;
  int threads = 0;  // 0 = hardware concurrency
  long shard_rows = 0;      // 0 = unsharded
  long memory_budget = 0;   // ingest buffer cap in bytes; 0 = default
  long deadline_ms = 0;     // 0 = no deadline
  long interrupt_at_check = 0;  // fault injection: die at the Nth check
  std::string checkpoint_dir;   // empty = no checkpointing
  bool resume = false;
  double scale = 1.0;       // entity-count multiplier for --dataset
  bool second_nf = false, third_nf = false, fourth_nf = false, sql = false;
  bool audit = false;

  static Flags Parse(int argc, char** argv) {
    Flags f;
    if (argc >= 2 && argv[1][0] != '-') f.command = argv[1];
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      auto value = [&](const char* name) -> const char* {
        std::string prefix = std::string("--") + name + "=";
        return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                         : nullptr;
      };
      if (const char* v = value("input")) f.input = v;
      if (const char* v = value("fds")) f.fds = v;
      if (const char* v = value("fd-output")) f.fd_output = v;
      if (const char* v = value("output-dir")) f.output_dir = v;
      if (const char* v = value("algorithm")) f.algorithm = v;
      if (const char* v = value("schema-output")) f.schema_output = v;
      if (const char* v = value("report")) f.report = v;
      if (const char* v = value("metrics-out")) f.metrics_out = v;
      if (const char* v = value("max-lhs")) f.max_lhs = std::atoi(v);
      if (const char* v = value("threads")) f.threads = std::atoi(v);
      if (const char* v = value("shard-rows")) f.shard_rows = std::atol(v);
      if (const char* v = value("memory-budget"))
        f.memory_budget = std::atol(v);
      if (const char* v = value("deadline-ms")) f.deadline_ms = std::atol(v);
      if (const char* v = value("interrupt-at-check"))
        f.interrupt_at_check = std::atol(v);
      if (const char* v = value("checkpoint-dir")) f.checkpoint_dir = v;
      if (const char* v = value("dataset")) f.dataset = v;
      if (const char* v = value("scale")) f.scale = std::atof(v);
      if (arg == "--resume") f.resume = true;
      if (arg == "--audit") f.audit = true;
      if (arg == "--2nf") f.second_nf = true;
      if (arg == "--3nf") f.third_nf = true;
      if (arg == "--4nf") f.fourth_nf = true;
      if (arg == "--sql") f.sql = true;
    }
    return f;
  }

  RunContext MakeContext() const {
    RunContext ctx;
    if (deadline_ms > 0) {
      ctx.deadline = Deadline::AfterMillis(static_cast<double>(deadline_ms));
    }
    return ctx;
  }
};

// Dumps the run's registry as a JSON metrics snapshot (obs/export.hpp) —
// the machine-readable profile of where the run spent its time.
int WriteMetricsOut(const MetricsRegistry& registry, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 3;
  }
  out << ToMetricsJson(registry.Snapshot());
  if (!out.good()) {
    std::cerr << "cannot write " << path << "\n";
    return 3;
  }
  std::cerr << "wrote " << path << "\n";
  return 0;
}

Result<RelationData> LoadInput(const Flags& flags) {
  if (!flags.dataset.empty()) {
    if (!flags.input.empty()) {
      return Status::InvalidArgument("--input and --dataset are exclusive");
    }
    if (flags.dataset == "address") return AddressExample();
    if (flags.dataset == "tpch") {
      return GenerateTpchLike(TpchScale{}.Scaled(flags.scale)).universal;
    }
    if (flags.dataset == "musicbrainz") {
      return GenerateMusicBrainzLike(MusicBrainzScale{}.Scaled(flags.scale))
          .universal;
    }
    return Status::InvalidArgument(
        "unknown --dataset (address|tpch|musicbrainz): " + flags.dataset);
  }
  if (flags.input.empty()) return AddressExample();
  return CsvReader().ReadFile(flags.input);
}

int Discover(const Flags& flags) {
  auto data = LoadInput(flags);
  if (!data.ok()) return Fail(data.status());
  RunContext ctx = flags.MakeContext();
  MetricsRegistry registry;
  FdDiscoveryOptions options;
  options.max_lhs_size = flags.max_lhs;
  options.threads = flags.threads;
  options.context = &ctx;
  if (!flags.metrics_out.empty()) options.metrics = &registry;
  std::string algo_name = flags.algorithm.empty() ? "hyfd" : flags.algorithm;
  auto algo = MakeFdDiscovery(algo_name, options);
  if (!algo) {
    std::cerr << "unknown discovery algorithm: " << algo_name << "\n";
    return 2;
  }
  auto fds = algo->Discover(*data);
  if (!fds.ok()) return Fail(fds.status());
  if (!algo->completion_status().ok()) {
    std::cerr << "warning: " << algo->completion_status().ToString()
              << " — emitting the sound partial cover found so far\n";
  }
  std::cerr << algo->name() << ": " << fds->CountUnaryFds()
            << " minimal FDs in " << data->name() << "\n";
  std::string text = WriteFdsToString(*fds, data->ColumnNames());
  if (flags.fd_output.empty()) {
    std::cout << text;
  } else {
    Status st = WriteFdFile(*fds, data->ColumnNames(), flags.fd_output);
    if (!st.ok()) return Fail(st);
  }
  if (!flags.metrics_out.empty()) {
    int rc = WriteMetricsOut(registry, flags.metrics_out);
    if (rc != 0) return rc;
  }
  return 0;
}

int Closure(const Flags& flags) {
  auto data = LoadInput(flags);
  if (!data.ok()) return Fail(data.status());
  if (flags.fds.empty()) {
    std::cerr << "closure requires --fds=<file> (see 'discover')\n";
    return 2;
  }
  auto fds = ReadFdFile(flags.fds, data->ColumnNames());
  if (!fds.ok()) return Fail(fds.status());
  RunContext ctx = flags.MakeContext();
  std::string algo_name =
      flags.algorithm.empty() ? "optimized" : flags.algorithm;
  auto closure =
      MakeClosure(algo_name, ClosureOptions{flags.threads, nullptr, &ctx});
  if (!closure) {
    std::cerr << "unknown closure algorithm: " << algo_name << "\n";
    return 2;
  }
  Status extended = closure->Extend(&*fds, data->AttributesAsSet());
  if (!extended.ok()) {
    // The partially extended set is still correct — print it, but exit
    // non-zero so scripts notice the missing derivations.
    std::cerr << "warning: " << extended.ToString()
              << " — FDs extended only partially\n";
  }
  std::string text = WriteFdsToString(*fds, data->ColumnNames());
  if (flags.fd_output.empty()) {
    std::cout << text;
  } else {
    Status st = WriteFdFile(*fds, data->ColumnNames(), flags.fd_output);
    if (!st.ok()) return Fail(st);
  }
  return extended.ok() ? 0 : ExitCodeFor(extended);
}

// Writes a generated dataset (--dataset/--scale) as a single universal CSV —
// the input producer for scripted runs that exercise the file pipeline
// (sharded ingest, checkpoint/resume) on synthetic data.
int Generate(const Flags& flags) {
  auto data = LoadInput(flags);
  if (!data.ok()) return Fail(data.status());
  if (flags.output_dir.empty()) {
    std::cerr << "generate requires --output-dir=<dir>\n";
    return 2;
  }
  std::string path = flags.output_dir + "/" + data->name() + ".csv";
  Status st = CsvWriter().WriteFile(*data, path);
  if (!st.ok()) return Fail(st);
  std::cerr << "wrote " << path << " (" << data->num_rows() << " rows)\n";
  return 0;
}

int NormalizeCommand(const Flags& flags) {
  // Declared before ctx: the context holds a raw pointer to the injector.
  FaultInjector injector;
  RunContext ctx = flags.MakeContext();
  if (flags.interrupt_at_check > 0) {
    injector.InterruptAtNthCheck(
        static_cast<uint64_t>(flags.interrupt_at_check),
        StatusCode::kDeadlineExceeded);
    ctx.faults = &injector;
  }
  MetricsRegistry registry;
  NormalizerOptions options;
  options.discovery.max_lhs_size = flags.max_lhs;
  options.discovery.threads = flags.threads;
  if (!flags.metrics_out.empty()) options.discovery.metrics = &registry;
  options.closure_threads = flags.threads;
  if (flags.shard_rows > 0)
    options.shard.shard_rows = static_cast<size_t>(flags.shard_rows);
  if (flags.memory_budget > 0)
    options.shard.memory_budget_bytes =
        static_cast<size_t>(flags.memory_budget);
  options.shard.threads = flags.threads;
  if (!flags.algorithm.empty()) options.discovery_algorithm = flags.algorithm;
  if (flags.second_nf) options.normal_form = NormalForm::kSecondNf;
  if (flags.third_nf) options.normal_form = NormalForm::kThirdNf;
  options.audit = flags.audit;
  options.checkpoint.dir = flags.checkpoint_dir;
  options.checkpoint.resume = flags.resume;
  options.context = &ctx;
  Normalizer normalizer(options);

  // With sharding requested on a file input, stream it through the bounded
  // ingest buffer instead of loading the whole CSV up front.
  size_t input_value_count = 0;
  Result<NormalizationResult> result = [&]() -> Result<NormalizationResult> {
    if (flags.shard_rows > 0 && !flags.input.empty()) {
      return normalizer.NormalizeCsvFile(flags.input);
    }
    auto data = LoadInput(flags);
    if (!data.ok()) return data.status();
    input_value_count = data->TotalValueCount();
    return normalizer.Normalize(*data);
  }();
  if (!result.ok()) return Fail(result.status());
  if (result->stats.resumed) {
    std::cerr << "resumed from " << flags.checkpoint_dir << ":";
    for (const std::string& stage : result->stats.resumed_stages) {
      std::cerr << " " << stage;
    }
    std::cerr << "\n";
  }
  if (!result->stats.completion.ok()) {
    std::cerr << "warning: run degraded (" +
                     result->stats.completion.ToString() + "):\n";
    for (const std::string& note : result->stats.skipped) {
      std::cerr << "  " << note << "\n";
    }
  }
  if (flags.fourth_nf) {
    auto splits = RefineTo4Nf(&*result);
    std::cerr << "4NF refinement: " << splits.size() << " MVD split(s)\n";
  }

  std::cerr << "decision log:\n";
  for (const DecisionRecord& d : result->decisions) {
    std::cerr << "  " << d.ToString(result->schema.attribute_names()) << "\n";
  }
  std::cout << result->schema.ToString() << "\n";
  if (!flags.report.empty()) {
    ReportOptions report_options;
    report_options.input_value_count = input_value_count;
    std::ofstream out(flags.report, std::ios::binary);
    if (!out) {
      std::cerr << "cannot write " << flags.report << "\n";
      return 3;
    }
    out << RenderReport(*result, report_options);
    std::cerr << "wrote " << flags.report << "\n";
  }
  if (!flags.schema_output.empty()) {
    Status st = WriteSchemaFile(result->schema, flags.schema_output);
    if (!st.ok()) return Fail(st);
    std::cerr << "wrote " << flags.schema_output << "\n";
  }
  if (flags.sql) {
    std::cout << ExportSqlDdl(result->schema, result->relations);
  }
  if (!flags.output_dir.empty()) {
    CsvWriter writer;
    for (const RelationData& rel : result->relations) {
      std::string path = flags.output_dir + "/" + rel.name() + ".csv";
      Status st = writer.WriteFile(rel, path);
      if (!st.ok()) return Fail(st);
      std::cerr << "wrote " << path << "\n";
    }
  }
  if (!flags.metrics_out.empty()) {
    // Discovery phases were folded in by the backends; mirror the pipeline-
    // level phase timings (ingest, decomposition, audit, ...) the same way.
    RecordPhaseMetrics(&registry, "normalizer", result->stats.phases);
    int rc = WriteMetricsOut(registry, flags.metrics_out);
    if (rc != 0) return rc;
  }
  if (result->audit.has_value()) {
    std::cout << result->audit->ToString();
    if (!result->audit->passed()) return 6;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.command == "discover") return Discover(flags);
  if (flags.command == "closure") return Closure(flags);
  if (flags.command == "normalize") return NormalizeCommand(flags);
  if (flags.command == "generate") return Generate(flags);
  std::cerr
      << "usage: normalize_cli <discover|closure|normalize> [flags]\n"
         "  discover   --input=<csv> [--algorithm=hyfd|tane|fdep]\n"
         "             [--max-lhs=<n>] [--threads=<n>] [--fd-output=<file>]\n"
         "  closure    --input=<csv> --fds=<file>\n"
         "             [--algorithm=optimized|improved|naive] [--threads=<n>]\n"
         "  normalize  --input=<csv> [--max-lhs=<n>] [--threads=<n>]\n"
         "             [--shard-rows=<n>] [--memory-budget=<bytes>]\n"
         "             [--checkpoint-dir=<dir>] [--resume]\n"
         "             [--2nf|--3nf] [--4nf] [--audit]\n"
         "             [--sql] [--output-dir=<dir>] [--schema-output=<file>]\n"
         "             [--report=<file.md>]\n"
         "  generate   --dataset=<name> [--scale=<f>] --output-dir=<dir>\n"
         "             (writes the generated universal relation as CSV)\n"
         "Common flags:\n"
         "  --dataset=<address|tpch|musicbrainz>: use a generated dataset\n"
         "    instead of --input; --scale=<f> shrinks/grows entity counts.\n"
         "  --deadline-ms=<n>: wall-clock budget; on expiry the run degrades\n"
         "    (partial FD cover, curtailed decomposition) with a warning.\n"
         "  --threads: 0 = hardware concurrency (default), 1 = serial.\n"
         "  --shard-rows: partitioned discovery; with --input the CSV is\n"
         "    streamed in shards under the --memory-budget byte cap.\n"
         "  --checkpoint-dir: persist completed stages; an interrupted run\n"
         "    exits 4 with its state flushed, and --resume continues it,\n"
         "    reproducing the uninterrupted schema bit for bit.\n"
         "  --audit: run the correctness auditor (lossless join, normal-form\n"
         "    compliance, FD-cover soundness) and print its report.\n"
         "  --metrics-out=<file>: write the run's metrics registry (phase\n"
         "    timings as histograms, per-component counters) as a JSON\n"
         "    snapshot (discover and normalize).\n"
         "Exit codes: 0 ok (warnings on stderr if degraded), 1 internal,\n"
         "  2 bad configuration, 3 I/O, 4 out of time / cancelled,\n"
         "  5 resource exhausted, 6 audit failed.\n"
         "Without --input the paper's address example is used.\n";
  return flags.command.empty() ? 1 : 2;
}
