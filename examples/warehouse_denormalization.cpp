// Example: the paper's headline scenario — a data-warehouse export was
// denormalized into one wide table (here: a TPC-H-like order/lineitem
// universe) and Normalize recovers the snowflake schema from the data
// alone: no metadata, no FDs given, no human input.
//
// Flags: --scale=<f> (default 0.3 to keep the demo snappy).
#include <cstdio>
#include <iostream>
#include <string>

#include "datagen/tpch_like.hpp"
#include "normalize/normalizer.hpp"
#include "normalize/schema_compare.hpp"

using namespace normalize;

int main(int argc, char** argv) {
  double scale = 0.3;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) scale = std::atof(arg.c_str() + 8);
  }

  std::cout << "Generating a TPC-H-like warehouse and denormalizing it into "
               "one universal table...\n";
  TpchDataset ds = GenerateTpchLike(TpchScale{}.Scaled(scale));
  std::cout << "universal relation: " << ds.universal.num_rows() << " rows x "
            << ds.universal.num_columns() << " attributes, "
            << ds.universal.TotalValueCount() << " values\n\n";
  std::cout << "original (gold) schema it was built from:\n"
            << ds.gold_schema.ToString() << "\n";

  NormalizerOptions options;
  options.discovery.max_lhs_size = 2;  // paper §4.3 pruning
  Normalizer normalizer(options);
  auto result = normalizer.Normalize(ds.universal);
  if (!result.ok()) {
    std::cerr << "normalization failed: " << result.status().ToString() << "\n";
    return 1;
  }

  std::cout << "normalize: " << result->stats.num_fds << " minimal FDs, "
            << result->stats.decompositions << " decompositions, "
            << result->relations.size() << " BCNF relations\n\n"
            << "recovered schema:\n"
            << result->schema.ToString() << "\n";

  AttributeSet ignored(ds.universal.universe_size());
  ignored.Set(38);  // constant o_shippriority: placement is data-driven
  RecoveryReport report =
      CompareToGold(ds.gold_schema, result->schema, ignored);
  std::cout << "recovery vs gold schema:\n"
            << report.ToString(ds.gold_schema, result->schema) << "\n";

  size_t total = 0;
  for (const RelationData& rel : result->relations) {
    total += rel.TotalValueCount();
  }
  std::printf("storage: %zu values -> %zu values (%.0f%%)\n",
              ds.universal.TotalValueCount(), total,
              100.0 * total / ds.universal.TotalValueCount());
  return 0;
}
