// Example: going beyond BCNF (paper §6's sketched extension). The classic
// course relation teacher ->> book | student contains no nontrivial FD at
// all — BCNF leaves it whole and its redundancy in place — but the
// multi-valued dependency lets the 4NF refiner split it losslessly.
#include <iostream>

#include "mvd/mvd.hpp"
#include "normalize/fourth_nf.hpp"
#include "normalize/normalizer.hpp"
#include "relation/operations.hpp"

using namespace normalize;

int main() {
  RelationData course("course", {0, 1, 2}, {"teacher", "book", "student"});
  // Every teacher teaches every of their books to every of their students;
  // books and students are shared between teachers, so no FD holds.
  for (const char* row : {"smith,algebra,ann", "smith,algebra,bob",
                          "smith,calculus,ann", "smith,calculus,bob",
                          "jones,calculus,bob", "jones,calculus,cara",
                          "jones,sets,bob", "jones,sets,cara"}) {
    std::string s(row);
    size_t c1 = s.find(','), c2 = s.rfind(',');
    course.AppendRow({s.substr(0, c1), s.substr(c1 + 1, c2 - c1 - 1),
                      s.substr(c2 + 1)});
  }
  std::cout << "=== input ===\n" << course.ToString() << "\n";

  Normalizer normalizer;
  auto result = normalizer.Normalize(course);
  if (!result.ok()) {
    std::cerr << "normalization failed: " << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "after BCNF normalization: " << result->relations.size()
            << " relation(s) — no FDs exist, so BCNF cannot remove the "
               "redundancy\n\n";

  auto splits = RefineTo4Nf(&*result);
  std::cout << "=== 4NF refinement ===\n";
  for (const MvdSplit& split : splits) {
    std::cout << "split " << split.relation << " on "
              << split.mvd.ToString(result->schema.attribute_names())
              << " -> " << split.r2_name << "\n";
  }
  std::cout << "\n=== 4NF schema ===\n" << result->schema.ToString() << "\n";
  size_t total = 0;
  for (const RelationData& rel : result->relations) {
    std::cout << rel.ToString() << "\n";
    total += rel.TotalValueCount();
  }
  std::cout << "size: " << course.TotalValueCount() << " values -> " << total
            << " values\n";

  RelationData rejoined = JoinAll(result->relations);
  std::cout << "lossless: "
            << (InstancesEqual(rejoined, course) ? "yes" : "NO (bug!)")
            << " (natural join reproduces the input)\n";
  return 0;
}
