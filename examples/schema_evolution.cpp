// Example: living with a data-driven schema (the paper's closing research
// question about dynamic data). Normalize chose its constraints from one
// snapshot; as the data evolves, inserts can violate them — especially
// constraints built on FDs that only held accidentally. The constraint
// monitor re-checks the normalized schema after updates and reports every
// breakage with witness rows, which is the signal to re-normalize or relax.
#include <iostream>

#include "datagen/datasets.hpp"
#include "normalize/constraint_monitor.hpp"
#include "normalize/normalizer.hpp"

using namespace normalize;

int main() {
  RelationData address = AddressExample();
  Normalizer normalizer;
  auto result = normalizer.Normalize(address);
  if (!result.ok()) {
    std::cerr << "normalization failed: " << result.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== normalized schema (decision log) ===\n";
  for (const DecisionRecord& d : result->decisions) {
    std::cout << "  " << d.ToString(result->schema.attribute_names()) << "\n";
  }
  std::cout << "\n" << result->schema.ToString() << "\n";

  auto report = [&](const char* title) {
    std::cout << "--- " << title << " ---\n";
    auto violations = CheckSchemaConstraints(result->schema, result->relations);
    for (size_t i = 0; i < result->relations.size(); ++i) {
      auto fd_violations = CheckFds(result->schema, static_cast<int>(i),
                                    result->relations[i], result->extended_fds);
      violations.insert(violations.end(), fd_violations.begin(),
                        fd_violations.end());
    }
    if (violations.empty()) {
      std::cout << "  all constraints hold\n\n";
    } else {
      for (const auto& v : violations) {
        std::cout << "  VIOLATION: " << v.ToString(result->schema) << "\n";
      }
      std::cout << "\n";
    }
  };

  report("after normalization");

  std::cout << ">> insert (Eve, Newton, 99999) into the person relation "
               "without registering postcode 99999...\n";
  result->relations[0].AppendRow({"Eve", "Newton", "99999"});
  report("after the orphaned insert");

  std::cout << ">> register postcode 99999 twice with different cities (a "
               "data error breaking PK and the Postcode->City FD)...\n";
  result->relations[1].AppendRow({"99999", "Atlantis", "Nemo"});
  result->relations[1].AppendRow({"99999", "Utopia", "Moore"});
  report("after the inconsistent postcode rows");

  std::cout << "The monitor pinpoints each broken constraint with witness "
               "rows — the\ncue to clean the data or re-run normalization "
               "on the new snapshot.\n";
  return 0;
}
