// Quickstart: normalizes the paper's Table 1 address example end-to-end and
// prints every intermediate artifact — discovered FDs, the closure, derived
// keys, violating FDs with their scores, and the final BCNF schema with its
// instances (the paper's Table 2).
#include <cstdio>
#include <iostream>

#include "closure/closure.hpp"
#include "datagen/datasets.hpp"
#include "discovery/hyfd.hpp"
#include "normalize/key_derivation.hpp"
#include "normalize/normalizer.hpp"
#include "normalize/scoring.hpp"
#include "normalize/violation_detection.hpp"

int main() {
  using namespace normalize;

  RelationData address = AddressExample();
  std::cout << "=== Input (paper Table 1) ===\n"
            << address.ToString() << "\n";

  // --- Step-by-step view of the pipeline ---
  HyFd discovery;
  auto fds_result = discovery.Discover(address);
  if (!fds_result.ok()) {
    std::cerr << "discovery failed: " << fds_result.status().ToString() << "\n";
    return 1;
  }
  FdSet fds = std::move(fds_result).value();
  const auto& names = address.ColumnNames();
  std::cout << "=== (1) Minimal FDs (" << fds.CountUnaryFds()
            << " unary, aggregated below) ===\n"
            << fds.ToString(names) << "\n";

  OptimizedClosure closure;
  if (Status st = closure.Extend(&fds, address.AttributesAsSet()); !st.ok()) {
    std::cerr << "closure failed: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "=== (2) Extended FDs (closure) ===\n"
            << fds.ToString(names) << "\n";

  auto keys = DeriveKeys(fds, address.AttributesAsSet());
  std::cout << "=== (3) Derived keys ===\n";
  for (const auto& key : keys) std::cout << key.ToString(names) << "\n";
  std::cout << "\n";

  RelationSchema rel("address", address.AttributesAsSet());
  auto violations = DetectViolatingFds(fds, keys, rel,
                                       AttributeSet(address.universe_size()));
  ConstraintScorer scorer(address);
  auto ranked = scorer.RankFds(violations);
  std::cout << "=== (4/5) Violating FDs, ranked ===\n";
  for (const auto& v : ranked) {
    std::cout << v.fd.ToString(names) << "  " << v.score.ToString() << "\n";
  }
  std::cout << "\n";

  // --- The whole pipeline in one call ---
  Normalizer normalizer;
  auto result = normalizer.Normalize(address);
  if (!result.ok()) {
    std::cerr << "normalization failed: " << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "=== (6/7) BCNF schema (paper Table 2) ===\n"
            << result->schema.ToString() << "\n";
  size_t total_values = 0;
  for (const auto& r : result->relations) {
    std::cout << r.ToString() << "\n";
    total_values += r.TotalValueCount();
  }
  std::printf("Total size: %zu values (paper: 36 -> 27)\n", total_values);
  return 0;
}
