// Example: the paper's user-in-the-loop mode (§3, components 5 and 7). At
// every decision point the ranked candidates are printed with their feature
// scores; the user picks one, rejects all (ending normalization of that
// relation), or accepts the algorithm's top suggestion.
//
// Runs on the paper's address dataset by default. Pass --auto to replay the
// session without prompting (useful in CI), or pipe choices via stdin, e.g.
//   echo "0 0 0" | ./interactive_session
#include <iostream>
#include <sstream>
#include <string>

#include "datagen/datasets.hpp"
#include "normalize/normalizer.hpp"

using namespace normalize;

namespace {

/// Prints ranked candidates and reads the user's pick from stdin. An empty
/// line accepts the top candidate; "skip" declines.
class ConsoleAdvisor : public Advisor {
 public:
  explicit ConsoleAdvisor(bool auto_mode) : auto_mode_(auto_mode) {}

  int ChooseViolatingFd(const Schema& schema, int relation_index,
                        const std::vector<ScoredFd>& ranked) override {
    const RelationSchema& rel = schema.relation(relation_index);
    std::cout << "\nRelation " << rel.name()
              << " violates BCNF. Ranked split candidates:\n";
    const auto& names = schema.attribute_names();
    for (size_t i = 0; i < ranked.size() && i < 10; ++i) {
      std::cout << "  [" << i << "] " << ranked[i].fd.ToString(names) << "\n"
                << "       " << ranked[i].score.ToString() << "\n";
    }
    if (ranked.size() > 10) {
      std::cout << "  ... (" << ranked.size() - 10 << " more)\n";
    }
    return Prompt(static_cast<int>(ranked.size()),
                  "split on candidate # (empty = 0, 'skip' = stop)");
  }

  int ChoosePrimaryKey(const Schema& schema, int relation_index,
                       const std::vector<ScoredKey>& ranked) override {
    const RelationSchema& rel = schema.relation(relation_index);
    std::cout << "\nRelation " << rel.name()
              << " needs a primary key. Ranked candidates:\n";
    const auto& names = schema.attribute_names();
    for (size_t i = 0; i < ranked.size() && i < 10; ++i) {
      std::cout << "  [" << i << "] " << ranked[i].key.ToString(names) << "\n"
                << "       " << ranked[i].score.ToString() << "\n";
    }
    return Prompt(static_cast<int>(ranked.size()),
                  "pick key # (empty = 0, 'skip' = none)");
  }

 private:
  int Prompt(int count, const std::string& question) {
    if (auto_mode_) {
      std::cout << "(auto mode: taking the top-ranked candidate)\n";
      return count > 0 ? 0 : -1;
    }
    std::cout << question << " > " << std::flush;
    std::string line;
    if (!std::getline(std::cin, line)) return count > 0 ? 0 : -1;
    std::istringstream in(line);
    std::string token;
    if (!(in >> token)) return count > 0 ? 0 : -1;
    if (token == "skip" || token == "s") return -1;
    int pick = std::atoi(token.c_str());
    if (pick < 0 || pick >= count) {
      std::cout << "(out of range; taking 0)\n";
      return count > 0 ? 0 : -1;
    }
    return pick;
  }

  bool auto_mode_;
};

}  // namespace

int main(int argc, char** argv) {
  bool auto_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--auto") auto_mode = true;
  }

  RelationData address = AddressExample();
  std::cout << "Normalizing the paper's address dataset interactively.\n"
            << address.ToString() << "\n";

  ConsoleAdvisor advisor(auto_mode);
  Normalizer normalizer(NormalizerOptions{}, &advisor);
  auto result = normalizer.Normalize(address);
  if (!result.ok()) {
    std::cerr << "normalization failed: " << result.status().ToString() << "\n";
    return 1;
  }

  std::cout << "\n=== final schema ===\n" << result->schema.ToString() << "\n";
  for (const RelationData& rel : result->relations) {
    std::cout << rel.ToString() << "\n";
  }
  return 0;
}
