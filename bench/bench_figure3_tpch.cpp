// Reproduces paper Figure 3: the schema produced by automatically
// normalizing the denormalized TPC-H dataset. Prints the resulting BCNF
// schema plus a recovery report against the original (gold) schema. The
// paper's findings to reproduce:
//   * all eight original relations are identifiable in the output,
//   * selected keys/foreign keys are correct (snowflake schema),
//   * flaw 1: LINEITEM is decomposed "a bit too far",
//   * flaw 2: the constant o_shippriority lands outside ORDERS (the paper
//     saw it in REGION).
//
// Flags: --scale=<f>, --max-lhs=<n>, --discovery=<hyfd|tane|fdep>.
#include <iostream>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "datagen/tpch_like.hpp"
#include "normalize/normalizer.hpp"
#include "normalize/schema_compare.hpp"

using namespace normalize;
using namespace normalize::bench;

int main(int argc, char** argv) {
  Args args(argc, argv);
  double scale = args.GetDouble("scale", 1.0);

  std::cout << "=== Figure 3: relations after normalizing TPC-H ===\n\n";
  Stopwatch watch;
  TpchDataset ds = GenerateTpchLike(TpchScale{}.Scaled(scale));
  std::cout << "generated universal relation: " << ds.universal.num_rows()
            << " rows x " << ds.universal.num_columns() << " attributes ("
            << FormatDuration(watch.ElapsedSeconds()) << ")\n";

  NormalizerOptions options;
  options.discovery_algorithm = args.Get("discovery", "hyfd");
  options.discovery.max_lhs_size = args.GetInt("max-lhs", 2);
  Normalizer normalizer(options);
  watch.Restart();
  auto result = normalizer.Normalize(ds.universal);
  if (!result.ok()) {
    std::cerr << "normalization failed: " << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "normalized in " << FormatDuration(watch.ElapsedSeconds())
            << ": " << result->stats.num_fds << " minimal FDs, "
            << result->stats.decompositions << " decompositions, "
            << result->relations.size() << " relations\n\n";

  std::cout << "--- resulting schema (keys marked *, FKs listed) ---\n"
            << result->schema.ToString() << "\n";

  AttributeSet ignored(ds.universal.universe_size());
  ignored.Set(38);  // o_shippriority is constant; its placement is data-driven
  RecoveryReport report =
      CompareToGold(ds.gold_schema, result->schema, ignored);
  std::cout << "--- recovery vs original TPC-H schema ---\n"
            << report.ToString(ds.gold_schema, result->schema) << "\n";

  std::cout << "paper's observations to compare against:\n"
            << "  * all 8 original relations identifiable; constraints "
               "correct (snowflake)\n"
            << "  * LINEITEM over-split ("
            << result->relations.size() - ds.gold_schema.relations().size()
            << " extra relations here)\n"
            << "  * o_shippriority placed outside ORDERS by the data-driven "
               "split order\n";
  return 0;
}
