// Ablation: how much does each violating-FD scoring feature (§7.2: length,
// value, position, duplication) contribute to schema recovery? We rerun the
// TPC-H normalization with re-weighted rankings — implemented purely as an
// Advisor that re-sorts the candidate list, exactly the user-in-the-loop
// interface — and compare the recovered schema against the gold standard.
//
// Flags: --scale=<f>, --max-lhs=<n>.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "datagen/tpch_like.hpp"
#include "normalize/normalizer.hpp"
#include "normalize/schema_compare.hpp"

using namespace normalize;
using namespace normalize::bench;

namespace {

struct Weights {
  std::string name;
  double length, value, position, duplication;
};

/// Re-ranks the violating-FD candidates by a weighted feature sum; keys are
/// left at the default (top-ranked) choice.
class WeightedAdvisor : public Advisor {
 public:
  explicit WeightedAdvisor(const Weights& w) : w_(w) {}

  int ChooseViolatingFd(const Schema&, int,
                        const std::vector<ScoredFd>& ranked) override {
    if (ranked.empty()) return -1;
    int best = 0;
    double best_score = -1.0;
    for (size_t i = 0; i < ranked.size(); ++i) {
      const FdScore& s = ranked[i].score;
      double total = w_.length * s.length + w_.value * s.value +
                     w_.position * s.position + w_.duplication * s.duplication;
      if (total > best_score) {
        best_score = total;
        best = static_cast<int>(i);
      }
    }
    return best;
  }
  int ChoosePrimaryKey(const Schema&, int,
                       const std::vector<ScoredKey>& ranked) override {
    return ranked.empty() ? -1 : 0;
  }

 private:
  Weights w_;
};

}  // namespace

int main(int argc, char** argv) {
  Args args(argc, argv);
  double scale = args.GetDouble("scale", 1.0);
  int max_lhs = args.GetInt("max-lhs", 2);

  std::cout << "=== Ablation: violating-FD scoring features (§7.2) ===\n"
            << "(TPC-H recovery quality when features are removed)\n\n";

  TpchDataset ds = GenerateTpchLike(TpchScale{}.Scaled(scale));
  AttributeSet ignored(ds.universal.universe_size());
  ignored.Set(38);  // o_shippriority (constant)

  std::vector<Weights> configs = {
      {"all features", 1, 1, 1, 1},
      {"no length", 0, 1, 1, 1},
      {"no value", 1, 0, 1, 1},
      {"no position", 1, 1, 0, 1},
      {"no duplication", 1, 1, 1, 0},
      {"length only", 1, 0, 0, 0},
      {"duplication only", 0, 0, 0, 1},
  };

  TablePrinter table({"ranking", "relations", "avg jaccard", "exact", "keys"});
  for (const Weights& w : configs) {
    WeightedAdvisor advisor(w);
    NormalizerOptions options;
    options.discovery.max_lhs_size = max_lhs;
    Normalizer normalizer(options, &advisor);
    auto result = normalizer.Normalize(ds.universal);
    if (!result.ok()) {
      table.AddRow({w.name, "ERR", "", "", ""});
      continue;
    }
    RecoveryReport report =
        CompareToGold(ds.gold_schema, result->schema, ignored);
    char jac[16];
    std::snprintf(jac, sizeof(jac), "%.3f", report.average_jaccard);
    table.AddRow({w.name, std::to_string(result->relations.size()), jac,
                  std::to_string(report.exact_count) + "/8",
                  std::to_string(report.key_count) + "/8"});
  }
  table.Print();

  std::cout << "\nExpected shape: the full feature mix recovers the schema "
               "best;\ndropping features degrades recovery (how much depends "
               "on the feature).\n";
  return 0;
}
